// Figure 4 reproduction: the intended execution plan of Query 9 and the
// choke point behind it — join-type choice. The paper reports that
// replacing the index-nested-loop joins of the intended plan with hash
// joins costs ~50% in HyPer/Virtuoso. We execute Q9 under all plan
// variants and report runtime plus de-facto intermediate cardinalities.
#include <cstdio>

#include "bench/bench_util.h"
#include "curation/parameter_curation.h"
#include "queries/query9_plans.h"
#include "util/histogram.h"
#include "util/latency_recorder.h"

namespace snb::bench {
namespace {

using queries::JoinStrategy;
using queries::Q9PlanStats;

const char* Short(JoinStrategy s) {
  return s == JoinStrategy::kIndexNestedLoop ? "INL " : "HASH";
}

void Run() {
  PrintHeader("Figure 4 — Query 9 intended plan & join-type ablation");
  std::unique_ptr<BenchWorld> world = MakeWorld(kMediumSf);
  curation::PcTable table =
      curation::BuildTwoHopTable(world->dataset.stats);
  std::vector<uint64_t> params = curation::CurateParameters(table, 20);
  util::TimestampMs max_date =
      util::kNetworkStartMs + 30 * util::kMillisPerMonth;

  struct Plan {
    JoinStrategy j1, j2, j3;
    const char* note;
  };
  // The intended plan is INL-INL-HASH (Figure 4): the last join's input is
  // too large for index lookups per tuple in the paper's systems.
  std::vector<Plan> plans = {
      {JoinStrategy::kIndexNestedLoop, JoinStrategy::kIndexNestedLoop,
       JoinStrategy::kHash, "intended plan (Fig. 4)"},
      {JoinStrategy::kIndexNestedLoop, JoinStrategy::kIndexNestedLoop,
       JoinStrategy::kIndexNestedLoop, "all-INL (creator index)"},
      {JoinStrategy::kHash, JoinStrategy::kIndexNestedLoop,
       JoinStrategy::kHash, "hash join1 (paper: ~50% penalty)"},
      {JoinStrategy::kHash, JoinStrategy::kHash, JoinStrategy::kHash,
       "all-hash"},
  };

  std::printf("  %-16s %10s %10s %10s %10s %10s  %s\n", "plan(j1,j2,j3)",
              "mean ms", "|join1|", "|join2|", "|join3|", "build",
              "note");
  double intended_ms = 0;
  for (const Plan& plan : plans) {
    util::SampleStats stats;
    Q9PlanStats agg{};
    for (uint64_t p : params) {
      Q9PlanStats s;
      util::Stopwatch watch;
      queries::Query9WithPlan(world->store, p, max_date, 20, plan.j1,
                              plan.j2, plan.j3, &s);
      stats.Add(watch.ElapsedMicros() / 1000.0);
      agg.join1_output += s.join1_output;
      agg.join2_output += s.join2_output;
      agg.join3_output += s.join3_output;
      agg.build_tuples += s.build_tuples;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "%s-%s-%s", Short(plan.j1),
                  Short(plan.j2), Short(plan.j3));
    std::printf("  %-16s %10.3f %10llu %10llu %10llu %10llu  %s\n", name,
                stats.Mean(),
                (unsigned long long)(agg.join1_output / params.size()),
                (unsigned long long)(agg.join2_output / params.size()),
                (unsigned long long)(agg.join3_output / params.size()),
                (unsigned long long)(agg.build_tuples / params.size()),
                plan.note);
    if (plan.note[0] == 'i') intended_ms = stats.Mean();
  }
  std::printf(
      "\n  Cardinality profile of the intended plan (paper: 120 friends ->\n"
      "  ~thousands of fof -> millions of messages): |join1| << |join2| <<\n"
      "  messages scanned; picking hash for join1/join2 pays a full\n"
      "  Friends-table build for a ~120-tuple input.\n");
  std::printf("  intended-plan mean: %.3f ms\n\n", intended_ms);
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
