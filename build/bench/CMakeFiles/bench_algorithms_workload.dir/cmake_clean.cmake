file(REMOVE_RECURSE
  "CMakeFiles/bench_algorithms_workload.dir/bench_algorithms_workload.cc.o"
  "CMakeFiles/bench_algorithms_workload.dir/bench_algorithms_workload.cc.o.d"
  "bench_algorithms_workload"
  "bench_algorithms_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithms_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
