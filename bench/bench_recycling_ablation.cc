// Result-recycling ablation (paper section 3, "Parallelism and result
// reuse"): because the Person domain is small and most complex reads fetch
// 1..2-hop neighbourhoods, recycling the 2-hop retrieval across queries
// pays off. Q9 with repeating (curated) parameters, with and without the
// recycler, plus the behaviour under concurrent friendship updates.
#include <cstdio>

#include "bench/bench_util.h"
#include "curation/parameter_curation.h"
#include "queries/complex_queries.h"
#include "queries/recycler.h"
#include "queries/update_queries.h"
#include "util/stopwatch.h"
#include "util/rng.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("Ablation — intermediate-result recycling (sec. 3 choke point)");
  std::unique_ptr<BenchWorld> world = MakeWorld(kLargeSf, false);
  curation::PcTable table = curation::BuildTwoHopTable(world->dataset.stats);
  std::vector<uint64_t> params = curation::CurateParameters(table, 20);
  util::TimestampMs mid = util::kNetworkStartMs + 24 * util::kMillisPerMonth;

  constexpr int kRounds = 40;  // Every parameter repeats 40x.
  util::Stopwatch watch;
  for (int r = 0; r < kRounds; ++r) {
    for (uint64_t p : params) {
      queries::Query9(world->store, p, mid);
    }
  }
  double plain_ms = watch.ElapsedMicros() / 1000.0;

  queries::TwoHopRecycler recycler;
  watch.Reset();
  for (int r = 0; r < kRounds; ++r) {
    for (uint64_t p : params) {
      queries::Query9Recycled(world->store, recycler, p, mid);
    }
  }
  double recycled_ms = watch.ElapsedMicros() / 1000.0;

  std::printf("  Q9 x %zu params x %d repeats:\n", params.size(), kRounds);
  std::printf("    plain     %10.1f ms\n", plain_ms);
  std::printf("    recycled  %10.1f ms  (%.2fx end-to-end, %llu hits /"
              " %llu misses)\n",
              recycled_ms, plain_ms / recycled_ms,
              (unsigned long long)recycler.hits(),
              (unsigned long long)recycler.misses());

  // The partial result itself: 2-hop retrieval cost, plain vs recycled.
  watch.Reset();
  for (int r = 0; r < kRounds; ++r) {
    for (uint64_t p : params) queries::TwoHopCircle(world->store, p);
  }
  double circle_plain_ms = watch.ElapsedMicros() / 1000.0;
  queries::TwoHopRecycler circle_recycler;
  watch.Reset();
  for (int r = 0; r < kRounds; ++r) {
    for (uint64_t p : params) circle_recycler.Get(world->store, p);
  }
  double circle_recycled_ms = watch.ElapsedMicros() / 1000.0;
  std::printf("    2-hop retrieval alone: %.1f ms plain vs %.1f ms recycled"
              " (%.0fx)\n",
              circle_plain_ms, circle_recycled_ms,
              circle_plain_ms / std::max(circle_recycled_ms, 0.001));

  // Under updates: apply the update stream while querying; every
  // AddFriendship invalidates, so hit rate drops but results stay correct.
  queries::TwoHopRecycler live_recycler;
  uint64_t checked = 0;
  size_t update_index = 0;
  const auto& updates = world->dataset.updates;
  watch.Reset();
  for (int r = 0; r < 10; ++r) {
    // Interleave a slice of updates.
    for (int u = 0; u < 50 && update_index < updates.size(); ++u) {
      queries::ApplyUpdate(world->store, updates[update_index++]);
    }
    for (uint64_t p : params) {
      auto a = queries::Query9Recycled(world->store, live_recycler, p, mid);
      ++checked;
      (void)a;
    }
  }
  std::printf("\n  with concurrent updates (invalidation live): %llu queries,"
              " %llu hits / %llu misses\n",
              (unsigned long long)checked,
              (unsigned long long)live_recycler.hits(),
              (unsigned long long)live_recycler.misses());
  std::printf(
      "  Shape to check: the recycled partial result (2-hop retrieval) is\n"
      "  tens of times cheaper than recomputing it; the end-to-end gain\n"
      "  depends on the retrieval's share of the query (at mini scale Q9 is\n"
      "  dominated by the message scan, at server scale the random-access\n"
      "  neighbourhood retrieval dominates — the paper's 'high value'\n"
      "  criterion). Friendship updates shrink the hit rate via\n"
      "  conservative whole-cache invalidation without ever serving stale\n"
      "  circles (tests/recycler_test.cc).\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
