#include "obs/dossier.h"

#include <algorithm>
#include <utility>

namespace snb::obs {

void DossierCollector::Offer(SlowQueryDossier d) {
  size_t idx = static_cast<size_t>(d.op);
  if (idx >= kNumOpTypes) return;
  util::MutexLock lock(&mu_);
  std::vector<SlowQueryDossier>& kept = kept_[idx];
  // Re-check under the lock: the floor may have risen since WouldKeep.
  if (kept.size() >= keep_per_op_ && d.latency_ns <= kept.back().latency_ns) {
    return;
  }
  auto pos = std::upper_bound(
      kept.begin(), kept.end(), d.latency_ns,
      [](uint64_t lat, const SlowQueryDossier& k) { return lat > k.latency_ns; });
  kept.insert(pos, std::move(d));
  if (kept.size() > keep_per_op_) kept.pop_back();
  if (kept.size() == keep_per_op_) {
    floor_ns_[idx].store(kept.back().latency_ns, std::memory_order_relaxed);
  }
}

std::vector<SlowQueryDossier> DossierCollector::Snapshot() const {
  util::MutexLock lock(&mu_);
  std::vector<SlowQueryDossier> out;
  for (size_t i = 0; i < kNumOpTypes; ++i) {
    out.insert(out.end(), kept_[i].begin(), kept_[i].end());
  }
  return out;
}

size_t DossierCollector::Size() const {
  util::MutexLock lock(&mu_);
  size_t total = 0;
  for (size_t i = 0; i < kNumOpTypes; ++i) total += kept_[i].size();
  return total;
}

}  // namespace snb::obs
