// End-to-end driver tests: all execution modes must replay the update
// stream with zero dependency violations, and the full mix must run reads
// concurrently with updates.
#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "driver/driver.h"
#include "driver/query_mix.h"
#include "driver/run_audit.h"
#include "obs/trace_buffer.h"
#include "queries/complex_queries.h"

namespace snb::driver {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    std::unique_ptr<schema::Dictionaries> dict;
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 250;
      world->dataset = datagen::Generate(config);
      world->dict = std::make_unique<schema::Dictionaries>(config.seed);
      return world;
    }();
    return *w;
  }

  static Workload UpdateOnlyWorkload() {
    QueryMixConfig mix;
    mix.include_complex_reads = false;
    return BuildWorkload(world().dataset, *world().dict, mix);
  }
};

TEST_F(DriverTest, WorkloadIsDueTimeSorted) {
  Workload workload = UpdateOnlyWorkload();
  ASSERT_GT(workload.operations.size(), 0u);
  for (size_t i = 1; i < workload.operations.size(); ++i) {
    EXPECT_GE(workload.operations[i].due_time,
              workload.operations[i - 1].due_time);
  }
  EXPECT_EQ(workload.num_updates, world().dataset.updates.size());
}

// The core correctness property: replaying the update stream through the
// driver in ANY mode with ANY parallelism must produce zero dependency
// violations (the store rejects an op whose dependencies are missing).
class DriverModeTest
    : public DriverTest,
      public ::testing::WithParamInterface<std::tuple<ExecutionMode, int>> {};

TEST_P(DriverModeTest, ReplaysUpdateStreamWithoutViolations) {
  auto [mode, partitions] = GetParam();
  Workload workload = UpdateOnlyWorkload();

  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(world().dataset.bulk).ok());
  obs::MetricsRegistry metrics;
  StoreConnector connector(&store, &world().dataset.updates, world().dict.get(),
                           &metrics);

  DriverConfig config;
  config.mode = mode;
  config.num_partitions = partitions;
  config.metrics = &metrics;
  DriverReport report =
      RunWorkload(workload.operations, connector, config);

  EXPECT_EQ(report.operations_executed, workload.operations.size());
  EXPECT_EQ(report.operations_failed, 0u) << report.first_error;
  // The final store state matches the full dataset.
  EXPECT_EQ(store.NumPersons(), world().dataset.stats.num_persons);
  EXPECT_EQ(store.NumKnowsEdges(), world().dataset.stats.num_knows);
  EXPECT_EQ(store.NumMessages(), world().dataset.stats.NumMessages());
  EXPECT_EQ(store.NumLikes(), world().dataset.stats.num_likes);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DriverModeTest,
    ::testing::Combine(
        ::testing::Values(ExecutionMode::kSequentialForum,
                          ExecutionMode::kParallelGct,
                          ExecutionMode::kWindowed),
        ::testing::Values(1, 4, 8)),
    [](const auto& info) {
      const char* mode = "Unknown";
      switch (std::get<0>(info.param)) {
        case ExecutionMode::kSequentialForum:
          mode = "SequentialForum";
          break;
        case ExecutionMode::kParallelGct:
          mode = "ParallelGct";
          break;
        case ExecutionMode::kWindowed:
          mode = "Windowed";
          break;
      }
      return std::string(mode) + "P" + std::to_string(std::get<1>(info.param));
    });

TEST_F(DriverTest, FullMixRunsReadsAndWalk) {
  QueryMixConfig mix;
  // Small frequencies so a mini stream still gets reads of every type.
  for (auto& f : mix.frequencies) f = std::max<uint32_t>(1, f / 40);
  Workload workload = BuildWorkload(world().dataset, *world().dict, mix);
  EXPECT_GT(workload.num_complex_reads, 0u);

  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(world().dataset.bulk).ok());
  obs::MetricsRegistry metrics;
  StoreConnector connector(&store, &world().dataset.updates, world().dict.get(),
                           &metrics);
  DriverConfig config;
  config.num_partitions = 4;
  config.metrics = &metrics;
  DriverReport report = RunWorkload(workload.operations, connector, config);

  EXPECT_EQ(report.operations_failed, 0u) << report.first_error;
  // Complex reads of several types ran.
  obs::MetricsSnapshot snap = metrics.Snapshot();
  int complex_types = 0;
  for (size_t i = obs::kComplexBegin; i < obs::kShortBegin; ++i) {
    if (snap.ops[i].count > 0) ++complex_types;
  }
  EXPECT_GE(complex_types, 10);
  // The random walk spawned short reads.
  EXPECT_GT(connector.short_reads_executed(), 0u);
  double short_micros = snap.SumMicros(obs::kShortBegin, obs::kUpdateBegin);
  EXPECT_GT(short_micros, 0.0);
  EXPECT_GT(snap.CounterValue(obs::Counter::kShortReadWalkSteps), 0u);
  // The run's outcome counters were folded into the registry.
  EXPECT_EQ(snap.CounterValue(obs::Counter::kOperationsExecuted),
            report.operations_executed);
  EXPECT_EQ(snap.CounterValue(obs::Counter::kOperationsFailed), 0u);
}

TEST_F(DriverTest, ThrottledRunSustainsAcceleration) {
  // Replay a slice at a pace that is easy to sustain and check the
  // sustained flag plus rough wall-clock agreement.
  Workload workload = UpdateOnlyWorkload();
  size_t slice = std::min<size_t>(workload.operations.size(), 400);
  std::vector<Operation> ops(workload.operations.begin(),
                             workload.operations.begin() + slice);

  SleepingConnector connector(0);
  DriverConfig config;
  config.num_partitions = 4;
  util::TimestampMs span = ops.back().due_time - ops.front().due_time;
  // Target ~200ms of real time for the slice.
  config.acceleration = static_cast<double>(span) / 200.0;
  DriverReport report = RunWorkload(ops, connector, config);
  EXPECT_TRUE(report.sustained) << report.max_schedule_lag_ms;
  EXPECT_GT(report.elapsed_seconds, 0.15);
  EXPECT_EQ(report.operations_failed, 0u);
}

TEST_F(DriverTest, ThrottledRunRecordsLagTimeline) {
  Workload workload = UpdateOnlyWorkload();
  size_t slice = std::min<size_t>(workload.operations.size(), 400);
  std::vector<Operation> ops(workload.operations.begin(),
                             workload.operations.begin() + slice);

  SleepingConnector connector(0);
  obs::MetricsRegistry metrics;
  DriverConfig config;
  config.num_partitions = 4;
  config.metrics = &metrics;
  util::TimestampMs span = ops.back().due_time - ops.front().due_time;
  // ~1.2s of real time so the timeline spans at least two seconds.
  config.acceleration = static_cast<double>(span) / 1200.0;
  DriverReport report = RunWorkload(ops, connector, config);

  ASSERT_FALSE(report.lag_timeline_ms.empty());
  double prev_second = -1.0;
  for (const auto& [second, lag_ms] : report.lag_timeline_ms) {
    EXPECT_GT(second, prev_second);  // Strictly increasing seconds.
    EXPECT_GE(lag_ms, 0.0);
    prev_second = second;
  }
  EXPECT_GE(report.lag_timeline_ms.back().first, 1.0);
  // The sched-lag series saw every operation.
  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.Op(obs::OpType::kSchedLag).count, ops.size());
  // An unthrottled run has no timeline.
  config.acceleration = 0.0;
  DriverReport unthrottled = RunWorkload(ops, connector, config);
  EXPECT_TRUE(unthrottled.lag_timeline_ms.empty());
}

TEST_F(DriverTest, SleepingConnectorScalesWithPartitions) {
  // Table 5 in miniature: more partitions -> more ops/sec with a fixed
  // per-op sleep.
  Workload workload = UpdateOnlyWorkload();
  size_t slice = std::min<size_t>(workload.operations.size(), 2000);
  std::vector<Operation> ops(workload.operations.begin(),
                             workload.operations.begin() + slice);

  auto run = [&](uint32_t partitions) {
    SleepingConnector connector(500);  // 0.5 ms.
    DriverConfig config;
    config.num_partitions = partitions;
    DriverReport report = RunWorkload(ops, connector, config);
    EXPECT_EQ(report.operations_failed, 0u);
    return report.ops_per_second;
  };
  double one = run(1);
  double four = run(4);
  EXPECT_GT(four, one * 2.0);
}

TEST_F(DriverTest, FrequencyLogScaleGrows) {
  EXPECT_NEAR(FrequencyLogScale(datagen::PersonsForScaleFactor(1.0)), 1.0,
              1e-9);
  EXPECT_GT(FrequencyLogScale(datagen::PersonsForScaleFactor(300)), 1.0);
  EXPECT_LT(FrequencyLogScale(60), 1.0);
}

TEST_F(DriverTest, CalibrateMixEqualizesCpuShares) {
  // Queries with 10x cost differences must get 10x lower frequencies.
  std::array<double, 14> costs{};
  for (int q = 0; q < 14; ++q) costs[q] = 100.0;
  costs[5] = 1000.0;  // Q6 is 10x heavier.
  costs[7] = 50.0;    // Q8 is 2x lighter.
  MixCalibration cal = CalibrateMix(costs, 1000000, 50.0, 5.0);
  EXPECT_GT(cal.frequencies[5], cal.frequencies[0] * 5);
  EXPECT_LT(cal.frequencies[7] * 3, cal.frequencies[0] * 2);
  // Equal CPU per query: instances * cost equal across queries (within
  // integer rounding).
  double budget0 = 100000.0 / cal.frequencies[0] * costs[0];
  double budget5 = 100000.0 / cal.frequencies[5] * costs[5];
  EXPECT_NEAR(budget5 / budget0, 1.0, 0.25);
  // Walk fills the short-read share.
  EXPECT_GT(cal.expected_walk_length, 0.0);
  EXPECT_GT(cal.short_read_initial_probability, 0.0);
}

TEST_F(DriverTest, CalibrateMixShortWalkScalesWithShortShare) {
  std::array<double, 14> costs{};
  for (int q = 0; q < 14; ++q) costs[q] = 100.0;
  MixCalibration narrow = CalibrateMix(costs, 10000, 50.0, 5.0, 0.3, 0.6);
  MixCalibration wide = CalibrateMix(costs, 10000, 50.0, 5.0, 0.1, 0.5);
  // 40% short share needs a longer walk than 10%.
  EXPECT_GT(wide.expected_walk_length, narrow.expected_walk_length);
}

TEST_F(DriverTest, EmptyWorkloadIsNoOp) {
  SleepingConnector connector(0);
  DriverConfig config;
  DriverReport report = RunWorkload({}, connector, config);
  EXPECT_EQ(report.operations_executed, 0u);
}

// ---- LagTimeline (bounded sched-lag series) -------------------------------

TEST_F(DriverTest, LagTimelineStaysWithinSlotCap) {
  LagTimeline timeline(/*max_slots=*/8);
  // A "run" 100x longer than the slot budget at 1 s/slot.
  for (int64_t second = 0; second < 800; ++second) {
    timeline.Record(second, second * 10);
  }
  EXPECT_LE(timeline.Snapshot().size(), timeline.max_slots());
  // 800 seconds over 8 slots -> 128 s/slot (next power of two >= 100).
  EXPECT_EQ(timeline.seconds_per_slot(), 128);
  // Downsampling folds by max: the last slot keeps the run's worst lag.
  auto rows = timeline.Snapshot();
  ASSERT_FALSE(rows.empty());
  EXPECT_DOUBLE_EQ(rows.back().second, 799 * 10 / 1000.0);
  // Slot edges are strictly increasing multiples of the scale.
  double prev = -1.0;
  for (const auto& [second, lag_ms] : rows) {
    EXPECT_GT(second, prev);
    EXPECT_EQ(static_cast<int64_t>(second) % timeline.seconds_per_slot(), 0);
    prev = second;
  }
}

TEST_F(DriverTest, LagTimelineKeepsMaxUnderConcurrentRescale) {
  LagTimeline timeline(/*max_slots=*/16);
  constexpr int kThreads = 4;
  constexpr int64_t kSecondsPerThread = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&timeline, t] {
      for (int64_t s = t; s < kSecondsPerThread; s += kThreads) {
        timeline.Record(s, s);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  auto rows = timeline.Snapshot();
  EXPECT_LE(rows.size(), timeline.max_slots());
  ASSERT_FALSE(rows.empty());
  // The global max lag survives every fold.
  double max_lag = 0.0;
  for (const auto& [_, lag_ms] : rows) max_lag = std::max(max_lag, lag_ms);
  EXPECT_DOUBLE_EQ(max_lag, (kSecondsPerThread - 1) / 1000.0);
}

// ---- ComplianceTracker ----------------------------------------------------

TEST_F(DriverTest, ComplianceTrackerAuditsWindow) {
  ComplianceTracker tracker(/*window_ms=*/10.0);
  // 8 on-time Q1s, 2 late ones, and a very late update.
  for (int i = 0; i < 8; ++i) tracker.Record(obs::ComplexOp(1), 500);
  tracker.Record(obs::ComplexOp(1), 15'000);
  tracker.Record(obs::ComplexOp(1), 20'000);
  tracker.Record(obs::UpdateOp(7), 2'000'000);

  obs::ComplianceSection section = tracker.Finish(/*required=*/0.95);
  EXPECT_EQ(section.scheduled_ops, 11u);
  EXPECT_EQ(section.on_time_ops, 8u);
  EXPECT_NEAR(section.on_time_fraction, 8.0 / 11.0, 1e-12);
  EXPECT_FALSE(section.passed);
  // Worst offender ordering: the 2 s update leads.
  ASSERT_EQ(section.per_op.size(), 2u);
  EXPECT_EQ(section.per_op[0].op, "update.U7");
  EXPECT_EQ(section.per_op[0].late, 1u);
  EXPECT_NEAR(section.per_op[0].max_late_ms, 2000.0, 2000.0 / 16.0);
  EXPECT_EQ(section.per_op[1].op, "complex.Q1");
  EXPECT_EQ(section.per_op[1].scheduled, 10u);
  EXPECT_EQ(section.per_op[1].late, 2u);
  // The histogram accounts for every scheduled op (on-time ones too).
  uint64_t hist_total = 0;
  for (const auto& [_, count] : section.lateness_histogram_ms) {
    hist_total += count;
  }
  EXPECT_EQ(hist_total, section.scheduled_ops);
  // A permissive bar passes the same counts.
  EXPECT_TRUE(tracker.Finish(0.5).passed);
}

// ---- Compliance + trace wired through a real run --------------------------

TEST_F(DriverTest, ThrottledRunProducesComplianceAndTrace) {
  Workload workload = UpdateOnlyWorkload();
  size_t slice = std::min<size_t>(workload.operations.size(), 400);
  std::vector<Operation> ops(workload.operations.begin(),
                             workload.operations.begin() + slice);

  SleepingConnector connector(0);
  obs::TraceBuffer trace;
  DriverConfig config;
  config.num_partitions = 2;
  config.trace = &trace;
  util::TimestampMs span = ops.back().due_time - ops.front().due_time;
  config.acceleration = static_cast<double>(span) / 200.0;
  DriverReport report = RunWorkload(ops, connector, config);

  // Compliance: present, covers every driver op, generous window -> pass.
  ASSERT_TRUE(report.has_compliance);
  EXPECT_EQ(report.compliance.scheduled_ops, ops.size());
  EXPECT_TRUE(report.compliance.passed) << report.compliance.on_time_fraction;
  EXPECT_DOUBLE_EQ(report.compliance.window_ms, 100.0);
  EXPECT_FALSE(report.compliance.per_op.empty());

  // Trace: one event per driver op, all with a schedule attached.
  EXPECT_EQ(trace.recorded(), ops.size());
  for (const obs::TraceEvent& e : trace.Events()) {
    EXPECT_GE(e.sched_ns, 0);
    EXPECT_LE(e.exec_begin_ns, e.end_ns);
  }

  // Unthrottled runs audit nothing (there is no schedule to comply with).
  config.acceleration = 0.0;
  config.trace = nullptr;
  DriverReport unthrottled = RunWorkload(ops, connector, config);
  EXPECT_FALSE(unthrottled.has_compliance);
}

TEST_F(DriverTest, WindowedModeAuditsPerOperation) {
  Workload workload = UpdateOnlyWorkload();
  size_t slice = std::min<size_t>(workload.operations.size(), 400);
  std::vector<Operation> ops(workload.operations.begin(),
                             workload.operations.begin() + slice);

  SleepingConnector connector(0);
  DriverConfig config;
  config.num_partitions = 2;
  config.mode = ExecutionMode::kWindowed;
  util::TimestampMs span = ops.back().due_time - ops.front().due_time;
  config.acceleration = static_cast<double>(span) / 200.0;
  DriverReport report = RunWorkload(ops, connector, config);
  ASSERT_TRUE(report.has_compliance);
  // Windowed pacing holds starts to window boundaries, not op due times,
  // so ops late in a window show lag — but every op must be audited.
  EXPECT_EQ(report.compliance.scheduled_ops, ops.size());
}

}  // namespace
}  // namespace snb::driver
