// In-memory transactional property-graph store — the System Under Test.
//
// The paper benchmarks Sparksee and Virtuoso; this store is the
// from-scratch substitute (see DESIGN.md). It keeps the whole SNB graph in
// adjacency-indexed form:
//   * persons with friend lists (sorted), created messages (in time order,
//     creation dates inline), joined forums and given likes;
//   * forums with member lists and contained root posts;
//   * messages (dense, id-indexed; ids increase with creation time, so the
//     message table is a clustered creation-date index — the locality
//     property discussed in section 3 of the paper);
//   * secondary structures mirroring Virtuoso's foreign-key indices.
//
// Concurrency: single-writer / multi-reader. Writers serialize behind an
// exclusive mutex; the read path depends on the store's ReadConcurrency
// mode:
//
//   * kEpoch (default): readers never touch the writer mutex. ReadLock()
//     pins an epoch (two uncontended atomic ops on a thread-private cache
//     line — see util/epoch.h) and every shared structure is published
//     RCU-style: entity records live at stable addresses in chunked
//     DenseTables, adjacency lists are RcuVectors whose buffers embed
//     their element count, and a record becomes visible only after its
//     `ready` flag is release-stored — *before* the record's id is linked
//     into any adjacency list, so a reader can always resolve every id it
//     can see. Updates are insert-only single statements, which is why
//     these per-object snapshots preserve the paper's observation that
//     "systems providing snapshot isolation behave identically to
//     serializable" for this workload (section 4); DESIGN.md spells out
//     the argument.
//   * kGlobalLock: the pre-epoch behaviour — ReadLock() takes the writer
//     mutex shared. Retained as the ablation baseline for
//     bench_table5_driver_scalability and for tests that want a frozen
//     whole-store snapshot.
//
// Writers validate referential integrity and fail with NotFound when a
// dependency is missing; the workload driver's dependency tracking is what
// makes such failures impossible, and the driver tests assert exactly that.
#ifndef SNB_STORE_GRAPH_STORE_H_
#define SNB_STORE_GRAPH_STORE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "schema/entities.h"
#include "store/dense_table.h"
#include "util/epoch.h"
#include "util/invariant_root.h"
#include "util/mutex.h"
#include "util/rcu_vector.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace snb::store {

/// A friendship adjacency entry.
struct FriendEdge {
  schema::PersonId other = schema::kInvalidId;
  util::TimestampMs since = 0;
};

/// A generic (id, date) adjacency entry (membership, like, created
/// message).
struct DatedEdge {
  uint64_t id = schema::kInvalidId;
  util::TimestampMs date = 0;
};

/// Per-person storage: attributes plus adjacency indexes. `data` is
/// immutable once `ready` is published; adjacency lists keep growing.
struct PersonRecord {
  schema::Person data;
  /// Sorted by `other` (binary-search friend test).
  util::RcuVector<FriendEdge> friends;
  /// Messages created, sorted by (creation date, id) — maintained by
  /// insertion, so the order holds even when the driver applies two of a
  /// creator's messages out of due-time order (different forum
  /// partitions). The date rides inline so date-bounded scans (Q2/Q9)
  /// never touch the message table for candidates they discard.
  util::RcuVector<DatedEdge> messages;
  /// Forums joined, with join dates.
  util::RcuVector<DatedEdge> forums;
  /// Likes given: liked message + like date.
  util::RcuVector<DatedEdge> likes;
  /// Release-published after `data` is filled.
  std::atomic<uint32_t> ready{0};

  bool present() const { return ready.load(std::memory_order_acquire) != 0; }
};

/// Per-forum storage.
struct ForumRecord {
  schema::Forum data;
  /// Members with join dates (insertion order).
  util::RcuVector<DatedEdge> members;
  /// Root posts/photos contained, ascending id.
  util::RcuVector<schema::MessageId> posts;
  std::atomic<uint32_t> ready{0};

  bool present() const { return ready.load(std::memory_order_acquire) != 0; }
};

/// Per-message storage.
struct MessageRecord {
  schema::Message data;
  /// Direct reply comments, ascending id.
  util::RcuVector<schema::MessageId> replies;
  /// Likes received: liker + like date.
  util::RcuVector<DatedEdge> likes;
  std::atomic<uint32_t> ready{0};

  bool present() const { return ready.load(std::memory_order_acquire) != 0; }
};

/// Byte sizes of the store's main structures (Table 8 equivalent).
struct StorageBreakdown {
  uint64_t message_bytes = 0;      // Message table incl. content.
  uint64_t message_content_bytes = 0;
  uint64_t likes_bytes = 0;        // Like edges (both directions).
  uint64_t membership_bytes = 0;   // forum_person edges (both directions).
  uint64_t friends_bytes = 0;      // Knows edges (both directions).
  uint64_t person_bytes = 0;       // Person attributes.
  uint64_t forum_bytes = 0;        // Forum attributes.

  uint64_t Total() const {
    return message_bytes + likes_bytes + membership_bytes + friends_bytes +
           person_bytes + forum_bytes;
  }
};

/// How ReadLock() provides snapshot semantics.
enum class ReadConcurrency {
  /// Lock-free epoch pin; readers scale with threads. Default.
  kEpoch,
  /// Shared mutex; the pre-epoch baseline, kept for ablation and for
  /// callers that need a frozen whole-store snapshot.
  kGlobalLock,
};

/// RAII read snapshot: an epoch pin (always) plus a shared lock in
/// kGlobalLock mode. Record pointers and adjacency Views obtained from
/// the store are valid while the guard lives.
///
/// The guard converts to `const snb::EpochPin&` — the capability token
/// every snapshot-read accessor demands — so the usual call shape is
///
///   store::ReadGuard pin = store.ReadLock();
///   const PersonRecord* p = store.FindPerson(pin, id);
///
/// Guards are obtainable only from GraphStore::ReadLock(), pins only from
/// EpochManager::pin(); there is no default-constructed disengaged state
/// (a moved-from guard is disengaged, but passing the moved-to guard is
/// what the move sites do). kGlobalLock guards also carry a real pin: it
/// costs two uncontended atomics and keeps the token uniform across
/// modes.
class ReadGuard {
 public:
  ReadGuard(ReadGuard&&) noexcept = default;
  ReadGuard& operator=(ReadGuard&&) noexcept = default;

  /// The epoch-pin capability token this guard holds.
  const util::EpochPin& pin() const { return pin_; }
  operator const util::EpochPin&() const { return pin_; }

 private:
  friend class GraphStore;
  explicit ReadGuard(util::EpochPin pin) : pin_(std::move(pin)) {}
  ReadGuard(util::EpochPin pin, std::shared_mutex& mu)
      : pin_(std::move(pin)), lock_(mu) {}

  util::EpochPin pin_;
  std::shared_lock<std::shared_mutex> lock_;
};

/// The store. All read accessors require the caller to hold a guard
/// obtained from ReadLock() for snapshot-consistent reads; the Add*
/// methods are self-contained transactions.
class GraphStore {
 public:
  explicit GraphStore(ReadConcurrency mode = ReadConcurrency::kEpoch)
      : mode_(mode), epoch_(&util::EpochManager::Global()) {}
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  ReadConcurrency read_concurrency() const { return mode_; }

  // ---- Loading & updates (each call is one ACID transaction) ----------

  /// Loads a full bulk dataset. Must be called on an empty store.
  util::Status BulkLoad(const schema::SocialNetwork& network);

  util::Status AddPerson(const schema::Person& person);
  util::Status AddFriendship(const schema::Knows& knows);
  util::Status AddForum(const schema::Forum& forum);
  util::Status AddForumMembership(const schema::ForumMembership& membership);
  /// Posts, photos and comments.
  util::Status AddMessage(const schema::Message& message);
  util::Status AddLike(const schema::Like& like);

  // ---- Read snapshot --------------------------------------------------

  /// Guard for a consistent multi-accessor read; hold it for the duration
  /// of a query. The guard is the EpochPin token the accessors below
  /// require.
  ReadGuard ReadLock() const {
    if (mode_ == ReadConcurrency::kGlobalLock) {
      return ReadGuard(epoch_->pin(), mu_.native());
    }
    return ReadGuard(epoch_->pin());
  }

  // Every snapshot-read accessor takes a `const EpochPin&` purely as a
  // compile-time proof that the caller holds an epoch critical section
  // (or a ReadGuard, which converts); the pin is never inspected at run
  // time, so the token costs nothing.

  /// nullptr when absent.
  const PersonRecord* FindPerson(const util::EpochPin& /*pin*/,
                                 schema::PersonId id) const {
    // Checked by tools/snb_invariants ("pinned_read"): an epoch-pinned
    // accessor must never allocate, lock, sleep, or touch the kernel —
    // a pinned reader that blocks stalls every writer's grace period.
    // (Same for the two accessors below and AreFriends.)
    SNB_INVARIANT_ROOT("pinned_read");
    const PersonRecord* p = persons_.Slot(id);
    return p != nullptr && p->present() ? p : nullptr;
  }
  const ForumRecord* FindForum(const util::EpochPin& /*pin*/,
                               schema::ForumId id) const {
    SNB_INVARIANT_ROOT("pinned_read");
    const ForumRecord* f = forums_.Slot(id);
    return f != nullptr && f->present() ? f : nullptr;
  }
  const MessageRecord* FindMessage(const util::EpochPin& /*pin*/,
                                   schema::MessageId id) const {
    SNB_INVARIANT_ROOT("pinned_read");
    const MessageRecord* m = messages_.Slot(id);
    return m != nullptr && m->present() ? m : nullptr;
  }

  /// True when a and b are friends (binary search on a's friend list).
  bool AreFriends(const util::EpochPin& pin, schema::PersonId a,
                  schema::PersonId b) const;

  /// Number of message ids ever allocated; message ids are < this bound
  /// and ascend with creation date. (Under kEpoch a bound-covered id may
  /// still be in flight — FindMessage returns nullptr for it.)
  schema::MessageId MessageIdBound() const { return messages_.bound(); }

  /// All person ids, ascending (for whole-graph scans in tests/benches).
  std::vector<schema::PersonId> PersonIds(const util::EpochPin& pin) const;
  /// All forum ids, ascending.
  std::vector<schema::ForumId> ForumIds(const util::EpochPin& pin) const;

  uint64_t NumPersons() const {
    return num_persons_.load(std::memory_order_acquire);
  }
  uint64_t NumForums() const {
    return num_forums_.load(std::memory_order_acquire);
  }
  uint64_t NumKnowsEdges() const {
    return num_knows_.load(std::memory_order_acquire);
  }
  uint64_t NumMessages() const {
    return num_messages_.load(std::memory_order_acquire);
  }
  uint64_t NumLikes() const {
    return num_likes_.load(std::memory_order_acquire);
  }
  uint64_t NumMemberships() const {
    return num_memberships_.load(std::memory_order_acquire);
  }

  /// Table 8 equivalent: allocated bytes per major structure. Takes the
  /// writer lock (it needs a quiescent store).
  StorageBreakdown ComputeStorageBreakdown() const;

  /// Occupancy of one entity DenseTable: live records vs slots backed by
  /// allocated chunks vs the id bound. used <= allocated_slots; for sparse
  /// id spaces (forums) allocated_slots << bound.
  struct TableOccupancy {
    uint64_t used = 0;
    uint64_t allocated_slots = 0;
    uint64_t bound = 0;
  };
  TableOccupancy PersonTableStats() const {
    return {NumPersons(), persons_.allocated_slots(), persons_.bound()};
  }
  TableOccupancy ForumTableStats() const {
    return {NumForums(), forums_.allocated_slots(), forums_.bound()};
  }
  TableOccupancy MessageTableStats() const {
    return {NumMessages(), messages_.allocated_slots(), messages_.bound()};
  }

  /// Version of the Knows graph: bumped by every AddFriendship. Cached
  /// derived results over the friendship graph (e.g. recycled 2-hop
  /// neighbourhoods) are valid as long as this does not change.
  uint64_t KnowsVersion() const {
    return knows_version_.load(std::memory_order_acquire);
  }

  /// The manager retired buffers go to; tests drain it between phases.
  util::EpochManager& epoch_manager() const { return *epoch_; }

 private:
  // Ids index chunked tables, so a corrupt giant id must fail loudly
  // instead of allocating a giant directory. Datagen ids are dense and
  // nowhere near this.
  static constexpr uint64_t kMaxEntityId = uint64_t{1} << 40;

  // Writers hold `mu_` exclusively (in both modes). Locked internals —
  // the SNB_REQUIRES annotations make "write without the writer lock" a
  // Clang compile error.
  util::Status AddPersonLocked(const schema::Person& person)
      SNB_REQUIRES(mu_);
  util::Status AddFriendshipLocked(const schema::Knows& knows)
      SNB_REQUIRES(mu_);
  util::Status AddForumLocked(const schema::Forum& forum) SNB_REQUIRES(mu_);
  util::Status AddForumMembershipLocked(
      const schema::ForumMembership& membership) SNB_REQUIRES(mu_);
  util::Status AddMessageLocked(const schema::Message& message)
      SNB_REQUIRES(mu_);
  util::Status AddLikeLocked(const schema::Like& like) SNB_REQUIRES(mu_);

  PersonRecord* FindPersonMutable(schema::PersonId id) SNB_REQUIRES(mu_) {
    PersonRecord* p = persons_.MutableSlot(id);
    return p != nullptr && p->present() ? p : nullptr;
  }

  const ReadConcurrency mode_;
  util::EpochManager* const epoch_;

  /// Writer capability. The DenseTables below are deliberately NOT
  /// SNB_GUARDED_BY(mu_): kEpoch readers access them lock-free under an
  /// EpochPin (the RCU publication protocol in the file comment), which
  /// the mutex analysis cannot model — the EpochPin token parameter on
  /// the read accessors is the compile-time check for that side.
  mutable util::SharedMutex mu_;
  DenseTable<PersonRecord> persons_;
  /// Sparse id space (owner_id * slots_per_person + slot); absent chunks
  /// cost one null directory entry.
  DenseTable<ForumRecord> forums_;
  DenseTable<MessageRecord> messages_;

  std::atomic<uint64_t> knows_version_{0};
  std::atomic<uint64_t> num_persons_{0};
  std::atomic<uint64_t> num_forums_{0};
  std::atomic<uint64_t> num_knows_{0};
  std::atomic<uint64_t> num_messages_{0};
  std::atomic<uint64_t> num_likes_{0};
  std::atomic<uint64_t> num_memberships_{0};
};

}  // namespace snb::store

#endif  // SNB_STORE_GRAPH_STORE_H_
