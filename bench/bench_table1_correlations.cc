// Table 1 reproduction: attribute value correlations ("left determines
// right"). For each correlation rule the bench measures the effect size in
// the generated data against an uncorrelated baseline.
#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "bench/bench_util.h"

namespace snb::bench {
namespace {

using schema::Message;
using schema::MessageKind;
using schema::Person;

void Run() {
  PrintHeader("Table 1 — attribute value correlations (measured effects)");
  std::unique_ptr<BenchWorld> world = MakeWorld(kMediumSf, false, false);
  const auto& persons = world->dataset.bulk.persons;
  const auto& messages = world->dataset.bulk.messages;
  const schema::Dictionaries& dict = *world->dictionaries;

  std::unordered_map<uint64_t, const Person*> person_by_id;
  for (const Person& p : persons) person_by_id[p.id] = &p;
  auto country_of = [&](const Person& p) {
    return dict.CountryOfCity(p.city_id);
  };

  // -- location -> firstName: name distributions differ per country. -------
  {
    std::map<schema::PlaceId, std::map<std::string, int>> names;
    for (const Person& p : persons) ++names[country_of(p)][p.first_name];
    // Compare top name of the two most populous countries in the data.
    std::vector<std::pair<int, schema::PlaceId>> sizes;
    for (auto& [c, m] : names) {
      int total = 0;
      for (auto& [_, n] : m) total += n;
      sizes.push_back({total, c});
    }
    std::sort(sizes.rbegin(), sizes.rend());
    auto top_name = [&](schema::PlaceId c) {
      std::string best;
      int best_n = -1;
      for (auto& [name, n] : names[c]) {
        if (n > best_n) {
          best_n = n;
          best = name;
        }
      }
      return best;
    };
    if (sizes.size() >= 2) {
      std::string a = top_name(sizes[0].second);
      std::string b = top_name(sizes[1].second);
      PrintKv("location -> firstName",
              "top name '" + a + "' (" +
                  dict.countries()[sizes[0].second].name + ") vs '" + b +
                  "' (" + dict.countries()[sizes[1].second].name + ")" +
                  (a != b ? "  [DIFFER: correlated]" : "  [same]"));
    }
  }

  // -- location -> university (nearby). ------------------------------------
  {
    int local = 0, total = 0;
    for (const Person& p : persons) {
      if (p.university_id == schema::kInvalidId32) continue;
      ++total;
      schema::PlaceId uni_city = dict.universities()[p.university_id].city_id;
      if (dict.CountryOfCity(uni_city) == country_of(p)) ++local;
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%.1f%% study in home country (uncorrelated: ~3%%)",
                  100.0 * local / std::max(total, 1));
    PrintKv("location -> university", buf);
  }

  // -- location -> company (in country). ------------------------------------
  {
    int local = 0, total = 0;
    for (const Person& p : persons) {
      if (p.company_id == schema::kInvalidId32) continue;
      ++total;
      if (dict.companies()[p.company_id].country_id == country_of(p)) {
        ++local;
      }
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%.1f%% work in home country (uncorrelated: ~3%%)",
                  100.0 * local / std::max(total, 1));
    PrintKv("location -> company", buf);
  }

  // -- location -> languages (native first). --------------------------------
  {
    int native_first = 0;
    for (const Person& p : persons) {
      if (!p.languages.empty() &&
          p.languages[0] == dict.NativeLanguage(country_of(p))) {
        ++native_first;
      }
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.1f%% speak their country's language",
                  100.0 * native_first / persons.size());
    PrintKv("location -> languages", buf);
  }

  // -- employer -> email. ----------------------------------------------------
  {
    int with_company_mail = 0, employed = 0;
    for (const Person& p : persons) {
      if (p.company_id == schema::kInvalidId32) continue;
      ++employed;
      const std::string& company = dict.companies()[p.company_id].name;
      for (const std::string& e : p.emails) {
        if (e.find("@" + company) != std::string::npos) {
          ++with_company_mail;
          break;
        }
      }
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.1f%% of employed have @employer mail",
                  100.0 * with_company_mail / std::max(employed, 1));
    PrintKv("person.employer -> person.email", buf);
  }

  // -- interests -> post topic. ----------------------------------------------
  {
    uint64_t match = 0, total = 0;
    for (const Message& m : messages) {
      if (m.kind != MessageKind::kPost || m.tags.empty()) continue;
      auto it = person_by_id.find(m.creator_id);
      if (it == person_by_id.end()) continue;
      ++total;
      const Person& p = *it->second;
      if (std::find(p.interests.begin(), p.interests.end(), m.tags[0]) !=
          p.interests.end()) {
        ++match;
      }
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%.1f%% of posts are about a creator interest",
                  100.0 * match / std::max<uint64_t>(total, 1));
    PrintKv("person.interests -> post.topic", buf);
  }

  // -- post.topic -> post text (vocabulary overlap). ---------------------------
  {
    // Average pairwise shared-top-word rate for same-topic vs cross-topic.
    std::map<schema::TagId, std::map<std::string, int>> vocab;
    for (const Message& m : messages) {
      if (m.kind != MessageKind::kPost || m.tags.empty()) continue;
      std::map<std::string, int>& words = vocab[m.tags[0]];
      size_t pos = 0;
      while (pos < m.content.size()) {
        size_t space = m.content.find(' ', pos);
        if (space == std::string::npos) space = m.content.size();
        ++words[m.content.substr(pos, space - pos)];
        pos = space + 1;
      }
    }
    PrintKv("post.topic -> post.text",
            "per-topic vocabularies (word ranks permuted by topic)");
  }

  // -- photo location matches coordinates. -------------------------------------
  {
    int matched = 0, photos = 0;
    for (const Message& m : messages) {
      if (m.kind != MessageKind::kPhoto) continue;
      ++photos;
      const schema::Country& c = dict.countries()[m.country_id];
      if (std::abs(m.latitude - c.latitude) <= 3.0 &&
          std::abs(m.longitude - c.longitude) <= 3.0) {
        ++matched;
      }
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%.1f%% of photos geo-match their country",
                  100.0 * matched / std::max(photos, 1));
    PrintKv("post.photoLocation -> lat/long", buf);
  }

  // -- time correlations. --------------------------------------------------------
  {
    bool ok = true;
    std::unordered_map<uint64_t, util::TimestampMs> created;
    for (const Person& p : persons) {
      if (p.birthday >= p.creation_date) ok = false;
      created[p.id] = p.creation_date;
    }
    for (const schema::Forum& f : world->dataset.bulk.forums) {
      if (f.creation_date <= created[f.moderator_id]) ok = false;
    }
    std::unordered_map<uint64_t, util::TimestampMs> msg_date;
    for (const Message& m : messages) msg_date[m.id] = m.creation_date;
    for (const Message& m : messages) {
      if (m.creation_date <= created[m.creator_id]) ok = false;
      if (m.kind == MessageKind::kComment &&
          m.creation_date <= msg_date[m.reply_to_id]) {
        ok = false;
      }
    }
    PrintKv("time correlations (birth < join < forum < post < comment)",
            ok ? "ALL HOLD" : "VIOLATED");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
