#include "datagen/update_stream.h"

#include <algorithm>
#include <unordered_map>

namespace snb::datagen {
namespace {

using schema::SocialNetwork;
using util::TimestampMs;

}  // namespace

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kAddPerson:
      return "U1 AddPerson";
    case UpdateKind::kAddLikePost:
      return "U2 AddLikePost";
    case UpdateKind::kAddLikeComment:
      return "U3 AddLikeComment";
    case UpdateKind::kAddForum:
      return "U4 AddForum";
    case UpdateKind::kAddForumMembership:
      return "U5 AddForumMembership";
    case UpdateKind::kAddPost:
      return "U6 AddPost";
    case UpdateKind::kAddComment:
      return "U7 AddComment";
    case UpdateKind::kAddFriendship:
      return "U8 AddFriendship";
  }
  return "Unknown";
}

SplitResult SplitAtTimestamp(SocialNetwork&& network,
                             TimestampMs split_time) {
  SplitResult result;
  std::vector<UpdateOperation>& updates = result.updates;
  SocialNetwork& bulk = result.bulk;

  // Creation dates needed for dependency_time computation.
  std::unordered_map<uint64_t, TimestampMs> person_created;
  std::unordered_map<uint64_t, TimestampMs> forum_created;
  std::unordered_map<uint64_t, TimestampMs> message_created;
  std::unordered_map<uint64_t, schema::MessageKind> message_kind;
  std::unordered_map<uint64_t, schema::ForumId> message_forum;
  person_created.reserve(network.persons.size());
  for (const schema::Person& p : network.persons) {
    person_created[p.id] = p.creation_date;
  }
  for (const schema::Forum& f : network.forums) {
    forum_created[f.id] = f.creation_date;
  }
  message_created.reserve(network.messages.size());
  for (const schema::Message& m : network.messages) {
    message_created[m.id] = m.creation_date;
    message_kind[m.id] = m.kind;
    message_forum[m.id] = m.forum_id;
  }

  for (schema::Person& p : network.persons) {
    if (p.creation_date < split_time) {
      bulk.persons.push_back(std::move(p));
    } else {
      UpdateOperation op;
      op.kind = UpdateKind::kAddPerson;
      op.due_time = p.creation_date;
      op.dependency_time = 0;
      op.payload = std::move(p);
      updates.push_back(std::move(op));
    }
  }
  for (schema::Knows& k : network.knows) {
    if (k.creation_date < split_time) {
      bulk.knows.push_back(k);
    } else {
      UpdateOperation op;
      op.kind = UpdateKind::kAddFriendship;
      op.due_time = k.creation_date;
      op.dependency_time = std::max(person_created[k.person1_id],
                                    person_created[k.person2_id]);
      op.person_dependency_time = op.dependency_time;
      op.payload = k;
      updates.push_back(std::move(op));
    }
  }
  for (schema::Forum& f : network.forums) {
    if (f.creation_date < split_time) {
      bulk.forums.push_back(std::move(f));
    } else {
      UpdateOperation op;
      op.kind = UpdateKind::kAddForum;
      op.due_time = f.creation_date;
      op.dependency_time = person_created[f.moderator_id];
      op.person_dependency_time = op.dependency_time;
      op.forum_partition = f.id;
      op.payload = std::move(f);
      updates.push_back(std::move(op));
    }
  }
  for (schema::ForumMembership& fm : network.memberships) {
    if (fm.join_date < split_time) {
      bulk.memberships.push_back(fm);
    } else {
      UpdateOperation op;
      op.kind = UpdateKind::kAddForumMembership;
      op.due_time = fm.join_date;
      op.dependency_time =
          std::max(person_created[fm.person_id], forum_created[fm.forum_id]);
      op.person_dependency_time = person_created[fm.person_id];
      op.forum_partition = fm.forum_id;
      op.payload = fm;
      updates.push_back(std::move(op));
    }
  }
  for (schema::Message& m : network.messages) {
    if (m.creation_date < split_time) {
      bulk.messages.push_back(std::move(m));
    } else {
      UpdateOperation op;
      op.due_time = m.creation_date;
      op.forum_partition = m.forum_id;
      op.person_dependency_time = person_created[m.creator_id];
      if (m.kind == schema::MessageKind::kComment) {
        op.kind = UpdateKind::kAddComment;
        op.dependency_time = std::max(op.person_dependency_time,
                                      message_created[m.reply_to_id]);
      } else {
        op.kind = UpdateKind::kAddPost;
        op.dependency_time = std::max(op.person_dependency_time,
                                      forum_created[m.forum_id]);
      }
      op.payload = std::move(m);
      updates.push_back(std::move(op));
    }
  }
  for (schema::Like& l : network.likes) {
    if (l.creation_date < split_time) {
      bulk.likes.push_back(l);
    } else {
      UpdateOperation op;
      op.kind = message_kind[l.message_id] == schema::MessageKind::kComment
                    ? UpdateKind::kAddLikeComment
                    : UpdateKind::kAddLikePost;
      op.due_time = l.creation_date;
      op.person_dependency_time = person_created[l.person_id];
      op.dependency_time = std::max(op.person_dependency_time,
                                    message_created[l.message_id]);
      // Likes belong to the discussion tree of the liked message's forum
      // ("posts and likes form a tree, rooted at the forum").
      op.forum_partition = message_forum[l.message_id];
      op.payload = l;
      updates.push_back(std::move(op));
    }
  }

  std::stable_sort(updates.begin(), updates.end(),
                   [](const UpdateOperation& a, const UpdateOperation& b) {
                     return a.due_time < b.due_time;
                   });
  return result;
}

}  // namespace snb::datagen
