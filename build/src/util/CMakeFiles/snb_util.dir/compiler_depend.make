# Empty compiler generated dependencies file for snb_util.
# This may be replaced when dependencies are built.
