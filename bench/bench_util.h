// Shared setup and table-printing helpers for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md for the index) and prints it in a paper-like layout, plus the
// measured reproduction notes consumed by EXPERIMENTS.md.
#ifndef SNB_BENCH_BENCH_UTIL_H_
#define SNB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "exec/exec_mode.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "schema/dictionaries.h"
#include "store/graph_store.h"

namespace snb::bench {

/// Mini scale factors used throughout the benches. The paper's SF is GB of
/// CSV; these laptop-scale factors keep the same person-per-SF ratio.
inline constexpr double kSmallSf = 0.05;   // ~300 persons.
inline constexpr double kMediumSf = 0.15;  // ~900 persons.
inline constexpr double kLargeSf = 0.4;    // ~2400 persons.

/// A generated dataset plus a bulk-loaded store, shared by query benches.
struct BenchWorld {
  explicit BenchWorld(
      store::ReadConcurrency mode = store::ReadConcurrency::kEpoch)
      : store(mode) {}

  datagen::Dataset dataset;
  std::unique_ptr<schema::Dictionaries> dictionaries;
  store::GraphStore store;
  std::vector<schema::PlaceId> city_country;
  std::vector<schema::PlaceId> company_country;
};

/// Generates a world at the given mini scale factor. When `load_updates` is
/// true the update stream is applied on top of the bulk load (full final
/// state); otherwise the store holds the 32-month bulk image. `read_mode`
/// picks the store's snapshot mechanism (epoch vs. global-lock ablation).
std::unique_ptr<BenchWorld> MakeWorld(
    double scale_factor, bool load_updates = true,
    bool split_update_stream = true,
    store::ReadConcurrency read_mode = store::ReadConcurrency::kEpoch);

/// Prints a horizontal rule and a centered title.
void PrintHeader(const std::string& title);

/// Prints "label: value" aligned rows.
void PrintKv(const std::string& label, const std::string& value);

/// Simple ASCII bar for distribution plots: `value` scaled to `max_value`
/// over `width` characters.
std::string Bar(double value, double max_value, int width = 50);

/// Parses a `--exec=scalar|batched` style value and installs it as the
/// process-wide default engine; false (with a stderr message) on an
/// unknown value. Benches and tools share this so the flag spelling stays
/// uniform.
bool SetExecModeFromFlag(const std::string& value);

/// Stamps the report with the engine that produced it (report.json
/// "exec_mode", schema snb-report-v3 superset field).
inline void StampExecMode(obs::RunReport* report) {
  report->exec_mode = exec::ExecModeName(exec::DefaultExecMode());
}

/// Handles a `--perf-counters` flag: probes and enables the
/// hardware-counter backend and prints the outcome. Safe where
/// perf_event_open is denied — the no-op backend keeps the bench
/// running counter-less.
void EnablePerfCounters();

/// Handles a `--cpu-profile=PATH` flag: probes and enables the sampling
/// CPU profiler and prints the outcome. Safe where per-thread POSIX
/// timers are unavailable — the no-op backend keeps the bench running
/// sample-less (the folded artifact is then empty but still written).
void EnableCpuProfiler();

/// Stamps the profiler section (schema snb-report-v5 superset field) from
/// a collected profile and writes the folded-stack artifact to `path`
/// when non-empty. Call after the measured region, before WriteReport.
void StampProfile(obs::RunReport* report, const std::string& path);

/// Stamps build provenance (git SHA, compiler, SIMD, sanitizer) and —
/// once the perf subsystem has been enabled — the perf backend state
/// into the report (schema snb-report-v4 superset fields).
inline void StampProvenance(obs::RunReport* report) {
  report->has_provenance = true;
  report->provenance = obs::BuildProvenance();
  if (obs::perf::ActiveBackend() != obs::perf::Backend::kDisabled) {
    report->has_perf = true;
    report->perf = obs::CurrentPerfSection();
  }
}

}  // namespace snb::bench

#endif  // SNB_BENCH_BENCH_UTIL_H_
