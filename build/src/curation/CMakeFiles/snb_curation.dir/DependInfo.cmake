
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/curation/parameter_curation.cc" "src/curation/CMakeFiles/snb_curation.dir/parameter_curation.cc.o" "gcc" "src/curation/CMakeFiles/snb_curation.dir/parameter_curation.cc.o.d"
  "/root/repo/src/curation/pc_table.cc" "src/curation/CMakeFiles/snb_curation.dir/pc_table.cc.o" "gcc" "src/curation/CMakeFiles/snb_curation.dir/pc_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/snb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/snb_schema.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
