// In-memory transactional property-graph store — the System Under Test.
//
// The paper benchmarks Sparksee and Virtuoso; this store is the
// from-scratch substitute (see DESIGN.md). It keeps the whole SNB graph in
// adjacency-indexed form:
//   * persons with friend lists (sorted), created messages (in time order),
//     joined forums and given likes;
//   * forums with member lists and contained root posts;
//   * messages (dense, id == index; ids increase with creation time, so the
//     message table is a clustered creation-date index — the locality
//     property discussed in section 3 of the paper);
//   * secondary structures mirroring Virtuoso's foreign-key indices.
//
// Concurrency: single-writer / multi-reader via a shared mutex. Updates are
// insert-only, so exclusive writes + shared-lock read snapshots provide
// serializable behaviour ("systems providing snapshot isolation behave
// identically to serializable" for this workload — section 4). Writers
// validate referential integrity and fail with NotFound when a dependency
// is missing; the workload driver's dependency tracking is what makes such
// failures impossible, and the driver tests assert exactly that.
#ifndef SNB_STORE_GRAPH_STORE_H_
#define SNB_STORE_GRAPH_STORE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "schema/entities.h"
#include "util/status.h"

namespace snb::store {

/// A friendship adjacency entry.
struct FriendEdge {
  schema::PersonId other = schema::kInvalidId;
  util::TimestampMs since = 0;
};

/// A generic (id, date) adjacency entry (membership, like).
struct DatedEdge {
  uint64_t id = schema::kInvalidId;
  util::TimestampMs date = 0;
};

/// Per-person storage: attributes plus adjacency indexes.
struct PersonRecord {
  schema::Person data;
  /// Sorted by `other` (binary-search friend test).
  std::vector<FriendEdge> friends;
  /// Messages created, ascending id (== ascending creation date).
  std::vector<schema::MessageId> messages;
  /// Forums joined, with join dates.
  std::vector<DatedEdge> forums;
  /// Likes given: liked message + like date.
  std::vector<DatedEdge> likes;
};

/// Per-forum storage.
struct ForumRecord {
  schema::Forum data;
  /// Members with join dates (insertion order).
  std::vector<DatedEdge> members;
  /// Root posts/photos contained, ascending id.
  std::vector<schema::MessageId> posts;
};

/// Per-message storage.
struct MessageRecord {
  schema::Message data;
  /// Direct reply comments, ascending id.
  std::vector<schema::MessageId> replies;
  /// Likes received: liker + like date.
  std::vector<DatedEdge> likes;

  bool present() const { return data.creator_id != schema::kInvalidId; }
};

/// Byte sizes of the store's main structures (Table 8 equivalent).
struct StorageBreakdown {
  uint64_t message_bytes = 0;      // Message table incl. content.
  uint64_t message_content_bytes = 0;
  uint64_t likes_bytes = 0;        // Like edges (both directions).
  uint64_t membership_bytes = 0;   // forum_person edges (both directions).
  uint64_t friends_bytes = 0;      // Knows edges (both directions).
  uint64_t person_bytes = 0;       // Person attributes.
  uint64_t forum_bytes = 0;        // Forum attributes.

  uint64_t Total() const {
    return message_bytes + likes_bytes + membership_bytes + friends_bytes +
           person_bytes + forum_bytes;
  }
};

/// The store. All read accessors require the caller to hold a lock obtained
/// from ReadLock() (shared) for snapshot-consistent multi-call reads; the
/// Add* methods are self-contained transactions.
class GraphStore {
 public:
  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // ---- Loading & updates (each call is one ACID transaction) ----------

  /// Loads a full bulk dataset. Must be called on an empty store.
  util::Status BulkLoad(const schema::SocialNetwork& network);

  util::Status AddPerson(const schema::Person& person);
  util::Status AddFriendship(const schema::Knows& knows);
  util::Status AddForum(const schema::Forum& forum);
  util::Status AddForumMembership(const schema::ForumMembership& membership);
  /// Posts, photos and comments.
  util::Status AddMessage(const schema::Message& message);
  util::Status AddLike(const schema::Like& like);

  // ---- Read snapshot --------------------------------------------------

  /// Shared lock for a consistent multi-accessor read; hold it for the
  /// duration of a query.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(mu_);
  }

  /// nullptr when absent.
  const PersonRecord* FindPerson(schema::PersonId id) const;
  const ForumRecord* FindForum(schema::ForumId id) const;
  const MessageRecord* FindMessage(schema::MessageId id) const;

  /// True when a and b are friends (binary search on a's friend list).
  bool AreFriends(schema::PersonId a, schema::PersonId b) const;

  /// Number of messages ever stored; message ids are < this bound and
  /// ascend with creation date.
  schema::MessageId MessageIdBound() const {
    return static_cast<schema::MessageId>(messages_.size());
  }

  /// All person ids, ascending (for whole-graph scans in tests/benches).
  std::vector<schema::PersonId> PersonIds() const;
  /// All forum ids, ascending.
  std::vector<schema::ForumId> ForumIds() const;

  uint64_t NumPersons() const { return persons_.size(); }
  uint64_t NumForums() const { return forums_.size(); }
  uint64_t NumKnowsEdges() const { return num_knows_; }
  uint64_t NumMessages() const { return num_messages_; }
  uint64_t NumLikes() const { return num_likes_; }
  uint64_t NumMemberships() const { return num_memberships_; }

  /// Table 8 equivalent: allocated bytes per major structure.
  StorageBreakdown ComputeStorageBreakdown() const;

  /// Version of the Knows graph: bumped by every AddFriendship. Cached
  /// derived results over the friendship graph (e.g. recycled 2-hop
  /// neighbourhoods) are valid as long as this does not change.
  uint64_t KnowsVersion() const {
    return knows_version_.load(std::memory_order_acquire);
  }

 private:
  // Writers hold `mu_` exclusively. Unlocked internals below.
  util::Status AddPersonLocked(const schema::Person& person);
  util::Status AddFriendshipLocked(const schema::Knows& knows);
  util::Status AddForumLocked(const schema::Forum& forum);
  util::Status AddForumMembershipLocked(
      const schema::ForumMembership& membership);
  util::Status AddMessageLocked(const schema::Message& message);
  util::Status AddLikeLocked(const schema::Like& like);

  PersonRecord* FindPersonMutable(schema::PersonId id);

  mutable std::shared_mutex mu_;
  std::unordered_map<schema::PersonId, PersonRecord> persons_;
  std::unordered_map<schema::ForumId, ForumRecord> forums_;
  /// Dense by id; absent slots have present() == false.
  std::vector<MessageRecord> messages_;
  std::atomic<uint64_t> knows_version_{0};
  uint64_t num_knows_ = 0;
  uint64_t num_messages_ = 0;
  uint64_t num_likes_ = 0;
  uint64_t num_memberships_ = 0;
};

}  // namespace snb::store

#endif  // SNB_STORE_GRAPH_STORE_H_
