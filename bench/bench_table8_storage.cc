// Table 8 reproduction: size of the largest storage structures after bulk
// load. The paper reports Virtuoso's three largest tables (post, likes,
// forum_person) and their largest indices; we report the equivalent
// breakdown of snb::store.
#include <cstdio>

#include "bench/bench_util.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("Table 8 — largest storage structures after bulk load");
  std::unique_ptr<BenchWorld> world = MakeWorld(kLargeSf, false);
  store::StorageBreakdown b = world->store.ComputeStorageBreakdown();

  auto mb = [](uint64_t bytes) { return bytes / (1024.0 * 1024.0); };
  std::printf("  %-34s %12s\n", "Structure", "Size (MB)");
  std::printf("  %-34s %12.2f\n", "message table (post/comment/photo)",
              mb(b.message_bytes));
  std::printf("  %-34s %12.2f\n", "  of which content",
              mb(b.message_content_bytes));
  std::printf("  %-34s %12.2f\n", "likes edges (both directions)",
              mb(b.likes_bytes));
  std::printf("  %-34s %12.2f\n", "forum_person memberships",
              mb(b.membership_bytes));
  std::printf("  %-34s %12.2f\n", "knows edges", mb(b.friends_bytes));
  std::printf("  %-34s %12.2f\n", "person attributes", mb(b.person_bytes));
  std::printf("  %-34s %12.2f\n", "forum attributes", mb(b.forum_bytes));
  std::printf("  %-34s %12.2f\n", "TOTAL", mb(b.Total()));
  std::printf("\n  CSV-GB equivalent of this dataset: %.4f GB\n",
              world->dataset.stats.csv_bytes / 1e9);
  std::printf(
      "\n  Paper (Virtuoso,SF300): post 76.8GB (content index 41.7GB),\n"
      "  likes 23.6GB, forum_person 9.3GB — of 138GB total.\n"
      "  Shape to check: the message table dominates (content is the bulk\n"
      "  of it), followed by likes, then memberships.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
