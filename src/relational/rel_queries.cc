#include "relational/rel_queries.h"

#include <algorithm>
#include <ctime>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>

namespace snb::rel {
namespace {

using schema::MessageKind;
using schema::TagId;

std::vector<PersonId> FriendIdsLocked(const RelationalDb& db,
                                      PersonId start) {
  std::vector<PersonId> out;
  auto [lo, hi] = db.FriendsOf(start);
  for (const KnowsRow* k = lo; k != hi; ++k) out.push_back(k->dst);
  return out;
}

std::vector<PersonId> TwoHopCircleLocked(const RelationalDb& db,
                                         PersonId start) {
  std::vector<PersonId> out;
  std::unordered_set<PersonId> seen{start};
  auto [lo, hi] = db.FriendsOf(start);
  for (const KnowsRow* k = lo; k != hi; ++k) {
    if (seen.insert(k->dst).second) out.push_back(k->dst);
  }
  size_t direct = out.size();
  for (size_t i = 0; i < direct; ++i) {
    auto [flo, fhi] = db.FriendsOf(out[i]);
    for (const KnowsRow* k = flo; k != fhi; ++k) {
      if (seen.insert(k->dst).second) out.push_back(k->dst);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void MonthDayOf(TimestampMs ts, int* month, int* day) {
  std::time_t secs = static_cast<std::time_t>(ts / util::kMillisPerSecond);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  *month = tm_utc.tm_mon + 1;
  *day = tm_utc.tm_mday;
}

}  // namespace

std::vector<PersonId> TwoHopCircle(const RelationalDb& db, PersonId start) {
  auto lock = db.ReadLock();
  return TwoHopCircleLocked(db, start);
}

std::vector<Q1Result> Query1(const RelationalDb& db, PersonId start,
                             const std::string& first_name, int limit) {
  auto lock = db.ReadLock();
  std::vector<Q1Result> results;
  if (db.FindPerson(start) == nullptr) return results;
  std::unordered_set<PersonId> visited{start};
  std::vector<PersonId> frontier{start};
  for (uint32_t distance = 1; distance <= 3 && !frontier.empty();
       ++distance) {
    std::vector<PersonId> next;
    for (PersonId pid : frontier) {
      auto [lo, hi] = db.FriendsOf(pid);
      for (const KnowsRow* k = lo; k != hi; ++k) {
        if (!visited.insert(k->dst).second) continue;
        next.push_back(k->dst);
        const schema::Person* p = db.FindPerson(k->dst);
        if (p != nullptr && p->first_name == first_name) {
          results.push_back({k->dst, distance, p->last_name, p->city_id,
                             p->university_id, p->company_id});
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(results.begin(), results.end(),
            [](const Q1Result& a, const Q1Result& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.last_name != b.last_name) return a.last_name < b.last_name;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

std::vector<Q2Result> Query2(const RelationalDb& db, PersonId start,
                             TimestampMs max_date, int limit) {
  auto lock = db.ReadLock();
  std::vector<Q2Result> candidates;
  for (PersonId fid : FriendIdsLocked(db, start)) {
    auto [lo, hi] = db.MessagesBy(fid);
    // Messages are id-ascending == date-ascending: scan from the tail.
    int taken = 0;
    for (const CreatorIndexRow* it = hi; it != lo && taken < limit;) {
      --it;
      const schema::Message* m = db.FindMessage(it->message);
      if (m == nullptr) continue;
      if (m->creation_date > max_date) continue;
      candidates.push_back({m->id, fid, m->creation_date});
      ++taken;
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Q2Result& a, const Q2Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (static_cast<int>(candidates.size()) > limit) candidates.resize(limit);
  return candidates;
}

std::vector<Q3Result> Query3(const RelationalDb& db, PersonId start,
                             const std::vector<schema::PlaceId>& city_country,
                             schema::PlaceId country_x,
                             schema::PlaceId country_y,
                             TimestampMs start_date, int duration_days,
                             int limit) {
  auto lock = db.ReadLock();
  TimestampMs end_date = start_date + duration_days * util::kMillisPerDay;
  std::vector<Q3Result> results;
  for (PersonId pid : TwoHopCircleLocked(db, start)) {
    const schema::Person* p = db.FindPerson(pid);
    if (p == nullptr) continue;
    if (p->city_id < city_country.size()) {
      schema::PlaceId home = city_country[p->city_id];
      if (home == country_x || home == country_y) continue;
    }
    uint32_t count_x = 0, count_y = 0;
    auto [lo, hi] = db.MessagesBy(pid);
    for (const CreatorIndexRow* it = lo; it != hi; ++it) {
      const schema::Message* m = db.FindMessage(it->message);
      if (m == nullptr || m->creation_date < start_date ||
          m->creation_date >= end_date) {
        continue;
      }
      if (m->country_id == country_x) ++count_x;
      if (m->country_id == country_y) ++count_y;
    }
    if (count_x > 0 && count_y > 0) results.push_back({pid, count_x, count_y});
  }
  std::sort(results.begin(), results.end(),
            [](const Q3Result& a, const Q3Result& b) {
              uint64_t ta = a.count_x + a.count_y;
              uint64_t tb = b.count_x + b.count_y;
              if (ta != tb) return ta > tb;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

std::vector<Q4Result> Query4(const RelationalDb& db, PersonId start,
                             TimestampMs start_date, int duration_days,
                             int limit) {
  auto lock = db.ReadLock();
  TimestampMs end_date = start_date + duration_days * util::kMillisPerDay;
  std::unordered_map<TagId, uint32_t> in_window;
  std::unordered_set<TagId> before;
  for (PersonId fid : FriendIdsLocked(db, start)) {
    auto [lo, hi] = db.MessagesBy(fid);
    for (const CreatorIndexRow* it = lo; it != hi; ++it) {
      const schema::Message* m = db.FindMessage(it->message);
      if (m == nullptr || m->kind == MessageKind::kComment) continue;
      if (m->creation_date >= end_date) break;
      if (m->creation_date < start_date) {
        for (TagId t : m->tags) before.insert(t);
      } else {
        for (TagId t : m->tags) ++in_window[t];
      }
    }
  }
  std::vector<Q4Result> results;
  for (auto [tag, count] : in_window) {
    if (before.count(tag) == 0) results.push_back({tag, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q4Result& a, const Q4Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.tag < b.tag;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

std::vector<Q5Result> Query5(const RelationalDb& db, PersonId start,
                             TimestampMs min_date, int limit) {
  auto lock = db.ReadLock();
  std::vector<PersonId> circle = TwoHopCircleLocked(db, start);
  std::unordered_set<PersonId> circle_set(circle.begin(), circle.end());
  std::unordered_set<ForumId> new_forums;
  for (PersonId pid : circle) {
    auto [lo, hi] = db.ForumsOf(pid);
    for (const MemberRow* it = lo; it != hi; ++it) {
      if (it->date > min_date) new_forums.insert(it->forum);
    }
  }
  std::vector<Q5Result> results;
  results.reserve(new_forums.size());
  for (ForumId fid : new_forums) {
    uint32_t count = 0;
    auto [lo, hi] = db.PostsIn(fid);
    for (const ForumPostRow* it = lo; it != hi; ++it) {
      const schema::Message* m = db.FindMessage(it->post);
      if (m != nullptr && circle_set.count(m->creator_id) > 0) ++count;
    }
    results.push_back({fid, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q5Result& a, const Q5Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.forum_id < b.forum_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

std::vector<Q6Result> Query6(const RelationalDb& db, PersonId start,
                             TagId tag, int limit) {
  auto lock = db.ReadLock();
  std::unordered_map<TagId, uint32_t> co_counts;
  for (PersonId pid : TwoHopCircleLocked(db, start)) {
    auto [lo, hi] = db.MessagesBy(pid);
    for (const CreatorIndexRow* it = lo; it != hi; ++it) {
      const schema::Message* m = db.FindMessage(it->message);
      if (m == nullptr || m->kind == MessageKind::kComment) continue;
      bool has_tag = false;
      for (TagId t : m->tags) {
        if (t == tag) {
          has_tag = true;
          break;
        }
      }
      if (!has_tag) continue;
      for (TagId t : m->tags) {
        if (t != tag) ++co_counts[t];
      }
    }
  }
  std::vector<Q6Result> results;
  for (auto [t, c] : co_counts) results.push_back({t, c});
  std::sort(results.begin(), results.end(),
            [](const Q6Result& a, const Q6Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.tag < b.tag;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

std::vector<Q7Result> Query7(const RelationalDb& db, PersonId start,
                             int limit) {
  auto lock = db.ReadLock();
  std::vector<Q7Result> likes;
  auto [mlo, mhi] = db.MessagesBy(start);
  for (const CreatorIndexRow* it = mlo; it != mhi; ++it) {
    const schema::Message* m = db.FindMessage(it->message);
    if (m == nullptr) continue;
    auto [llo, lhi] = db.LikesOf(it->message);
    for (const LikeRow* l = llo; l != lhi; ++l) {
      Q7Result r;
      r.liker_id = l->person;
      r.message_id = it->message;
      r.like_date = l->date;
      r.latency_minutes =
          (l->date - m->creation_date) / util::kMillisPerMinute;
      r.is_outside_friendship = !db.AreFriends(start, l->person);
      likes.push_back(r);
    }
  }
  std::sort(likes.begin(), likes.end(),
            [](const Q7Result& a, const Q7Result& b) {
              if (a.like_date != b.like_date) return a.like_date > b.like_date;
              return a.liker_id < b.liker_id;
            });
  if (static_cast<int>(likes.size()) > limit) likes.resize(limit);
  return likes;
}

std::vector<Q8Result> Query8(const RelationalDb& db, PersonId start,
                             int limit) {
  auto lock = db.ReadLock();
  std::vector<Q8Result> replies;
  auto [mlo, mhi] = db.MessagesBy(start);
  for (const CreatorIndexRow* it = mlo; it != mhi; ++it) {
    auto [rlo, rhi] = db.RepliesTo(it->message);
    for (const ReplyIndexRow* r = rlo; r != rhi; ++r) {
      const schema::Message* reply = db.FindMessage(r->child);
      if (reply == nullptr) continue;
      replies.push_back({r->child, reply->creator_id, reply->creation_date});
    }
  }
  std::sort(replies.begin(), replies.end(),
            [](const Q8Result& a, const Q8Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.comment_id < b.comment_id;
            });
  if (static_cast<int>(replies.size()) > limit) replies.resize(limit);
  return replies;
}

std::vector<Q9Result> Query9(const RelationalDb& db, PersonId start,
                             TimestampMs max_date, int limit) {
  auto lock = db.ReadLock();
  std::vector<Q9Result> candidates;
  for (PersonId pid : TwoHopCircleLocked(db, start)) {
    auto [lo, hi] = db.MessagesBy(pid);
    int taken = 0;
    for (const CreatorIndexRow* it = hi; it != lo && taken < limit;) {
      --it;
      const schema::Message* m = db.FindMessage(it->message);
      if (m == nullptr || m->creation_date >= max_date) continue;
      candidates.push_back({m->id, pid, m->creation_date});
      ++taken;
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Q9Result& a, const Q9Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (static_cast<int>(candidates.size()) > limit) candidates.resize(limit);
  return candidates;
}

std::vector<Q10Result> Query10(const RelationalDb& db, PersonId start,
                               int horoscope_month, int limit) {
  auto lock = db.ReadLock();
  std::vector<Q10Result> results;
  const schema::Person* root = db.FindPerson(start);
  if (root == nullptr) return results;
  std::unordered_set<TagId> interests(root->interests.begin(),
                                      root->interests.end());
  std::unordered_set<PersonId> direct{start};
  auto [flo, fhi] = db.FriendsOf(start);
  for (const KnowsRow* k = flo; k != fhi; ++k) direct.insert(k->dst);
  std::unordered_set<PersonId> fof;
  for (const KnowsRow* k = flo; k != fhi; ++k) {
    auto [f2lo, f2hi] = db.FriendsOf(k->dst);
    for (const KnowsRow* k2 = f2lo; k2 != f2hi; ++k2) {
      if (direct.count(k2->dst) == 0) fof.insert(k2->dst);
    }
  }
  for (PersonId pid : fof) {
    const schema::Person* p = db.FindPerson(pid);
    if (p == nullptr) continue;
    int month = 0, day = 0;
    MonthDayOf(p->birthday, &month, &day);
    int next_month = horoscope_month % 12 + 1;
    bool sign_match = (month == horoscope_month && day >= 21) ||
                      (month == next_month && day < 22);
    if (!sign_match) continue;
    int32_t common = 0, other = 0;
    auto [mlo, mhi] = db.MessagesBy(pid);
    for (const CreatorIndexRow* it = mlo; it != mhi; ++it) {
      const schema::Message* m = db.FindMessage(it->message);
      if (m == nullptr || m->kind == MessageKind::kComment) continue;
      bool about = false;
      for (TagId t : m->tags) {
        if (interests.count(t) > 0) {
          about = true;
          break;
        }
      }
      about ? ++common : ++other;
    }
    results.push_back({pid, common - other});
  }
  std::sort(results.begin(), results.end(),
            [](const Q10Result& a, const Q10Result& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

std::vector<Q11Result> Query11(
    const RelationalDb& db, PersonId start,
    const std::vector<schema::PlaceId>& company_country,
    schema::PlaceId country, uint16_t max_work_year, int limit) {
  auto lock = db.ReadLock();
  std::vector<Q11Result> results;
  for (PersonId pid : TwoHopCircleLocked(db, start)) {
    const schema::Person* p = db.FindPerson(pid);
    if (p == nullptr || p->company_id == schema::kInvalidId32) continue;
    if (p->company_id >= company_country.size()) continue;
    if (company_country[p->company_id] != country) continue;
    if (p->work_year >= max_work_year) continue;
    results.push_back({pid, p->company_id, p->work_year});
  }
  std::sort(results.begin(), results.end(),
            [](const Q11Result& a, const Q11Result& b) {
              if (a.work_year != b.work_year) return a.work_year < b.work_year;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

std::vector<Q12Result> Query12(const RelationalDb& db, PersonId start,
                               const std::vector<bool>& tag_in_class,
                               int limit) {
  auto lock = db.ReadLock();
  std::vector<Q12Result> results;
  for (PersonId fid : FriendIdsLocked(db, start)) {
    uint32_t count = 0;
    auto [mlo, mhi] = db.MessagesBy(fid);
    for (const CreatorIndexRow* it = mlo; it != mhi; ++it) {
      const schema::Message* m = db.FindMessage(it->message);
      if (m == nullptr || m->kind != MessageKind::kComment) continue;
      const schema::Message* parent = db.FindMessage(m->reply_to_id);
      if (parent == nullptr || parent->kind == MessageKind::kComment) {
        continue;
      }
      for (TagId t : parent->tags) {
        if (t < tag_in_class.size() && tag_in_class[t]) {
          ++count;
          break;
        }
      }
    }
    if (count > 0) results.push_back({fid, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q12Result& a, const Q12Result& b) {
              if (a.reply_count != b.reply_count) {
                return a.reply_count > b.reply_count;
              }
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

int Query13(const RelationalDb& db, PersonId person1, PersonId person2) {
  auto lock = db.ReadLock();
  if (person1 == person2) {
    return db.FindPerson(person1) == nullptr ? -1 : 0;
  }
  if (db.FindPerson(person1) == nullptr ||
      db.FindPerson(person2) == nullptr) {
    return -1;
  }
  std::unordered_map<PersonId, int> dist{{person1, 0}};
  std::deque<PersonId> queue{person1};
  while (!queue.empty()) {
    PersonId pid = queue.front();
    queue.pop_front();
    int d = dist[pid];
    auto [lo, hi] = db.FriendsOf(pid);
    for (const KnowsRow* k = lo; k != hi; ++k) {
      if (k->dst == person2) return d + 1;
      if (dist.emplace(k->dst, d + 1).second) queue.push_back(k->dst);
    }
  }
  return -1;
}

namespace {

double PairWeight(const RelationalDb& db, PersonId a, PersonId b) {
  double weight = 0.0;
  for (PersonId from : {a, b}) {
    PersonId to = from == a ? b : a;
    auto [mlo, mhi] = db.MessagesBy(from);
    for (const CreatorIndexRow* it = mlo; it != mhi; ++it) {
      const schema::Message* m = db.FindMessage(it->message);
      if (m == nullptr || m->kind != MessageKind::kComment) continue;
      const schema::Message* parent = db.FindMessage(m->reply_to_id);
      if (parent == nullptr || parent->creator_id != to) continue;
      weight += parent->kind == MessageKind::kComment ? 0.5 : 1.0;
    }
  }
  return weight;
}

}  // namespace

std::vector<Q14Result> Query14(const RelationalDb& db, PersonId person1,
                               PersonId person2) {
  auto lock = db.ReadLock();
  std::vector<Q14Result> results;
  if (db.FindPerson(person1) == nullptr ||
      db.FindPerson(person2) == nullptr) {
    return results;
  }
  if (person1 == person2) {
    results.push_back({{person1}, 0.0});
    return results;
  }
  std::unordered_map<PersonId, int> dist{{person1, 0}};
  std::unordered_map<PersonId, std::vector<PersonId>> parents;
  std::deque<PersonId> queue{person1};
  int target_dist = -1;
  while (!queue.empty()) {
    PersonId pid = queue.front();
    queue.pop_front();
    int d = dist[pid];
    if (target_dist >= 0 && d >= target_dist) break;
    auto [lo, hi] = db.FriendsOf(pid);
    for (const KnowsRow* k = lo; k != hi; ++k) {
      auto it = dist.find(k->dst);
      if (it == dist.end()) {
        dist[k->dst] = d + 1;
        parents[k->dst].push_back(pid);
        queue.push_back(k->dst);
        if (k->dst == person2) target_dist = d + 1;
      } else if (it->second == d + 1) {
        parents[k->dst].push_back(pid);
      }
    }
  }
  if (target_dist < 0) return results;

  constexpr size_t kMaxPaths = 1000;
  std::vector<std::vector<PersonId>> paths;
  struct Frame {
    PersonId node;
    size_t next_parent;
  };
  std::vector<Frame> stack{{person2, 0}};
  while (!stack.empty() && paths.size() < kMaxPaths) {
    Frame& frame = stack.back();
    if (frame.node == person1) {
      std::vector<PersonId> path;
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        path.push_back(it->node);
      }
      paths.push_back(std::move(path));
      stack.pop_back();
      continue;
    }
    std::vector<PersonId>& ps = parents[frame.node];
    std::sort(ps.begin(), ps.end());
    if (frame.next_parent >= ps.size()) {
      stack.pop_back();
      continue;
    }
    stack.push_back({ps[frame.next_parent++], 0});
  }
  results.reserve(paths.size());
  for (std::vector<PersonId>& path : paths) {
    Q14Result r;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      r.weight += PairWeight(db, path[i], path[i + 1]);
    }
    r.path = std::move(path);
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const Q14Result& a, const Q14Result& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.path < b.path;
            });
  return results;
}

// ---- Short reads -------------------------------------------------------------

queries::S1Result ShortQuery1PersonProfile(const RelationalDb& db,
                                           PersonId person) {
  auto lock = db.ReadLock();
  queries::S1Result r;
  const schema::Person* p = db.FindPerson(person);
  if (p == nullptr) return r;
  r.found = true;
  r.first_name = p->first_name;
  r.last_name = p->last_name;
  r.birthday = p->birthday;
  r.city_id = p->city_id;
  r.browser = p->browser;
  r.location_ip = p->location_ip;
  r.gender = p->gender;
  r.creation_date = p->creation_date;
  return r;
}

std::vector<queries::S2Result> ShortQuery2RecentMessages(
    const RelationalDb& db, PersonId person, int limit) {
  auto lock = db.ReadLock();
  std::vector<queries::S2Result> results;
  auto [lo, hi] = db.MessagesBy(person);
  for (const CreatorIndexRow* it = hi;
       it != lo && static_cast<int>(results.size()) < limit;) {
    --it;
    const schema::Message* m = db.FindMessage(it->message);
    if (m == nullptr) continue;
    queries::S2Result r;
    r.message_id = it->message;
    r.creation_date = m->creation_date;
    r.root_post_id = m->root_post_id;
    const schema::Message* root = db.FindMessage(m->root_post_id);
    r.root_author_id =
        root == nullptr ? schema::kInvalidId : root->creator_id;
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<queries::S3Result> ShortQuery3Friends(const RelationalDb& db,
                                                  PersonId person) {
  auto lock = db.ReadLock();
  std::vector<queries::S3Result> results;
  auto [lo, hi] = db.FriendsOf(person);
  for (const KnowsRow* k = lo; k != hi; ++k) {
    results.push_back({k->dst, k->date});
  }
  std::sort(results.begin(), results.end(),
            [](const queries::S3Result& a, const queries::S3Result& b) {
              if (a.since != b.since) return a.since > b.since;
              return a.friend_id < b.friend_id;
            });
  return results;
}

queries::S4Result ShortQuery4MessageContent(const RelationalDb& db,
                                            MessageId message) {
  auto lock = db.ReadLock();
  queries::S4Result r;
  const schema::Message* m = db.FindMessage(message);
  if (m == nullptr) return r;
  r.found = true;
  r.creation_date = m->creation_date;
  r.content = m->content;
  return r;
}

queries::S5Result ShortQuery5MessageCreator(const RelationalDb& db,
                                            MessageId message) {
  auto lock = db.ReadLock();
  queries::S5Result r;
  const schema::Message* m = db.FindMessage(message);
  if (m == nullptr) return r;
  const schema::Person* p = db.FindPerson(m->creator_id);
  if (p == nullptr) return r;
  r.found = true;
  r.creator_id = m->creator_id;
  r.first_name = p->first_name;
  r.last_name = p->last_name;
  return r;
}

queries::S6Result ShortQuery6MessageForum(const RelationalDb& db,
                                          MessageId message) {
  auto lock = db.ReadLock();
  queries::S6Result r;
  const schema::Message* m = db.FindMessage(message);
  if (m == nullptr) return r;
  const schema::Message* root = db.FindMessage(m->root_post_id);
  if (root == nullptr) return r;
  const schema::Forum* forum = db.FindForum(root->forum_id);
  if (forum == nullptr) return r;
  r.found = true;
  r.forum_id = root->forum_id;
  r.forum_title = forum->title;
  r.moderator_id = forum->moderator_id;
  return r;
}

std::vector<queries::S7Result> ShortQuery7MessageReplies(
    const RelationalDb& db, MessageId message) {
  auto lock = db.ReadLock();
  std::vector<queries::S7Result> results;
  const schema::Message* m = db.FindMessage(message);
  if (m == nullptr) return results;
  auto [lo, hi] = db.RepliesTo(message);
  for (const ReplyIndexRow* it = lo; it != hi; ++it) {
    const schema::Message* reply = db.FindMessage(it->child);
    if (reply == nullptr) continue;
    queries::S7Result r;
    r.comment_id = it->child;
    r.replier_id = reply->creator_id;
    r.creation_date = reply->creation_date;
    r.replier_knows_author = db.AreFriends(m->creator_id, reply->creator_id);
    results.push_back(r);
  }
  std::sort(results.begin(), results.end(),
            [](const queries::S7Result& a, const queries::S7Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.comment_id < b.comment_id;
            });
  return results;
}

util::Status ApplyUpdate(RelationalDb& db,
                         const datagen::UpdateOperation& op) {
  using datagen::UpdateKind;
  // std::get_if (not std::get) throughout — same contract as
  // queries::ApplyUpdate: corrupt kinds and kind/payload mismatches come
  // back as InvalidArgument, never as a thrown bad_variant_access.
  switch (op.kind) {
    case UpdateKind::kAddPerson:
      if (const auto* p = std::get_if<schema::Person>(&op.payload)) {
        return db.AddPerson(*p);
      }
      break;
    case UpdateKind::kAddFriendship:
      if (const auto* k = std::get_if<schema::Knows>(&op.payload)) {
        return db.AddFriendship(*k);
      }
      break;
    case UpdateKind::kAddForum:
      if (const auto* f = std::get_if<schema::Forum>(&op.payload)) {
        return db.AddForum(*f);
      }
      break;
    case UpdateKind::kAddForumMembership:
      if (const auto* m = std::get_if<schema::ForumMembership>(&op.payload)) {
        return db.AddForumMembership(*m);
      }
      break;
    case UpdateKind::kAddPost:
    case UpdateKind::kAddComment:
      if (const auto* m = std::get_if<schema::Message>(&op.payload)) {
        return db.AddMessage(*m);
      }
      break;
    case UpdateKind::kAddLikePost:
    case UpdateKind::kAddLikeComment:
      if (const auto* l = std::get_if<schema::Like>(&op.payload)) {
        return db.AddLike(*l);
      }
      break;
    default:
      return util::Status::InvalidArgument(
          "unknown update kind " +
          std::to_string(static_cast<unsigned>(op.kind)));
  }
  return util::Status::InvalidArgument(
      "update kind " + std::to_string(static_cast<unsigned>(op.kind)) +
      " does not match its payload type");
}

}  // namespace snb::rel
