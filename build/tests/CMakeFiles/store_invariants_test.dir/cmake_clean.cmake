file(REMOVE_RECURSE
  "CMakeFiles/store_invariants_test.dir/store_invariants_test.cc.o"
  "CMakeFiles/store_invariants_test.dir/store_invariants_test.cc.o.d"
  "store_invariants_test"
  "store_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
