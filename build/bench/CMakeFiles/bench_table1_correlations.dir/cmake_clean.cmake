file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_correlations.dir/bench_table1_correlations.cc.o"
  "CMakeFiles/bench_table1_correlations.dir/bench_table1_correlations.cc.o.d"
  "bench_table1_correlations"
  "bench_table1_correlations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
