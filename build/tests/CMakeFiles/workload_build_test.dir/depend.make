# Empty dependencies file for workload_build_test.
# This may be replaced when dependencies are built.
