#include "datagen/friendship_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/distributions.h"
#include "util/rng.h"
#include "util/zorder.h"

namespace snb::datagen {
namespace {

using schema::Dictionaries;
using schema::Knows;
using schema::Person;
using util::Mix64;
using util::Rng;
using util::RandomPurpose;

// Geometric decay of pick probability with window distance.
constexpr double kWindowDecay = 0.05;

// How many slots a person proposes per stage. Each undirected edge counts
// towards the degree of both endpoints and incoming proposals roughly match
// outgoing ones, so each person proposes half of its stage budget.
uint32_t ProposalsForStage(uint32_t target_degree, int stage) {
  double budget = target_degree * kStageShare[stage] / 2.0;
  auto n = static_cast<uint32_t>(budget + 0.5);
  return n;
}

schema::TimestampMs EdgeCreationDate(uint64_t seed, const Person& a,
                                     const Person& b, uint32_t slot) {
  schema::TimestampMs earliest =
      std::max(a.creation_date, b.creation_date) + kTSafeMs;
  schema::TimestampMs latest = util::NetworkEndMs() - kTSafeMs;
  if (earliest >= latest) return latest;
  Rng rng(seed, Mix64(a.id * 0x9e3779b97f4a7c15ULL + b.id) + slot,
          RandomPurpose::kFriendPick);
  // Friendships tend to form soon after the later member joins: exponential
  // decay with a mean of ~1/8 of the remaining timeline.
  double span = static_cast<double>(latest - earliest);
  double offset = util::SampleExponential(rng, 8.0 / span);
  if (offset > span) offset = span;
  return earliest + static_cast<schema::TimestampMs>(offset);
}

}  // namespace

uint64_t CorrelationKey(const Person& person,
                        const Dictionaries& dictionaries, int stage,
                        uint64_t seed) {
  switch (stage) {
    case 0: {
      // Studied location: city Z-order | university | study year. Persons
      // without a university sort by their home city's Z-order with an
      // out-of-band university field so they cluster geographically.
      uint16_t university = 0x0fff;
      uint16_t year = 0;
      double lat, lon;
      if (person.university_id != schema::kInvalidId32) {
        const schema::University& uni =
            dictionaries.universities()[person.university_id];
        const schema::City& city = dictionaries.cities()[uni.city_id];
        lat = city.latitude;
        lon = city.longitude;
        university = static_cast<uint16_t>(person.university_id & 0x0fff);
        year = static_cast<uint16_t>(person.study_year & 0x0fff);
      } else {
        const schema::City& city = dictionaries.cities()[person.city_id];
        lat = city.latitude;
        lon = city.longitude;
      }
      return util::StudyLocationKey(util::ZOrder8(lat, lon), university,
                                    year);
    }
    case 1: {
      // Interests: two most important interest tags bitwise appended.
      uint64_t primary =
          person.interests.empty() ? 0xffff : person.interests[0];
      uint64_t secondary =
          person.interests.size() < 2 ? 0xffff : person.interests[1];
      return (primary << 16) | secondary;
    }
    default:
      // Random dimension.
      return Mix64(seed ^ Mix64(person.id * 0xacedb00cULL + 2));
  }
}

std::vector<Knows> GenerateFriendships(
    const DatagenConfig& config, const Dictionaries& dictionaries,
    const DegreeModel& degree_model, const std::vector<Person>& persons,
    util::ThreadPool& pool) {
  const uint64_t seed = config.seed;
  const size_t n = persons.size();

  // Adjacency sets for cross-stage deduplication. Only read/written for the
  // proposing person inside its own disjoint range... except that an edge
  // also lands in the target's set; to stay deterministic and race-free we
  // collect per-worker edge lists per stage, then merge sequentially between
  // stages.
  std::vector<std::unordered_set<uint64_t>> adjacency(n);
  std::vector<Knows> edges;

  // Sorted order of person indices, rebuilt per stage.
  std::vector<uint32_t> order(n);

  for (int stage = 0; stage < 3; ++stage) {
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      uint64_t ka = CorrelationKey(persons[a], dictionaries, stage, seed);
      uint64_t kb = CorrelationKey(persons[b], dictionaries, stage, seed);
      if (ka != kb) return ka < kb;
      return a < b;
    });

    size_t workers = pool.num_threads();
    std::vector<std::vector<Knows>> per_worker(workers);

    pool.ParallelForRanges(n, [&](size_t begin, size_t end, size_t worker) {
      util::GeometricRankSampler window_sampler(kWindowDecay, kFriendWindow);
      std::vector<Knows>& out = per_worker[worker];
      for (size_t pos = begin; pos < end; ++pos) {
        const Person& person = persons[order[pos]];
        uint32_t target = degree_model.TargetDegree(seed, person.id);
        uint32_t proposals = ProposalsForStage(target, stage);
        Rng rng(seed, person.id * 3 + stage, RandomPurpose::kFriendPick);
        for (uint32_t slot = 0; slot < proposals; ++slot) {
          // Pick a forward window distance with geometric decay; the
          // probability of a connection drops towards the window boundary
          // and is zero outside it.
          bool placed = false;
          for (int attempt = 0; attempt < 6 && !placed; ++attempt) {
            uint64_t distance = 1 + window_sampler.Sample(rng);
            size_t candidate_pos = pos + distance;
            if (candidate_pos >= n) continue;
            const Person& candidate = persons[order[candidate_pos]];
            if (candidate.id == person.id) continue;
            uint64_t lo = std::min(person.id, candidate.id);
            uint64_t hi = std::max(person.id, candidate.id);
            uint64_t edge_key = lo * 0x100000000ULL + hi;
            // Intra-stage/intra-worker dedup via the adjacency set is only
            // safe for edges this worker created; cross-worker duplicates
            // are removed in the merge step below.
            if (adjacency[lo].count(edge_key) > 0) continue;
            Knows edge;
            edge.person1_id = lo;
            edge.person2_id = hi;
            edge.creation_date =
                EdgeCreationDate(seed, person, candidate, slot);
            out.push_back(edge);
            placed = true;
          }
        }
      }
    });

    // Sequential merge: dedup against all previous stages and within this
    // stage, in worker order (deterministic because ranges are static).
    for (std::vector<Knows>& chunk : per_worker) {
      for (const Knows& edge : chunk) {
        uint64_t edge_key =
            edge.person1_id * 0x100000000ULL + edge.person2_id;
        auto [it, inserted] = adjacency[edge.person1_id].insert(edge_key);
        if (!inserted) continue;
        edges.push_back(edge);
      }
      chunk.clear();
    }
  }

  // Canonical output order: by (person1, person2).
  std::sort(edges.begin(), edges.end(), [](const Knows& a, const Knows& b) {
    if (a.person1_id != b.person1_id) return a.person1_id < b.person1_id;
    return a.person2_id < b.person2_id;
  });
  return edges;
}

}  // namespace snb::datagen
