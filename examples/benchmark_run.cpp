// A complete SNB-Interactive benchmark run, following the paper's
// protocol (section 4, "Rules and Metrics"):
//
//   1. generate the dataset; bulk-load the first 32 simulated months;
//   2. build the query mix: the pre-generated update stream interleaved
//      with complex reads at the Table 4 frequencies, short reads spawned
//      by the random walk;
//   3. pick an acceleration factor (simulation time / real time) and replay
//      the workload at that pace;
//   4. the run is successful if the pace was sustained; report the
//      acceleration factor and per-query latencies (mean and p99).
//
//   ./examples/benchmark_run [scale_factor] [acceleration]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/datagen.h"
#include "driver/driver.h"
#include "driver/query_mix.h"
#include "store/graph_store.h"

int main(int argc, char** argv) {
  using namespace snb;

  double scale_factor = argc > 1 ? std::atof(argv[1]) : 0.1;
  // Default: replay the 4 simulated months in ~5 seconds of real time.
  double acceleration = argc > 2 ? std::atof(argv[2]) : 0.0;

  std::printf("=== SNB-Interactive benchmark run (mini SF %.2f) ===\n\n",
              scale_factor);
  datagen::DatagenConfig config =
      datagen::DatagenConfig::ForScaleFactor(scale_factor);
  datagen::Dataset dataset = datagen::Generate(config);
  schema::Dictionaries dictionaries(config.seed);
  std::printf("dataset: %llu persons, %llu knows, %llu messages"
              " (%.4f CSV-GB)\n",
              (unsigned long long)dataset.stats.num_persons,
              (unsigned long long)dataset.stats.num_knows,
              (unsigned long long)dataset.stats.NumMessages(),
              dataset.stats.csv_bytes / 1e9);

  store::GraphStore store;
  util::Status status = store.BulkLoad(dataset.bulk);
  if (!status.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("bulk-loaded first %d simulated months (%zu update ops to"
              " stream)\n\n", util::kBulkLoadMonths, dataset.updates.size());

  driver::QueryMixConfig mix;
  // Compress Table 4 frequencies so the mini stream exercises all queries,
  // then apply the paper's log scaling rule for this dataset size.
  for (auto& f : mix.frequencies) f = std::max<uint32_t>(1, f / 10);
  mix.frequency_scale =
      driver::FrequencyLogScale(dataset.stats.num_persons);
  driver::Workload workload =
      driver::BuildWorkload(dataset, dictionaries, mix);
  std::printf("workload: %llu updates + %llu complex reads (+ random-walk"
              " short reads)\n",
              (unsigned long long)workload.num_updates,
              (unsigned long long)workload.num_complex_reads);

  if (acceleration <= 0.0) {
    // Auto-pick: replay the simulated span in ~5 s.
    util::TimestampMs span = workload.operations.back().due_time -
                             workload.operations.front().due_time;
    acceleration = static_cast<double>(span) / 5000.0;
  }
  std::printf("acceleration factor: %.0fx (simulation/real time)\n\n",
              acceleration);

  util::LatencyRecorder latencies;
  driver::StoreConnector connector(&store, &dataset.updates, &dictionaries,
                                   &latencies);
  driver::DriverConfig driver_config;
  driver_config.num_partitions = 4;
  driver_config.acceleration = acceleration;
  driver::DriverReport report =
      driver::RunWorkload(workload.operations, connector, driver_config);

  std::printf("=== results ===\n");
  std::printf("executed %llu driver ops in %.2f s (%.0f ops/s), %llu failed\n",
              (unsigned long long)report.operations_executed,
              report.elapsed_seconds, report.ops_per_second,
              (unsigned long long)report.operations_failed);
  std::printf("max schedule lag: %.1f ms -> run %s at acceleration %.0fx\n\n",
              report.max_schedule_lag_ms,
              report.sustained ? "SUSTAINED" : "NOT SUSTAINED",
              acceleration);

  std::printf("%-14s %8s %10s %10s %10s\n", "operation", "count",
              "mean ms", "p99 ms", "max ms");
  for (const std::string& op : latencies.Operations()) {
    util::SampleStats stats = latencies.Get(op);
    std::printf("%-14s %8zu %10.3f %10.3f %10.3f\n", op.c_str(),
                stats.count(), stats.Mean() / 1000.0,
                stats.Percentile(99) / 1000.0, stats.Max() / 1000.0);
  }
  std::printf("\nbenchmark metric: acceleration-factor %.0fx %s\n",
              acceleration,
              report.sustained ? "(valid run)" : "(lower the factor)");
  return report.sustained ? 0 : 2;
}
