// The 7 simple read-only queries of SNB-Interactive (Table 7).
//
// Profile/post lookups chained by the random-walk logic in the driver:
// results of complex queries (persons, messages) seed these lookups, and
// each short read's result feeds the next (profile -> post -> profile ...).
#ifndef SNB_QUERIES_SHORT_QUERIES_H_
#define SNB_QUERIES_SHORT_QUERIES_H_

#include <string>
#include <vector>

#include "schema/ids.h"
#include "store/graph_store.h"
#include "util/datetime.h"

namespace snb::queries {

using store::GraphStore;
using util::TimestampMs;

/// S1: person profile.
struct S1Result {
  bool found = false;
  std::string first_name;
  std::string last_name;
  TimestampMs birthday = 0;
  schema::PlaceId city_id = schema::kInvalidId32;
  std::string browser;
  std::string location_ip;
  uint8_t gender = 0;
  TimestampMs creation_date = 0;
};
S1Result ShortQuery1PersonProfile(const GraphStore& store,
                                  schema::PersonId person);

/// S2: a person's most recent messages, with the root post of each thread.
struct S2Result {
  schema::MessageId message_id = schema::kInvalidId;
  TimestampMs creation_date = 0;
  schema::MessageId root_post_id = schema::kInvalidId;
  schema::PersonId root_author_id = schema::kInvalidId;
};
std::vector<S2Result> ShortQuery2RecentMessages(const GraphStore& store,
                                                schema::PersonId person,
                                                int limit = 10);

/// S3: all friends of a person with friendship dates, newest first.
struct S3Result {
  schema::PersonId friend_id = schema::kInvalidId;
  TimestampMs since = 0;
};
std::vector<S3Result> ShortQuery3Friends(const GraphStore& store,
                                         schema::PersonId person);

/// S4: message content & creation date.
struct S4Result {
  bool found = false;
  TimestampMs creation_date = 0;
  std::string content;
};
S4Result ShortQuery4MessageContent(const GraphStore& store,
                                   schema::MessageId message);

/// S5: creator of a message.
struct S5Result {
  bool found = false;
  schema::PersonId creator_id = schema::kInvalidId;
  std::string first_name;
  std::string last_name;
};
S5Result ShortQuery5MessageCreator(const GraphStore& store,
                                   schema::MessageId message);

/// S6: forum of a message's thread and its moderator.
struct S6Result {
  bool found = false;
  schema::ForumId forum_id = schema::kInvalidId;
  std::string forum_title;
  schema::PersonId moderator_id = schema::kInvalidId;
};
S6Result ShortQuery6MessageForum(const GraphStore& store,
                                 schema::MessageId message);

/// S7: replies to a message; flags repliers who are friends of the
/// message's author.
struct S7Result {
  schema::MessageId comment_id = schema::kInvalidId;
  schema::PersonId replier_id = schema::kInvalidId;
  TimestampMs creation_date = 0;
  bool replier_knows_author = false;
};
std::vector<S7Result> ShortQuery7MessageReplies(const GraphStore& store,
                                                schema::MessageId message);

}  // namespace snb::queries

#endif  // SNB_QUERIES_SHORT_QUERIES_H_
