file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_short_reads.dir/bench_table7_short_reads.cc.o"
  "CMakeFiles/bench_table7_short_reads.dir/bench_table7_short_reads.cc.o.d"
  "bench_table7_short_reads"
  "bench_table7_short_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_short_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
