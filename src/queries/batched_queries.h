// Batched (block-at-a-time) plans for the heaviest complex reads — Q5, Q9
// and Q14 — built on the src/exec operator framework, plus the explicit
// scalar entry points they shadow.
//
// The public Query5/Query9/Query14 in complex_queries.h dispatch on the
// process-wide exec::DefaultExecMode(), so the driver, the golden replay
// and the benches switch engines with one flag and zero call-site churn.
// The *Scalar/*Batched names here pin an engine explicitly — the
// differential fuzzer runs both against the oracle, the equivalence tests
// compare them row for row, and the plan-ablation bench times them against
// each other.
//
// Contract: for every store state and parameter set, the batched plan
// returns BYTE-identical results to the scalar plan (same rows, same
// order, bit-equal doubles). The per-query equivalence arguments live as
// comments on the implementations; the golden-set replay and the
// 200-graph differential fuzz campaign enforce the contract continuously.
#ifndef SNB_QUERIES_BATCHED_QUERIES_H_
#define SNB_QUERIES_BATCHED_QUERIES_H_

#include <vector>

#include "queries/complex_queries.h"
#include "queries/query9_plans.h"

namespace snb::queries {

// ---- Q5: new groups ---------------------------------------------------

std::vector<Q5Result> Query5Scalar(const GraphStore& store,
                                   schema::PersonId start,
                                   TimestampMs min_date, int limit = 20);

/// Batched plan: two-hop circle via sorted-set kernels, circle membership
/// as a flat hash-set build, per-forum creator gather + block probe,
/// bounded top-`limit` heap.
std::vector<Q5Result> Query5Batched(const GraphStore& store,
                                    schema::PersonId start,
                                    TimestampMs min_date, int limit = 20);

// ---- Q9: latest messages of 2-hop circle ------------------------------

std::vector<Q9Result> Query9Scalar(const GraphStore& store,
                                   schema::PersonId start,
                                   TimestampMs max_date, int limit = 20);

/// Batched plan: two-hop circle via sorted-set kernels, blockwise
/// date-bounded message scan with per-person top-`limit` truncation,
/// bounded top-`limit` heap instead of a full sort. When `stats` /
/// `profile` are non-null they are filled with the same counters the
/// scalar Query9WithPlan reports (hash_build stays untouched — this plan
/// builds no friends hash table), so the Figure 4 ablation can put the
/// batched plan on the same axes as the scalar plans.
std::vector<Q9Result> Query9Batched(const GraphStore& store,
                                    schema::PersonId start,
                                    TimestampMs max_date, int limit = 20,
                                    Q9PlanStats* stats = nullptr,
                                    Q9OperatorProfile* profile = nullptr);

// ---- Q14: weighted shortest paths -------------------------------------

std::vector<Q14Result> Query14Scalar(const GraphStore& store,
                                     schema::PersonId person1,
                                     schema::PersonId person2);

/// Batched plan: distance-2 paths come straight from one sorted
/// intersection of the endpoint friend lists; pair weights are computed by
/// scanning each distinct path person's comment list once and probing a
/// flat hash map of needed pairs, instead of re-scanning per path edge.
std::vector<Q14Result> Query14Batched(const GraphStore& store,
                                      schema::PersonId person1,
                                      schema::PersonId person2);

}  // namespace snb::queries

#endif  // SNB_QUERIES_BATCHED_QUERIES_H_
