file(REMOVE_RECURSE
  "CMakeFiles/friend_recommendations.dir/friend_recommendations.cpp.o"
  "CMakeFiles/friend_recommendations.dir/friend_recommendations.cpp.o.d"
  "friend_recommendations"
  "friend_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/friend_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
