# Empty dependencies file for bench_table1_correlations.
# This may be replaced when dependencies are built.
