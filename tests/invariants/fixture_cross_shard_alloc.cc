// Mutation fixture: a multi-shard snapshot read that allocates. The
// sharded store's cross-shard accessors (FindPerson on shard A chasing an
// adjacency id owned by shard B) run under ShardSnapshot pins on every
// shard, so an allocation anywhere in the gather path extends every
// shard's grace period at once — worse than the single-shard case. The
// checker must report the denylist hit with the path
// BadCrossShardGather -> operator new[].
#include <cstdint>

#include "util/invariant_root.h"

namespace fixture {

// Two toy "shards": routing is id parity, each shard owns half the slots.
struct Shard {
  uint64_t slots[8];
};

Shard g_shards[2];
uint64_t* volatile g_sink = nullptr;

__attribute__((noinline, used)) uint64_t BadCrossShardGather(uint64_t id) {
  SNB_INVARIANT_ROOT("pinned_read");
  // Route to the owning shard, then follow an "edge" to the other shard —
  // the cross-shard chase a ShardSnapshot makes legal.
  uint64_t local = g_shards[id & 1].slots[id % 8];
  uint64_t remote = g_shards[(id + 1) & 1].slots[local % 8];
  // The violation: gathering the cross-shard results into a fresh buffer
  // while every shard is still pinned.
  uint64_t* gathered = new uint64_t[2];
  gathered[0] = local;
  gathered[1] = remote;
  g_sink = gathered;
  uint64_t sum = gathered[0] + gathered[1];
  delete[] gathered;
  return sum;
}

}  // namespace fixture

uint64_t (*volatile g_gather)(uint64_t) = &fixture::BadCrossShardGather;

int main(int argc, char**) {
  return static_cast<int>(g_gather(static_cast<uint64_t>(argc)) & 1);
}
