file(REMOVE_RECURSE
  "CMakeFiles/snb_util.dir/datetime.cc.o"
  "CMakeFiles/snb_util.dir/datetime.cc.o.d"
  "CMakeFiles/snb_util.dir/status.cc.o"
  "CMakeFiles/snb_util.dir/status.cc.o.d"
  "CMakeFiles/snb_util.dir/thread_pool.cc.o"
  "CMakeFiles/snb_util.dir/thread_pool.cc.o.d"
  "libsnb_util.a"
  "libsnb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
