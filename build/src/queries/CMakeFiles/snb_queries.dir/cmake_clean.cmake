file(REMOVE_RECURSE
  "CMakeFiles/snb_queries.dir/bi_queries.cc.o"
  "CMakeFiles/snb_queries.dir/bi_queries.cc.o.d"
  "CMakeFiles/snb_queries.dir/complex_queries.cc.o"
  "CMakeFiles/snb_queries.dir/complex_queries.cc.o.d"
  "CMakeFiles/snb_queries.dir/query9_plans.cc.o"
  "CMakeFiles/snb_queries.dir/query9_plans.cc.o.d"
  "CMakeFiles/snb_queries.dir/recycler.cc.o"
  "CMakeFiles/snb_queries.dir/recycler.cc.o.d"
  "CMakeFiles/snb_queries.dir/short_queries.cc.o"
  "CMakeFiles/snb_queries.dir/short_queries.cc.o.d"
  "CMakeFiles/snb_queries.dir/update_queries.cc.o"
  "CMakeFiles/snb_queries.dir/update_queries.cc.o.d"
  "libsnb_queries.a"
  "libsnb_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
