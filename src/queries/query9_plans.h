// Query 9 under explicit physical plans — the Figure 4 choke point.
//
// The paper's intended plan for Q9 is
//     ((person INL friends) INL friends) HASH messages, then sort/top-20,
// and it reports that replacing the index-nested-loop joins with hash joins
// costs ~50% in HyPer/Virtuoso. This module executes Q9 with a selectable
// join strategy per join so the ablation bench can reproduce that
// sensitivity, and counts the de-facto intermediate result sizes (the
// paper's Cout) produced by each join.
#ifndef SNB_QUERIES_QUERY9_PLANS_H_
#define SNB_QUERIES_QUERY9_PLANS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/report.h"
#include "obs/trace.h"
#include "queries/complex_queries.h"

namespace snb::queries {

/// Physical join algorithm choice.
enum class JoinStrategy {
  /// Per-input-tuple index lookup (the store's adjacency lists are the PK
  /// index on Friends; the per-person message list is the creator index).
  kIndexNestedLoop,
  /// Build a hash table by scanning the *entire* base relation, then probe.
  kHash,
};

/// De-facto intermediate result cardinalities (Cout) and work counters.
struct Q9PlanStats {
  uint64_t join1_output = 0;  // |friends of start|.
  uint64_t join2_output = 0;  // Friend-of-friend tuples (pre-dedup).
  uint64_t join3_output = 0;  // Qualifying (person, message) tuples.
  /// Tuples scanned to build hash tables (0 for pure-INL plans).
  uint64_t build_tuples = 0;
};

/// Per-operator wall-time profile of one (or several merged) plan
/// executions. Cardinalities (Q9PlanStats) say how much each join produced;
/// this says where the time went — the dimension Figure 4's INL-vs-hash
/// comparison actually turns on. Filled only when passed to
/// Query9WithPlan; the null-profile path takes no timestamps.
struct Q9OperatorProfile {
  obs::OperatorStats hash_build;  // FriendsHashTable construction.
  obs::OperatorStats join1;       // person |>< friends.
  obs::OperatorStats join2;       // friends |>< friends.
  obs::OperatorStats join3;       // circle |>< messages.
  obs::OperatorStats sort_limit;  // Final sort + top-`limit` cut.

  void Merge(const Q9OperatorProfile& other) {
    hash_build.Merge(other.hash_build);
    join1.Merge(other.join1);
    join2.Merge(other.join2);
    join3.Merge(other.join3);
    sort_limit.Merge(other.sort_limit);
  }
};

/// Fixed operator order: (name, stats) rows for reports/tables. Rows with
/// zero invocations are skipped (e.g. hash_build in a pure-INL plan).
std::vector<std::pair<std::string, obs::OperatorStats>> ProfileRows(
    const Q9OperatorProfile& profile);

/// Packages a profile as the report.json "q9_profile" section.
obs::Q9ProfileSection MakeQ9ProfileSection(const Q9OperatorProfile& profile,
                                           std::string plan_label);

/// Q9 with explicit join strategies; result is identical to Query9() for
/// every strategy combination. When `profile` is non-null each operator is
/// timed via obs::TraceSpan and accumulated into it.
std::vector<Q9Result> Query9WithPlan(const GraphStore& store,
                                     schema::PersonId start,
                                     TimestampMs max_date, int limit,
                                     JoinStrategy join1, JoinStrategy join2,
                                     JoinStrategy join3,
                                     Q9PlanStats* stats = nullptr,
                                     Q9OperatorProfile* profile = nullptr);

}  // namespace snb::queries

#endif  // SNB_QUERIES_QUERY9_PLANS_H_
