# Empty dependencies file for rel_db_test.
# This may be replaced when dependencies are built.
