// Table 9 reproduction: mean runtime of the 8 transactional update types,
// measured by replaying the pre-generated update stream through the driver.
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "relational/rel_queries.h"
#include "driver/driver.h"
#include "driver/query_mix.h"
#include "driver/shard_writers.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace snb::bench {
namespace {

void MeasureUpdates(double sf, const char* graph_label,
                    const char* rel_label) {
  std::unique_ptr<BenchWorld> world = MakeWorld(sf, false);
  driver::QueryMixConfig mix;
  mix.include_complex_reads = false;
  driver::Workload workload =
      driver::BuildWorkload(world->dataset, *world->dictionaries, mix);

  obs::MetricsRegistry metrics;
  driver::StoreConnector connector(&world->store, &world->dataset.updates,
                                   world->dictionaries.get(), &metrics);
  driver::DriverConfig config;
  config.num_partitions = 4;
  driver::DriverReport report =
      driver::RunWorkload(workload.operations, connector, config);

  obs::MetricsSnapshot snap = metrics.Snapshot();
  std::printf("  %-20s", graph_label);
  for (int u = 1; u <= 8; ++u) {
    std::printf("%9.4f", snap.Op(obs::UpdateOp(u)).MeanUs() / 1000.0);
  }
  std::printf("   (%llu ops, %llu failed)\n",
              (unsigned long long)report.operations_executed,
              (unsigned long long)report.operations_failed);

  // Relational baseline: replay the same stream single-threaded (the
  // sorted-vector engine pays O(n) per insert; what matters is the per-type
  // profile).
  rel::RelationalDb relational;
  if (!relational.BulkLoad(world->dataset.bulk).ok()) std::abort();
  obs::MetricsRegistry rel_metrics;
  uint64_t failed = 0;
  for (const datagen::UpdateOperation& op : world->dataset.updates) {
    util::Stopwatch watch;
    util::Status status = rel::ApplyUpdate(relational, op);
    rel_metrics.RecordLatencyNs(obs::UpdateOp(static_cast<int>(op.kind)),
                                watch.ElapsedNanos());
    if (!status.ok()) ++failed;
  }
  obs::MetricsSnapshot rel_snap = rel_metrics.Snapshot();
  std::printf("  %-20s", rel_label);
  for (int u = 1; u <= 8; ++u) {
    std::printf("%9.4f", rel_snap.Op(obs::UpdateOp(u)).MeanUs() / 1000.0);
  }
  std::printf("   (%zu ops, %llu failed)\n", world->dataset.updates.size(),
              (unsigned long long)failed);
}

// Multi-writer scaling: the same update stream pushed through the
// ShardWriterPool (one writer thread per shard) at 1 and 4 shards.
// Wall time covers Submit of every op plus Drain, so queueing and the
// cross-shard presence waits are all inside the measured window.
double MeasureShardedThroughput(const datagen::Dataset& dataset,
                                uint32_t shards) {
  store::GraphStore store(store::ReadConcurrency::kEpoch, shards);
  if (!store.BulkLoad(dataset.bulk).ok()) std::abort();
  driver::ShardWriterPool pool(&store);
  util::Stopwatch watch;
  for (const datagen::UpdateOperation& op : dataset.updates) {
    if (!pool.Submit(op).ok()) std::abort();
  }
  if (!pool.Drain().ok()) std::abort();
  double seconds = watch.ElapsedNanos() / 1e9;
  return seconds > 0 ? dataset.updates.size() / seconds : 0.0;
}

void MeasureShardScaling(double sf, const char* sf_label) {
  std::unique_ptr<BenchWorld> world = MakeWorld(sf, false);
  std::printf("  %s: %zu updates via ShardWriterPool\n", sf_label,
              world->dataset.updates.size());
  double tput1 = MeasureShardedThroughput(world->dataset, 1);
  double tput4 = MeasureShardedThroughput(world->dataset, 4);
  std::printf("    1 shard : %10.0f updates/s\n", tput1);
  std::printf("    4 shards: %10.0f updates/s\n", tput4);
  std::printf("    speedup : %10.2fx (target > 1.5x on >= 4 cores)\n",
              tput1 > 0 ? tput4 / tput1 : 0.0);
}

void Run() {
  PrintHeader("Table 9 — mean runtime of transactional updates (ms)");
  std::printf("  %-20s", "system,scale");
  for (int u = 1; u <= 8; ++u) {
    std::printf("%9s", ("U" + std::to_string(u)).c_str());
  }
  std::printf("\n  (U1 person, U2 like-post, U3 like-comment, U4 forum,\n"
              "   U5 membership, U6 post, U7 comment, U8 friendship)\n");
  MeasureUpdates(kSmallSf, "graph,SF0.05", "relational,SF0.05");
  MeasureUpdates(kLargeSf, "graph,SF0.4", "relational,SF0.4");
  std::printf("\n  Shard scaling — aggregate update throughput, one writer\n"
              "  thread per shard (store/shard_router.h hash partition):\n");
  MeasureShardScaling(kLargeSf, "SF0.4");
  unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    std::printf("    note: only %u core(s) visible here; the 4 writer\n"
                "    threads time-slice one CPU, so the parallel speedup is\n"
                "    not observable on this machine (the ratio above shows\n"
                "    sharding overhead, not scaling). Re-run on >= 4 cores\n"
                "    for the >1.5x acceptance figure.\n", cores);
  }
  std::printf(
      "\n  Paper (ms): Sparksee,SF10 : 492 309 307 239 317 190 324 273\n"
      "              Virtuoso,SF300: 35 198 85 55 16 118 141 15\n"
      "  Shape to check: every update type is a point insert of O(log n)\n"
      "  cost, within an order of magnitude of each other and far cheaper\n"
      "  than the complex reads of Table 6 at the same scale.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
