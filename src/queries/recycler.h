// Intermediate-result recycling (paper section 3, "Parallelism and result
// reuse").
//
// Most complex reads retrieve one- or two-hop person neighbourhoods, and
// the Person domain is small, so partial results of "high value" — large,
// expensive, frequently recomputed — are worth caching across queries. The
// recycler caches 2-hop circles keyed by person and invalidates them
// through the store's Knows-graph version (any new friendship could extend
// any circle, so invalidation is conservative and global).
#ifndef SNB_QUERIES_RECYCLER_H_
#define SNB_QUERIES_RECYCLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "queries/complex_queries.h"
#include "store/graph_store.h"

namespace snb::queries {

/// Thread-safe cache of 2-hop circles with version-based invalidation.
class TwoHopRecycler {
 public:
  /// `capacity`: maximum cached circles. At capacity the cache evicts one
  /// victim per insert by clock (second-chance): hot circles — the
  /// "high-value" partial results the paper recycles — survive, cold ones
  /// rotate out.
  explicit TwoHopRecycler(size_t capacity = 4096) : capacity_(capacity) {}

  TwoHopRecycler(const TwoHopRecycler&) = delete;
  TwoHopRecycler& operator=(const TwoHopRecycler&) = delete;

  /// The 2-hop circle of `person` (excluding the person, sorted), recycled
  /// when the Knows graph has not changed since it was computed.
  std::shared_ptr<const std::vector<schema::PersonId>> Get(
      const GraphStore& store, schema::PersonId person);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Entries displaced by the clock hand (capacity pressure only; version
  /// refreshes overwrite in place).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Publishes hits/misses/evictions as registry gauges. No-op when
  /// `metrics` is null.
  void PublishMetrics(obs::MetricsRegistry* metrics) const {
    if (metrics == nullptr) return;
    metrics->SetGauge(obs::Gauge::kRecyclerHits, hits());
    metrics->SetGauge(obs::Gauge::kRecyclerMisses, misses());
    metrics->SetGauge(obs::Gauge::kRecyclerEvictions, evictions());
  }

 private:
  struct Entry {
    uint64_t version = 0;
    /// Second-chance bit: set on hit, cleared when the hand sweeps by.
    bool referenced = false;
    std::shared_ptr<const std::vector<schema::PersonId>> circle;
  };

  /// Inserts or overwrites under mu_, evicting by clock when full.
  void PutLocked(schema::PersonId person, Entry entry) SNB_REQUIRES(mu_);

  size_t capacity_;
  util::Mutex mu_;
  std::unordered_map<schema::PersonId, Entry> cache_ SNB_GUARDED_BY(mu_);
  /// Clock ring over the cached keys; `hand_` is the sweep position.
  std::vector<schema::PersonId> ring_ SNB_GUARDED_BY(mu_);
  size_t hand_ SNB_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// Query 9 on top of the recycler: identical results to Query9(), with the
/// 2-hop retrieval recycled across invocations.
std::vector<Q9Result> Query9Recycled(const GraphStore& store,
                                     TwoHopRecycler& recycler,
                                     schema::PersonId start,
                                     TimestampMs max_date, int limit = 20);

}  // namespace snb::queries

#endif  // SNB_QUERIES_RECYCLER_H_
