#!/usr/bin/env bash
# Local gate: tier-1 build + full test suite, then the concurrency-labelled
# tests (epoch/RCU read path) rebuilt under AddressSanitizer and
# ThreadSanitizer. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

echo "== tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"${jobs}"
(cd build && ctest --output-on-failure -j"${jobs}")

# Only the three concurrency test targets are built under the sanitizers;
# a whole-tree sanitizer build adds minutes without adding coverage.
for san in address thread; do
  dir="build-${san}-san"
  echo "== ${san} sanitizer: concurrency-labelled tests =="
  cmake -B "${dir}" -S . -DSNB_SANITIZE="${san}" >/dev/null
  cmake --build "${dir}" -j"${jobs}" \
    --target epoch_test concurrency_stress_test graph_store_test
  (cd "${dir}" && ctest -L concurrency --output-on-failure)
done

echo "== all checks passed =="
