file(REMOVE_RECURSE
  "CMakeFiles/complex_queries_test.dir/complex_queries_test.cc.o"
  "CMakeFiles/complex_queries_test.dir/complex_queries_test.cc.o.d"
  "complex_queries_test"
  "complex_queries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
