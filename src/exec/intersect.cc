#include "exec/intersect.h"

#include <algorithm>

namespace snb::exec {

#if defined(SNB_EXEC_HAVE_AVX2)
// Defined in intersect_avx2.cc, the only translation unit built -mavx2.
size_t IntersectAvx2(const uint64_t* a, size_t na, const uint64_t* b,
                     size_t nb, uint64_t* out);
#endif

bool SimdAvailable() {
#if defined(SNB_EXEC_HAVE_AVX2) && defined(__GNUC__)
  // CPUID is not free; resolve once. The answer cannot change mid-process.
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

size_t IntersectScalar(const uint64_t* a, size_t na, const uint64_t* b,
                       size_t nb, uint64_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    uint64_t va = a[i];
    uint64_t vb = b[j];
    // Unconditional store + conditional index bumps: no branch inside the
    // body, a mispredict-free pattern the compiler can keep if-converted.
    out[k] = va;
    k += static_cast<size_t>(va == vb);
    i += static_cast<size_t>(va <= vb);
    j += static_cast<size_t>(vb <= va);
  }
  return k;
}

namespace {

/// First index in [lo, n) with arr[index] >= key, found by doubling then
/// binary search — O(log distance) instead of O(log n), which is what
/// makes per-element probing cheap when consecutive keys land close
/// together.
size_t GallopLowerBound(const uint64_t* arr, size_t n, size_t lo,
                        uint64_t key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && arr[hi] < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(
      std::lower_bound(arr + lo, arr + hi, key) - arr);
}

}  // namespace

size_t IntersectGalloping(const uint64_t* a, size_t na, const uint64_t* b,
                          size_t nb, uint64_t* out) {
  // Probe with the shorter list into the longer one.
  if (na > nb) return IntersectGalloping(b, nb, a, na, out);
  size_t j = 0, k = 0;
  for (size_t i = 0; i < na; ++i) {
    j = GallopLowerBound(b, nb, j, a[i]);
    if (j == nb) break;
    if (b[j] == a[i]) {
      out[k++] = a[i];
      ++j;
    }
  }
  return k;
}

size_t IntersectSimd(const uint64_t* a, size_t na, const uint64_t* b,
                     size_t nb, uint64_t* out) {
#if defined(SNB_EXEC_HAVE_AVX2)
  if (SimdAvailable()) return IntersectAvx2(a, na, b, nb, out);
#endif
  return IntersectScalar(a, na, b, nb, out);
}

size_t Intersect(const uint64_t* a, size_t na, const uint64_t* b, size_t nb,
                 uint64_t* out) {
  if (na > nb) return Intersect(b, nb, a, na, out);
  if (na == 0) return 0;
  if (nb / na >= kGallopRatio) return IntersectGalloping(a, na, b, nb, out);
  return IntersectSimd(a, na, b, nb, out);
}

size_t IntersectCount(const uint64_t* a, size_t na, const uint64_t* b,
                      size_t nb) {
  if (na > nb) return IntersectCount(b, nb, a, na);
  if (na == 0) return 0;
  if (nb / na >= kGallopRatio) {
    size_t j = 0, count = 0;
    for (size_t i = 0; i < na; ++i) {
      j = GallopLowerBound(b, nb, j, a[i]);
      if (j == nb) break;
      if (b[j] == a[i]) {
        ++count;
        ++j;
      }
    }
    return count;
  }
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    uint64_t va = a[i];
    uint64_t vb = b[j];
    count += static_cast<size_t>(va == vb);
    i += static_cast<size_t>(va <= vb);
    j += static_cast<size_t>(vb <= va);
  }
  return count;
}

size_t DifferenceSorted(const uint64_t* a, size_t na, const uint64_t* b,
                        size_t nb, uint64_t* out) {
  // Keep a[i] unless it appears in b. Gallop through b when it is much
  // longer (the expansion case: one friend list vs the accumulated seen
  // set); plain merge otherwise.
  size_t k = 0;
  if (na != 0 && nb / (na + 1) >= kGallopRatio) {
    size_t j = 0;
    for (size_t i = 0; i < na; ++i) {
      j = GallopLowerBound(b, nb, j, a[i]);
      if (j == nb || b[j] != a[i]) out[k++] = a[i];
    }
    return k;
  }
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    uint64_t va = a[i];
    uint64_t vb = b[j];
    out[k] = va;
    k += static_cast<size_t>(va < vb);
    i += static_cast<size_t>(va <= vb);
    j += static_cast<size_t>(vb <= va);
  }
  while (i < na) out[k++] = a[i++];
  return k;
}

}  // namespace snb::exec
