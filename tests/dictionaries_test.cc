// Tests for the correlated dictionaries (section 2.1 of the paper).
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "schema/dictionaries.h"
#include "util/rng.h"

namespace snb::schema {
namespace {

using util::RandomPurpose;
using util::Rng;

class DictionariesTest : public ::testing::Test {
 protected:
  Dictionaries dict_{42};

  PlaceId CountryIdByName(const std::string& name) {
    for (size_t i = 0; i < dict_.countries().size(); ++i) {
      if (dict_.countries()[i].name == name) return static_cast<PlaceId>(i);
    }
    ADD_FAILURE() << "country not found: " << name;
    return 0;
  }

  // Top-k first names for a country by sampled frequency.
  std::vector<std::string> TopFirstNames(PlaceId country, uint8_t gender,
                                         int k, int draws = 20000) {
    std::map<size_t, int> counts;
    Rng rng(7, country * 2 + gender, RandomPurpose::kFirstName);
    for (int i = 0; i < draws; ++i) {
      ++counts[dict_.SampleFirstNameIndex(country, gender, rng)];
    }
    std::vector<std::pair<int, size_t>> ranked;
    for (auto& [idx, c] : counts) ranked.push_back({c, idx});
    std::sort(ranked.rbegin(), ranked.rend());
    std::vector<std::string> names;
    for (int i = 0; i < k && i < static_cast<int>(ranked.size()); ++i) {
      names.push_back(dict_.FirstName(ranked[i].second));
    }
    return names;
  }
};

TEST_F(DictionariesTest, HasExpectedCardinalities) {
  EXPECT_EQ(dict_.countries().size(), 30u);
  EXPECT_EQ(dict_.cities().size(), 120u);        // 4 per country.
  EXPECT_EQ(dict_.universities().size(), 240u);  // 2 per city.
  EXPECT_EQ(dict_.companies().size(), 240u);     // 8 per country.
  EXPECT_EQ(dict_.tag_classes().size(), 16u);
  EXPECT_EQ(dict_.tags().size(), 640u);  // 40 per class.
  EXPECT_EQ(dict_.first_name_count(), 400u);
  EXPECT_EQ(dict_.last_name_count(), 400u);
  EXPECT_GT(dict_.word_count(), 1000u);
  // Languages: en + one per country.
  EXPECT_EQ(dict_.languages().size(), 31u);
}

TEST_F(DictionariesTest, DeterministicAcrossInstances) {
  Dictionaries other(42);
  ASSERT_EQ(dict_.cities().size(), other.cities().size());
  for (size_t i = 0; i < dict_.cities().size(); ++i) {
    EXPECT_EQ(dict_.cities()[i].name, other.cities()[i].name);
  }
  Rng a(1, 2, RandomPurpose::kInterests);
  Rng b(1, 2, RandomPurpose::kInterests);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict_.SampleInterestTag(3, a), other.SampleInterestTag(3, b));
  }
}

// Table 2 of the paper: top-10 German male names vs top-10 Chinese names
// must be the curated, disjoint lists.
TEST_F(DictionariesTest, Table2TypicalNamesGermanyVsChina) {
  PlaceId germany = CountryIdByName("Germany");
  PlaceId china = CountryIdByName("China");
  std::vector<std::string> german = TopFirstNames(germany, 0, 10);
  std::vector<std::string> chinese = TopFirstNames(china, 0, 10);

  // The most frequent German male name is one of the curated top names.
  std::vector<std::string> curated_german = {
      "Karl",  "Hans", "Wolfgang", "Fritz", "Rudolf",
      "Walter", "Franz", "Paul",   "Otto",  "Wilhelm"};
  std::vector<std::string> curated_chinese = {
      "Yang", "Chen", "Wei", "Lei", "Jun",
      "Jie",  "Li",   "Hao", "Lin", "Peng"};
  int german_hits = 0, chinese_hits = 0;
  for (const std::string& n : german) {
    if (std::find(curated_german.begin(), curated_german.end(), n) !=
        curated_german.end()) {
      ++german_hits;
    }
  }
  for (const std::string& n : chinese) {
    if (std::find(curated_chinese.begin(), curated_chinese.end(), n) !=
        curated_chinese.end()) {
      ++chinese_hits;
    }
  }
  EXPECT_GE(german_hits, 8);
  EXPECT_GE(chinese_hits, 8);

  // The two top-10 lists are (near) disjoint: names are typical per country.
  int overlap = 0;
  for (const std::string& n : german) {
    if (std::find(chinese.begin(), chinese.end(), n) != chinese.end()) {
      ++overlap;
    }
  }
  EXPECT_LE(overlap, 1);
}

TEST_F(DictionariesTest, NameDistributionIsSkewed) {
  PlaceId germany = CountryIdByName("Germany");
  Rng rng(9, 1, RandomPurpose::kFirstName);
  std::map<size_t, int> counts;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[dict_.SampleFirstNameIndex(germany, 0, rng)];
  }
  // Top value takes a large share; distribution far from uniform.
  int max_count = 0;
  for (auto& [_, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, kDraws / 10);
  EXPECT_LT(counts.size(), dict_.first_name_count());
}

TEST_F(DictionariesTest, UniversityMostlyLocal) {
  PlaceId germany = CountryIdByName("Germany");
  Rng rng(11, 1, RandomPurpose::kUniversity);
  int local = 0, total = 0, none = 0;
  for (int i = 0; i < 5000; ++i) {
    OrganizationId uni = dict_.SampleUniversity(germany, rng);
    if (uni == kInvalidId32) {
      ++none;
      continue;
    }
    ++total;
    PlaceId city = dict_.universities()[uni].city_id;
    if (dict_.CountryOfCity(city) == germany) ++local;
  }
  EXPECT_GT(total, 0);
  // ~80% have a university; of those, ~90% local.
  EXPECT_NEAR(static_cast<double>(none) / 5000.0, 0.2, 0.05);
  EXPECT_GT(static_cast<double>(local) / total, 0.85);
}

TEST_F(DictionariesTest, CompanyMostlyInCountry) {
  PlaceId japan = CountryIdByName("Japan");
  Rng rng(13, 1, RandomPurpose::kCompany);
  int local = 0, total = 0;
  for (int i = 0; i < 5000; ++i) {
    OrganizationId company = dict_.SampleCompany(japan, rng);
    if (company == kInvalidId32) continue;
    ++total;
    if (dict_.companies()[company].country_id == japan) ++local;
  }
  EXPECT_GT(static_cast<double>(local) / total, 0.75);
}

TEST_F(DictionariesTest, CountrySamplingFollowsPopulation) {
  Rng rng(15, 1, RandomPurpose::kLocation);
  std::vector<int> counts(dict_.countries().size(), 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[dict_.SampleCountry(rng)];
  // China (weight 1400) must dominate Netherlands (weight 17).
  PlaceId china = CountryIdByName("China");
  PlaceId netherlands = CountryIdByName("Netherlands");
  EXPECT_GT(counts[china], counts[netherlands] * 20);
}

TEST_F(DictionariesTest, InterestTagsDifferByCountry) {
  PlaceId brazil = CountryIdByName("Brazil");
  PlaceId india = CountryIdByName("India");
  Rng rng_b(17, 1, RandomPurpose::kInterests);
  Rng rng_i(17, 2, RandomPurpose::kInterests);
  std::map<TagId, int> top_b, top_i;
  for (int i = 0; i < 10000; ++i) {
    ++top_b[dict_.SampleInterestTag(brazil, rng_b)];
    ++top_i[dict_.SampleInterestTag(india, rng_i)];
  }
  auto top_tag = [](const std::map<TagId, int>& counts) {
    TagId best = 0;
    int best_count = -1;
    for (auto& [tag, c] : counts) {
      if (c > best_count) {
        best = tag;
        best_count = c;
      }
    }
    return best;
  };
  EXPECT_NE(top_tag(top_b), top_tag(top_i));
}

TEST_F(DictionariesTest, LanguagesStartWithNative) {
  PlaceId france = CountryIdByName("France");
  Rng rng(19, 1, RandomPurpose::kLanguages);
  for (int i = 0; i < 100; ++i) {
    std::vector<uint32_t> langs = dict_.SampleLanguages(france, rng);
    ASSERT_FALSE(langs.empty());
    EXPECT_EQ(langs[0], dict_.NativeLanguage(france));
  }
}

TEST_F(DictionariesTest, TextCorrelatesWithTopic) {
  // Texts about the same topic share vocabulary; different topics mostly
  // don't (the word-rank permutation is keyed by topic).
  Rng rng(21, 1, RandomPurpose::kPostText);
  auto words_of = [&](TagId topic) {
    std::map<std::string, int> counts;
    for (int i = 0; i < 50; ++i) {
      std::string text = dict_.GenerateText(topic, 20, 30, rng);
      size_t pos = 0;
      while (pos < text.size()) {
        size_t space = text.find(' ', pos);
        if (space == std::string::npos) space = text.size();
        ++counts[text.substr(pos, space - pos)];
        pos = space + 1;
      }
    }
    return counts;
  };
  std::map<std::string, int> topic_a = words_of(5);
  std::map<std::string, int> topic_a2 = words_of(5);
  std::map<std::string, int> topic_b = words_of(300);

  auto top_word = [](const std::map<std::string, int>& counts) {
    std::string best;
    int best_count = -1;
    for (auto& [w, c] : counts) {
      if (c > best_count) {
        best = w;
        best_count = c;
      }
    }
    return best;
  };
  EXPECT_EQ(top_word(topic_a), top_word(topic_a2));
  EXPECT_NE(top_word(topic_a), top_word(topic_b));
}

TEST_F(DictionariesTest, CitiesBelongToTheirCountry) {
  for (size_t ci = 0; ci < dict_.countries().size(); ++ci) {
    for (PlaceId city : dict_.countries()[ci].cities) {
      EXPECT_EQ(dict_.cities()[city].country_id, static_cast<PlaceId>(ci));
      // City coordinates near country centroid.
      EXPECT_NEAR(dict_.cities()[city].latitude,
                  dict_.countries()[ci].latitude, 4.0);
    }
  }
}

}  // namespace
}  // namespace snb::schema
