// Epoch-based reclamation (EBR) for lock-free snapshot reads.
//
// The store's read path must scale with driver threads (paper section 4.2:
// the benchmark is only meaningful when the SUT sustains the accelerated
// stream). A global reader-writer lock serializes every query on one cache
// line; instead, readers announce themselves in per-thread epoch slots on
// separate cache lines and writers publish new versions of data structures
// with atomic pointer stores, deferring frees until no reader can still
// hold the old version.
//
// Scheme (classic three-epoch EBR, Fraser 2004 / Keir's scheme as used by
// crossbeam and many kernels):
//   * A global epoch counter advances monotonically.
//   * A reader pins the current epoch in its slot for the duration of a
//     critical section (an `EpochPin`); 0 means quiescent. Pinning is two
//     uncontended atomic ops on a thread-private cache line — no shared
//     write, which is what removes the reader-side scalability ceiling.
//   * A writer that unlinks an object (replaces its published pointer)
//     retires it under the current epoch. The global epoch can advance from
//     E to E+1 only when every pinned slot equals E; garbage retired in
//     epoch R is freed once the global epoch reaches R+2, because by then
//     every reader that could have loaded the old pointer has unpinned.
//
// Safety argument for the stale-pin race (reader loads the global epoch,
// stalls, then publishes an old value): a pin that lags the global epoch
// only *blocks advancement longer* — frees require two further advances
// past the retire epoch, and each advance requires every pinned slot to
// have caught up — so staleness delays reclamation but never permits a
// premature free.
//
// Pin cost: the pin must be ordered before the critical section's pointer
// loads from the *writer's* point of view, which naively needs a seq_cst
// store (a full fence) on every Enter. Where the kernel offers
// membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED) we instead use asymmetric
// fencing, the liburcu "expedited membarrier" flavour: readers pin with a
// relaxed store + compiler-only fence + acquire re-check, and the writer
// issues one membarrier — a full barrier on every thread of the process —
// before scanning slots (and one after advancing). A reader whose pin
// store is still in its store buffer when the writer scans gets it
// flushed by the membarrier IPI, so the scan cannot miss it; a reader
// that pins after the scan must have re-checked the global epoch with an
// acquire load and therefore observes every unlink that preceded the
// advance. Without membarrier (non-Linux, old kernels, or TSan, which
// cannot see cross-thread IPI ordering) we fall back to seq_cst pins.
//
// The pin is also a *capability token* (see DESIGN.md "Static analysis &
// concurrency discipline"): `EpochPin` cannot be default-constructed or
// copied, only obtained from `EpochManager::pin()`, and every snapshot-read
// entry point of the store takes a `const EpochPin&`. "Read without a pin"
// is therefore a compile error, not a latent use-after-reclaim.
//
// Writers are expected to be externally serialized per data structure
// (the store is single-writer); Retire/TryReclaim are nevertheless guarded
// by an internal mutex so that multiple stores can share one manager.
#ifndef SNB_UTIL_EPOCH_H_
#define SNB_UTIL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::util {

class EpochPin;

class EpochManager {
 public:
  /// Maximum concurrently registered reader threads.
  static constexpr size_t kMaxThreads = 256;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;
  ~EpochManager();

  /// Process-wide manager shared by all stores. Intentionally leaked so
  /// thread-exit slot release never races manager destruction.
  static EpochManager& Global();

  /// Number of process-wide epoch domains reachable via Domain(). Sharded
  /// stores give each shard its own domain so one shard's writer scans
  /// only the reader slots of threads that actually pinned that shard.
  static constexpr size_t kMaxDomains = 8;

  /// Process-wide leaked domain pool. `Domain(0)` IS `Global()`, so a
  /// single-shard store running on domain 0 behaves bit-for-bit like the
  /// pre-sharding store; indices 1..kMaxDomains-1 are distinct managers.
  /// Like Global(), every domain is leaked: threads cache slot bindings
  /// until thread exit, so a domain must never be destructed. Aborts on
  /// an out-of-range index.
  static EpochManager& Domain(size_t index);

  // ---- Reader side ------------------------------------------------------

  /// Pins the current epoch for this thread and returns the capability
  /// token proving it. Nestable; only the outermost pin touches the slot.
  /// This is the ONLY way to obtain an EpochPin.
  EpochPin pin();

  // ---- Writer side ------------------------------------------------------

  /// Defers `deleter(p)` until no reader pinned at or before the current
  /// epoch can still reference `p`. The caller must already have unlinked
  /// `p` from every published location.
  void Retire(void* p, void (*deleter)(void*)) SNB_EXCLUDES(retire_mu_);

  template <typename T>
  void Retire(T* p) {
    Retire(static_cast<void*>(p),
           [](void* q) { delete static_cast<T*>(q); });
  }

  /// Attempts one epoch advance and frees every object whose retire epoch
  /// is two or more advances old. Cheap when nothing is reclaimable.
  /// Returns the number of objects freed.
  size_t TryReclaim() SNB_EXCLUDES(retire_mu_);

  /// Reclaims until the limbo list is empty. Spins on TryReclaim, so the
  /// caller must guarantee that no thread stays pinned indefinitely (and
  /// must not itself hold a pin). Test/shutdown helper.
  void DrainForTesting() SNB_EXCLUDES(retire_mu_);

  uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  /// Objects retired but not yet freed.
  size_t pending() const SNB_EXCLUDES(retire_mu_);

  /// Cumulative reclamation activity since construction. `pending` is the
  /// instantaneous retired-but-unfreed backlog (== retired - freed).
  struct EpochStats {
    uint64_t advances = 0;
    uint64_t retired = 0;
    uint64_t freed = 0;
    uint64_t pending = 0;
  };
  EpochStats stats() const;

  /// Internal: returns a slot to the free pool from the TLS destructor at
  /// thread exit, so thread churn does not exhaust kMaxThreads. The
  /// manager the slot belongs to must still be alive — managers must
  /// outlive every thread that entered them (Global() is leaked for this).
  static void ReleaseSlotAtThreadExit(void* slot);

  /// True when readers pin with plain stores and the writer shoulders the
  /// fencing via membarrier(2) (see file comment). Exposed for tests.
  bool asymmetric_pins() const { return asymmetric_pins_; }

 private:
  friend class EpochPin;

  struct alignas(64) Slot {
    /// Epoch the owning thread is pinned at; 0 = quiescent.
    std::atomic<uint64_t> epoch{0};
    /// Non-zero when a live thread owns this slot.
    std::atomic<uint32_t> claimed{0};
  };

  struct Garbage {
    void* ptr;
    void (*deleter)(void*);
    uint64_t retire_epoch;
  };

  /// Reader-side slot transitions; private so that pins are the only
  /// entry point into a critical section (EpochPin calls these).
  void Enter();
  void Exit();

  Slot* ClaimSlot();
  /// Advance + free; caller holds retire_mu_.
  size_t ReclaimLocked() SNB_REQUIRES(retire_mu_);

  /// One-time probe + registration for expedited membarrier.
  static bool DetectAsymmetricPins();

  /// Epochs start at 1 so that 0 can mean "quiescent" in slots.
  std::atomic<uint64_t> global_epoch_{1};
  /// Cumulative stats(); relaxed — observability only, never synchronizes.
  std::atomic<uint64_t> advances_{0};
  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> freed_total_{0};
  const bool asymmetric_pins_ = DetectAsymmetricPins();
  Slot slots_[kMaxThreads];

  mutable Mutex retire_mu_;
  /// FIFO: retire epochs are non-decreasing, so reclaimable entries form a
  /// prefix.
  std::deque<Garbage> garbage_ SNB_GUARDED_BY(retire_mu_);
};

/// Capability token for an epoch critical section. Holding a live
/// `EpochPin` proves the calling thread has its epoch slot pinned, so
/// RCU-published pointers it loads stay valid. Move-only, and constructible
/// ONLY via `EpochManager::pin()` — an API that demands `const EpochPin&`
/// is therefore statically unreachable from unpinned code (the
/// tests/negative cases prove this fails to compile).
///
/// A moved-from pin is disengaged (its destructor is a no-op); the moved-to
/// pin carries the capability. Pins nest: a thread may hold several, and
/// only the outermost Enter/Exit pair touches the epoch slot.
class EpochPin {
 public:
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  EpochPin(EpochPin&& other) noexcept : manager_(other.manager_) {
    other.manager_ = nullptr;
  }
  EpochPin& operator=(EpochPin&& other) noexcept {
    if (this != &other) {
      if (manager_ != nullptr) manager_->Exit();
      manager_ = other.manager_;
      other.manager_ = nullptr;
    }
    return *this;
  }
  ~EpochPin() {
    if (manager_ != nullptr) manager_->Exit();
  }

  bool engaged() const { return manager_ != nullptr; }

 private:
  friend class EpochManager;
  explicit EpochPin(EpochManager* manager) : manager_(manager) {}

  EpochManager* manager_;
};

inline EpochPin EpochManager::pin() {
  Enter();
  return EpochPin(this);
}

}  // namespace snb::util

// The token is spelled `snb::EpochPin` at store API boundaries.
namespace snb {
using util::EpochPin;
}  // namespace snb

#endif  // SNB_UTIL_EPOCH_H_
