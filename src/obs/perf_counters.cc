#include "obs/perf_counters.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/mutex.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace snb::obs::perf {
namespace {

const char* const kHwMetricNames[kNumHwMetrics] = {
    "hw.cycles",       "hw.instructions", "hw.llc_load_misses",
    "hw.branch_misses", "hw.task_clock_ns",
};

/// Backend state. `g_session` is bumped on every Enable()/ResetForTest()
/// so thread-local counter groups opened under an older session re-open
/// lazily instead of reading stale fds.
std::atomic<Backend> g_backend{Backend::kDisabled};
std::atomic<uint64_t> g_session{0};
std::atomic<int> g_forced_errno{0};

/// Guards g_message (written by Enable/Reset, read by BackendMessage —
/// both cold paths).
util::Mutex g_message_mu;
std::string& MessageStorage() {
  static std::string storage;
  return storage;
}

void SetMessage(const std::string& message) {
  util::MutexLock lock(&g_message_mu);
  MessageStorage() = message;
}

#if defined(__linux__)

long PerfEventOpen(struct perf_event_attr* attr, pid_t pid, int cpu,
                   int group_fd, unsigned long flags) {
  int forced = g_forced_errno.load(std::memory_order_relaxed);
  if (forced != 0) {
    errno = forced;
    return -1;
  }
  return ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// (type, config) of each HwMetric's perf event. User-space only
/// (exclude_kernel) so perf_event_paranoid <= 2 suffices.
void FillAttr(HwMetric m, struct perf_event_attr* attr) {
  std::memset(attr, 0, sizeof(*attr));
  attr->size = sizeof(*attr);
  attr->exclude_kernel = 1;
  attr->exclude_hv = 1;
  attr->read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                      PERF_FORMAT_TOTAL_TIME_ENABLED |
                      PERF_FORMAT_TOTAL_TIME_RUNNING;
  switch (m) {
    case HwMetric::kCycles:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case HwMetric::kInstructions:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case HwMetric::kLlcLoadMisses:
      attr->type = PERF_TYPE_HW_CACHE;
      attr->config = PERF_COUNT_HW_CACHE_LL |
                     (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                     (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case HwMetric::kBranchMisses:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_BRANCH_MISSES;
      break;
    case HwMetric::kTaskClockNs:
      attr->type = PERF_TYPE_SOFTWARE;
      attr->config = PERF_COUNT_SW_TASK_CLOCK;
      break;
    case HwMetric::kCount:
      break;
  }
}

/// One thread's counter group: a leader plus followers sharing one group
/// read (a single read() syscall yields a consistent snapshot of every
/// open counter). Metrics whose event fails to open (PMU slot pressure,
/// unsupported cache event in a VM) are simply absent from the mask.
class ThreadGroup {
 public:
  ~ThreadGroup() { Close(); }

  HwCounts Read(uint64_t session) {
    if (session != session_) {
      Close();
      session_ = session;
      Open();
    }
    HwCounts out;
    if (leader_fd_ < 0) return out;
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
    // then (value, id) per counter.
    uint64_t buf[3 + 2 * kNumHwMetrics] = {};
    ssize_t n = ::read(leader_fd_, buf, sizeof(buf));
    if (n < static_cast<ssize_t>(3 * sizeof(uint64_t))) return out;
    uint64_t nr = buf[0];
    uint64_t enabled = buf[1];
    uint64_t running = buf[2];
    if (running == 0) return out;  // Group never scheduled onto the PMU.
    double scale = running < enabled
                       ? static_cast<double>(enabled) /
                             static_cast<double>(running)
                       : 1.0;
    for (uint64_t i = 0; i < nr && i < kNumHwMetrics; ++i) {
      uint64_t value = buf[3 + 2 * i];
      uint64_t id = buf[3 + 2 * i + 1];
      for (size_t m = 0; m < kNumHwMetrics; ++m) {
        if (ids_[m] != id || fds_[m] < 0) continue;
        out.v[m] = scale == 1.0
                       ? value
                       : static_cast<uint64_t>(
                             static_cast<double>(value) * scale);
        out.mask |= 1u << m;
        break;
      }
    }
    return out;
  }

 private:
  void Open() {
    for (size_t m = 0; m < kNumHwMetrics; ++m) {
      struct perf_event_attr attr;
      FillAttr(static_cast<HwMetric>(m), &attr);
      attr.disabled = leader_fd_ < 0 ? 1 : 0;  // Leader starts the group.
      int fd = static_cast<int>(
          PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, leader_fd_, 0));
      if (fd < 0) continue;
      uint64_t id = 0;
      if (::ioctl(fd, PERF_EVENT_IOC_ID, &id) != 0) {
        ::close(fd);
        continue;
      }
      fds_[m] = fd;
      ids_[m] = id;
      if (leader_fd_ < 0) leader_fd_ = fd;
    }
    if (leader_fd_ >= 0) {
      ::ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
      ::ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
  }

  void Close() {
    for (size_t m = 0; m < kNumHwMetrics; ++m) {
      if (fds_[m] >= 0) ::close(fds_[m]);
      fds_[m] = -1;
      ids_[m] = 0;
    }
    leader_fd_ = -1;
  }

  int leader_fd_ = -1;
  int fds_[kNumHwMetrics] = {-1, -1, -1, -1, -1};
  uint64_t ids_[kNumHwMetrics] = {};
  uint64_t session_ = 0;  // 0 never matches a live session (they start at 1).
};

ThreadGroup& LocalGroup() {
  thread_local ThreadGroup group;
  return group;
}

/// Probe: can this process open a plain user-space cycles counter on the
/// calling thread? Returns 0 or the failing errno.
int ProbeCycles() {
  struct perf_event_attr attr;
  FillAttr(HwMetric::kCycles, &attr);
  attr.disabled = 1;
  long fd = PerfEventOpen(&attr, 0, -1, -1, 0);
  if (fd < 0) return errno != 0 ? errno : EIO;
  ::close(static_cast<int>(fd));
  return 0;
}

#else  // !__linux__

int ProbeCycles() { return ENOSYS; }

#endif  // __linux__

}  // namespace

const char* HwMetricName(HwMetric m) {
  size_t i = static_cast<size_t>(m);
  return i < kNumHwMetrics ? kHwMetricNames[i] : "unknown";
}

HwCounts HwCounts::DeltaSince(const HwCounts& earlier) const {
  HwCounts out;
  out.mask = mask & earlier.mask;
  for (size_t m = 0; m < kNumHwMetrics; ++m) {
    if ((out.mask & (1u << m)) == 0) continue;
    out.v[m] = v[m] >= earlier.v[m] ? v[m] - earlier.v[m] : 0;
  }
  return out;
}

void HwCounts::Accumulate(const HwCounts& other) {
  if (!other.valid()) return;
  mask |= other.mask;
  for (size_t m = 0; m < kNumHwMetrics; ++m) {
    if (other.mask & (1u << m)) v[m] += other.v[m];
  }
}

double HwCounts::Ipc() const {
  if (!Has(HwMetric::kCycles) || !Has(HwMetric::kInstructions)) return 0.0;
  uint64_t cycles = Value(HwMetric::kCycles);
  if (cycles == 0) return 0.0;
  return static_cast<double>(Value(HwMetric::kInstructions)) /
         static_cast<double>(cycles);
}

double HwCounts::LlcMissesPerKiloInstr() const {
  if (!Has(HwMetric::kLlcLoadMisses) || !Has(HwMetric::kInstructions)) {
    return 0.0;
  }
  uint64_t instr = Value(HwMetric::kInstructions);
  if (instr == 0) return 0.0;
  return 1000.0 * static_cast<double>(Value(HwMetric::kLlcLoadMisses)) /
         static_cast<double>(instr);
}

double HwCounts::BranchMissesPerKiloInstr() const {
  if (!Has(HwMetric::kBranchMisses) || !Has(HwMetric::kInstructions)) {
    return 0.0;
  }
  uint64_t instr = Value(HwMetric::kInstructions);
  if (instr == 0) return 0.0;
  return 1000.0 * static_cast<double>(Value(HwMetric::kBranchMisses)) /
         static_cast<double>(instr);
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kDisabled:
      return "disabled";
    case Backend::kNoop:
      return "noop";
    case Backend::kLinux:
      return "linux";
  }
  return "unknown";
}

Backend Enable(const EnableOptions& options) {
  g_session.fetch_add(1, std::memory_order_relaxed);
  const char* forced_env = std::getenv("SNB_PERF_FORCE_NOOP");
  if (options.force_noop ||
      (forced_env != nullptr && forced_env[0] != '\0' &&
       std::strcmp(forced_env, "0") != 0)) {
    SetMessage(options.force_noop ? "no-op backend forced by caller"
                                  : "no-op backend forced by "
                                    "SNB_PERF_FORCE_NOOP");
    g_backend.store(Backend::kNoop, std::memory_order_release);
    return Backend::kNoop;
  }
  int err = ProbeCycles();
  if (err != 0) {
    SetMessage(std::string("perf_event_open failed: ") +
               std::strerror(err) +
               " — hardware counters unavailable, continuing with the "
               "no-op backend");
    g_backend.store(Backend::kNoop, std::memory_order_release);
    return Backend::kNoop;
  }
  SetMessage("hardware counters live (per-thread perf_event groups)");
  g_backend.store(Backend::kLinux, std::memory_order_release);
  return Backend::kLinux;
}

void ResetForTest() {
  g_session.fetch_add(1, std::memory_order_relaxed);
  g_backend.store(Backend::kDisabled, std::memory_order_release);
  SetMessage("");
}

Backend ActiveBackend() {
  return g_backend.load(std::memory_order_acquire);
}

bool CountersLive() { return ActiveBackend() == Backend::kLinux; }

std::string BackendMessage() {
  util::MutexLock lock(&g_message_mu);
  return MessageStorage();
}

void SetPerfEventOpenErrnoForTest(int err) {
  g_forced_errno.store(err, std::memory_order_relaxed);
}

HwCounts ReadThreadCounters() {
#if defined(__linux__)
  if (!CountersLive()) return HwCounts{};
  return LocalGroup().Read(g_session.load(std::memory_order_relaxed));
#else
  return HwCounts{};
#endif
}

}  // namespace snb::obs::perf
