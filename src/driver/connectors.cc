#include "driver/connectors.h"

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "driver/shard_writers.h"
#include "exec/exec_mode.h"
#include "queries/batched_queries.h"
#include "queries/complex_queries.h"
#include "queries/query9_plans.h"
#include "queries/short_queries.h"
#include "queries/update_queries.h"
#include "util/stopwatch.h"
#include "util/rng.h"

namespace snb::driver {

using queries::GraphStore;
using util::RandomPurpose;
using util::Rng;
using util::Status;
using util::Stopwatch;

namespace {

// Busy-waits for the configured dispatch overhead (sleep granularity is too
// coarse for tens of microseconds).
void SpinFor(int64_t micros) {
  if (micros <= 0) return;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

StoreConnector::StoreConnector(
    store::GraphStore* store,
    const std::vector<datagen::UpdateOperation>* updates,
    const schema::Dictionaries* dictionaries,
    obs::MetricsRegistry* metrics, ShortReadWalkConfig walk,
    int64_t dispatch_overhead_us, obs::TraceBuffer* trace,
    obs::DossierCollector* dossiers)
    : store_(store),
      updates_(updates),
      dict_(dictionaries),
      metrics_(metrics),
      walk_(walk),
      dispatch_overhead_us_(dispatch_overhead_us),
      trace_(trace),
      dossiers_(dossiers) {
  for (const schema::City& c : dict_->cities()) {
    city_country_.push_back(c.country_id);
  }
  for (const schema::Company& c : dict_->companies()) {
    company_country_.push_back(c.country_id);
  }
  tag_in_class_.assign(dict_->tag_classes().size(),
                       std::vector<bool>(dict_->tags().size(), false));
  for (size_t t = 0; t < dict_->tags().size(); ++t) {
    tag_in_class_[dict_->tags()[t].tag_class_id][t] = true;
  }
}

Status StoreConnector::Execute(const Operation& op) {
  // In epoch mode, pin once for the whole operation: the guards taken
  // inside each query then nest for free (a thread-local counter bump
  // instead of an epoch publish), and the short-read walk spawned by a
  // complex read runs under a single pin. Never wrap reads in a shared
  // lock here — a nested shared_lock would deadlock against a waiting
  // writer in kGlobalLock mode.
  std::optional<store::ShardSnapshot> outer_pin;
  if (op.type != OperationType::kUpdate &&
      store_->read_concurrency() == store::ReadConcurrency::kEpoch) {
    outer_pin = store_->PinShards();
  }
  switch (op.type) {
    case OperationType::kComplexRead:
      return ExecuteComplex(op);
    case OperationType::kShortRead:
      return ExecuteShort(op.query_id, op.person_param,
                          static_cast<schema::MessageId>(op.aux0));
    case OperationType::kUpdate:
      return ExecuteUpdate(op);
  }
  return Status::InvalidArgument("unknown operation type");
}

Status StoreConnector::ExecuteComplex(const Operation& op) {
  Stopwatch watch;
  obs::perf::ScopedHwCounts hw_scope;
  SpinFor(dispatch_overhead_us_);
  std::vector<schema::PersonId> result_persons;
  std::vector<schema::MessageId> result_messages;
  // Filled for Q9 when dossiers are armed: the tail-attribution pass needs
  // the per-operator breakdown, and only the profiled plan entry points
  // produce one.
  std::optional<queries::Q9OperatorProfile> q9_profile;
  switch (op.query_id) {
    case 1: {
      auto rows = queries::Query1(*store_, op.person_param,
                                  dict_->FirstName(op.aux0));
      for (const auto& r : rows) result_persons.push_back(r.person_id);
      break;
    }
    case 2: {
      auto rows = queries::Query2(*store_, op.person_param,
                                  static_cast<util::TimestampMs>(op.aux0));
      for (const auto& r : rows) {
        result_persons.push_back(r.creator_id);
        result_messages.push_back(r.message_id);
      }
      break;
    }
    case 3: {
      auto rows = queries::Query3(
          *store_, op.person_param, city_country_,
          static_cast<schema::PlaceId>(op.aux0 & 0xff),
          static_cast<schema::PlaceId>((op.aux0 >> 8) & 0xff),
          static_cast<util::TimestampMs>(op.aux1), 30);
      for (const auto& r : rows) result_persons.push_back(r.person_id);
      break;
    }
    case 4: {
      queries::Query4(*store_, op.person_param,
                      static_cast<util::TimestampMs>(op.aux0),
                      static_cast<int>(op.aux1));
      break;
    }
    case 5: {
      queries::Query5(*store_, op.person_param,
                      static_cast<util::TimestampMs>(op.aux0));
      break;
    }
    case 6: {
      queries::Query6(*store_, op.person_param,
                      static_cast<schema::TagId>(op.aux0));
      break;
    }
    case 7: {
      auto rows = queries::Query7(*store_, op.person_param);
      for (const auto& r : rows) {
        result_persons.push_back(r.liker_id);
        result_messages.push_back(r.message_id);
      }
      break;
    }
    case 8: {
      auto rows = queries::Query8(*store_, op.person_param);
      for (const auto& r : rows) {
        result_persons.push_back(r.replier_id);
        result_messages.push_back(r.comment_id);
      }
      break;
    }
    case 9: {
      auto max_date = static_cast<util::TimestampMs>(op.aux0);
      std::vector<queries::Q9Result> rows;
      if (dossiers_ != nullptr) {
        // Result-identical profiled variants of the engine Query9 would
        // pick anyway (both are differentially fuzzed against Query9).
        q9_profile.emplace();
        if (exec::DefaultExecMode() == exec::ExecMode::kBatched) {
          rows = queries::Query9Batched(*store_, op.person_param, max_date,
                                        20, nullptr, &*q9_profile);
        } else {
          rows = queries::Query9WithPlan(
              *store_, op.person_param, max_date, 20,
              queries::JoinStrategy::kIndexNestedLoop,
              queries::JoinStrategy::kIndexNestedLoop,
              queries::JoinStrategy::kIndexNestedLoop, nullptr,
              &*q9_profile);
        }
      } else {
        rows = queries::Query9(*store_, op.person_param, max_date);
      }
      for (const auto& r : rows) {
        result_persons.push_back(r.creator_id);
        result_messages.push_back(r.message_id);
      }
      break;
    }
    case 10: {
      auto rows = queries::Query10(*store_, op.person_param,
                                   static_cast<int>(op.aux0));
      for (const auto& r : rows) result_persons.push_back(r.person_id);
      break;
    }
    case 11: {
      auto rows = queries::Query11(
          *store_, op.person_param, company_country_,
          static_cast<schema::PlaceId>(op.aux0),
          static_cast<uint16_t>(op.aux1));
      for (const auto& r : rows) result_persons.push_back(r.person_id);
      break;
    }
    case 12: {
      auto rows = queries::Query12(
          *store_, op.person_param,
          tag_in_class_[op.aux0 % tag_in_class_.size()]);
      for (const auto& r : rows) result_persons.push_back(r.person_id);
      break;
    }
    case 13: {
      queries::Query13(*store_, op.person_param, op.person_param2);
      break;
    }
    case 14: {
      queries::Query14(*store_, op.person_param, op.person_param2);
      break;
    }
    default:
      return Status::InvalidArgument("complex query id out of range");
  }
  uint64_t latency_ns = watch.ElapsedNanos();
  obs::perf::HwCounts hw = hw_scope.Delta();
  if (metrics_ != nullptr) {
    metrics_->RecordLatencyNs(obs::ComplexOp(op.query_id), latency_ns);
    metrics_->RecordHwCounts(obs::ComplexOp(op.query_id), hw);
  }
  std::vector<obs::DossierOperatorRow> operators;
  if (q9_profile.has_value()) {
    for (auto& [name, stats] : queries::ProfileRows(*q9_profile)) {
      obs::DossierOperatorRow row;
      row.name = name;
      row.invocations = stats.invocations;
      row.time_ns = stats.time_ns;
      row.rows = stats.rows;
      row.hw = stats.hw;
      row.hw_invocations = stats.hw_invocations;
      operators.push_back(std::move(row));
    }
  }
  OfferDossier(obs::ComplexOp(op.query_id), latency_ns, hw,
               std::move(operators));
  RunShortReadWalk(op, result_persons, result_messages);
  return Status::Ok();
}

Status StoreConnector::ExecuteShort(uint8_t query_id,
                                    schema::PersonId person,
                                    schema::MessageId message) {
  // Trace the short read even when it was walk-spawned: the sub-span nests
  // inside the driver-recorded complex-read span on the same lane.
  obs::TraceEvent event;
  if (trace_ != nullptr) {
    event.op = obs::ShortOp(query_id);
    event.exec_begin_ns = trace_->NowNs();
  }
  Stopwatch watch;
  obs::perf::ScopedHwCounts hw_scope;
  SpinFor(dispatch_overhead_us_);
  switch (query_id) {
    case 1:
      queries::ShortQuery1PersonProfile(*store_, person);
      break;
    case 2:
      queries::ShortQuery2RecentMessages(*store_, person);
      break;
    case 3:
      queries::ShortQuery3Friends(*store_, person);
      break;
    case 4:
      queries::ShortQuery4MessageContent(*store_, message);
      break;
    case 5:
      queries::ShortQuery5MessageCreator(*store_, message);
      break;
    case 6:
      queries::ShortQuery6MessageForum(*store_, message);
      break;
    case 7:
      queries::ShortQuery7MessageReplies(*store_, message);
      break;
    default:
      return Status::InvalidArgument("short query id out of range");
  }
  uint64_t latency_ns = watch.ElapsedNanos();
  obs::perf::HwCounts hw = hw_scope.Delta();
  if (metrics_ != nullptr) {
    metrics_->RecordLatencyNs(obs::ShortOp(query_id), latency_ns);
    metrics_->RecordHwCounts(obs::ShortOp(query_id), hw);
  }
  if (trace_ != nullptr) {
    event.end_ns = trace_->NowNs();
    event.hw = hw;
    trace_->Record(event);
  }
  OfferDossier(obs::ShortOp(query_id), latency_ns, hw, {});
  short_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status StoreConnector::ExecuteUpdate(const Operation& op) {
  if (op.update_index >= updates_->size()) {
    return Status::OutOfRange("update index");
  }
  const datagen::UpdateOperation& update = (*updates_)[op.update_index];
  Stopwatch watch;
  obs::perf::ScopedHwCounts hw_scope;
  SpinFor(dispatch_overhead_us_);
  Status status;
  if (pool_ != nullptr) {
    // The dependency services release on submission; the pool's
    // cross-shard creation watermark confirms the dependency actually
    // applied on every shard it touched before this update is routed.
    if (update.dependency_time > 0) {
      pool_->WaitCompletedThrough(update.dependency_time);
    }
    status = pool_->Submit(update);
  } else {
    status = queries::ApplyUpdate(*store_, update);
  }
  uint64_t latency_ns = watch.ElapsedNanos();
  obs::perf::HwCounts hw = hw_scope.Delta();
  obs::OpType op_type = obs::UpdateOp(static_cast<int>(update.kind));
  if (metrics_ != nullptr) {
    metrics_->RecordLatencyNs(op_type, latency_ns);
    metrics_->RecordHwCounts(op_type, hw);
  }
  OfferDossier(op_type, latency_ns, hw, {});
  return status;
}

void StoreConnector::OfferDossier(
    obs::OpType op, uint64_t latency_ns, const obs::perf::HwCounts& hw,
    std::vector<obs::DossierOperatorRow> operators) {
  if (dossiers_ == nullptr) return;
  uint64_t seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
  if (!dossiers_->WouldKeep(op, latency_ns)) return;
  obs::SlowQueryDossier d;
  d.op = op;
  d.seq = seq;
  d.latency_ns = latency_ns;
  d.hw = hw;
  d.operators = std::move(operators);
  dossiers_->Offer(std::move(d));
}

void StoreConnector::RunShortReadWalk(
    const Operation& op, const std::vector<schema::PersonId>& persons,
    const std::vector<schema::MessageId>& messages) {
  Rng rng(0x5a1cedULL, op.due_time ^ (static_cast<uint64_t>(op.query_id) << 56),
          RandomPurpose::kShortReadWalk);
  double p = walk_.initial_probability;
  // Current walk position: alternate between profile-centric and
  // post-centric lookups, as described in section 4 ("Profile lookup
  // provides an input for Post lookup, and vice versa").
  std::vector<schema::PersonId> cur_persons = persons;
  std::vector<schema::MessageId> cur_messages = messages;
  uint64_t steps = 0;
  while (p > 0.0 && rng.NextBool(p)) {
    bool use_person = !cur_persons.empty() &&
                      (cur_messages.empty() || rng.NextBool(0.5));
    if (!use_person && cur_messages.empty()) break;
    if (use_person) {
      schema::PersonId person =
          cur_persons[rng.NextBounded(cur_persons.size())];
      uint8_t qid = static_cast<uint8_t>(1 + rng.NextBounded(3));  // S1-S3.
      ExecuteShort(qid, person, schema::kInvalidId);
      // Profile lookups surface the person's messages for the next step.
      auto recent = queries::ShortQuery2RecentMessages(*store_, person, 5);
      cur_messages.clear();
      for (const auto& r : recent) cur_messages.push_back(r.message_id);
    } else {
      schema::MessageId message =
          cur_messages[rng.NextBounded(cur_messages.size())];
      uint8_t qid = static_cast<uint8_t>(4 + rng.NextBounded(4));  // S4-S7.
      ExecuteShort(qid, schema::kInvalidId, message);
      // Post lookups surface the creator for the next step.
      auto creator = queries::ShortQuery5MessageCreator(*store_, message);
      cur_persons.clear();
      if (creator.found) cur_persons.push_back(creator.creator_id);
    }
    ++steps;
    p -= walk_.decay;
  }
  // One batched counter update per walk, not one RMW per step.
  if (metrics_ != nullptr && steps > 0) {
    metrics_->AddCounter(obs::Counter::kShortReadWalkSteps, steps);
  }
}

void PublishStoreMetrics(const store::GraphStore& store,
                         obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  util::EpochManager::EpochStats epoch = store.AggregateEpochStats();
  metrics->SetGauge(obs::Gauge::kEpochAdvances, epoch.advances);
  metrics->SetGauge(obs::Gauge::kEpochRetired, epoch.retired);
  metrics->SetGauge(obs::Gauge::kEpochFreed, epoch.freed);
  metrics->SetGauge(obs::Gauge::kEpochPending, epoch.pending);
  store::GraphStore::TableOccupancy persons = store.PersonTableStats();
  metrics->SetGauge(obs::Gauge::kPersonSlotsUsed, persons.used);
  metrics->SetGauge(obs::Gauge::kPersonSlotsAllocated,
                    persons.allocated_slots);
  store::GraphStore::TableOccupancy forums = store.ForumTableStats();
  metrics->SetGauge(obs::Gauge::kForumSlotsUsed, forums.used);
  metrics->SetGauge(obs::Gauge::kForumSlotsAllocated,
                    forums.allocated_slots);
  store::GraphStore::TableOccupancy messages = store.MessageTableStats();
  metrics->SetGauge(obs::Gauge::kMessageSlotsUsed, messages.used);
  metrics->SetGauge(obs::Gauge::kMessageSlotsAllocated,
                    messages.allocated_slots);
}

Status SleepingConnector::Execute(const Operation& /*op*/) {
  if (sleep_micros_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros_));
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace snb::driver
