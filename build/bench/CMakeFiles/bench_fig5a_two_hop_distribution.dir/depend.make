# Empty dependencies file for bench_fig5a_two_hop_distribution.
# This may be replaced when dependencies are built.
