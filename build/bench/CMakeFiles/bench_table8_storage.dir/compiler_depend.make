# Empty compiler generated dependencies file for bench_table8_storage.
# This may be replaced when dependencies are built.
