// Golden validation sets: serial emission, JSON round-trip, and replay
// through the real driver at several thread counts and execution modes —
// including the mutation test proving an injected query bug is caught.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "datagen/datagen.h"
#include "exec/exec_mode.h"
#include "schema/dictionaries.h"
#include "validate/golden.h"

namespace snb::validate {
namespace {

/// One shared emission: golden emission regenerates datagen, so the suite
/// amortizes it (the fixture is ~100 persons, well under a second).
class GoldenSetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    options_ = new GoldenEmitOptions();
    options_->num_persons = 100;
    options_->num_segments = 2;
    golden_ = new GoldenSet();
    util::Status st = EmitGoldenSet(*options_, golden_);
    ASSERT_TRUE(st.ok()) << st.message();

    datagen::DatagenConfig config;
    config.seed = options_->seed;
    config.num_persons = options_->num_persons;
    dictionaries_ = new schema::Dictionaries(config.seed);
    dataset_ = new datagen::Dataset(
        datagen::Generate(config, *dictionaries_));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete dictionaries_;
    delete golden_;
    delete options_;
  }

  static GoldenEmitOptions* options_;
  static GoldenSet* golden_;
  static schema::Dictionaries* dictionaries_;
  static datagen::Dataset* dataset_;
};

GoldenEmitOptions* GoldenSetTest::options_ = nullptr;
GoldenSet* GoldenSetTest::golden_ = nullptr;
schema::Dictionaries* GoldenSetTest::dictionaries_ = nullptr;
datagen::Dataset* GoldenSetTest::dataset_ = nullptr;

TEST_F(GoldenSetTest, EmissionShapeMatchesOptions) {
  // num_segments update segments plus the bulk-only segment 0.
  ASSERT_EQ(golden_->segments.size(),
            static_cast<size_t>(options_->num_segments) + 1);
  EXPECT_EQ(golden_->segments.front().updates_end, 0u);
  uint64_t prev_end = 0;
  for (const GoldenSegment& segment : golden_->segments) {
    EXPECT_GE(segment.updates_end, prev_end);
    prev_end = segment.updates_end;
    EXPECT_FALSE(segment.operations.empty());
    EXPECT_GT(segment.num_persons, 0u);
  }
  EXPECT_EQ(golden_->segments.back().updates_end,
            static_cast<uint64_t>(dataset_->updates.size()));
}

TEST_F(GoldenSetTest, EmissionIsDeterministic) {
  GoldenSet again;
  ASSERT_TRUE(EmitGoldenSet(*options_, &again).ok());
  EXPECT_EQ(GoldenSetToJson(again), GoldenSetToJson(*golden_));
}

TEST_F(GoldenSetTest, JsonRoundTripIsLossless) {
  std::string json = GoldenSetToJson(*golden_);
  GoldenSet loaded;
  util::Status st = GoldenSetFromJson(json, &loaded);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(loaded.seed, golden_->seed);
  EXPECT_EQ(loaded.num_persons, golden_->num_persons);
  ASSERT_EQ(loaded.segments.size(), golden_->segments.size());
  for (size_t s = 0; s < loaded.segments.size(); ++s) {
    const GoldenSegment& a = loaded.segments[s];
    const GoldenSegment& b = golden_->segments[s];
    EXPECT_EQ(a.updates_end, b.updates_end);
    EXPECT_EQ(a.num_messages, b.num_messages);
    ASSERT_EQ(a.operations.size(), b.operations.size());
    for (size_t i = 0; i < a.operations.size(); ++i) {
      EXPECT_EQ(a.operations[i].op, b.operations[i].op);
      EXPECT_EQ(a.operations[i].params, b.operations[i].params);
      EXPECT_EQ(a.operations[i].rows, b.operations[i].rows);
    }
  }
  EXPECT_EQ(GoldenSetToJson(loaded), json);
}

TEST_F(GoldenSetTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "golden_roundtrip.json";
  ASSERT_TRUE(WriteGoldenSet(*golden_, path).ok());
  GoldenSet loaded;
  ASSERT_TRUE(ReadGoldenSet(path, &loaded).ok());
  EXPECT_EQ(GoldenSetToJson(loaded), GoldenSetToJson(*golden_));
  std::remove(path.c_str());
}

TEST_F(GoldenSetTest, RejectsCorruptDocuments) {
  GoldenSet out;
  EXPECT_FALSE(GoldenSetFromJson("nope", &out).ok());
  EXPECT_FALSE(GoldenSetFromJson("{\"schema\":\"other\"}", &out).ok());
  EXPECT_FALSE(
      GoldenSetFromJson(
          "{\"schema\":\"snb-validation-v1\",\"seed\":\"1\","
          "\"num_persons\":50,\"segments\":[]}",
          &out)
          .ok());
}

TEST_F(GoldenSetTest, ReplayPassesSerialAndThreadedInEveryMode) {
  for (uint32_t threads : {1u, 2u}) {
    for (driver::ExecutionMode mode :
         {driver::ExecutionMode::kSequentialForum,
          driver::ExecutionMode::kWindowed}) {
      ReplayOptions options;
      options.threads = threads;
      options.mode = mode;
      ReplayOutcome outcome;
      util::Status st = ReplayGoldenSetWith(*golden_, *dataset_,
                                            *dictionaries_, options, &outcome);
      ASSERT_TRUE(st.ok()) << st.message();
      EXPECT_TRUE(outcome.passed)
          << "threads=" << threads
          << " mode=" << driver::ExecutionModeName(mode) << " first diff: "
          << outcome.first.op << "(" << outcome.first.params << ") expected "
          << outcome.first.expected << " got " << outcome.first.actual;
      EXPECT_EQ(outcome.diffs, 0u);
      EXPECT_EQ(outcome.segments_compared, golden_->segments.size());
      EXPECT_GT(outcome.rows_compared, 0u);
    }
  }
}

// The shard-matrix acceptance battery: the serial single-shard emission
// must replay byte-identically at every shard count, in both driver
// modes and through both execution engines. A routing bug (an edge half
// landing on the wrong shard), a snapshot bug (a read missing a shard's
// pin), or an engine divergence all surface as row diffs here.
TEST_F(GoldenSetTest, ReplayMatrixPassesAtEveryShardCount) {
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (driver::ExecutionMode mode :
         {driver::ExecutionMode::kSequentialForum,
          driver::ExecutionMode::kWindowed}) {
      for (exec::ExecMode engine :
           {exec::ExecMode::kScalar, exec::ExecMode::kBatched}) {
        exec::SetDefaultExecMode(engine);
        ReplayOptions options;
        options.threads = 2;
        options.mode = mode;
        options.shards = shards;
        ReplayOutcome outcome;
        util::Status st = ReplayGoldenSetWith(
            *golden_, *dataset_, *dictionaries_, options, &outcome);
        ASSERT_TRUE(st.ok()) << st.message();
        EXPECT_TRUE(outcome.passed)
            << "shards=" << shards
            << " mode=" << driver::ExecutionModeName(mode)
            << " exec=" << exec::ExecModeName(engine) << " first diff: "
            << outcome.first.op << "(" << outcome.first.params
            << ") expected " << outcome.first.expected << " got "
            << outcome.first.actual;
        EXPECT_EQ(outcome.diffs, 0u);
      }
    }
  }
  exec::SetDefaultExecMode(exec::ExecMode::kScalar);
}

TEST_F(GoldenSetTest, ReplayRejectsOutOfRangeShardCount) {
  ReplayOptions options;
  options.shards = 9;
  ReplayOutcome outcome;
  EXPECT_FALSE(ReplayGoldenSetWith(*golden_, *dataset_, *dictionaries_,
                                   options, &outcome)
                   .ok());
}

// The mutation test from the acceptance criteria: corrupting one op's
// replayed rows MUST surface as a divergence with full context.
TEST_F(GoldenSetTest, MutationIsCaughtWithContext) {
  ReplayOptions options;
  options.mutate_op = "complex.Q2";
  ReplayOutcome outcome;
  ASSERT_TRUE(ReplayGoldenSetWith(*golden_, *dataset_, *dictionaries_,
                                  options, &outcome)
                  .ok());
  EXPECT_FALSE(outcome.passed);
  EXPECT_GT(outcome.diffs, 0u);
  EXPECT_EQ(outcome.first.op, "complex.Q2");
  EXPECT_FALSE(outcome.first.params.empty());
  EXPECT_NE(outcome.first.expected, outcome.first.actual);
}

TEST_F(GoldenSetTest, ReplayRejectsMismatchedDataset) {
  datagen::DatagenConfig other;
  other.seed = golden_->seed + 1;
  other.num_persons = golden_->num_persons;
  schema::Dictionaries dict(other.seed);
  datagen::Dataset dataset = datagen::Generate(other, dict);
  ReplayOptions options;
  ReplayOutcome outcome;
  EXPECT_FALSE(
      ReplayGoldenSetWith(*golden_, dataset, dict, options, &outcome).ok());
}

}  // namespace
}  // namespace snb::validate
