// Positive control for the Clang thread-safety case: the same guarded
// field written under a MutexLock must compile warning-free with
// -Wthread-safety -Werror=thread-safety.
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Counter {
 public:
  void Safe() {
    snb::util::MutexLock lock(&mu_);
    ++value_;
  }

 private:
  snb::util::Mutex mu_;
  int value_ SNB_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Safe();
  return 0;
}
