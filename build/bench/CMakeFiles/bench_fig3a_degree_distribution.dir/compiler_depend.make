# Empty compiler generated dependencies file for bench_fig3a_degree_distribution.
# This may be replaced when dependencies are built.
