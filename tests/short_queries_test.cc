// Tests for the 7 short read-only queries.
#include <map>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/short_queries.h"
#include "store/graph_store.h"

namespace snb::queries {
namespace {

using schema::MessageId;
using schema::MessageKind;
using schema::PersonId;

class ShortQueriesTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    store::GraphStore store;
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 200;
      config.split_update_stream = false;
      world->dataset = datagen::Generate(config);
      EXPECT_TRUE(world->store.BulkLoad(world->dataset.bulk).ok());
      return world;
    }();
    return *w;
  }
};

TEST_F(ShortQueriesTest, S1ProfileFields) {
  const schema::Person& p = world().dataset.bulk.persons[7];
  S1Result r = ShortQuery1PersonProfile(world().store, p.id);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.first_name, p.first_name);
  EXPECT_EQ(r.last_name, p.last_name);
  EXPECT_EQ(r.birthday, p.birthday);
  EXPECT_EQ(r.city_id, p.city_id);
  EXPECT_EQ(r.browser, p.browser);
  EXPECT_EQ(r.location_ip, p.location_ip);
  EXPECT_EQ(r.creation_date, p.creation_date);
}

TEST_F(ShortQueriesTest, S1Missing) {
  EXPECT_FALSE(ShortQuery1PersonProfile(world().store, 999999).found);
}

TEST_F(ShortQueriesTest, S2NewestFirstWithRoots) {
  // Find a person with several messages.
  std::map<PersonId, int> counts;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    ++counts[m.creator_id];
  }
  PersonId person = counts.begin()->first;
  for (auto [pid, c] : counts) {
    if (c > counts[person]) person = pid;
  }
  std::vector<S2Result> results =
      ShortQuery2RecentMessages(world().store, person, 10);
  ASSERT_FALSE(results.empty());
  EXPECT_LE(results.size(), 10u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].creation_date, results[i].creation_date);
  }
  std::map<MessageId, const schema::Message*> by_id;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    by_id[m.id] = &m;
  }
  for (const S2Result& r : results) {
    const schema::Message* m = by_id[r.message_id];
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->creator_id, person);
    EXPECT_EQ(r.root_post_id, m->root_post_id);
    EXPECT_EQ(r.root_author_id, by_id[m->root_post_id]->creator_id);
  }
}

TEST_F(ShortQueriesTest, S3FriendsNewestFirst) {
  // Person with friends.
  PersonId person = schema::kInvalidId;
  for (const schema::Knows& k : world().dataset.bulk.knows) {
    person = k.person1_id;
    break;
  }
  ASSERT_NE(person, schema::kInvalidId);
  std::vector<S3Result> results = ShortQuery3Friends(world().store, person);
  ASSERT_FALSE(results.empty());
  size_t expected = 0;
  for (const schema::Knows& k : world().dataset.bulk.knows) {
    if (k.person1_id == person || k.person2_id == person) ++expected;
  }
  EXPECT_EQ(results.size(), expected);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].since, results[i].since);
  }
}

TEST_F(ShortQueriesTest, S4ContentRoundTrips) {
  const schema::Message& m = world().dataset.bulk.messages[5];
  S4Result r = ShortQuery4MessageContent(world().store, m.id);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.content, m.content);
  EXPECT_EQ(r.creation_date, m.creation_date);
  EXPECT_FALSE(ShortQuery4MessageContent(world().store, 99999999).found);
}

TEST_F(ShortQueriesTest, S5Creator) {
  const schema::Message& m = world().dataset.bulk.messages[9];
  S5Result r = ShortQuery5MessageCreator(world().store, m.id);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.creator_id, m.creator_id);
  EXPECT_FALSE(r.first_name.empty());
}

TEST_F(ShortQueriesTest, S6ForumOfCommentIsRootForum) {
  // Find a comment.
  const schema::Message* comment = nullptr;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (m.kind == MessageKind::kComment) {
      comment = &m;
      break;
    }
  }
  ASSERT_NE(comment, nullptr);
  S6Result r = ShortQuery6MessageForum(world().store, comment->id);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.forum_id, comment->forum_id);
  EXPECT_FALSE(r.forum_title.empty());
  // Moderator matches the forum record.
  for (const schema::Forum& f : world().dataset.bulk.forums) {
    if (f.id == r.forum_id) {
      EXPECT_EQ(r.moderator_id, f.moderator_id);
    }
  }
}

TEST_F(ShortQueriesTest, S7RepliesWithFriendFlag) {
  // Find a message with replies.
  const schema::Message* parent = nullptr;
  std::map<MessageId, int> reply_counts;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (m.kind == MessageKind::kComment) ++reply_counts[m.reply_to_id];
  }
  ASSERT_FALSE(reply_counts.empty());
  MessageId best = reply_counts.begin()->first;
  for (auto [mid, c] : reply_counts) {
    if (c > reply_counts[best]) best = mid;
  }
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (m.id == best) parent = &m;
  }
  ASSERT_NE(parent, nullptr);

  std::vector<S7Result> results =
      ShortQuery7MessageReplies(world().store, parent->id);
  EXPECT_EQ(static_cast<int>(results.size()), reply_counts[best]);
  for (const S7Result& r : results) {
    auto pin = world().store.ReadLock();
    EXPECT_EQ(r.replier_knows_author,
              world().store.AreFriends(pin, parent->creator_id, r.replier_id));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].creation_date, results[i].creation_date);
  }
}

}  // namespace
}  // namespace snb::queries
