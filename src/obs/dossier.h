// Slow-query dossiers: tail-latency attribution for report.json.
//
// Percentile tables say the p99 of Q9 is 40x its median; they cannot say
// which operator inside those tail instances burned the time, or whether
// the tail is cache misses rather than extra rows. A dossier captures one
// query instance's full story — latency, per-operator span tree
// (invocations, wall time, rows) and hardware-counter deltas — and the
// collector keeps the slowest N instances per operation type, so
// report.json always explains its own tail.
//
// The offer path must not perturb the run it measures: a per-op atomic
// latency floor (the smallest latency currently kept, once the slot set is
// full) lets the common case — "this instance is not a tail" — bail with
// one relaxed load and no lock. Only genuine tail candidates take the
// mutex, which is uncontended at that rate by construction.
#ifndef SNB_OBS_DOSSIER_H_
#define SNB_OBS_DOSSIER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "util/mutex.h"

namespace snb::obs {

/// One operator row inside a dossier (a flattened span-tree node).
struct DossierOperatorRow {
  std::string name;
  uint64_t invocations = 0;
  uint64_t time_ns = 0;
  uint64_t rows = 0;
  perf::HwCounts hw;
  uint64_t hw_invocations = 0;
};

/// Everything captured about one slow query instance.
struct SlowQueryDossier {
  OpType op = OpType::kComplexQ1;
  uint64_t seq = 0;         // Operation sequence number within the run.
  uint64_t latency_ns = 0;  // Whole-operation latency (same window the
                            // percentile tables record).
  perf::HwCounts hw;        // Whole-operation counter delta; mask == 0
                            // when counters were unavailable.
  std::vector<DossierOperatorRow> operators;  // Empty when the op has no
                                              // instrumented plan.
};

/// Keeps the slowest `keep_per_op` dossiers for every operation type.
/// Thread-safe; WouldKeep is the lock-free hot-path pre-filter.
class DossierCollector {
 public:
  explicit DossierCollector(size_t keep_per_op = 3)
      : keep_per_op_(keep_per_op == 0 ? 1 : keep_per_op) {}
  DossierCollector(const DossierCollector&) = delete;
  DossierCollector& operator=(const DossierCollector&) = delete;

  size_t keep_per_op() const { return keep_per_op_; }

  /// True when a `latency_ns` instance of `op` would enter the kept set.
  /// One relaxed load; callers skip dossier assembly entirely on false.
  bool WouldKeep(OpType op, uint64_t latency_ns) const {
    return latency_ns >
           floor_ns_[static_cast<size_t>(op)].load(std::memory_order_relaxed);
  }

  /// Inserts `d` if it is among the slowest kept for its op; otherwise
  /// drops it (a racing faster instance may have raised the floor since
  /// WouldKeep).
  void Offer(SlowQueryDossier d);

  /// All kept dossiers, grouped by op, slowest first within each op.
  std::vector<SlowQueryDossier> Snapshot() const;

  /// Total dossiers currently kept (across all ops).
  size_t Size() const;

 private:
  const size_t keep_per_op_;
  /// Admission floors: 0 while an op's slot set is not full, then the
  /// smallest kept latency. Monotone non-decreasing, so a stale read can
  /// only admit too much (corrected under the lock), never lose a tail.
  std::atomic<uint64_t> floor_ns_[kNumOpTypes] = {};
  mutable util::Mutex mu_;
  /// Kept dossiers per op, sorted by latency descending.
  std::vector<SlowQueryDossier> kept_[kNumOpTypes] SNB_GUARDED_BY(mu_);
};

}  // namespace snb::obs

#endif  // SNB_OBS_DOSSIER_H_
