file(REMOVE_RECURSE
  "CMakeFiles/snb_relational.dir/rel_queries.cc.o"
  "CMakeFiles/snb_relational.dir/rel_queries.cc.o.d"
  "CMakeFiles/snb_relational.dir/relational_db.cc.o"
  "CMakeFiles/snb_relational.dir/relational_db.cc.o.d"
  "libsnb_relational.a"
  "libsnb_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
