// Edge-case tests for the read queries: missing entities, empty graphs,
// boundary limits, and degenerate parameters.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/bi_queries.h"
#include "queries/complex_queries.h"
#include "queries/query9_plans.h"
#include "queries/short_queries.h"
#include "store/graph_store.h"

namespace snb::queries {
namespace {

schema::Person MakePerson(schema::PersonId id) {
  schema::Person p;
  p.id = id;
  p.first_name = "Solo";
  p.creation_date = 1000;
  return p;
}

TEST(QueriesEdgeTest, EmptyStoreReturnsEmptyEverywhere) {
  store::GraphStore store;
  EXPECT_TRUE(Query1(store, 0, "Karl").empty());
  EXPECT_TRUE(Query2(store, 0, 1 << 30).empty());
  EXPECT_TRUE(Query5(store, 0, 0).empty());
  EXPECT_TRUE(Query7(store, 0).empty());
  EXPECT_TRUE(Query8(store, 0).empty());
  EXPECT_TRUE(Query9(store, 0, 1 << 30).empty());
  EXPECT_TRUE(Query10(store, 0, 5).empty());
  EXPECT_EQ(Query13(store, 0, 1), -1);
  EXPECT_TRUE(Query14(store, 0, 1).empty());
  EXPECT_TRUE(TwoHopCircle(store, 0).empty());
  EXPECT_FALSE(ShortQuery1PersonProfile(store, 0).found);
  EXPECT_TRUE(ShortQuery3Friends(store, 0).empty());
  EXPECT_TRUE(BiQuery1PostingSummary(store).empty());
}

TEST(QueriesEdgeTest, IsolatedPersonHasEmptyNeighbourhoodQueries) {
  store::GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  EXPECT_TRUE(Query1(store, 1, "Solo").empty());  // Self is excluded.
  EXPECT_TRUE(Query2(store, 1, 1 << 30).empty());
  EXPECT_TRUE(Query9(store, 1, 1 << 30).empty());
  EXPECT_EQ(Query13(store, 1, 1), 0);
  auto self_paths = Query14(store, 1, 1);
  ASSERT_EQ(self_paths.size(), 1u);
  EXPECT_EQ(self_paths[0].weight, 0.0);
  // Short reads on the isolated person work.
  EXPECT_TRUE(ShortQuery1PersonProfile(store, 1).found);
  EXPECT_TRUE(ShortQuery2RecentMessages(store, 1).empty());
}

TEST(QueriesEdgeTest, LimitZeroAndLimitHuge) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());

  EXPECT_TRUE(Query2(store, 0, util::NetworkEndMs(), 0).empty());
  EXPECT_TRUE(Query9(store, 0, util::NetworkEndMs(), 0).empty());

  auto huge = Query2(store, 0, util::NetworkEndMs(), 1 << 20);
  // With a huge limit, Q2 returns every friend message (reference count).
  std::set<schema::PersonId> friends;
  for (const schema::Knows& k : ds.bulk.knows) {
    if (k.person1_id == 0) friends.insert(k.person2_id);
    if (k.person2_id == 0) friends.insert(k.person1_id);
  }
  size_t expected = 0;
  for (const schema::Message& m : ds.bulk.messages) {
    if (friends.count(m.creator_id) > 0) ++expected;
  }
  EXPECT_EQ(huge.size(), expected);
}

TEST(QueriesEdgeTest, Q9PlanVariantsOnTinyGraph) {
  store::GraphStore store;
  for (schema::PersonId id = 0; id < 3; ++id) {
    ASSERT_TRUE(store.AddPerson(MakePerson(id)).ok());
  }
  ASSERT_TRUE(store.AddFriendship({0, 1, 2000}).ok());
  schema::Forum f;
  f.id = 9;
  f.moderator_id = 1;
  f.creation_date = 2000;
  ASSERT_TRUE(store.AddForum(f).ok());
  schema::Message m;
  m.id = 0;
  m.kind = schema::MessageKind::kPost;
  m.creator_id = 1;
  m.forum_id = 9;
  m.root_post_id = 0;
  m.creation_date = 3000;
  ASSERT_TRUE(store.AddMessage(m).ok());

  for (JoinStrategy j : {JoinStrategy::kIndexNestedLoop, JoinStrategy::kHash}) {
    Q9PlanStats stats;
    auto rows = Query9WithPlan(store, 0, 10000, 20, j, j, j, &stats);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].message_id, 0u);
    EXPECT_EQ(stats.join1_output, 1u);
    EXPECT_EQ(stats.join3_output, 1u);
  }
  // Date cutoff excludes the message.
  EXPECT_TRUE(Query9(store, 0, 3000).empty());   // Strictly before.
  EXPECT_EQ(Query9(store, 0, 3001).size(), 1u);
}

TEST(QueriesEdgeTest, Query3ZeroDurationAndSameCountry) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  std::vector<schema::PlaceId> city_country(200, 0);
  // Zero duration window: no posts qualify.
  EXPECT_TRUE(Query3(store, 0, city_country, 1, 2,
                     util::kNetworkStartMs, 0)
                  .empty());
}

TEST(QueriesEdgeTest, Q12EmptyTagClass) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  std::vector<bool> empty_class(1000, false);
  EXPECT_TRUE(Query12(store, 0, empty_class).empty());
  std::vector<bool> no_tags;  // Out-of-range tag ids must not crash.
  EXPECT_TRUE(Query12(store, 0, no_tags).empty());
}

}  // namespace
}  // namespace snb::queries
