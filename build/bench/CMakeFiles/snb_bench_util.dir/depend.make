# Empty dependencies file for snb_bench_util.
# This may be replaced when dependencies are built.
