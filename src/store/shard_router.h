// Shard routing for the sharded GraphStore.
//
// The shard owning an entity must be computable from the entity id alone
// (FindMessage(id) cannot consult the containing forum), must be stable
// for the lifetime of the store, and must stay allocation- and lock-free
// (it runs inside epoch-pinned accessors, which the pinned_read binary
// invariant forbids from reaching malloc or a mutex). A salted splitmix64
// finalizer over the id gives uniform placement even for the store's
// structured id spaces (forum ids are owner * slots_per_person + slot;
// message ids ascend with creation time), and the per-kind salts keep
// person i, forum i and message i from systematically co-locating.
//
// num_shards == 1 short-circuits to shard 0 before hashing, so the
// single-shard store pays one predictable branch per routed access.
#ifndef SNB_STORE_SHARD_ROUTER_H_
#define SNB_STORE_SHARD_ROUTER_H_

#include <cstdint>

#include "schema/entities.h"

namespace snb::store {

/// Compile-time ceiling on shards per store; also the size of the
/// process-wide epoch domain pool (util::EpochManager::kMaxDomains) each
/// shard index maps onto.
inline constexpr uint32_t kMaxShards = 8;

/// splitmix64 finalizer: full-avalanche 64-bit mix.
constexpr uint64_t ShardMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr uint32_t ShardOfPerson(schema::PersonId id, uint32_t num_shards) {
  return num_shards <= 1
             ? 0
             : static_cast<uint32_t>(
                   ShardMix64(id ^ 0x9e3779b97f4a7c15ULL) % num_shards);
}

constexpr uint32_t ShardOfForum(schema::ForumId id, uint32_t num_shards) {
  return num_shards <= 1
             ? 0
             : static_cast<uint32_t>(
                   ShardMix64(id ^ 0xc2b2ae3d27d4eb4fULL) % num_shards);
}

constexpr uint32_t ShardOfMessage(schema::MessageId id, uint32_t num_shards) {
  return num_shards <= 1
             ? 0
             : static_cast<uint32_t>(
                   ShardMix64(id ^ 0x165667b19e3779f9ULL) % num_shards);
}

}  // namespace snb::store

#endif  // SNB_STORE_SHARD_ROUTER_H_
