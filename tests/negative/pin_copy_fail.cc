// Negative-compilation case (ctest WILL_FAIL): EpochPin is move-only.
// Copying would let two owners race the single Exit() the pin represents,
// so the copy constructor is deleted.
#include "util/epoch.h"

snb::util::EpochPin Duplicate(const snb::util::EpochPin& pin) {
  snb::util::EpochPin copy = pin;  // error: copy constructor is deleted
  return copy;
}
