// Google-benchmark microbenchmarks of the store's primitive operations —
// the building blocks whose costs compose into Tables 6/7/9 — plus the
// snb::obs record path, and a closing Prometheus-style dump of the store's
// health gauges (epoch reclamation, table occupancy, recycler hit rate).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "driver/connectors.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "queries/complex_queries.h"
#include "queries/recycler.h"
#include "queries/short_queries.h"
#include "util/rng.h"

namespace snb::bench {
namespace {

BenchWorld& SharedWorld() {
  static BenchWorld* world = MakeWorld(kMediumSf).release();
  return *world;
}

BenchWorld& GlobalLockWorld() {
  static BenchWorld* world =
      MakeWorld(kMediumSf, true, true, store::ReadConcurrency::kGlobalLock)
          .release();
  return *world;
}

// Per-operation snapshot acquisition: epoch pin vs. shared-mutex lock.
// Run with ->Threads(8) this is the read-path scalability ablation in
// miniature (bench_table5 has the end-to-end version with a live writer).
void BM_ReadLockEpoch(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  for (auto _ : state) {
    auto pin = world.store.ReadLock();
    benchmark::DoNotOptimize(world.store.FindPerson(pin, 7));
  }
}
BENCHMARK(BM_ReadLockEpoch)->Threads(1)->Threads(8);

void BM_ReadLockGlobal(benchmark::State& state) {
  BenchWorld& world = GlobalLockWorld();
  for (auto _ : state) {
    auto pin = world.store.ReadLock();
    benchmark::DoNotOptimize(world.store.FindPerson(pin, 7));
  }
}
BENCHMARK(BM_ReadLockGlobal)->Threads(1)->Threads(8);

void BM_FindPerson(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  util::Rng rng(1, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.dataset.stats.num_persons;
  auto pin = world.store.ReadLock();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.store.FindPerson(pin, rng.NextBounded(n)));
  }
}
BENCHMARK(BM_FindPerson);

void BM_AreFriends(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  util::Rng rng(2, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.dataset.stats.num_persons;
  auto pin = world.store.ReadLock();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.store.AreFriends(pin, rng.NextBounded(n), rng.NextBounded(n)));
  }
}
BENCHMARK(BM_AreFriends);

void BM_FindMessage(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  util::Rng rng(3, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.store.MessageIdBound();
  auto pin = world.store.ReadLock();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.store.FindMessage(pin, rng.NextBounded(n)));
  }
}
BENCHMARK(BM_FindMessage);

void BM_TwoHopCircle(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  util::Rng rng(4, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.dataset.stats.num_persons;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queries::TwoHopCircle(world.store, rng.NextBounded(n)));
  }
}
BENCHMARK(BM_TwoHopCircle);

void BM_ShortRead_Profile(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  util::Rng rng(5, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.dataset.stats.num_persons;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queries::ShortQuery1PersonProfile(world.store, rng.NextBounded(n)));
  }
}
BENCHMARK(BM_ShortRead_Profile);

void BM_ComplexQuery2(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  util::Rng rng(6, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.dataset.stats.num_persons;
  util::TimestampMs mid = util::kNetworkStartMs + 24 * util::kMillisPerMonth;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queries::Query2(world.store, rng.NextBounded(n), mid));
  }
}
BENCHMARK(BM_ComplexQuery2);

void BM_ComplexQuery9(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  util::Rng rng(7, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.dataset.stats.num_persons;
  util::TimestampMs mid = util::kNetworkStartMs + 24 * util::kMillisPerMonth;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queries::Query9(world.store, rng.NextBounded(n), mid));
  }
}
BENCHMARK(BM_ComplexQuery9);

void BM_ShortestPath(benchmark::State& state) {
  BenchWorld& world = SharedWorld();
  util::Rng rng(8, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.dataset.stats.num_persons;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queries::Query13(world.store, rng.NextBounded(n), rng.NextBounded(n)));
  }
}
BENCHMARK(BM_ShortestPath);

// The metrics record path in isolation: one histogram sample = one bucket
// index computation plus a handful of relaxed atomic RMWs on the calling
// thread's shard. Threads(8) shows the sharding working — per-thread cost
// should be flat, not 8x (a single shared histogram would bounce its cache
// lines between all recorders).
obs::MetricsRegistry& SharedRegistry() {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  return *registry;
}

void BM_MetricsRecordLatency(benchmark::State& state) {
  obs::MetricsRegistry& registry = SharedRegistry();
  uint64_t fake_ns = 100;
  for (auto _ : state) {
    registry.RecordLatencyNs(obs::OpType::kPointRead, fake_ns);
    fake_ns = (fake_ns + 37) & 0xffff;  // Walk the low buckets.
  }
}
BENCHMARK(BM_MetricsRecordLatency)->Threads(1)->Threads(8);

// Store-health dump: exercise the recycler a little, then publish epoch,
// occupancy, and recycler gauges into a registry and print the Prometheus
// text exposition — the same gauges report.json carries after a driver run.
void DumpStoreGauges() {
  BenchWorld& world = SharedWorld();
  queries::TwoHopRecycler recycler(64);
  util::Rng rng(9, 1, util::RandomPurpose::kParameterPick);
  uint64_t n = world.dataset.stats.num_persons;
  util::TimestampMs mid = util::kNetworkStartMs + 24 * util::kMillisPerMonth;
  for (int i = 0; i < 256; ++i) {
    // Skewed picks so the clock cache sees hits, misses, and evictions.
    uint64_t p = (i % 3 == 0) ? rng.NextBounded(n) : rng.NextBounded(16);
    benchmark::DoNotOptimize(
        queries::Query9Recycled(world.store, recycler, p, mid, 20));
  }

  obs::MetricsRegistry registry;
  driver::PublishStoreMetrics(world.store, &registry);
  recycler.PublishMetrics(&registry);
  std::printf("\n--- store health gauges (Prometheus exposition) ---\n%s",
              obs::ToPrometheusText(registry.Snapshot()).c_str());
}

}  // namespace
}  // namespace snb::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  snb::bench::DumpStoreGauges();
  return 0;
}
