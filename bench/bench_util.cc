#include "bench/bench_util.h"

#include "queries/update_queries.h"

namespace snb::bench {

std::unique_ptr<BenchWorld> MakeWorld(double scale_factor, bool load_updates,
                                      bool split_update_stream,
                                      store::ReadConcurrency read_mode) {
  auto world = std::make_unique<BenchWorld>(read_mode);
  datagen::DatagenConfig config =
      datagen::DatagenConfig::ForScaleFactor(scale_factor);
  config.split_update_stream = split_update_stream;
  world->dataset = datagen::Generate(config);
  world->dictionaries = std::make_unique<schema::Dictionaries>(config.seed);
  util::Status status = world->store.BulkLoad(world->dataset.bulk);
  if (!status.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  if (load_updates) {
    for (const datagen::UpdateOperation& op : world->dataset.updates) {
      status = queries::ApplyUpdate(world->store, op);
      if (!status.ok()) {
        std::fprintf(stderr, "update failed: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    }
  }
  for (const schema::City& c : world->dictionaries->cities()) {
    world->city_country.push_back(c.country_id);
  }
  for (const schema::Company& c : world->dictionaries->companies()) {
    world->company_country.push_back(c.country_id);
  }
  return world;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("  %s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintKv(const std::string& label, const std::string& value) {
  std::printf("  %-44s %s\n", label.c_str(), value.c_str());
}

std::string Bar(double value, double max_value, int width) {
  if (max_value <= 0) max_value = 1;
  int n = static_cast<int>(value / max_value * width + 0.5);
  if (n > width) n = width;
  return std::string(n, '#');
}

void EnablePerfCounters() {
  obs::perf::Backend backend = obs::perf::Enable();
  std::printf("  perf counters: backend=%s (%s)\n",
              obs::perf::BackendName(backend),
              obs::perf::BackendMessage().c_str());
}

void EnableCpuProfiler() {
  obs::prof::Backend backend = obs::prof::Enable();
  std::printf("  cpu profiler: backend=%s (%s)\n",
              obs::prof::BackendName(backend),
              obs::prof::BackendMessage().c_str());
}

void StampProfile(obs::RunReport* report, const std::string& path) {
  obs::prof::FoldedProfile folded = obs::prof::Collect();
  report->has_profile = true;
  report->profile = obs::MakeProfileSection(folded);
  if (!path.empty()) {
    util::Status status =
        obs::WriteFileReport(path, obs::prof::ToFoldedText(folded));
    if (!status.ok()) {
      std::fprintf(stderr, "cpu-profile write failed: %s\n",
                   status.ToString().c_str());
      return;
    }
    std::printf("  cpu profile: wrote %s (%zu folded stacks, %llu samples)\n",
                path.c_str(), folded.stacks.size(),
                static_cast<unsigned long long>(folded.accounting.captured));
  }
}

bool SetExecModeFromFlag(const std::string& value) {
  exec::ExecMode mode;
  if (!exec::ParseExecMode(value, &mode)) {
    std::fprintf(stderr,
                 "unknown --exec value '%s' (expected scalar|batched)\n",
                 value.c_str());
    return false;
  }
  exec::SetDefaultExecMode(mode);
  return true;
}

}  // namespace snb::bench
