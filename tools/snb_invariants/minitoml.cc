#include "snb_invariants/minitoml.h"

#include <cctype>
#include <sstream>

namespace snb::inv::toml {
namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Strips a trailing # comment that is not inside a basic string.
std::string StripComment(const std::string& line) {
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // Skip the escaped character.
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '#') {
      return line.substr(0, i);
    }
  }
  return line;
}

bool IsBareKey(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

std::vector<std::string> SplitPath(const std::string& s) {
  std::vector<std::string> out;
  std::string part;
  std::istringstream in(s);
  while (std::getline(in, part, '.')) out.push_back(Trim(part));
  return out;
}

struct Parser {
  const std::string& text;
  size_t pos = 0;
  int line = 1;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  void Fail(const std::string& what) {
    if (error.empty()) {
      error = "line " + std::to_string(line) + ": " + what;
    }
  }

  /// Reads the next physical line (without the newline); false at EOF.
  bool NextLine(std::string* out) {
    if (pos >= text.size()) return false;
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      *out = text.substr(pos);
      pos = text.size();
    } else {
      *out = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  }

  /// Parses a basic "..." string starting at s[i] == '"'. Advances i past
  /// the closing quote.
  bool ParseString(const std::string& s, size_t* i, std::string* out) {
    out->clear();
    ++*i;  // Opening quote.
    while (*i < s.size()) {
      char c = s[*i];
      if (c == '"') {
        ++*i;
        return true;
      }
      if (c == '\\') {
        ++*i;
        if (*i >= s.size()) break;
        switch (s[*i]) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default:
            Fail(std::string("unsupported escape '\\") + s[*i] + "'");
            return false;
        }
        ++*i;
      } else {
        out->push_back(c);
        ++*i;
      }
    }
    Fail("unterminated string");
    return false;
  }

  /// Parses a scalar (string/bool/int) from s starting at *i; advances *i.
  bool ParseScalar(const std::string& s, size_t* i, Value* out) {
    while (*i < s.size() && (s[*i] == ' ' || s[*i] == '\t')) ++*i;
    if (*i >= s.size()) {
      Fail("missing value");
      return false;
    }
    if (s[*i] == '"') {
      out->kind = Value::Kind::kString;
      return ParseString(s, i, &out->str);
    }
    size_t start = *i;
    while (*i < s.size() && s[*i] != ',' && s[*i] != ']' && s[*i] != ' ' &&
           s[*i] != '\t') {
      ++*i;
    }
    std::string tok = s.substr(start, *i - start);
    if (tok == "true" || tok == "false") {
      out->kind = Value::Kind::kBool;
      out->boolean = tok == "true";
      return true;
    }
    size_t digits = tok.size() > 0 && tok[0] == '-' ? 1 : 0;
    if (digits < tok.size()) {
      bool all_digits = true;
      for (size_t k = digits; k < tok.size(); ++k) {
        if (std::isdigit(static_cast<unsigned char>(tok[k])) == 0) {
          all_digits = false;
          break;
        }
      }
      if (all_digits) {
        out->kind = Value::Kind::kInt;
        out->integer = std::stoll(tok);
        return true;
      }
    }
    Fail("unsupported value '" + tok + "' (expected string, bool, int, "
         "or array)");
    return false;
  }

  /// Parses an array value. `rest` holds the text after '[' on the key's
  /// line; continuation lines are pulled as needed (multi-line arrays).
  bool ParseArray(std::string rest, Value* out) {
    out->kind = Value::Kind::kArray;
    for (;;) {
      rest = Trim(StripComment(rest));
      if (rest.empty()) {
        std::string next;
        if (!NextLine(&next)) {
          Fail("unterminated array");
          return false;
        }
        ++line;
        rest = next;
        continue;
      }
      if (rest[0] == ']') {
        if (Trim(rest.substr(1)).empty()) return true;
        Fail("trailing content after ']'");
        return false;
      }
      if (rest[0] == ',') {
        rest = rest.substr(1);
        continue;
      }
      Value element;
      size_t i = 0;
      if (!ParseScalar(rest, &i, &element)) return false;
      out->array.push_back(std::move(element));
      rest = rest.substr(i);
    }
  }
};

/// Walks `path` from the root, creating tables as needed. For each prefix
/// element that is a kTableArray, descends into its last element. Returns
/// nullptr (with *error set) when a path element is already a non-table.
Value* Descend(Value* root, const std::vector<std::string>& path,
               bool final_is_array, std::string* error, int line) {
  Value* cur = root;
  for (size_t i = 0; i < path.size(); ++i) {
    const std::string& key = path[i];
    if (!IsBareKey(key)) {
      *error = "line " + std::to_string(line) + ": bad table name '" +
               key + "'";
      return nullptr;
    }
    bool last = i + 1 == path.size();
    auto it = cur->table.find(key);
    if (it == cur->table.end()) {
      Value fresh;
      fresh.kind = last && final_is_array ? Value::Kind::kTableArray
                                          : Value::Kind::kTable;
      cur->order.push_back(key);
      it = cur->table.emplace(key, std::move(fresh)).first;
    }
    Value* next = &it->second;
    if (next->kind == Value::Kind::kTableArray) {
      if (last && final_is_array) {
        next->array.emplace_back();
        next->array.back().kind = Value::Kind::kTable;
        return &next->array.back();
      }
      if (next->array.empty()) {
        *error = "line " + std::to_string(line) + ": '" + key +
                 "' used before any [[" + key + "]] element";
        return nullptr;
      }
      cur = &next->array.back();
    } else if (next->kind == Value::Kind::kTable) {
      if (last && final_is_array) {
        *error = "line " + std::to_string(line) + ": '" + key +
                 "' redefined as array of tables";
        return nullptr;
      }
      cur = next;
    } else {
      *error = "line " + std::to_string(line) + ": '" + key +
               "' is not a table";
      return nullptr;
    }
  }
  return cur;
}

}  // namespace

bool Parse(const std::string& text, Value* root, std::string* error) {
  *root = Value{};
  root->kind = Value::Kind::kTable;
  Parser p(text);
  Value* current = root;

  std::string raw;
  while (p.NextLine(&raw)) {
    std::string stripped = Trim(StripComment(raw));
    if (stripped.empty()) {
      ++p.line;
      continue;
    }

    if (stripped.front() == '[') {
      bool is_array = stripped.size() > 1 && stripped[1] == '[';
      std::string close = is_array ? "]]" : "]";
      size_t open = is_array ? 2 : 1;
      size_t end = stripped.find(close, open);
      if (end == std::string::npos ||
          !Trim(stripped.substr(end + close.size())).empty()) {
        p.Fail("malformed table header");
        break;
      }
      std::string path_text = Trim(stripped.substr(open, end - open));
      Value* target = Descend(root, SplitPath(path_text), is_array, error,
                              p.line);
      if (target == nullptr) return false;
      current = target;
      ++p.line;
      continue;
    }

    size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      p.Fail("expected 'key = value' or a [table] header");
      break;
    }
    std::string key = Trim(stripped.substr(0, eq));
    if (!IsBareKey(key)) {
      p.Fail("bad key '" + key + "' (dotted and quoted keys unsupported)");
      break;
    }
    if (current->Has(key)) {
      p.Fail("duplicate key '" + key + "'");
      break;
    }
    std::string rest = Trim(stripped.substr(eq + 1));
    Value value;
    int key_line = p.line;
    if (!rest.empty() && rest[0] == '[') {
      if (!p.ParseArray(rest.substr(1), &value)) break;
    } else {
      size_t i = 0;
      if (!p.ParseScalar(rest, &i, &value)) break;
      if (!Trim(rest.substr(i)).empty()) {
        p.Fail("trailing content after value");
        break;
      }
    }
    (void)key_line;
    current->order.push_back(key);
    current->table.emplace(std::move(key), std::move(value));
    ++p.line;
  }

  if (!p.error.empty()) {
    *error = p.error;
    return false;
  }
  return true;
}

}  // namespace snb::inv::toml
