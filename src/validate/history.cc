#include "validate/history.h"

#include <algorithm>
#include <map>
#include <utility>

#include "schema/entities.h"
#include "store/graph_store.h"
#include "util/datetime.h"
#include "util/thread_pool.h"
#include "validate/canonical.h"

namespace snb::validate {
namespace {

constexpr size_t kMaxViolationDetails = 16;

constexpr schema::PersonId kCreator = 1;
constexpr schema::PersonId kBystander = 2;
constexpr schema::ForumId kForum = 1;

using EntityKey = std::pair<uint32_t, uint64_t>;

void AddViolation(HistoryCheckOutcome* out, const char* kind,
                  std::string detail) {
  out->consistent = false;
  ++out->violation_count;
  if (out->violations.size() < kMaxViolationDetails) {
    out->violations.push_back({kind, std::move(detail)});
  }
}

std::string DescribeEntity(uint32_t domain, uint64_t entity) {
  const char* name =
      domain == kDomainPersonMessages ? "person-messages" : "forum-posts";
  return std::string(name) + "/" + FormatU64(entity);
}

/// The fixed scaffolding both stress harnesses bulk-load: two persons and
/// one forum, no messages — every tracked adjacency list starts empty.
schema::SocialNetwork ScaffoldNetwork() {
  schema::SocialNetwork net;
  for (schema::PersonId id : {kCreator, kBystander}) {
    schema::Person p;
    p.id = id;
    p.first_name = "History";
    p.last_name = "Probe";
    p.birthday = util::kNetworkStartMs - 25 * 365 * util::kMillisPerDay;
    p.creation_date = util::kNetworkStartMs;
    p.city_id = 0;
    net.persons.push_back(std::move(p));
  }
  schema::Knows k;
  k.person1_id = kCreator;
  k.person2_id = kBystander;
  k.creation_date = util::kNetworkStartMs;
  net.knows.push_back(k);
  schema::Forum f;
  f.id = kForum;
  f.title = "History stress forum";
  f.moderator_id = kCreator;
  f.creation_date = util::kNetworkStartMs;
  net.forums.push_back(std::move(f));
  return net;
}

schema::Message MakePost(uint64_t index) {
  schema::Message m;
  m.id = index + 1;
  m.kind = schema::MessageKind::kPost;
  m.creator_id = kCreator;
  m.creation_date =
      util::kNetworkStartMs + static_cast<int64_t>(index) * util::kMillisPerMinute;
  m.forum_id = kForum;
  m.root_post_id = m.id;
  m.content = "post " + FormatU64(m.id);
  m.country_id = 0;
  return m;
}

/// One pinned read of both tracked adjacency lists, resolving every edge id
/// under the same pin.
void ObserveOnce(const store::GraphStore& store, HistoryRecorder* rec,
                 int reader) {
  uint64_t watermark = rec->BeginRead();
  store::ReadGuard pin = store.ReadLock();

  ReadObservation person_obs;
  person_obs.watermark = watermark;
  person_obs.domain = kDomainPersonMessages;
  person_obs.entity = kCreator;
  if (const store::PersonRecord* p = store.FindPerson(pin, kCreator)) {
    auto messages = p->messages.view();
    person_obs.edges_seen = messages.size();
    for (const store::DatedEdge& edge : messages) {
      if (store.FindMessage(pin, edge.id) == nullptr) ++person_obs.dangling;
    }
  }
  rec->RecordRead(reader, person_obs);

  ReadObservation forum_obs;
  forum_obs.watermark = watermark;
  forum_obs.domain = kDomainForumPosts;
  forum_obs.entity = kForum;
  if (const store::ForumRecord* f = store.FindForum(pin, kForum)) {
    auto posts = f->posts.view();
    forum_obs.edges_seen = posts.size();
    for (schema::MessageId id : posts) {
      if (store.FindMessage(pin, id) == nullptr) ++forum_obs.dangling;
    }
  }
  rec->RecordRead(reader, forum_obs);
}

/// Per-shard tracked entities of the sharded stress: one creator person
/// and one forum owned by each shard (lowest ids hashing there).
struct ShardEntities {
  std::vector<schema::PersonId> creators;  // Indexed by shard.
  std::vector<schema::ForumId> forums;
};

ShardEntities PickShardEntities(uint32_t num_shards) {
  ShardEntities e;
  e.creators.resize(num_shards, 0);
  e.forums.resize(num_shards, 0);
  uint32_t found = 0;
  for (uint64_t id = 1; found < num_shards; ++id) {
    uint32_t shard = store::ShardOfPerson(id, num_shards);
    if (e.creators[shard] == 0) {
      e.creators[shard] = id;
      ++found;
    }
  }
  found = 0;
  for (uint64_t id = 1; found < num_shards; ++id) {
    uint32_t shard = store::ShardOfForum(id, num_shards);
    if (e.forums[shard] == 0) {
      e.forums[shard] = id;
      ++found;
    }
  }
  return e;
}

/// Bulk scaffolding for the sharded stress: every tracked adjacency list
/// starts empty and grows only through recorded commits.
schema::SocialNetwork ShardScaffold(const ShardEntities& entities) {
  schema::SocialNetwork net;
  for (schema::PersonId id : entities.creators) {
    schema::Person p;
    p.id = id;
    p.first_name = "History";
    p.last_name = "Probe";
    p.birthday = util::kNetworkStartMs - 25 * 365 * util::kMillisPerDay;
    p.creation_date = util::kNetworkStartMs;
    p.city_id = 0;
    net.persons.push_back(std::move(p));
  }
  for (size_t shard = 0; shard < entities.forums.size(); ++shard) {
    schema::Forum f;
    f.id = entities.forums[shard];
    f.title = "History stress forum " + FormatU64(shard);
    f.moderator_id = entities.creators[shard];
    f.creation_date = util::kNetworkStartMs;
    net.forums.push_back(std::move(f));
  }
  return net;
}

/// Post `index` of shard `shard`'s writer. The message id is globally
/// unique across writers; the *record* lands on whatever shard the id
/// hashes to — usually not the creator's — which is exactly the
/// cross-shard edge the readers must resolve consistently.
schema::Message MakeShardPost(uint32_t shard, uint32_t num_shards, int index,
                              const ShardEntities& entities) {
  schema::Message m;
  m.id = static_cast<uint64_t>(index) * num_shards + shard + 1;
  m.kind = schema::MessageKind::kPost;
  m.creator_id = entities.creators[shard];
  m.creation_date = util::kNetworkStartMs +
                    static_cast<int64_t>(index) * util::kMillisPerMinute;
  m.forum_id = entities.forums[shard];
  m.root_post_id = m.id;
  m.content = "post " + FormatU64(m.id);
  m.country_id = 0;
  return m;
}

/// One multi-shard snapshot observing every shard's tracked lists and
/// resolving every adjacency id — mostly cross-shard — under it. The
/// watermark vector is loaded before pinning, in the same ascending shard
/// order the snapshot acquires its pins.
void ObserveShardedOnce(const store::GraphStore& store,
                        const ShardEntities& entities, HistoryRecorder* rec,
                        int reader) {
  std::vector<uint64_t> watermarks = rec->BeginReadVector();
  store::ReadGuard pin = store.ReadLock();
  for (size_t shard = 0; shard < entities.creators.size(); ++shard) {
    ReadObservation person_obs;
    person_obs.domain = kDomainPersonMessages;
    person_obs.entity = entities.creators[shard];
    person_obs.watermarks = watermarks;
    if (const store::PersonRecord* p =
            store.FindPerson(pin, entities.creators[shard])) {
      auto messages = p->messages.view();
      person_obs.edges_seen = messages.size();
      for (const store::DatedEdge& edge : messages) {
        if (store.FindMessage(pin, edge.id) == nullptr) {
          ++person_obs.dangling;
        }
      }
    }
    rec->RecordRead(reader, person_obs);

    ReadObservation forum_obs;
    forum_obs.domain = kDomainForumPosts;
    forum_obs.entity = entities.forums[shard];
    forum_obs.watermarks = watermarks;
    if (const store::ForumRecord* f =
            store.FindForum(pin, entities.forums[shard])) {
      auto posts = f->posts.view();
      forum_obs.edges_seen = posts.size();
      for (schema::MessageId id : posts) {
        if (store.FindMessage(pin, id) == nullptr) ++forum_obs.dangling;
      }
    }
    rec->RecordRead(reader, forum_obs);
  }
}

util::Status ValidateShardedConfig(const ShardedHistoryConfig& config) {
  if (config.num_shards < 1 || config.num_shards > store::kMaxShards) {
    return util::Status::InvalidArgument("num_shards must be in [1, 8]");
  }
  if (config.num_readers < 1 || config.reads_per_reader < 1 ||
      config.commits_per_shard < 1) {
    return util::Status::InvalidArgument("history config values must be >= 1");
  }
  return util::Status::Ok();
}

}  // namespace

HistoryCheckOutcome CheckHistory(const History& history) {
  HistoryCheckOutcome out;

  // Commit sequences per entity, sorted by seq (appended in order by the
  // single writer; sort defensively for hand-built histories).
  std::map<EntityKey, std::vector<WriterCommit>> commits;
  for (const WriterCommit& c : history.commits) {
    commits[{c.domain, c.entity}].push_back(c);
  }
  for (auto& [key, list] : commits) {
    std::sort(list.begin(), list.end(),
              [](const WriterCommit& a, const WriterCommit& b) {
                return a.seq < b.seq;
              });
  }
  // Watermark the observation holds for the committing shard: sharded
  // observations carry a vector (indexed by shard, loaded in pin order);
  // legacy observations carry the scalar for shard 0.
  auto watermark_for = [](const ReadObservation& obs,
                          uint32_t shard) -> uint64_t {
    if (obs.watermarks.empty()) return obs.watermark;
    return shard < obs.watermarks.size() ? obs.watermarks[shard] : 0;
  };
  // Length guaranteed visible to `obs` = max edges_after over commits the
  // observation's watermark for the committing shard covers; lists are
  // insert-only so the max is the guarantee.
  auto guaranteed_at = [&](const EntityKey& key,
                           const ReadObservation& obs) -> uint64_t {
    auto it = commits.find(key);
    if (it == commits.end()) return 0;
    uint64_t guaranteed = 0;
    for (const WriterCommit& c : it->second) {
      if (c.seq > watermark_for(obs, c.shard)) continue;
      guaranteed = std::max(guaranteed, c.edges_after);
    }
    return guaranteed;
  };
  auto final_length = [&](const EntityKey& key) -> uint64_t {
    auto it = commits.find(key);
    if (it == commits.end()) return 0;
    uint64_t final_len = 0;
    for (const WriterCommit& c : it->second) {
      final_len = std::max(final_len, c.edges_after);
    }
    return final_len;
  };

  for (size_t reader = 0; reader < history.readers.size(); ++reader) {
    std::map<EntityKey, uint64_t> last_seen;
    for (const ReadObservation& obs : history.readers[reader]) {
      ++out.observations_checked;
      EntityKey key{obs.domain, obs.entity};
      std::string where = "reader " + FormatU64(reader) + ", " +
                          DescribeEntity(obs.domain, obs.entity);

      if (obs.dangling > 0) {
        AddViolation(&out, "torn-update",
                     where + ": " + FormatU64(obs.dangling) +
                         " adjacency id(s) did not resolve under the pin");
      }
      uint64_t guaranteed = guaranteed_at(key, obs);
      if (obs.edges_seen < guaranteed) {
        AddViolation(&out, "stale-read",
                     where + ": watermark " + FormatU64(obs.watermark) +
                         " guarantees " + FormatU64(guaranteed) +
                         " edge(s) but the snapshot showed " +
                         FormatU64(obs.edges_seen));
      }
      if (obs.edges_seen > final_length(key)) {
        AddViolation(&out, "phantom-write",
                     where + ": snapshot showed " +
                         FormatU64(obs.edges_seen) +
                         " edge(s) but only " + FormatU64(final_length(key)) +
                         " were ever committed");
      }
      auto [it, inserted] = last_seen.emplace(key, obs.edges_seen);
      if (!inserted) {
        if (obs.edges_seen < it->second) {
          AddViolation(&out, "non-monotonic",
                       where + ": observed " + FormatU64(obs.edges_seen) +
                           " edge(s) after previously observing " +
                           FormatU64(it->second));
        }
        it->second = std::max(it->second, obs.edges_seen);
      }
    }
  }
  return out;
}

util::Status RecordStoreHistory(const HistoryConfig& config, History* out) {
  if (config.num_readers < 1 || config.reads_per_reader < 1 ||
      config.num_commits < 1) {
    return util::Status::InvalidArgument("history config values must be >= 1");
  }
  store::GraphStore store;
  SNB_RETURN_IF_ERROR(store.BulkLoad(ScaffoldNetwork()));

  HistoryRecorder recorder(config.num_readers);
  // The writer thread's status lands here; ThreadPool::Wait() orders the
  // write before the read below.
  util::Status writer_status = util::Status::Ok();

  util::ThreadPool pool(static_cast<size_t>(config.num_readers) + 1);
  pool.Submit([&store, &recorder, &writer_status, &config] {
    for (int i = 0; i < config.num_commits; ++i) {
      util::Status st = store.AddMessage(MakePost(static_cast<uint64_t>(i)));
      if (!st.ok()) {
        writer_status = st;
        return;
      }
      uint64_t length = static_cast<uint64_t>(i) + 1;
      uint64_t seq = recorder.Commit(kDomainPersonMessages, kCreator, length);
      recorder.CommitAt(seq, kDomainForumPosts, kForum, length);
    }
  });
  for (int reader = 0; reader < config.num_readers; ++reader) {
    pool.Submit([&store, &recorder, &config, reader] {
      for (int k = 0; k < config.reads_per_reader; ++k) {
        ObserveOnce(store, &recorder, reader);
      }
    });
  }
  pool.Wait();
  SNB_RETURN_IF_ERROR(writer_status);
  *out = recorder.TakeHistory();
  return util::Status::Ok();
}

util::Status RecordBrokenWriterHistory(const HistoryConfig& config,
                                       History* out) {
  if (config.num_commits < 1) {
    return util::Status::InvalidArgument("history config values must be >= 1");
  }
  store::GraphStore store;
  SNB_RETURN_IF_ERROR(store.BulkLoad(ScaffoldNetwork()));

  HistoryRecorder recorder(1);
  for (int i = 0; i < config.num_commits; ++i) {
    uint64_t length = static_cast<uint64_t>(i) + 1;
    // Broken protocol: the commit point is announced before the message is
    // published...
    uint64_t seq = recorder.Commit(kDomainPersonMessages, kCreator, length);
    recorder.CommitAt(seq, kDomainForumPosts, kForum, length);
    // ...so the interleaved read's watermark promises an edge its snapshot
    // cannot contain.
    ObserveOnce(store, &recorder, 0);
    SNB_RETURN_IF_ERROR(store.AddMessage(MakePost(static_cast<uint64_t>(i))));
  }
  *out = recorder.TakeHistory();
  return util::Status::Ok();
}

util::Status RecordShardedStoreHistory(const ShardedHistoryConfig& config,
                                       History* out) {
  SNB_RETURN_IF_ERROR(ValidateShardedConfig(config));
  ShardEntities entities = PickShardEntities(config.num_shards);
  store::GraphStore store(store::ReadConcurrency::kEpoch, config.num_shards);
  SNB_RETURN_IF_ERROR(store.BulkLoad(ShardScaffold(entities)));

  HistoryRecorder recorder(config.num_readers, config.num_shards);
  // One status slot per writer; ThreadPool::Wait() orders the writes
  // before the reads below.
  std::vector<util::Status> writer_status(config.num_shards);

  util::ThreadPool pool(static_cast<size_t>(config.num_shards) +
                        static_cast<size_t>(config.num_readers));
  for (uint32_t shard = 0; shard < config.num_shards; ++shard) {
    pool.Submit([&store, &recorder, &writer_status, &entities, &config,
                 shard] {
      for (int i = 0; i < config.commits_per_shard; ++i) {
        util::Status st = store.AddMessage(
            MakeShardPost(shard, config.num_shards, i, entities));
        if (!st.ok()) {
          writer_status[shard] = st;
          return;
        }
        uint64_t length = static_cast<uint64_t>(i) + 1;
        uint64_t seq = recorder.CommitOnShard(
            shard, kDomainPersonMessages, entities.creators[shard], length);
        recorder.CommitAtOnShard(shard, seq, kDomainForumPosts,
                                 entities.forums[shard], length);
      }
    });
  }
  for (int reader = 0; reader < config.num_readers; ++reader) {
    pool.Submit([&store, &recorder, &entities, &config, reader] {
      for (int k = 0; k < config.reads_per_reader; ++k) {
        ObserveShardedOnce(store, entities, &recorder, reader);
      }
    });
  }
  pool.Wait();
  for (const util::Status& st : writer_status) {
    SNB_RETURN_IF_ERROR(st);
  }
  *out = recorder.TakeHistory();
  return util::Status::Ok();
}

util::Status RecordMismatchedPinHistory(const ShardedHistoryConfig& config,
                                        History* out) {
  SNB_RETURN_IF_ERROR(ValidateShardedConfig(config));
  ShardEntities entities = PickShardEntities(config.num_shards);
  store::GraphStore store(store::ReadConcurrency::kEpoch, config.num_shards);
  SNB_RETURN_IF_ERROR(store.BulkLoad(ShardScaffold(entities)));

  HistoryRecorder recorder(1, config.num_shards);
  for (int i = 0; i < config.commits_per_shard; ++i) {
    for (uint32_t shard = 0; shard < config.num_shards; ++shard) {
      // The reader's view of shard `shard`'s list predates this update...
      uint64_t stale_length = static_cast<uint64_t>(i);
      SNB_RETURN_IF_ERROR(store.AddMessage(
          MakeShardPost(shard, config.num_shards, i, entities)));
      uint64_t length = static_cast<uint64_t>(i) + 1;
      uint64_t seq = recorder.CommitOnShard(
          shard, kDomainPersonMessages, entities.creators[shard], length);
      recorder.CommitAtOnShard(shard, seq, kDomainForumPosts,
                               entities.forums[shard], length);
      // ...but its watermark vector is loaded after the commit — the
      // observable signature of a reader that pinned shard `shard` at an
      // older epoch than its watermark load promises. The checker must
      // flag every such observation as a stale read.
      ReadObservation obs;
      obs.domain = kDomainPersonMessages;
      obs.entity = entities.creators[shard];
      obs.edges_seen = stale_length;
      obs.watermarks = recorder.BeginReadVector();
      recorder.RecordRead(0, obs);
    }
  }
  *out = recorder.TakeHistory();
  return util::Status::Ok();
}

}  // namespace snb::validate
