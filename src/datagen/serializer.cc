#include "datagen/serializer.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace snb::datagen {
namespace {

using schema::Message;
using schema::MessageKind;
using schema::Person;
using schema::SocialNetwork;
using util::Result;
using util::Status;

constexpr char kSep = '|';
constexpr char kListSep = ';';

// Joins a uint list with the intra-field separator.
template <typename T>
std::string JoinIds(const std::vector<T>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += kListSep;
    out += std::to_string(values[i]);
  }
  return out;
}

template <typename T>
std::vector<T> SplitIds(const std::string& field) {
  std::vector<T> out;
  if (field.empty()) return out;
  for (const std::string& part : util::Split(field, kListSep)) {
    out.push_back(static_cast<T>(std::stoull(part)));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += kListSep;
    out += values[i];
  }
  return out;
}

class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path) : out_(path) {}

  bool ok() const { return out_.good(); }
  uint64_t bytes() const { return bytes_; }

  void Row(const std::vector<std::string>& fields) {
    std::string line;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) line += kSep;
      line += fields[i];
    }
    line += '\n';
    out_ << line;
    bytes_ += line.size();
  }

 private:
  std::ofstream out_;
  uint64_t bytes_ = 0;
};

std::string Ts(util::TimestampMs t) { return std::to_string(t); }

}  // namespace

Result<CsvSizes> WriteCsv(const Dataset& dataset,
                          const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + directory + ": " +
                            ec.message());
  }
  CsvSizes sizes;
  const SocialNetwork& bulk = dataset.bulk;

  {
    CsvWriter w(directory + "/" + CsvFileSet::kPersons);
    w.Row({"id", "firstName", "lastName", "gender", "birthday",
           "creationDate", "cityId", "browser", "locationIP", "emails",
           "languages", "interests", "universityId", "studyYear",
           "companyId", "workYear"});
    for (const Person& p : bulk.persons) {
      w.Row({std::to_string(p.id), p.first_name, p.last_name,
             std::to_string(p.gender), Ts(p.birthday), Ts(p.creation_date),
             std::to_string(p.city_id), p.browser, p.location_ip,
             JoinStrings(p.emails), JoinIds(p.languages),
             JoinIds(p.interests), std::to_string(p.university_id),
             std::to_string(p.study_year), std::to_string(p.company_id),
             std::to_string(p.work_year)});
    }
    if (!w.ok()) return Status::Internal("write failed: person.csv");
    sizes.person_bytes = w.bytes();
  }
  {
    CsvWriter w(directory + "/" + CsvFileSet::kKnows);
    w.Row({"person1Id", "person2Id", "creationDate"});
    for (const schema::Knows& k : bulk.knows) {
      w.Row({std::to_string(k.person1_id), std::to_string(k.person2_id),
             Ts(k.creation_date)});
    }
    if (!w.ok()) return Status::Internal("write failed: knows csv");
    sizes.knows_bytes = w.bytes();
  }
  {
    CsvWriter w(directory + "/" + CsvFileSet::kForums);
    w.Row({"id", "title", "moderatorId", "creationDate", "tags"});
    for (const schema::Forum& f : bulk.forums) {
      w.Row({std::to_string(f.id), f.title, std::to_string(f.moderator_id),
             Ts(f.creation_date), JoinIds(f.tags)});
    }
    if (!w.ok()) return Status::Internal("write failed: forum.csv");
    sizes.forum_bytes = w.bytes();
  }
  {
    CsvWriter w(directory + "/" + CsvFileSet::kMemberships);
    w.Row({"forumId", "personId", "joinDate"});
    for (const schema::ForumMembership& fm : bulk.memberships) {
      w.Row({std::to_string(fm.forum_id), std::to_string(fm.person_id),
             Ts(fm.join_date)});
    }
    if (!w.ok()) return Status::Internal("write failed: membership csv");
    sizes.membership_bytes = w.bytes();
  }
  {
    CsvWriter w(directory + "/" + CsvFileSet::kMessages);
    w.Row({"id", "kind", "creatorId", "creationDate", "forumId", "replyTo",
           "rootPost", "language", "countryId", "latitude", "longitude",
           "tags", "content"});
    for (const Message& m : bulk.messages) {
      char lat[32], lon[32];
      std::snprintf(lat, sizeof(lat), "%.4f", m.latitude);
      std::snprintf(lon, sizeof(lon), "%.4f", m.longitude);
      w.Row({std::to_string(m.id),
             std::to_string(static_cast<int>(m.kind)),
             std::to_string(m.creator_id), Ts(m.creation_date),
             std::to_string(m.forum_id), std::to_string(m.reply_to_id),
             std::to_string(m.root_post_id), std::to_string(m.language),
             std::to_string(m.country_id), lat, lon, JoinIds(m.tags),
             m.content});
    }
    if (!w.ok()) return Status::Internal("write failed: message.csv");
    sizes.message_bytes = w.bytes();
  }
  {
    CsvWriter w(directory + "/" + CsvFileSet::kLikes);
    w.Row({"personId", "messageId", "creationDate"});
    for (const schema::Like& l : bulk.likes) {
      w.Row({std::to_string(l.person_id), std::to_string(l.message_id),
             Ts(l.creation_date)});
    }
    if (!w.ok()) return Status::Internal("write failed: likes csv");
    sizes.likes_bytes = w.bytes();
  }
  {
    // Update stream: one row per operation with kind + due/dependency
    // metadata; the payload is referenced by entity id (payload rows for
    // update entities would mirror the bulk formats; the driver replays the
    // in-memory stream, so the file serves scheduling analysis).
    CsvWriter w(directory + "/" + CsvFileSet::kUpdates);
    w.Row({"kind", "dueTime", "dependencyTime", "personDependencyTime",
           "forumPartition"});
    for (const UpdateOperation& op : dataset.updates) {
      w.Row({std::to_string(static_cast<int>(op.kind)), Ts(op.due_time),
             Ts(op.dependency_time), Ts(op.person_dependency_time),
             std::to_string(op.forum_partition)});
    }
    if (!w.ok()) return Status::Internal("write failed: update csv");
    sizes.update_bytes = w.bytes();
  }
  return sizes;
}

namespace {

Result<std::vector<std::vector<std::string>>> ReadRows(
    const std::string& path, size_t expected_fields) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    std::vector<std::string> fields = util::Split(line, kSep);
    if (fields.size() != expected_fields) {
      return Status::Internal("bad field count in " + path);
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace

Result<SocialNetwork> ReadCsv(const std::string& directory) {
  SocialNetwork network;

  auto persons = ReadRows(directory + "/" + CsvFileSet::kPersons, 16);
  if (!persons.ok()) return persons.status();
  for (const auto& f : persons.value()) {
    Person p;
    p.id = std::stoull(f[0]);
    p.first_name = f[1];
    p.last_name = f[2];
    p.gender = static_cast<uint8_t>(std::stoul(f[3]));
    p.birthday = std::stoll(f[4]);
    p.creation_date = std::stoll(f[5]);
    p.city_id = static_cast<schema::PlaceId>(std::stoul(f[6]));
    p.browser = f[7];
    p.location_ip = f[8];
    if (!f[9].empty()) p.emails = util::Split(f[9], kListSep);
    p.languages = SplitIds<uint32_t>(f[10]);
    p.interests = SplitIds<schema::TagId>(f[11]);
    p.university_id = static_cast<schema::OrganizationId>(std::stoul(f[12]));
    p.study_year = static_cast<uint16_t>(std::stoul(f[13]));
    p.company_id = static_cast<schema::OrganizationId>(std::stoul(f[14]));
    p.work_year = static_cast<uint16_t>(std::stoul(f[15]));
    network.persons.push_back(std::move(p));
  }

  auto knows = ReadRows(directory + "/" + CsvFileSet::kKnows, 3);
  if (!knows.ok()) return knows.status();
  for (const auto& f : knows.value()) {
    network.knows.push_back(
        {std::stoull(f[0]), std::stoull(f[1]), std::stoll(f[2])});
  }

  auto forums = ReadRows(directory + "/" + CsvFileSet::kForums, 5);
  if (!forums.ok()) return forums.status();
  for (const auto& f : forums.value()) {
    schema::Forum forum;
    forum.id = std::stoull(f[0]);
    forum.title = f[1];
    forum.moderator_id = std::stoull(f[2]);
    forum.creation_date = std::stoll(f[3]);
    forum.tags = SplitIds<schema::TagId>(f[4]);
    network.forums.push_back(std::move(forum));
  }

  auto memberships =
      ReadRows(directory + "/" + CsvFileSet::kMemberships, 3);
  if (!memberships.ok()) return memberships.status();
  for (const auto& f : memberships.value()) {
    network.memberships.push_back(
        {std::stoull(f[0]), std::stoull(f[1]), std::stoll(f[2])});
  }

  auto messages = ReadRows(directory + "/" + CsvFileSet::kMessages, 13);
  if (!messages.ok()) return messages.status();
  for (const auto& f : messages.value()) {
    Message m;
    m.id = std::stoull(f[0]);
    m.kind = static_cast<MessageKind>(std::stoul(f[1]));
    m.creator_id = std::stoull(f[2]);
    m.creation_date = std::stoll(f[3]);
    m.forum_id = std::stoull(f[4]);
    m.reply_to_id = std::stoull(f[5]);
    m.root_post_id = std::stoull(f[6]);
    m.language = static_cast<uint32_t>(std::stoul(f[7]));
    m.country_id = static_cast<schema::PlaceId>(std::stoul(f[8]));
    m.latitude = std::stod(f[9]);
    m.longitude = std::stod(f[10]);
    m.tags = SplitIds<schema::TagId>(f[11]);
    m.content = f[12];
    network.messages.push_back(std::move(m));
  }

  auto likes = ReadRows(directory + "/" + CsvFileSet::kLikes, 3);
  if (!likes.ok()) return likes.status();
  for (const auto& f : likes.value()) {
    network.likes.push_back(
        {std::stoull(f[0]), std::stoull(f[1]), std::stoll(f[2])});
  }
  return network;
}

Result<uint64_t> WriteNTriples(const SocialNetwork& network,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return Status::Internal("cannot open " + path);
  uint64_t bytes = 0;
  auto emit = [&](const std::string& s, const std::string& p,
                  const std::string& o) {
    std::string line = s + " " + p + " " + o + " .\n";
    out << line;
    bytes += line.size();
  };
  // URIs embed a zero-padded creation timestamp so lexicographic order
  // preserves the time dimension (important for URI compression in RDF
  // systems — section 2.4 footnote).
  auto uri = [](const char* kind, util::TimestampMs created, uint64_t id) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "<snb:%s/%015" PRId64 "/%" PRIu64 ">",
                  kind, created, id);
    return std::string(buf);
  };
  for (const Person& p : network.persons) {
    std::string s = uri("pers", p.creation_date, p.id);
    emit(s, "<snb:firstName>", "\"" + p.first_name + "\"");
    emit(s, "<snb:lastName>", "\"" + p.last_name + "\"");
    emit(s, "<snb:city>", std::to_string(p.city_id));
  }
  std::unordered_map<uint64_t, util::TimestampMs> person_created;
  for (const Person& p : network.persons) {
    person_created[p.id] = p.creation_date;
  }
  for (const schema::Knows& k : network.knows) {
    emit(uri("pers", person_created[k.person1_id], k.person1_id),
         "<snb:knows>",
         uri("pers", person_created[k.person2_id], k.person2_id));
  }
  for (const Message& m : network.messages) {
    std::string s = uri("msg", m.creation_date, m.id);
    emit(s, "<snb:creator>",
         uri("pers", person_created[m.creator_id], m.creator_id));
    emit(s, "<snb:content>", "\"" + m.content + "\"");
  }
  if (!out.good()) return Status::Internal("ntriples write failed");
  return bytes;
}

}  // namespace snb::datagen
