# Empty dependencies file for bench_table2_firstnames.
# This may be replaced when dependencies are built.
