#include "datagen/degree_model.h"

#include <cmath>

namespace snb::datagen {
namespace {

// Reference max-degree-per-percentile curve fitted to the published Facebook
// distribution shape (Figure 2b): ~10 at the lowest percentiles rising
// through ~100 at the median to ~5000 at the top percentile, convex on a log
// scale. d(p) = d_lo * (d_hi/d_lo)^((p/100)^gamma).
constexpr double kDegreeLo = 4.0;
constexpr double kDegreeHi = 5000.0;
constexpr double kGamma = 1.6;

uint32_t CurvePoint(int percentile) {
  double f = (static_cast<double>(percentile) + 1.0) / 100.0;
  double d = kDegreeLo * std::pow(kDegreeHi / kDegreeLo, std::pow(f, kGamma));
  return static_cast<uint32_t>(d + 0.5);
}

}  // namespace

DegreeModel::DegreeModel(uint64_t num_persons) {
  for (int p = 0; p < kPercentiles; ++p) {
    max_degree_[p] = CurvePoint(p);
  }
  // Mean of the reference distribution: percentiles are equiprobable and the
  // degree is uniform inside each percentile band.
  double ref_mean = 0.0;
  for (int p = 0; p < kPercentiles; ++p) {
    double lo = static_cast<double>(ReferenceMinDegree(p));
    double hi = static_cast<double>(max_degree_[p]);
    ref_mean += (lo + hi) / 2.0;
  }
  ref_mean /= kPercentiles;

  target_avg_ = AverageDegreeFormula(num_persons);
  scale_ = target_avg_ / ref_mean;
}

double DegreeModel::AverageDegreeFormula(uint64_t num_persons) {
  double n = static_cast<double>(num_persons);
  if (n < 2.0) n = 2.0;
  double exponent = 0.512 - 0.028 * std::log10(n);
  return std::pow(n, exponent);
}

uint32_t DegreeModel::TargetDegree(uint64_t seed,
                                   schema::PersonId person) const {
  util::Rng pct_rng(seed, person, util::RandomPurpose::kDegreePercentile);
  int percentile = static_cast<int>(pct_rng.NextBounded(kPercentiles));
  util::Rng deg_rng(seed, person, util::RandomPurpose::kDegree);
  uint32_t lo = ReferenceMinDegree(percentile);
  uint32_t hi = max_degree_[percentile];
  auto reference =
      static_cast<double>(deg_rng.NextInRange(lo, hi));
  auto scaled = static_cast<uint32_t>(reference * scale_ + 0.5);
  return scaled == 0 ? 1 : scaled;
}

}  // namespace snb::datagen
