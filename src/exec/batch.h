// Block-at-a-time execution: the column batch and the operator interface.
//
// The scalar query plans (queries/complex_queries.cc) are row-at-a-time:
// every tuple crosses an operator boundary through a lambda call, touching
// scattered records as it goes. The batched engine moves fixed-size blocks
// of column vectors instead — an operator fills a Batch of up to
// kBatchCapacity rows per Next() call, so the per-tuple interpretation
// overhead amortizes over the block and the inner loops run over dense
// arrays the compiler can vectorize.
//
// Block size: 256 rows. The three columns of a full batch are 256*(8+8+8)
// = 6 KiB, so a batch plus the scratch blocks of the producing operator
// stay L1-resident (32 KiB typical) with room to spare; going to 1024 rows
// measured no further win on the adjacency workloads while tripling cache
// pressure under concurrent driver threads. See DESIGN.md "Execution
// engine" for the measurement notes.
//
// Column meaning is per-operator (documented at each operator): `a` and
// `b` are id-like u64 columns (message id, creator id, forum id, ...),
// `date` is a TimestampMs column. Queries that need fewer columns simply
// leave the rest unwritten — a Batch is scratch owned by the consumer and
// reused across Next() calls, never a long-lived container.
#ifndef SNB_EXEC_BATCH_H_
#define SNB_EXEC_BATCH_H_

#include <cstddef>
#include <cstdint>

namespace snb::exec {

/// Rows per block. Power of two so offset math stays shift/mask.
inline constexpr size_t kBatchCapacity = 256;

/// One block of column vectors. Plain arrays (not std::vector) so a Batch
/// is a single stack/inline allocation with no indirection on the hot
/// loops.
struct Batch {
  uint64_t a[kBatchCapacity];  // Primary id column.
  uint64_t b[kBatchCapacity];  // Secondary id column.
  int64_t date[kBatchCapacity];  // TimestampMs column.
  size_t size = 0;

  bool empty() const { return size == 0; }
  void clear() { size = 0; }
};

/// Pull-based operator: fills `out` with up to kBatchCapacity rows and
/// returns true, or returns false when exhausted (out->size is then 0).
/// Operators that read the store hold the caller's ShardSnapshot by reference —
/// the caller's ReadGuard must outlive the operator (the same discipline
/// every snapshot accessor enforces by token).
class Operator {
 public:
  virtual ~Operator() = default;
  virtual bool Next(Batch* out) = 0;
};

}  // namespace snb::exec

#endif  // SNB_EXEC_BATCH_H_
