// A complete SNB-Interactive benchmark run, following the paper's
// protocol (section 4, "Rules and Metrics"):
//
//   1. generate the dataset; bulk-load the first 32 simulated months;
//   2. build the query mix: the pre-generated update stream interleaved
//      with complex reads at the Table 4 frequencies, short reads spawned
//      by the random walk;
//   3. pick an acceleration factor (simulation time / real time) and replay
//      the workload at that pace;
//   4. the run is successful if the pace was sustained AND the schedule-
//      compliance audit passed (>= 95% of operations started within the
//      lateness window); report the acceleration factor and per-query
//      latencies (p50/p95/p99), and write the machine-readable artifacts:
//      report.json (schema snb-report-v5, incl. the compliance audit, a
//      Q9 per-operator profile, build provenance and the CPU-profile
//      section) and report.prom (Prometheus text exposition).
//
//   ./examples/benchmark_run [scale_factor] [acceleration] [report_path]
//                            [--listen <port>] [--trace-out <path>]
//                            [--exec scalar|batched] [--perf-counters]
//                            [--cpu-profile=<path>]
//
//   --listen <port>    serve GET /metrics (Prometheus text),
//                      GET /report.json (live snapshot), GET /healthz and
//                      GET /profile?seconds=N (on-demand folded-stack
//                      capture; 503 while the profiler backend is no-op)
//                      while the run executes (0 picks an ephemeral port).
//   --trace-out <path> record every executed operation into a bounded
//                      ring and flush a Chrome-trace/Perfetto JSON
//                      (one lane per driver thread, T_GC-wait sub-spans,
//                      hw-counter tracks when counters are live).
//   --exec <engine>    run Q5/Q9/Q14 through the block-at-a-time engine
//                      ("batched") or the row-at-a-time one ("scalar",
//                      default); report.json records the choice as
//                      "exec_mode".
//   --perf-counters    attach per-thread perf_event counter groups
//                      (cycles/instructions/LLC/branch misses) so every
//                      op row carries IPC and miss rates, and collect
//                      slow-query dossiers for the tail of every op type.
//                      Falls back to a no-op backend (run still valid,
//                      counters marked unavailable) where perf_event_open
//                      is denied — containers, CI.
//   --cpu-profile <path>  additionally write the sampling CPU profile as
//                      collapsed stacks ("folded" text, one line per
//                      unique stack) to <path>; scripts/profile_view.py
//                      turns it into a flamegraph SVG or speedscope JSON.
//                      The profiler itself is always on (it degrades to a
//                      no-op backend under seccomp/sanitizers or with
//                      SNB_PROF_FORCE_NOOP=1); the flag only adds the
//                      artifact.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/datagen.h"
#include "driver/driver.h"
#include "driver/query_mix.h"
#include "exec/exec_mode.h"
#include "obs/dossier.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/prof.h"
#include "obs/report.h"
#include "obs/trace_buffer.h"
#include "queries/query9_plans.h"
#include "store/graph_store.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace snb;

  double scale_factor = 0.1;
  double acceleration = 0.0;
  std::string report_path = "report.json";
  int listen_port = -1;
  std::string trace_path;
  std::string cpu_profile_path;
  bool perf_counters = false;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--perf-counters") == 0) {
      perf_counters = true;
    } else if (std::strncmp(argv[i], "--cpu-profile=", 14) == 0) {
      cpu_profile_path = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--cpu-profile") == 0 && i + 1 < argc) {
      cpu_profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--exec") == 0 && i + 1 < argc) {
      exec::ExecMode exec_mode;
      if (!exec::ParseExecMode(argv[++i], &exec_mode)) {
        std::fprintf(stderr,
                     "unknown --exec value '%s' (expected scalar|batched)\n",
                     argv[i]);
        return 1;
      }
      exec::SetDefaultExecMode(exec_mode);
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    } else {
      switch (positional++) {
        case 0: scale_factor = std::atof(argv[i]); break;
        case 1: acceleration = std::atof(argv[i]); break;
        case 2: report_path = argv[i]; break;
        default:
          std::fprintf(stderr, "too many positional arguments\n");
          return 1;
      }
    }
  }

  std::printf("=== SNB-Interactive benchmark run (mini SF %.2f, %s"
              " engine) ===\n\n",
              scale_factor, exec::ExecModeName(exec::DefaultExecMode()));
  datagen::DatagenConfig config =
      datagen::DatagenConfig::ForScaleFactor(scale_factor);
  datagen::Dataset dataset = datagen::Generate(config);
  schema::Dictionaries dictionaries(config.seed);
  std::printf("dataset: %llu persons, %llu knows, %llu messages"
              " (%.4f CSV-GB)\n",
              (unsigned long long)dataset.stats.num_persons,
              (unsigned long long)dataset.stats.num_knows,
              (unsigned long long)dataset.stats.NumMessages(),
              dataset.stats.csv_bytes / 1e9);

  store::GraphStore store;
  util::Status status = store.BulkLoad(dataset.bulk);
  if (!status.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("bulk-loaded first %d simulated months (%zu update ops to"
              " stream)\n\n", util::kBulkLoadMonths, dataset.updates.size());

  driver::QueryMixConfig mix;
  // Compress Table 4 frequencies so the mini stream exercises all queries,
  // then apply the paper's log scaling rule for this dataset size.
  for (auto& f : mix.frequencies) f = std::max<uint32_t>(1, f / 10);
  mix.frequency_scale =
      driver::FrequencyLogScale(dataset.stats.num_persons);
  driver::Workload workload =
      driver::BuildWorkload(dataset, dictionaries, mix);
  std::printf("workload: %llu updates + %llu complex reads (+ random-walk"
              " short reads)\n",
              (unsigned long long)workload.num_updates,
              (unsigned long long)workload.num_complex_reads);

  if (acceleration <= 0.0) {
    // Auto-pick: replay the simulated span in ~5 s.
    util::TimestampMs span = workload.operations.back().due_time -
                             workload.operations.front().due_time;
    acceleration = static_cast<double>(span) / 5000.0;
  }
  std::printf("acceleration factor: %.0fx (simulation/real time)\n\n",
              acceleration);

  obs::MetricsRegistry metrics;
  std::unique_ptr<obs::TraceBuffer> trace;
  if (!trace_path.empty()) trace = std::make_unique<obs::TraceBuffer>();

  // Hardware counters + tail attribution. Enable() probes perf_event_open
  // and degrades to the no-op backend where the syscall is denied; dossier
  // collection is latency-triggered, so it produces tail attributions
  // (without counter columns) even on the no-op backend.
  std::unique_ptr<obs::DossierCollector> dossiers;
  if (perf_counters) {
    obs::perf::Backend backend = obs::perf::Enable();
    std::printf("perf counters: backend=%s (%s)\n\n",
                obs::perf::BackendName(backend),
                obs::perf::BackendMessage().c_str());
    dossiers = std::make_unique<obs::DossierCollector>(/*keep_per_op=*/3);
  }

  // Always-on sampling CPU profiler. Enabled after datagen + bulk load so
  // the samples cover the replay itself; degrades to a no-op backend when
  // per-thread timers are unavailable (seccomp, sanitizers,
  // SNB_PROF_FORCE_NOOP) without invalidating the run.
  obs::prof::Backend prof_backend = obs::prof::Enable();
  std::printf("cpu profiler: backend=%s (%s)\n\n",
              obs::prof::BackendName(prof_backend),
              obs::prof::BackendMessage().c_str());

  // Live observer: /metrics and /report.json rebuild from the registry at
  // most every 250 ms, so curl/Prometheus can watch the run as it executes.
  obs::HttpExporter exporter;
  if (listen_port >= 0) {
    exporter.Handle("/metrics", "text/plain; version=0.0.4", [&metrics] {
      return obs::ToPrometheusText(metrics.Snapshot());
    });
    std::string title =
        "snb-interactive benchmark_run SF " + std::to_string(scale_factor);
    exporter.Handle("/report.json", "application/json", [&metrics, title] {
      obs::RunReport live;
      live.title = title + " (live)";
      live.metrics = metrics.Snapshot();
      return obs::ToJson(live);
    });
    // On-demand capture window: two Collect() snapshots N seconds apart,
    // served as collapsed stacks. 503 + JSON error while the profiler
    // backend is no-op, matching the /healthz convention of never lying.
    // Runs on the exporter's dynamic worker thread (never the accept
    // loop), so /healthz and /metrics answer throughout the window.
    exporter.HandleDynamic("/profile", [&exporter](const std::string& query) {
      obs::HttpExporter::HttpResponse resp;
      if (!obs::prof::SamplingLive()) {
        resp.status = 503;
        resp.content_type = "application/json";
        resp.body = std::string("{\"error\":\"profiler unavailable\","
                                "\"backend\":\"") +
                    obs::prof::BackendName(obs::prof::ActiveBackend()) +
                    "\"}\n";
        return resp;
      }
      int seconds = 1;
      size_t pos = query.find("seconds=");
      if (pos != std::string::npos) {
        seconds = std::atoi(query.c_str() + pos + 8);
      }
      if (seconds < 1) seconds = 1;
      if (seconds > 30) seconds = 30;
      obs::prof::FoldedProfile before = obs::prof::Collect();
      // Sliced wait: Stop() retires the listener before joining this
      // worker, so a capture in flight ends early at shutdown (serving
      // whatever the window gathered) instead of holding the join for
      // up to the full 30 s.
      for (int waited_ms = 0; waited_ms < seconds * 1000 && exporter.running();
           waited_ms += 100) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      obs::prof::FoldedProfile after = obs::prof::Collect();
      resp.content_type = "text/plain; version=folded";
      resp.body = obs::prof::ToFoldedText(obs::prof::DeltaSince(before, after));
      return resp;
    });
    status = exporter.Start(static_cast<uint16_t>(listen_port));
    if (!status.ok()) {
      std::fprintf(stderr, "--listen failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("serving http://localhost:%u/metrics, /report.json and"
                " /profile\n\n",
                exporter.port());
  }

  driver::StoreConnector connector(&store, &dataset.updates, &dictionaries,
                                   &metrics, driver::ShortReadWalkConfig(),
                                   /*dispatch_overhead_us=*/0, trace.get(),
                                   dossiers.get());
  driver::DriverConfig driver_config;
  driver_config.num_partitions = 4;
  driver_config.acceleration = acceleration;
  driver_config.metrics = &metrics;
  driver_config.trace = trace.get();
  driver::DriverReport report =
      driver::RunWorkload(workload.operations, connector, driver_config);
  driver::PublishStoreMetrics(store, &metrics);

  std::printf("=== results ===\n");
  std::printf("executed %llu driver ops in %.2f s (%.0f ops/s), %llu failed\n",
              (unsigned long long)report.operations_executed,
              report.elapsed_seconds, report.ops_per_second,
              (unsigned long long)report.operations_failed);
  std::printf("max schedule lag: %.1f ms -> run %s at acceleration %.0fx\n",
              report.max_schedule_lag_ms,
              report.sustained ? "SUSTAINED" : "NOT SUSTAINED",
              acceleration);
  if (report.has_compliance) {
    const obs::ComplianceSection& c = report.compliance;
    std::printf("schedule compliance: %llu/%llu on time (%.2f%%, window"
                " %.0f ms) -> %s\n",
                (unsigned long long)c.on_time_ops,
                (unsigned long long)c.scheduled_ops,
                c.on_time_fraction * 100.0, c.window_ms,
                c.passed ? "PASSED" : "FAILED");
    for (size_t i = 0; i < c.per_op.size() && i < 3; ++i) {
      std::printf("  worst offender: %-14s %6llu late of %8llu, max"
                  " %.1f ms\n",
                  c.per_op[i].op.c_str(),
                  (unsigned long long)c.per_op[i].late,
                  (unsigned long long)c.per_op[i].scheduled,
                  c.per_op[i].max_late_ms);
    }
  }
  std::printf("\n");

  obs::MetricsSnapshot snap = metrics.Snapshot();
  bool hw_live = obs::perf::CountersLive();
  std::printf("%-18s %8s %10s %10s %10s %10s%s\n", "operation", "count",
              "p50 ms", "p95 ms", "p99 ms", "max ms",
              hw_live ? "      ipc   llc/kinst" : "");
  for (size_t i = 0; i < obs::kNumOpTypes; ++i) {
    const obs::OpSnapshot& op = snap.ops[i];
    if (op.count == 0) continue;
    std::printf("%-18s %8llu %10.3f %10.3f %10.3f %10.3f",
                obs::OpTypeName(static_cast<obs::OpType>(i)),
                (unsigned long long)op.count, op.PercentileUs(50) / 1000.0,
                op.PercentileUs(95) / 1000.0, op.PercentileUs(99) / 1000.0,
                op.MaxUs() / 1000.0);
    if (hw_live && op.hw.valid()) {
      std::printf(" %8.2f %11.3f", op.hw.Ipc(),
                  op.hw.LlcMissesPerKiloInstr());
    }
    std::printf("\n");
  }

  // Profile the intended Q9 plan (INL-INL-HASH, Figure 4) on a handful of
  // real parameters so the report carries a per-operator section.
  queries::Q9OperatorProfile q9_profile;
  {
    // The main thread joins the profiled population only for this block,
    // attributed to complex.Q9 — its report-assembly work stays unsampled.
    obs::prof::ScopedThreadRegistration prof_main("main");
    obs::prof::ScopedOpContext prof_q9(
        static_cast<uint16_t>(obs::ComplexOp(9)));
    std::vector<schema::PersonId> persons;
    {
      auto pin = store.ReadLock();
      persons = store.PersonIds(pin);
    }
    // At least 5 executions for the operator rows; keep going (bounded)
    // until the block has burned ~60 ms of CPU so the sampling profiler
    // collects a meaningful number of operator-labelled samples even at
    // kernel-tick sampling granularity (per-thread CPU timers fire at
    // multi-ms resolution on HZ=250 kernels regardless of the requested
    // interval).
    util::Stopwatch block_watch;
    int runs = 0;
    for (size_t i = 0; runs < 150; i += 17, ++runs) {
      if (i >= persons.size()) {
        if (persons.empty()) break;
        i %= persons.size();
      }
      if (runs >= 5 && block_watch.ElapsedNanos() > 60'000'000) break;
      queries::Query9WithPlan(
          store, persons[i], workload.operations.back().due_time, 20,
          queries::JoinStrategy::kIndexNestedLoop,
          queries::JoinStrategy::kIndexNestedLoop,
          queries::JoinStrategy::kIndexNestedLoop, nullptr, &q9_profile);
    }
  }
  std::printf("\nQ9 operator profile (INL-INL-INL):\n");
  for (const auto& [name, stats] : queries::ProfileRows(q9_profile)) {
    std::printf("  %-26s %6llu calls %10.3f ms %10llu rows\n", name.c_str(),
                (unsigned long long)stats.invocations, stats.TimeMs(),
                (unsigned long long)stats.rows);
  }

  // Collected after the Q9 block so its samples (main-thread lane) are
  // folded in; driver lanes folded their totals when their threads exited.
  obs::prof::FoldedProfile folded = obs::prof::Collect();
  {
    const obs::prof::SampleAccounting& acc = folded.accounting;
    double overhead_pct =
        acc.task_clock_ns > 0
            ? 100.0 * static_cast<double>(acc.self_overhead_ns) /
                  static_cast<double>(acc.task_clock_ns)
            : 0.0;
    std::printf("\ncpu profile: %llu samples captured (%llu attributed,"
                " %llu unattributed, %llu dropped) across %u threads,"
                " self-overhead %.3f%% of task-clock\n",
                (unsigned long long)acc.captured,
                (unsigned long long)acc.attributed,
                (unsigned long long)acc.unattributed,
                (unsigned long long)acc.dropped, acc.threads, overhead_pct);
  }

  obs::RunReport run_report;
  run_report.title = "snb-interactive benchmark_run SF " +
                     std::to_string(scale_factor);
  run_report.exec_mode = exec::ExecModeName(exec::DefaultExecMode());
  run_report.metrics = metrics.Snapshot();  // Re-snapshot: gauges now set.
  run_report.has_driver = true;
  run_report.driver = driver::MakeDriverSection(report);
  run_report.has_compliance = report.has_compliance;
  run_report.compliance = report.compliance;
  run_report.has_q9_profile = true;
  run_report.q9_profile =
      queries::MakeQ9ProfileSection(q9_profile, "INL-INL-INL");
  run_report.has_provenance = true;
  run_report.provenance = obs::BuildProvenance();
  run_report.has_profile = true;
  run_report.profile = obs::MakeProfileSection(folded);
  for (size_t i = 0; i < run_report.profile.top_frames.size() && i < 4; ++i) {
    const obs::ProfileSection::OpFrames& row = run_report.profile.top_frames[i];
    std::printf("  hottest under %-16s (%llu samples): %s\n", row.op.c_str(),
                (unsigned long long)row.samples,
                row.frames.empty() ? "-" : row.frames[0].frame.c_str());
  }
  if (perf_counters) {
    run_report.has_perf = true;
    run_report.perf = obs::CurrentPerfSection();
  }
  if (dossiers != nullptr) {
    run_report.dossiers = dossiers->Snapshot();
    std::printf("\nslow-query dossiers: %zu kept (slowest %zu per op"
                " type)\n",
                run_report.dossiers.size(), dossiers->keep_per_op());
    for (size_t i = 0; i < run_report.dossiers.size() && i < 5; ++i) {
      const obs::SlowQueryDossier& d = run_report.dossiers[i];
      std::printf("  %-14s seq %-8llu %10.3f ms, %zu operator rows%s\n",
                  obs::OpTypeName(d.op), (unsigned long long)d.seq,
                  static_cast<double>(d.latency_ns) / 1e6,
                  d.operators.size(),
                  d.hw.valid() ? ", hw counters attached" : "");
    }
  }
  if (trace != nullptr) {
    run_report.has_trace_stats = true;
    run_report.trace_stats.recorded = trace->recorded();
    run_report.trace_stats.dropped = trace->dropped();
    for (const auto& lane : trace->PerLaneStats()) {
      obs::TraceStatsSection::LaneRow row;
      row.lane = lane.lane;
      row.recorded = lane.recorded;
      row.retained = lane.retained;
      row.dropped = lane.dropped;
      run_report.trace_stats.lanes.push_back(row);
    }
  }
  std::string json = obs::ToJson(run_report);
  util::Status valid = obs::ValidateReportJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "report self-validation failed: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  status = obs::WriteFileReport(report_path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::string prom_path = report_path + ".prom";
  (void)obs::WriteFileReport(prom_path,
                             obs::ToPrometheusText(run_report.metrics));
  std::printf("\nwrote %s and %s\n", report_path.c_str(), prom_path.c_str());

  if (!cpu_profile_path.empty()) {
    status = obs::WriteFileReport(cpu_profile_path,
                                  obs::prof::ToFoldedText(folded));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu folded stacks, %llu samples)\n",
                cpu_profile_path.c_str(), folded.stacks.size(),
                (unsigned long long)folded.accounting.captured);
  }

  if (trace != nullptr) {
    status = obs::WriteFileReport(trace_path, obs::ToChromeTraceJson(*trace));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%llu events recorded, %llu dropped by ring"
                " bound)\n",
                trace_path.c_str(), (unsigned long long)trace->recorded(),
                (unsigned long long)trace->dropped());
  }

  exporter.Stop();

  bool ok = report.sustained &&
            (!report.has_compliance || report.compliance.passed);
  std::printf("benchmark metric: acceleration-factor %.0fx %s\n",
              acceleration, ok ? "(valid run)" : "(lower the factor)");
  return ok ? 0 : 2;
}
