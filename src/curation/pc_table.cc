#include "curation/pc_table.h"

#include <cassert>

namespace snb::curation {

PcTable BuildTable(std::vector<uint64_t> keys,
                   std::vector<std::vector<uint64_t>> columns) {
  PcTable table;
  table.keys = std::move(keys);
  table.columns = std::move(columns);
  for (const std::vector<uint64_t>& col : table.columns) {
    assert(col.size() == table.keys.size());
    (void)col;
  }
  return table;
}

PcTable BuildQuery2Table(const datagen::GenerationStats& stats) {
  size_t n = stats.friend_count.size();
  PcTable table;
  table.keys.reserve(n);
  std::vector<uint64_t> join1(n), join2(n);
  for (size_t i = 0; i < n; ++i) {
    table.keys.push_back(i);
    join1[i] = stats.friend_count[i];
    join2[i] = stats.friend_message_count[i];
  }
  table.columns.push_back(std::move(join1));
  table.columns.push_back(std::move(join2));
  return table;
}

PcTable BuildTwoHopTable(const datagen::GenerationStats& stats) {
  size_t n = stats.friend_count.size();
  PcTable table;
  table.keys.reserve(n);
  std::vector<uint64_t> join1(n), join2(n);
  for (size_t i = 0; i < n; ++i) {
    table.keys.push_back(i);
    join1[i] = stats.friend_count[i];
    join2[i] = stats.two_hop_count[i];
  }
  table.columns.push_back(std::move(join1));
  table.columns.push_back(std::move(join2));
  return table;
}

}  // namespace snb::curation
