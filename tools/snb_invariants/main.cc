// snb_invariants — objtool-style binary invariant checker.
//
// Usage:
//   snb_invariants --manifest tools/snb_invariants/invariants.toml \
//                  --binary build/src/snb_server [--binary ...]
//
// Disassembles each binary with binutils objdump (no clang/LLVM
// dependency), reconstructs the direct-call graph, reads back the
// SNB_INVARIANT_ROOT tags planted in snb_invariants.* ELF sections, and
// verifies every manifest rule. Violations print as shortest call paths
// root -> ... -> forbidden symbol.
//
// Exit codes: 0 clean (or --expect-violations satisfied), 1 violations,
// 2 usage / infrastructure failure (objdump missing, unreadable files).
//
// --expect-violations r1,r2 flips the tool into mutation self-test mode:
// it exits 0 and prints the "SELF-TEST OK" sentinel only when the set of
// rules that fired matches the expectation exactly. The sentinel exists
// because ctest PASS_REGULAR_EXPRESSION ignores exit codes — the fixture
// tests grep for it.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "snb_invariants/callgraph.h"
#include "snb_invariants/check.h"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --manifest <toml> --binary <elf>...\n"
      << "  --binary <elf>            binary to check (repeatable)\n"
      << "  --manifest <toml>         invariant manifest\n"
      << "  --objdump <path>          objdump to use (default: objdump)\n"
      << "  --expect-violations r1,r2 self-test: require exactly these\n"
      << "                            rules to fire, then exit 0\n"
      << "  --allow-inlined-roots     downgrade missing-root to warning\n"
      << "  --verbose                 print per-rule closure statistics\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Runs `cmd` and captures stdout. Returns false on spawn failure or
/// non-zero exit.
bool RunCommand(const std::string& cmd, std::string* out,
                std::string* error) {
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    *error = "failed to spawn: " + cmd;
    return false;
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out->append(buf, n);
  }
  int status = pclose(pipe);
  if (status != 0) {
    *error = "command failed (status " + std::to_string(status) +
             "): " + cmd;
    return false;
  }
  return true;
}

/// Minimal shell quoting; single quotes in paths are rejected upstream.
std::string Quote(const std::string& s) { return "'" + s + "'"; }

std::set<std::string> SplitCommas(const std::string& s) {
  std::set<std::string> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ',')) {
    if (!cur.empty()) out.insert(cur);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string objdump = "objdump";
  std::vector<std::string> binaries;
  std::string expect;
  bool self_test = false;
  snb::inv::CheckOptions options;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--manifest") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      manifest_path = v;
    } else if (arg == "--binary") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      binaries.push_back(v);
    } else if (arg == "--objdump") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      objdump = v;
    } else if (arg == "--expect-violations") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      expect = v;
      self_test = true;
    } else if (arg == "--allow-inlined-roots") {
      options.allow_inlined_roots = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "snb_invariants: unknown argument '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }
  if (manifest_path.empty() || binaries.empty()) return Usage(argv[0]);
  for (const std::string& path : binaries) {
    if (path.find('\'') != std::string::npos) {
      std::cerr << "snb_invariants: path contains a quote: " << path
                << "\n";
      return 2;
    }
  }

  std::string manifest_text;
  if (!ReadFile(manifest_path, &manifest_text)) {
    std::cerr << "snb_invariants: cannot read manifest " << manifest_path
              << "\n";
    return 2;
  }
  snb::inv::Manifest manifest;
  std::string error;
  if (!snb::inv::ParseManifest(manifest_text, &manifest, &error)) {
    std::cerr << "snb_invariants: " << manifest_path << ": " << error
              << "\n";
    return 2;
  }

  std::set<std::string> fired;  // Rules with >= 1 violation, any binary.
  size_t total_violations = 0;

  for (const std::string& binary : binaries) {
    std::string disasm, symtab;
    if (!RunCommand(objdump + " -d --no-show-raw-insn -w " + Quote(binary),
                    &disasm, &error) ||
        !RunCommand(objdump + " -t " + Quote(binary), &symtab, &error)) {
      std::cerr << "snb_invariants: " << error << "\n";
      return 2;
    }

    snb::inv::CallGraph graph =
        snb::inv::CallGraph::FromDisassembly(disasm);
    if (graph.funcs().empty()) {
      std::cerr << "snb_invariants: no functions disassembled from "
                << binary << "\n";
      return 2;
    }
    std::vector<std::string> tag_errors;
    std::vector<snb::inv::RootTag> tags = snb::inv::ExtractRootTags(
        snb::inv::ParseSymbolTable(symtab), &tag_errors);
    for (const std::string& e : tag_errors) {
      std::cerr << "snb_invariants: " << binary << ": " << e << "\n";
    }
    if (!tag_errors.empty()) return 2;

    snb::inv::CheckResult result =
        snb::inv::CheckBinary(graph, tags, manifest, options);

    std::cout << "== " << binary << " (" << graph.funcs().size()
              << " functions, " << tags.size() << " root tag(s))\n";
    for (const std::string& w : result.warnings) {
      std::cout << "  warning: " << w << "\n";
    }
    if (verbose) {
      for (const std::string& n : result.notes) {
        std::cout << "  note: " << n << "\n";
      }
    }
    for (const snb::inv::Violation& v : result.violations) {
      std::cout << snb::inv::FormatViolation(v);
      fired.insert(v.rule);
    }
    total_violations += result.violations.size();
  }

  if (self_test) {
    std::set<std::string> expected = SplitCommas(expect);
    if (fired == expected) {
      std::cout << "SELF-TEST OK: rules fired as expected (" << expect
                << ")\n";
      return 0;
    }
    std::cout << "SELF-TEST FAILED: expected rules {" << expect
              << "} but got {";
    bool first = true;
    for (const std::string& r : fired) {
      if (!first) std::cout << ",";
      std::cout << r;
      first = false;
    }
    std::cout << "}\n";
    return 1;
  }

  if (total_violations > 0) {
    std::cout << "snb_invariants: " << total_violations
              << " violation(s)\n";
    return 1;
  }
  std::cout << "snb_invariants: all invariants hold\n";
  return 0;
}
