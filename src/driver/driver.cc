#include "driver/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "datagen/config.h"
#include "driver/dependency_services.h"
#include "util/latency_recorder.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace snb::driver {
namespace {

using Clock = std::chrono::steady_clock;

/// Shared run accounting across worker threads.
struct RunState {
  /// Length of the per-second lag timeline (max tracked run length; later
  /// seconds fold into the last slot rather than being dropped).
  static constexpr size_t kMaxTimelineSeconds = 1024;

  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> failed{0};
  std::mutex error_mu;
  std::string first_error;
  std::atomic<int64_t> max_lag_us{0};
  std::atomic<uint64_t> dependencies_tracked{0};
  std::atomic<uint64_t> dependent_waits{0};
  /// lag_timeline_us[s]: max lag among operations scheduled in second s of
  /// the run; -1 = no operation was due in that second.
  std::vector<std::atomic<int64_t>> lag_timeline_us;

  RunState() : lag_timeline_us(kMaxTimelineSeconds) {
    for (auto& slot : lag_timeline_us) {
      slot.store(-1, std::memory_order_relaxed);
    }
  }

  void RecordResult(const util::Status& status) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (!status.ok()) {
      failed.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.empty()) first_error = status.ToString();
    }
  }

  /// `second` is the operation's scheduled second of the run (-1 when
  /// unthrottled — no timeline then).
  void RecordLag(int64_t lag_us, int64_t second) {
    int64_t cur = max_lag_us.load(std::memory_order_relaxed);
    while (lag_us > cur &&
           !max_lag_us.compare_exchange_weak(cur, lag_us)) {
    }
    if (second < 0) return;
    size_t idx = std::min<size_t>(static_cast<size_t>(second),
                                  kMaxTimelineSeconds - 1);
    std::atomic<int64_t>& slot = lag_timeline_us[idx];
    int64_t seen = slot.load(std::memory_order_relaxed);
    while (lag_us > seen &&
           !slot.compare_exchange_weak(seen, lag_us,
                                       std::memory_order_relaxed)) {
    }
  }
};

/// Maps simulation due times to wall-clock deadlines under an acceleration
/// factor and blocks until an operation's start time.
class Throttle {
 public:
  Throttle(double acceleration, util::TimestampMs base_due)
      : acceleration_(acceleration),
        base_due_(base_due),
        start_(Clock::now()) {}

  /// Waits until `due` is scheduled; returns lateness in microseconds
  /// (0 when unthrottled).
  int64_t WaitUntilDue(util::TimestampMs due) const {
    if (acceleration_ <= 0.0) return 0;
    double real_ms =
        static_cast<double>(due - base_due_) / acceleration_;
    Clock::time_point deadline =
        start_ + std::chrono::microseconds(
                     static_cast<int64_t>(real_ms * 1000.0));
    Clock::time_point now = Clock::now();
    if (now < deadline) {
      std::this_thread::sleep_until(deadline);
      return 0;
    }
    return std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                 deadline)
        .count();
  }

  /// The run-relative second `due` is scheduled into (-1 when
  /// unthrottled). Pure due-time arithmetic — no clock read — so the
  /// timeline costs nothing beyond the CAS-max in RecordLag.
  int64_t ScheduledSecond(util::TimestampMs due) const {
    if (acceleration_ <= 0.0) return -1;
    double real_ms = static_cast<double>(due - base_due_) / acceleration_;
    return real_ms < 0.0 ? 0 : static_cast<int64_t>(real_ms / 1000.0);
  }

  bool throttled() const { return acceleration_ > 0.0; }

 private:
  double acceleration_;
  util::TimestampMs base_due_;
  Clock::time_point start_;
};

uint32_t PartitionOf(const Operation& op, uint32_t num_partitions,
                     ExecutionMode mode, uint64_t index) {
  if (mode == ExecutionMode::kSequentialForum &&
      op.forum_partition != schema::kInvalidId) {
    return static_cast<uint32_t>(util::Mix64(op.forum_partition) %
                                 num_partitions);
  }
  return static_cast<uint32_t>(index % num_partitions);
}

/// Stream loop shared by the sequential-forum and parallel-GCT modes
/// (Figure 8 of the paper).
void RunStream(const std::vector<const Operation*>& ops,
               Connector& connector, ExecutionMode mode,
               LocalDependencyService* lds, GlobalDependencyService* gds,
               const Throttle& throttle, RunState* state,
               obs::MetricsRegistry* metrics) {
  for (const Operation* op : ops) {
    bool is_dependency =
        op->is_dependency ||
        (mode == ExecutionMode::kParallelGct &&
         op->type == OperationType::kUpdate);
    util::TimestampMs wait_for = mode == ExecutionMode::kParallelGct
                                     ? op->dependency_time
                                     : op->person_dependency_time;
    if (is_dependency) {
      lds->Initiate(op->due_time);
      state->dependencies_tracked.fetch_add(1, std::memory_order_relaxed);
    } else {
      lds->MarkTime(op->due_time);
    }
    if (wait_for > 0) {
      state->dependent_waits.fetch_add(1, std::memory_order_relaxed);
      // Most dependencies are already satisfied by the time their dependent
      // op is due; the lock-free probe keeps those off the waiter mutex and
      // keeps the clock out of the no-wait path entirely (kGctWait records
      // only waits that actually blocked).
      if (!gds->CompletedThrough(wait_for)) {
        if (metrics != nullptr) {
          util::Stopwatch wait_watch;
          gds->WaitUntilCompleted(wait_for);
          metrics->RecordLatencyNs(obs::OpType::kGctWait,
                                   wait_watch.ElapsedNanos());
        } else {
          gds->WaitUntilCompleted(wait_for);
        }
      }
    }
    int64_t lag_us = throttle.WaitUntilDue(op->due_time);
    state->RecordLag(lag_us, throttle.ScheduledSecond(op->due_time));
    if (metrics != nullptr && throttle.throttled()) {
      metrics->RecordLatencyNs(obs::OpType::kSchedLag,
                               static_cast<uint64_t>(lag_us) * 1000);
    }
    state->RecordResult(connector.Execute(*op));
    if (is_dependency) lds->Complete(op->due_time);
  }
  lds->MarkTime(kTimeMax);
}

DriverReport FinishReport(const RunState& state, double elapsed_seconds,
                          const DriverConfig& config) {
  DriverReport report;
  report.operations_executed = state.executed.load();
  report.operations_failed = state.failed.load();
  report.first_error = state.first_error;
  report.elapsed_seconds = elapsed_seconds;
  report.ops_per_second =
      elapsed_seconds > 0.0
          ? static_cast<double>(report.operations_executed) / elapsed_seconds
          : 0.0;
  report.max_schedule_lag_ms =
      static_cast<double>(state.max_lag_us.load()) / 1000.0;
  report.sustained = config.acceleration <= 0.0 ||
                     report.max_schedule_lag_ms <=
                         config.sustained_lag_threshold_ms;
  report.dependencies_tracked = state.dependencies_tracked.load();
  report.dependent_waits = state.dependent_waits.load();
  for (size_t s = 0; s < RunState::kMaxTimelineSeconds; ++s) {
    int64_t lag_us = state.lag_timeline_us[s].load(std::memory_order_relaxed);
    if (lag_us < 0) continue;
    report.lag_timeline_ms.emplace_back(
        static_cast<double>(s), static_cast<double>(lag_us) / 1000.0);
  }
  if (config.metrics != nullptr) {
    config.metrics->AddCounter(obs::Counter::kOperationsExecuted,
                               report.operations_executed);
    config.metrics->AddCounter(obs::Counter::kOperationsFailed,
                               report.operations_failed);
    config.metrics->AddCounter(obs::Counter::kDependenciesTracked,
                               report.dependencies_tracked);
    config.metrics->AddCounter(obs::Counter::kGctDependentWaits,
                               report.dependent_waits);
  }
  return report;
}

DriverReport RunStreamed(const std::vector<Operation>& operations,
                         Connector& connector, const DriverConfig& config) {
  uint32_t partitions = std::max<uint32_t>(config.num_partitions, 1);
  std::vector<std::vector<const Operation*>> streams(partitions);
  for (size_t i = 0; i < operations.size(); ++i) {
    streams[PartitionOf(operations[i], partitions, config.mode, i)]
        .push_back(&operations[i]);
  }

  GlobalDependencyService gds;
  std::vector<LocalDependencyService*> lds;
  lds.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    lds.push_back(gds.AddStream());
    // Seed every stream with the workload start: dependencies older than the
    // first operation live in the bulk load and are complete by definition.
    lds.back()->MarkTime(operations.front().due_time);
  }

  RunState state;
  Throttle throttle(config.acceleration, operations.front().due_time);
  Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    workers.emplace_back([&, p] {
      RunStream(streams[p], connector, config.mode, lds[p], &gds, throttle,
                &state, config.metrics);
    });
  }
  for (std::thread& t : workers) t.join();
  double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return FinishReport(state, elapsed, config);
}

DriverReport RunWindowed(const std::vector<Operation>& operations,
                         Connector& connector, const DriverConfig& config) {
  uint32_t partitions = std::max<uint32_t>(config.num_partitions, 1);
  util::ThreadPool pool(partitions);
  RunState state;
  util::TimestampMs base = operations.front().due_time;
  Throttle throttle(config.acceleration, base);
  Clock::time_point start = Clock::now();

  // Window width must not exceed T_SAFE for cross-window dependency safety.
  const util::TimestampMs window_ms = datagen::kTSafeMs;
  size_t next = 0;
  while (next < operations.size()) {
    util::TimestampMs window_start =
        base + (operations[next].due_time - base) / window_ms * window_ms;
    util::TimestampMs window_end = window_start + window_ms;
    size_t end = next;
    while (end < operations.size() &&
           operations[end].due_time < window_end) {
      ++end;
    }

    // Throttled runs start a window no earlier than its scheduled time.
    state.RecordLag(throttle.WaitUntilDue(window_start),
                    throttle.ScheduledSecond(window_start));

    // Group the window: forum-tree ops run sequentially per forum; all
    // remaining ops have >= T_SAFE-old dependencies and run freely.
    std::unordered_map<uint64_t, std::vector<const Operation*>> forum_groups;
    std::vector<std::vector<const Operation*>> free_batches(partitions);
    size_t free_index = 0;
    for (size_t i = next; i < end; ++i) {
      const Operation& op = operations[i];
      if (op.forum_partition != schema::kInvalidId) {
        forum_groups[op.forum_partition].push_back(&op);
      } else {
        free_batches[free_index++ % partitions].push_back(&op);
      }
    }
    for (auto& [_, group] : forum_groups) {
      pool.Submit([&connector, &state, group = &group] {
        for (const Operation* op : *group) {
          state.RecordResult(connector.Execute(*op));
        }
      });
    }
    for (std::vector<const Operation*>& batch : free_batches) {
      if (batch.empty()) continue;
      pool.Submit([&connector, &state, batch = &batch] {
        for (const Operation* op : *batch) {
          state.RecordResult(connector.Execute(*op));
        }
      });
    }
    pool.Wait();  // Window barrier.
    next = end;
  }
  double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return FinishReport(state, elapsed, config);
}

}  // namespace

obs::DriverSection MakeDriverSection(const DriverReport& report) {
  obs::DriverSection section;
  section.operations_executed = report.operations_executed;
  section.operations_failed = report.operations_failed;
  section.elapsed_seconds = report.elapsed_seconds;
  section.ops_per_second = report.ops_per_second;
  section.max_schedule_lag_ms = report.max_schedule_lag_ms;
  section.sustained = report.sustained;
  section.dependencies_tracked = report.dependencies_tracked;
  section.dependent_waits = report.dependent_waits;
  section.lag_timeline_ms = report.lag_timeline_ms;
  return section;
}

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kSequentialForum:
      return "sequential-forum";
    case ExecutionMode::kParallelGct:
      return "parallel-gct";
    case ExecutionMode::kWindowed:
      return "windowed";
  }
  return "unknown";
}

DriverReport RunWorkload(const std::vector<Operation>& operations,
                         Connector& connector, const DriverConfig& config) {
  if (operations.empty()) return DriverReport{};
  if (config.mode == ExecutionMode::kWindowed) {
    return RunWindowed(operations, connector, config);
  }
  return RunStreamed(operations, connector, config);
}

}  // namespace snb::driver
