# Empty compiler generated dependencies file for curation_test.
# This may be replaced when dependencies are built.
