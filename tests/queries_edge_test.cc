// Edge-case tests for the read queries: missing entities, empty graphs,
// boundary limits, and degenerate parameters.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/bi_queries.h"
#include "queries/complex_queries.h"
#include "queries/query9_plans.h"
#include "queries/short_queries.h"
#include "queries/update_queries.h"
#include "store/graph_store.h"

namespace snb::queries {
namespace {

schema::Person MakePerson(schema::PersonId id) {
  schema::Person p;
  p.id = id;
  p.first_name = "Solo";
  p.creation_date = 1000;
  return p;
}

TEST(QueriesEdgeTest, EmptyStoreReturnsEmptyEverywhere) {
  store::GraphStore store;
  EXPECT_TRUE(Query1(store, 0, "Karl").empty());
  EXPECT_TRUE(Query2(store, 0, 1 << 30).empty());
  EXPECT_TRUE(Query5(store, 0, 0).empty());
  EXPECT_TRUE(Query7(store, 0).empty());
  EXPECT_TRUE(Query8(store, 0).empty());
  EXPECT_TRUE(Query9(store, 0, 1 << 30).empty());
  EXPECT_TRUE(Query10(store, 0, 5).empty());
  EXPECT_EQ(Query13(store, 0, 1), -1);
  EXPECT_TRUE(Query14(store, 0, 1).empty());
  EXPECT_TRUE(TwoHopCircle(store, 0).empty());
  EXPECT_FALSE(ShortQuery1PersonProfile(store, 0).found);
  EXPECT_TRUE(ShortQuery3Friends(store, 0).empty());
  EXPECT_TRUE(BiQuery1PostingSummary(store).empty());
}

TEST(QueriesEdgeTest, IsolatedPersonHasEmptyNeighbourhoodQueries) {
  store::GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  EXPECT_TRUE(Query1(store, 1, "Solo").empty());  // Self is excluded.
  EXPECT_TRUE(Query2(store, 1, 1 << 30).empty());
  EXPECT_TRUE(Query9(store, 1, 1 << 30).empty());
  EXPECT_EQ(Query13(store, 1, 1), 0);
  auto self_paths = Query14(store, 1, 1);
  ASSERT_EQ(self_paths.size(), 1u);
  EXPECT_EQ(self_paths[0].weight, 0.0);
  // Short reads on the isolated person work.
  EXPECT_TRUE(ShortQuery1PersonProfile(store, 1).found);
  EXPECT_TRUE(ShortQuery2RecentMessages(store, 1).empty());
}

TEST(QueriesEdgeTest, LimitZeroAndLimitHuge) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());

  EXPECT_TRUE(Query2(store, 0, util::NetworkEndMs(), 0).empty());
  EXPECT_TRUE(Query9(store, 0, util::NetworkEndMs(), 0).empty());

  auto huge = Query2(store, 0, util::NetworkEndMs(), 1 << 20);
  // With a huge limit, Q2 returns every friend message (reference count).
  std::set<schema::PersonId> friends;
  for (const schema::Knows& k : ds.bulk.knows) {
    if (k.person1_id == 0) friends.insert(k.person2_id);
    if (k.person2_id == 0) friends.insert(k.person1_id);
  }
  size_t expected = 0;
  for (const schema::Message& m : ds.bulk.messages) {
    if (friends.count(m.creator_id) > 0) ++expected;
  }
  EXPECT_EQ(huge.size(), expected);
}

TEST(QueriesEdgeTest, Q9PlanVariantsOnTinyGraph) {
  store::GraphStore store;
  for (schema::PersonId id = 0; id < 3; ++id) {
    ASSERT_TRUE(store.AddPerson(MakePerson(id)).ok());
  }
  ASSERT_TRUE(store.AddFriendship({0, 1, 2000}).ok());
  schema::Forum f;
  f.id = 9;
  f.moderator_id = 1;
  f.creation_date = 2000;
  ASSERT_TRUE(store.AddForum(f).ok());
  schema::Message m;
  m.id = 0;
  m.kind = schema::MessageKind::kPost;
  m.creator_id = 1;
  m.forum_id = 9;
  m.root_post_id = 0;
  m.creation_date = 3000;
  ASSERT_TRUE(store.AddMessage(m).ok());

  for (JoinStrategy j : {JoinStrategy::kIndexNestedLoop, JoinStrategy::kHash}) {
    Q9PlanStats stats;
    auto rows = Query9WithPlan(store, 0, 10000, 20, j, j, j, &stats);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].message_id, 0u);
    EXPECT_EQ(stats.join1_output, 1u);
    EXPECT_EQ(stats.join3_output, 1u);
  }
  // Date cutoff excludes the message.
  EXPECT_TRUE(Query9(store, 0, 3000).empty());   // Strictly before.
  EXPECT_EQ(Query9(store, 0, 3001).size(), 1u);
}

TEST(QueriesEdgeTest, Query3ZeroDurationAndSameCountry) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  std::vector<schema::PlaceId> city_country(200, 0);
  // Zero duration window: no posts qualify.
  EXPECT_TRUE(Query3(store, 0, city_country, 1, 2,
                     util::kNetworkStartMs, 0)
                  .empty());
}

// A dataset-loaded store shared by the boundary batteries below.
class LoadedEdgeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatagenConfig config;
    config.num_persons = 120;
    config.split_update_stream = false;
    dataset_ = new datagen::Dataset(datagen::Generate(config));
    store_ = new store::GraphStore();
    ASSERT_TRUE(store_->BulkLoad(dataset_->bulk).ok());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete dataset_;
    store_ = nullptr;
    dataset_ = nullptr;
  }

  /// Every complex query with the given start person must come back empty.
  static void ExpectAllComplexEmpty(schema::PersonId start) {
    const store::GraphStore& store = *store_;
    std::vector<schema::PlaceId> city_country(200, 0);
    std::vector<schema::PlaceId> company_country(200, 0);
    std::vector<bool> tag_class(200, true);
    EXPECT_TRUE(Query1(store, start, "Yang").empty());
    EXPECT_TRUE(Query2(store, start, util::NetworkEndMs()).empty());
    EXPECT_TRUE(Query3(store, start, city_country, 1, 2,
                       util::kNetworkStartMs, 900)
                    .empty());
    EXPECT_TRUE(Query4(store, start, util::kNetworkStartMs, 900).empty());
    EXPECT_TRUE(Query5(store, start, util::kNetworkStartMs).empty());
    EXPECT_TRUE(Query6(store, start, 0).empty());
    EXPECT_TRUE(Query7(store, start).empty());
    EXPECT_TRUE(Query8(store, start).empty());
    EXPECT_TRUE(Query9(store, start, util::NetworkEndMs()).empty());
    EXPECT_TRUE(Query10(store, start, 6).empty());
    EXPECT_TRUE(Query11(store, start, company_country, 0, 2030).empty());
    EXPECT_TRUE(Query12(store, start, tag_class).empty());
    EXPECT_EQ(Query13(store, start, 0), -1);
    EXPECT_EQ(Query13(store, 0, start), -1);
    EXPECT_TRUE(Query14(store, start, 0).empty());
  }

  static datagen::Dataset* dataset_;
  static store::GraphStore* store_;
};

datagen::Dataset* LoadedEdgeTest::dataset_ = nullptr;
store::GraphStore* LoadedEdgeTest::store_ = nullptr;

TEST_F(LoadedEdgeTest, NonexistentPersonIsEmptyForEveryComplexQuery) {
  const schema::PersonId ghost = 1u << 20;
  ExpectAllComplexEmpty(ghost);
  EXPECT_FALSE(ShortQuery1PersonProfile(*store_, ghost).found);
  EXPECT_TRUE(ShortQuery2RecentMessages(*store_, ghost).empty());
  EXPECT_TRUE(ShortQuery3Friends(*store_, ghost).empty());
}

TEST_F(LoadedEdgeTest, ZeroFriendPersonIsEmptyForEveryComplexQuery) {
  // A hermit added on top of the populated graph: present, but with no
  // Knows edges, messages, or likes, so every neighbourhood query is empty.
  const schema::PersonId hermit = 555000;
  ASSERT_TRUE(store_->AddPerson(MakePerson(hermit)).ok());
  ExpectAllComplexEmpty(hermit);
  // Except the degenerate self-path, which is well-defined.
  EXPECT_EQ(Query13(*store_, hermit, hermit), 0);
  EXPECT_TRUE(ShortQuery1PersonProfile(*store_, hermit).found);
  EXPECT_TRUE(ShortQuery2RecentMessages(*store_, hermit).empty());
  EXPECT_TRUE(ShortQuery3Friends(*store_, hermit).empty());
}

TEST_F(LoadedEdgeTest, DateWindowBeforeEpochIsEmpty) {
  // Every generated message date is >= kNetworkStartMs, so windows that
  // close strictly before the epoch must match nothing for any person.
  const store::GraphStore& store = *store_;
  util::TimestampMs before = util::kNetworkStartMs - util::kMillisPerDay;
  std::vector<schema::PlaceId> city_country(200, 0);
  for (schema::PersonId p : {0u, 17u, 63u, 119u}) {
    EXPECT_TRUE(Query2(store, p, before).empty());
    EXPECT_TRUE(Query3(store, p, city_country, 1, 2,
                       before - 30 * util::kMillisPerDay, 30)
                    .empty());
    EXPECT_TRUE(Query4(store, p, before - 30 * util::kMillisPerDay, 30)
                    .empty());
    EXPECT_TRUE(Query9(store, p, before).empty());
    // Q5's window is open-ended upward, so the before-epoch boundary sits
    // on the other side: a min_date after the network end matches nothing.
    EXPECT_TRUE(Query5(store, p, util::NetworkEndMs() + 1).empty());
  }
}

TEST_F(LoadedEdgeTest, LimitZeroIsEmptyForEveryLimitedQuery) {
  const store::GraphStore& store = *store_;
  std::vector<schema::PlaceId> city_country(200, 0);
  std::vector<schema::PlaceId> company_country(200, 0);
  std::vector<bool> tag_class(200, true);
  for (schema::PersonId p : {0u, 63u}) {
    EXPECT_TRUE(Query1(store, p, "Yang", 0).empty());
    EXPECT_TRUE(Query2(store, p, util::NetworkEndMs(), 0).empty());
    EXPECT_TRUE(Query3(store, p, city_country, 1, 2, util::kNetworkStartMs,
                       900, 0)
                    .empty());
    EXPECT_TRUE(Query4(store, p, util::kNetworkStartMs, 900, 0).empty());
    EXPECT_TRUE(Query5(store, p, util::kNetworkStartMs, 0).empty());
    EXPECT_TRUE(Query6(store, p, 0, 0).empty());
    EXPECT_TRUE(Query7(store, p, 0).empty());
    EXPECT_TRUE(Query8(store, p, 0).empty());
    EXPECT_TRUE(Query9(store, p, util::NetworkEndMs(), 0).empty());
    EXPECT_TRUE(Query10(store, p, 6, 0).empty());
    EXPECT_TRUE(Query11(store, p, company_country, 0, 2030, 0).empty());
    EXPECT_TRUE(Query12(store, p, tag_class, 0).empty());
  }
}

TEST(QueriesEdgeTest, ApplyUpdateRejectsCorruptKinds) {
  store::GraphStore store;
  datagen::UpdateOperation op;
  op.payload = schema::Like{};
  // Out-of-range kind bytes (0 is below the enum range, 99 above it).
  op.kind = static_cast<datagen::UpdateKind>(0);
  EXPECT_EQ(ApplyUpdate(store, op).code(),
            util::StatusCode::kInvalidArgument);
  op.kind = static_cast<datagen::UpdateKind>(99);
  EXPECT_EQ(ApplyUpdate(store, op).code(),
            util::StatusCode::kInvalidArgument);
  // Valid kind whose payload holds the wrong alternative.
  op.kind = datagen::UpdateKind::kAddPerson;
  util::Status st = ApplyUpdate(store, op);
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(st.message().empty());
  // Nothing leaked into the store.
  EXPECT_EQ(store.NumPersons(), 0u);
  EXPECT_EQ(store.NumLikes(), 0u);
}

TEST(QueriesEdgeTest, Q12EmptyTagClass) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  std::vector<bool> empty_class(1000, false);
  EXPECT_TRUE(Query12(store, 0, empty_class).empty());
  std::vector<bool> no_tags;  // Out-of-range tag ids must not crash.
  EXPECT_TRUE(Query12(store, 0, no_tags).empty());
}

}  // namespace
}  // namespace snb::queries
