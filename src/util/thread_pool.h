// A fixed-size thread pool with a deterministic parallel-for.
//
// Replaces the paper's Hadoop MapReduce substrate: DATAGEN stages are
// expressed as "sort, then process disjoint contiguous ranges", which this
// pool executes with static range partitioning so results do not depend on
// scheduling order.
#ifndef SNB_UTIL_THREAD_POOL_H_
#define SNB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::util {

/// Fixed-size worker pool. Tasks are std::function<void()>; Wait() blocks
/// until all submitted tasks have completed.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(begin, end) over `num_threads` statically partitioned contiguous
  /// sub-ranges of [0, n). Blocks until all ranges finish. Each range index
  /// also receives its worker slot for per-worker state.
  void ParallelForRanges(
      size_t n, const std::function<void(size_t begin, size_t end,
                                         size_t worker)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ SNB_GUARDED_BY(mu_);
  // condition_variable_any waits on the MutexLock itself (BasicLockable),
  // keeping the capability analysable across waits.
  std::condition_variable_any task_ready_;
  std::condition_variable_any all_done_;
  size_t in_flight_ SNB_GUARDED_BY(mu_) = 0;
  bool shutting_down_ SNB_GUARDED_BY(mu_) = false;
};

}  // namespace snb::util

#endif  // SNB_UTIL_THREAD_POOL_H_
