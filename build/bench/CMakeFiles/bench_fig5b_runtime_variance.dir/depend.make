# Empty dependencies file for bench_fig5b_runtime_variance.
# This may be replaced when dependencies are built.
