#include "obs/trace_buffer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace snb::obs {
namespace {

/// Process-wide thread numbering for lane assignment. Deliberately
/// separate from the metrics shard counter: a buffer created mid-process
/// still lanes threads densely from wherever the counter stands, and the
/// mapping stays stable for a thread's lifetime.
std::atomic<uint32_t> g_next_lane_id{0};

uint32_t ThisLaneId() {
  thread_local uint32_t id =
      g_next_lane_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendEscapedString(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out->push_back('\\');
    out->push_back(*s);
  }
  out->push_back('"');
}

/// Appends one ns timestamp as Chrome-trace microseconds (3 decimals).
void AppendTsUs(std::string* out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) / 1000.0);
  *out += buf;
}

/// One renderable span derived from a TraceEvent (either the operation's
/// execution window or its T_GC-wait prefix).
struct Span {
  const char* name;
  uint64_t begin_ns;
  uint64_t end_ns;
  int64_t sched_ns;  // -1: no schedule args.
};

void EmitBegin(std::string* out, bool* first, uint16_t lane,
               const Span& span) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += R"({"ph":"B","pid":0,"tid":)";
  *out += std::to_string(lane);
  *out += ",\"ts\":";
  AppendTsUs(out, span.begin_ns);
  *out += ",\"name\":";
  AppendEscapedString(out, span.name);
  if (span.sched_ns >= 0) {
    // Scheduled vs. actual start: the schedule-compliance story per op.
    char buf[96];
    double sched_ms = static_cast<double>(span.sched_ns) / 1e6;
    double lag_ms = (static_cast<double>(span.begin_ns) -
                     static_cast<double>(span.sched_ns)) /
                    1e6;
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"sched_ms\":%.3f,\"lag_ms\":%.3f}", sched_ms,
                  lag_ms);
    *out += buf;
  }
  *out += "}";
}

void EmitEnd(std::string* out, bool* first, uint16_t lane, uint64_t ts_ns) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += R"({"ph":"E","pid":0,"tid":)";
  *out += std::to_string(lane);
  *out += ",\"ts\":";
  AppendTsUs(out, ts_ns);
  *out += "}";
}

/// Chrome-trace counter sample ("C" phase). Counter tracks are keyed by
/// (pid, name), so the lane number is folded into the name to give every
/// driver thread its own track.
void EmitCounter(std::string* out, bool* first, const std::string& name,
                 uint64_t ts_ns, double value) {
  if (!*first) *out += ",\n";
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  *out += R"({"ph":"C","pid":0,"name":)";
  AppendEscapedString(out, name.c_str());
  *out += ",\"ts\":";
  AppendTsUs(out, ts_ns);
  *out += ",\"args\":{\"value\":";
  *out += buf;
  *out += "}}";
}

void EmitMetadata(std::string* out, bool* first, const char* name,
                  int64_t tid, const std::string& value) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += R"({"ph":"M","pid":0,"name":")";
  *out += name;
  *out += "\"";
  if (tid >= 0) {
    *out += ",\"tid\":";
    *out += std::to_string(tid);
  }
  *out += R"(,"args":{"name":)";
  AppendEscapedString(out, value.c_str());
  *out += "}}";
}

}  // namespace

TraceBuffer::TraceBuffer(size_t events_per_lane)
    : events_per_lane_(events_per_lane == 0 ? 1 : events_per_lane),
      base_(std::chrono::steady_clock::now()) {}

uint64_t TraceBuffer::NowNs() const {
  return static_cast<uint64_t>(std::max<int64_t>(
      0, ToBufferNs(std::chrono::steady_clock::now())));
}

int64_t TraceBuffer::ToBufferNs(
    std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - base_)
      .count();
}

TraceBuffer::Lane& TraceBuffer::LocalLane() {
  size_t idx = ThisLaneId() & (kMaxLanes - 1);
  // Double-checked lazy construction; lanes_mu_ is touched at most once
  // per (thread, buffer) pair.
  Lane* lane = lanes_[idx].get();
  if (lane == nullptr) {
    util::MutexLock lock(&lanes_mu_);
    if (lanes_[idx] == nullptr) {
      lanes_[idx] = std::make_unique<Lane>();
      lanes_[idx]->ring.reserve(
          std::min<size_t>(events_per_lane_, 1024));
    }
    lane = lanes_[idx].get();
  }
  return *lane;
}

void TraceBuffer::Record(TraceEvent event) {
  Lane& lane = LocalLane();
  event.lane = static_cast<uint16_t>(ThisLaneId() & (kMaxLanes - 1));
  util::MutexLock lock(&lane.mu);
  ++lane.recorded;
  if (lane.ring.size() < events_per_lane_) {
    lane.ring.push_back(event);
    return;
  }
  lane.ring[lane.next] = event;  // Overwrite the oldest; keep the run's tail.
  lane.next = (lane.next + 1) % events_per_lane_;
}

uint64_t TraceBuffer::recorded() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    if (lane == nullptr) continue;
    util::MutexLock lock(&lane->mu);
    total += lane->recorded;
  }
  return total;
}

uint64_t TraceBuffer::dropped() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    if (lane == nullptr) continue;
    util::MutexLock lock(&lane->mu);
    total += lane->recorded - lane->ring.size();
  }
  return total;
}

std::vector<TraceBuffer::LaneStats> TraceBuffer::PerLaneStats() const {
  std::vector<LaneStats> out;
  for (size_t i = 0; i < kMaxLanes; ++i) {
    const auto& lane = lanes_[i];
    if (lane == nullptr) continue;
    util::MutexLock lock(&lane->mu);
    LaneStats stats;
    stats.lane = static_cast<uint16_t>(i);
    stats.recorded = lane->recorded;
    stats.retained = lane->ring.size();
    stats.dropped = lane->recorded - lane->ring.size();
    out.push_back(stats);
  }
  return out;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::vector<TraceEvent> out;
  for (const auto& lane : lanes_) {
    if (lane == nullptr) continue;
    util::MutexLock lock(&lane->mu);
    out.insert(out.end(), lane->ring.begin(), lane->ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.exec_begin_ns != b.exec_begin_ns) {
                return a.exec_begin_ns < b.exec_begin_ns;
              }
              return a.end_ns > b.end_ns;  // Parents before children.
            });
  return out;
}

std::string ToChromeTraceJson(const TraceBuffer& buffer) {
  std::vector<TraceEvent> events = buffer.Events();
  std::string out;
  out.reserve(160 * events.size() + 1024);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  EmitMetadata(&out, &first, "process_name", -1, "snb-driver");

  // Per lane: expand each event into (optional gct-wait span, op span),
  // sort by (begin asc, end desc) and emit a properly nested B/E stream
  // via an open-span stack. Events recorded by one thread are nested or
  // disjoint by construction (RAII order); ring overwrites only remove
  // whole events, which preserves that. Child ends are clamped to their
  // parent defensively so the emitted stream stays well-formed even if a
  // clock tie produces a marginal overlap.
  size_t i = 0;
  while (i < events.size()) {
    uint16_t lane = events[i].lane;
    size_t lane_end = i;
    while (lane_end < events.size() && events[lane_end].lane == lane) {
      ++lane_end;
    }
    EmitMetadata(&out, &first, "thread_name", lane,
                 "driver lane " + std::to_string(lane));

    std::vector<Span> spans;
    spans.reserve(2 * (lane_end - i));
    for (size_t e = i; e < lane_end; ++e) {
      const TraceEvent& ev = events[e];
      if (ev.gct_wait_ns > 0) {
        spans.push_back(Span{OpTypeName(OpType::kGctWait), ev.gct_begin_ns,
                             ev.gct_begin_ns + ev.gct_wait_ns, -1});
      }
      spans.push_back(
          Span{OpTypeName(ev.op), ev.exec_begin_ns,
               std::max(ev.end_ns, ev.exec_begin_ns), ev.sched_ns});
    }
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
      return a.end_ns > b.end_ns;
    });

    std::vector<Span> open;
    for (Span span : spans) {
      while (!open.empty() && open.back().end_ns <= span.begin_ns) {
        EmitEnd(&out, &first, lane, open.back().end_ns);
        open.pop_back();
      }
      if (!open.empty()) span.end_ns = std::min(span.end_ns, open.back().end_ns);
      EmitBegin(&out, &first, lane, span);
      open.push_back(span);
    }
    while (!open.empty()) {
      EmitEnd(&out, &first, lane, open.back().end_ns);
      open.pop_back();
    }

    // Hardware-counter tracks: one IPC and one LLC-miss-rate sample per
    // operation that carried a valid counter delta, stamped at the
    // operation's end. Lanes without counters emit nothing, so the
    // counter-less trace is byte-identical to the pre-perf format.
    const std::string lane_tag = " lane " + std::to_string(lane);
    for (size_t e = i; e < lane_end; ++e) {
      const TraceEvent& ev = events[e];
      if (!ev.hw.valid()) continue;
      if (ev.hw.Has(perf::HwMetric::kCycles) &&
          ev.hw.Has(perf::HwMetric::kInstructions)) {
        EmitCounter(&out, &first, "hw.ipc" + lane_tag, ev.end_ns,
                    ev.hw.Ipc());
      }
      if (ev.hw.Has(perf::HwMetric::kLlcLoadMisses) &&
          ev.hw.Has(perf::HwMetric::kInstructions)) {
        EmitCounter(&out, &first, "hw.llc_miss_per_kinstr" + lane_tag,
                    ev.end_ns, ev.hw.LlcMissesPerKiloInstr());
      }
    }
    i = lane_end;
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace snb::obs
