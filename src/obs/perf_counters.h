// Hardware-counter profiling via Linux perf_event_open.
//
// Wall-clock profiles (TraceSpan, the Figure 4 reproduction) say where the
// time goes; they cannot say *why* — whether an operator is bound on
// retired work, LLC misses, or branch mispredicts. The in-depth SNB
// benchmarking study (arXiv 1907.07405) shows identical plans diverging by
// orders of magnitude precisely along those micro-architectural lines, so
// this module makes them first-class observables: a per-thread counter
// group (cycles, instructions, LLC load misses, branch misses, task
// clock — a fixed enum like metrics.h, extensible the same way) whose
// deltas can be scoped to any code region and accumulated into the
// existing OperatorStats sinks.
//
// Availability is a runtime property, not a build property: containers and
// CI commonly deny perf_event_open (seccomp default, perf_event_paranoid),
// and a VM may lack a PMU entirely. Enable() therefore *probes* the
// syscall once and installs one of two backends:
//
//   * kLinux — real counter groups, one per thread, opened lazily on
//     first read (counting mode only, no sampling, user-space only so no
//     elevated privilege is needed at perf_event_paranoid <= 2);
//   * kNoop  — every read returns an empty (mask == 0) HwCounts. All
//     downstream consumers (TraceSpan, MetricsRegistry, report.json)
//     render "counters unavailable" instead of fabricating zeros.
//
// Until Enable() is called the subsystem is kDisabled and every path is a
// single relaxed atomic load — instrumented binaries that never opt in
// pay nothing. Partial availability degrades per metric: if e.g. the LLC
// event is unsupported the remaining counters still count, and the mask
// says which values are real. Multiplexed counters (more groups than PMU
// slots) are scaled by time_enabled/time_running at read time.
#ifndef SNB_OBS_PERF_COUNTERS_H_
#define SNB_OBS_PERF_COUNTERS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace snb::obs::perf {

// ---- Metric identity ------------------------------------------------------

/// The counter group attached to every measured thread. Contiguous so
/// counts are arrays; extend by appending (report field names derive from
/// HwMetricName).
enum class HwMetric : uint16_t {
  kCycles = 0,
  kInstructions,
  kLlcLoadMisses,
  kBranchMisses,
  kTaskClockNs,
  kCount,
};
inline constexpr size_t kNumHwMetrics = static_cast<size_t>(HwMetric::kCount);

/// Stable dotted name ("hw.cycles", "hw.llc_load_misses", ...).
const char* HwMetricName(HwMetric m);

// ---- Counter values -------------------------------------------------------

/// A set of counter values plus a validity mask: bit i set means v[i] was
/// actually measured (counter open and scheduled). mask == 0 is the
/// universal "counters unavailable" value the no-op backend returns.
struct HwCounts {
  std::array<uint64_t, kNumHwMetrics> v{};
  uint32_t mask = 0;

  bool valid() const { return mask != 0; }
  bool Has(HwMetric m) const {
    return (mask & (1u << static_cast<uint32_t>(m))) != 0;
  }
  uint64_t Value(HwMetric m) const { return v[static_cast<size_t>(m)]; }

  /// Counter delta (this - earlier), per-metric saturating at 0; the
  /// result's mask is the metrics present in both readings.
  HwCounts DeltaSince(const HwCounts& earlier) const;

  /// Sums `other` into this (per metric; mask becomes the union). An
  /// invalid `other` is skipped entirely, so accumulating across
  /// invocations where some threads lack counters stays meaningful.
  void Accumulate(const HwCounts& other);

  /// Instructions per cycle; 0 when either counter is missing or cycles
  /// is 0.
  double Ipc() const;
  /// misses-per-kilo-instruction helpers for the two miss counters;
  /// 0 when either input is missing.
  double LlcMissesPerKiloInstr() const;
  double BranchMissesPerKiloInstr() const;
};

// ---- Backend control ------------------------------------------------------

enum class Backend : uint8_t {
  kDisabled = 0,  // Enable() never called: all paths free, reads empty.
  kNoop,          // Enable() probed and failed: reads empty, run is valid.
  kLinux,         // Real per-thread perf_event groups.
};

const char* BackendName(Backend b);

struct EnableOptions {
  /// Skip the probe and install the no-op backend (tests, and honoured
  /// implicitly when the SNB_PERF_FORCE_NOOP environment variable is
  /// set — the CI leg that asserts graceful degradation).
  bool force_noop = false;
};

/// Probes perf_event_open and installs the backend. Idempotent: calling
/// again re-probes (tests flip backends around scoped blocks; production
/// callers invoke it once at startup, before worker threads exist).
/// Returns the installed backend; BackendMessage() says why.
Backend Enable(const EnableOptions& options = {});

/// Returns to kDisabled and invalidates every thread's cached counter
/// group (closed lazily on that thread's next read). Test hook.
void ResetForTest();

Backend ActiveBackend();
/// True when real counters are being collected (backend == kLinux).
bool CountersLive();
/// Human-readable outcome of the last Enable() ("counters live",
/// "perf_event_open failed: EACCES ...", ...). Empty while kDisabled.
std::string BackendMessage();

/// Forces the internal perf_event_open wrapper to fail with `err`
/// (e.g. ENOSYS, EACCES) so tests exercise the real fallback path; 0
/// restores the real syscall.
void SetPerfEventOpenErrnoForTest(int err);

// ---- Reading --------------------------------------------------------------

/// Cumulative counts of the calling thread's counter group, opening it on
/// first use. Empty (mask == 0) when the backend is not kLinux or this
/// thread's group failed to open.
HwCounts ReadThreadCounters();

/// RAII-style delta helper: construct at region entry, Delta() at exit.
/// Costs one relaxed load when counters are not live.
class ScopedHwCounts {
 public:
  ScopedHwCounts() {
    if (CountersLive()) begin_ = ReadThreadCounters();
  }
  /// Counters spent since construction; empty when unavailable.
  HwCounts Delta() const {
    if (!begin_.valid()) return HwCounts{};
    return ReadThreadCounters().DeltaSince(begin_);
  }

 private:
  HwCounts begin_;
};

}  // namespace snb::obs::perf

#endif  // SNB_OBS_PERF_COUNTERS_H_
