// Figure 3b reproduction: DATAGEN scale-up — generation time as a function
// of scale factor and worker count. The paper shows near-linear growth in
// SF and speedup from 1 to 10 Hadoop nodes; our substitute is the
// thread-pool pipeline, so the sweep is over threads.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/stopwatch.h"

namespace snb::bench {
namespace {

double GenerateSeconds(double sf, uint32_t threads) {
  datagen::DatagenConfig config =
      datagen::DatagenConfig::ForScaleFactor(sf);
  config.num_threads = threads;
  config.split_update_stream = false;
  util::Stopwatch watch;
  datagen::Dataset ds = datagen::Generate(config);
  (void)ds;
  return watch.ElapsedMicros() / 1e6;
}

void Run() {
  PrintHeader("Figure 3b — DATAGEN scale-up (generation seconds)");
  std::vector<double> sfs = {0.05, 0.1, 0.2, 0.4};
  std::vector<uint32_t> threads = {1, 2, 4};
  std::printf("  %-8s", "SF");
  for (uint32_t t : threads) {
    std::printf("%12s", (std::to_string(t) + " thread" + (t > 1 ? "s" : "")).c_str());
  }
  std::printf("\n");
  for (double sf : sfs) {
    std::printf("  %-8.2f", sf);
    for (uint32_t t : threads) {
      std::printf("%12.3f", GenerateSeconds(sf, t));
    }
    std::printf("\n");
  }
  std::printf(
      "\n  Paper: SF30 in 20 min on 1 node, SF1000 in 2h on 10 nodes.\n"
      "  Shape to check: time grows ~linearly with SF; more workers help\n"
      "  (the dataset itself is identical for every worker count —\n"
      "  determinism is tested in tests/datagen_test.cc).\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
