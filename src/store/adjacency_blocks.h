// Column extraction from adjacency snapshots for the batched engine.
//
// The store keeps adjacency lists as arrays of small structs (FriendEdge,
// DatedEdge) — the right layout for the row-at-a-time readers and for the
// RCU publication protocol. The batched engine (src/exec) wants dense u64
// columns it can hand to the set kernels and probe loops. These helpers
// are that seam: copy one column of an adjacency View into a caller-owned
// buffer, preserving the view's order (friend lists are ascending by
// neighbour id, so the copied column is strictly ascending and
// duplicate-free — exactly what exec::Intersect requires).
//
// The copies are deliberate, not an abstraction tax to optimize away: a
// query extracts a list once and then runs multiple kernel passes over the
// dense column, and the copy also decouples kernel runtime from the RCU
// buffer lifetime rules.
#ifndef SNB_STORE_ADJACENCY_BLOCKS_H_
#define SNB_STORE_ADJACENCY_BLOCKS_H_

#include <cstdint>
#include <vector>

#include "store/graph_store.h"
#include "util/rcu_vector.h"

namespace snb::store {

/// Neighbour-id column of a friend adjacency snapshot, replacing `*out`.
/// Strictly ascending (the PersonRecord::friends invariant).
inline void CopyFriendIds(const util::RcuVector<FriendEdge>::View& view,
                          std::vector<uint64_t>* out) {
  out->resize(view.size());
  for (size_t i = 0; i < view.size(); ++i) (*out)[i] = view[i].other;
}

/// Id column of a (id, date) adjacency snapshot, replacing `*out`. Order
/// follows the view (message lists: date-ascending, ids NOT sorted).
inline void CopyDatedIds(const util::RcuVector<DatedEdge>::View& view,
                         std::vector<uint64_t>* out) {
  out->resize(view.size());
  for (size_t i = 0; i < view.size(); ++i) (*out)[i] = view[i].id;
}

}  // namespace snb::store

#endif  // SNB_STORE_ADJACENCY_BLOCKS_H_
