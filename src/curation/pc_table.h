// Parameter-Count tables (paper section 4.1, Figure 6b).
//
// A PC table has one row per candidate parameter binding and one column per
// intermediate result of the query template's intended plan. SNB-Interactive
// obtains the counts as a by-product of data generation (strategy (ii) of
// the paper) — see builders below, which read GenerationStats.
#ifndef SNB_CURATION_PC_TABLE_H_
#define SNB_CURATION_PC_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/statistics.h"

namespace snb::curation {

/// One row per parameter binding; column-major count storage.
struct PcTable {
  /// Parameter bindings (e.g. PersonIds).
  std::vector<uint64_t> keys;
  /// columns[c][r] = |intermediate result of subplan c| for binding r.
  std::vector<std::vector<uint64_t>> columns;

  size_t num_rows() const { return keys.size(); }
  size_t num_columns() const { return columns.size(); }

  /// Total intermediate result count (the paper's Cout) for a row.
  uint64_t RowCout(size_t row) const {
    uint64_t total = 0;
    for (const std::vector<uint64_t>& col : columns) total += col[row];
    return total;
  }
};

/// PC table for Query 2's intended plan (Figure 6a):
/// |join1| = number of friends, |join2| = messages created by friends.
PcTable BuildQuery2Table(const datagen::GenerationStats& stats);

/// PC table for the 2-hop queries (Q5/Q9 shape):
/// |join1| = friends, |join2| = distinct 2-hop circle size.
PcTable BuildTwoHopTable(const datagen::GenerationStats& stats);

/// Generic builder from per-key count columns (all columns must have the
/// same length as keys).
PcTable BuildTable(std::vector<uint64_t> keys,
                   std::vector<std::vector<uint64_t>> columns);

}  // namespace snb::curation

#endif  // SNB_CURATION_PC_TABLE_H_
