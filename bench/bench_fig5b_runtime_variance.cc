// Figure 5b reproduction: runtime distribution of Query 5 under uniform
// parameter sampling vs curated parameters. Uniform sampling over the
// correlated graph yields runtimes spanning orders of magnitude (the paper
// measured >100x between fastest and slowest); curation collapses the
// distribution (properties P1/P2 of section 4.1).
#include <cstdio>

#include "bench/bench_util.h"
#include "curation/parameter_curation.h"
#include "queries/complex_queries.h"
#include "util/histogram.h"
#include "util/stopwatch.h"
#include "util/rng.h"

namespace snb::bench {
namespace {

util::SampleStats MeasureQ5(BenchWorld& world,
                            const std::vector<uint64_t>& params) {
  util::SampleStats stats;
  util::TimestampMs min_date =
      util::kNetworkStartMs + 12 * util::kMillisPerMonth;
  for (uint64_t p : params) {
    util::Stopwatch watch;
    queries::Query5(world.store, p, min_date);
    stats.Add(watch.ElapsedMicros() / 1000.0);
  }
  return stats;
}

void PrintDistribution(const char* label, const util::SampleStats& stats) {
  std::printf("\n  %s:\n", label);
  std::printf("    runs %zu  mean %.3f ms  stddev %.3f  min %.3f  max %.3f"
              "  max/min %.1fx\n",
              stats.count(), stats.Mean(), stats.StdDev(), stats.Min(),
              stats.Max(),
              stats.Min() > 0 ? stats.Max() / stats.Min() : 0.0);
  util::Histogram hist(0, stats.Max() * 1.01 + 1e-6, 12);
  for (double v : stats.samples()) hist.Add(v);
  uint64_t max_bucket = 1;
  for (size_t b = 0; b < hist.bucket_count(); ++b) {
    max_bucket = std::max(max_bucket, hist.bucket(b));
  }
  for (size_t b = 0; b < hist.bucket_count(); ++b) {
    std::printf("    [%7.3f,%7.3f) %5llu %s\n", hist.BucketLow(b),
                hist.BucketLow(b + 1), (unsigned long long)hist.bucket(b),
                Bar(static_cast<double>(hist.bucket(b)),
                    static_cast<double>(max_bucket), 36)
                    .c_str());
  }
}

void Run() {
  PrintHeader("Figure 5b — Query 5 runtime distribution, uniform vs curated");
  std::unique_ptr<BenchWorld> world = MakeWorld(kLargeSf);
  curation::PcTable table =
      curation::BuildTwoHopTable(world->dataset.stats);

  constexpr size_t kRuns = 60;
  util::Rng rng(11, 3, util::RandomPurpose::kParameterPick);
  std::vector<uint64_t> uniform =
      curation::UniformParameters(table, kRuns, rng);
  std::vector<uint64_t> curated = curation::CurateParameters(table, kRuns);

  util::SampleStats uniform_stats = MeasureQ5(*world, uniform);
  util::SampleStats curated_stats = MeasureQ5(*world, curated);

  PrintDistribution("uniform parameters (Fig. 5b)", uniform_stats);
  PrintDistribution("curated parameters", curated_stats);

  double cv_uniform = uniform_stats.StdDev() / uniform_stats.Mean();
  double cv_curated = curated_stats.StdDev() / curated_stats.Mean();
  std::printf("\n  coefficient of variation: uniform %.2f vs curated %.2f"
              " (%.1fx reduction)\n",
              cv_uniform, cv_curated,
              cv_curated > 0 ? cv_uniform / cv_curated : 0.0);
  std::printf(
      "  Shape to check: uniform runtimes span a wide multi-modal range\n"
      "  (paper: >100x min-to-max); curated runtimes cluster tightly.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
