file(REMOVE_RECURSE
  "CMakeFiles/snb_datagen.dir/activity_generator.cc.o"
  "CMakeFiles/snb_datagen.dir/activity_generator.cc.o.d"
  "CMakeFiles/snb_datagen.dir/datagen.cc.o"
  "CMakeFiles/snb_datagen.dir/datagen.cc.o.d"
  "CMakeFiles/snb_datagen.dir/degree_model.cc.o"
  "CMakeFiles/snb_datagen.dir/degree_model.cc.o.d"
  "CMakeFiles/snb_datagen.dir/friendship_generator.cc.o"
  "CMakeFiles/snb_datagen.dir/friendship_generator.cc.o.d"
  "CMakeFiles/snb_datagen.dir/person_generator.cc.o"
  "CMakeFiles/snb_datagen.dir/person_generator.cc.o.d"
  "CMakeFiles/snb_datagen.dir/serializer.cc.o"
  "CMakeFiles/snb_datagen.dir/serializer.cc.o.d"
  "CMakeFiles/snb_datagen.dir/statistics.cc.o"
  "CMakeFiles/snb_datagen.dir/statistics.cc.o.d"
  "CMakeFiles/snb_datagen.dir/update_stream.cc.o"
  "CMakeFiles/snb_datagen.dir/update_stream.cc.o.d"
  "libsnb_datagen.a"
  "libsnb_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
