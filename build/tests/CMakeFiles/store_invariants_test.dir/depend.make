# Empty dependencies file for store_invariants_test.
# This may be replaced when dependencies are built.
