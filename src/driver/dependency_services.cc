#include "driver/dependency_services.h"

#include <algorithm>
#include <cassert>

namespace snb::driver {

// ---- LocalDependencyService -------------------------------------------------

void LocalDependencyService::Initiate(TimestampMs t) {
  {
    util::MutexLock lock(&mu_);
    assert(t >= floor_ && "initiated times must be monotone");
    initiated_.insert(t);
    if (t > floor_) floor_ = t;
    FoldLocked();
  }
  if (gds_ != nullptr) gds_->NotifyProgress();
}

void LocalDependencyService::Complete(TimestampMs t) {
  {
    util::MutexLock lock(&mu_);
    auto it = initiated_.find(t);
    assert(it != initiated_.end() && "Complete without Initiate");
    initiated_.erase(it);
    completed_.insert(t);
    FoldLocked();
  }
  if (gds_ != nullptr) gds_->NotifyProgress();
}

void LocalDependencyService::MarkTime(TimestampMs t) {
  {
    util::MutexLock lock(&mu_);
    if (t <= floor_) return;
    floor_ = t;
    FoldLocked();
  }
  if (gds_ != nullptr) gds_->NotifyProgress();
}

void LocalDependencyService::FoldLocked() {
  // TLI: lowest potentially in-flight time. Every completion strictly below
  // it is durable progress; fold it into the cached watermark. When nothing
  // is in flight, everything strictly below the floor has completed too.
  TimestampMs tli = initiated_.empty() ? floor_ : *initiated_.begin();
  auto end = completed_.lower_bound(tli);
  for (auto c = completed_.begin(); c != end; ++c) {
    completed_high_ = std::max(completed_high_, *c);
  }
  completed_.erase(completed_.begin(), end);
  if (initiated_.empty() && floor_ > 0) {
    completed_high_ = std::max(completed_high_, floor_ - 1);
  }
}

TimestampMs LocalDependencyService::TLI() const {
  util::MutexLock lock(&mu_);
  return initiated_.empty() ? floor_ : *initiated_.begin();
}

TimestampMs LocalDependencyService::TLC() const {
  util::MutexLock lock(&mu_);
  TimestampMs tli = initiated_.empty() ? floor_ : *initiated_.begin();
  TimestampMs tlc = completed_high_;
  if (initiated_.empty()) tlc = std::max(tlc, tli - 1);
  return tlc;
}

// ---- GlobalDependencyService ---------------------------------------------------

LocalDependencyService* GlobalDependencyService::AddStream() {
  util::MutexLock lock(&mu_);
  streams_.push_back(std::make_unique<LocalDependencyService>());
  streams_.back()->gds_ = this;
  return streams_.back().get();
}

void GlobalDependencyService::AddChild(DependencyWatermark* child) {
  util::MutexLock lock(&mu_);
  children_.push_back(child);
}

TimestampMs GlobalDependencyService::TGI() const {
  TimestampMs tgi = kTimeMax;
  for (const auto& lds : streams_) tgi = std::min(tgi, lds->TLI());
  for (const DependencyWatermark* child : children_) {
    tgi = std::min(tgi, child->WatermarkTLI());
  }
  return tgi;
}

TimestampMs GlobalDependencyService::TGC() const {
  // Everything strictly below TGI has completed in every stream (TLI is the
  // lowest time that may still be in flight); the max-TLC cap keeps the
  // value attached to an actual completion watermark as in Figure 7.
  TimestampMs tgi = kTimeMax;
  TimestampMs max_tlc = 0;
  for (const auto& lds : streams_) {
    tgi = std::min(tgi, lds->TLI());
    max_tlc = std::max(max_tlc, lds->TLC());
  }
  for (const DependencyWatermark* child : children_) {
    tgi = std::min(tgi, child->WatermarkTLI());
    max_tlc = std::max(max_tlc, child->WatermarkTLC());
  }
  if (tgi == kTimeMax) return max_tlc;
  return std::max<TimestampMs>(0, std::min(tgi - 1, max_tlc));
}

void GlobalDependencyService::WaitUntilCompleted(TimestampMs t) {
  util::MutexLock lock(&mu_);
  progress_.wait(lock, [&] { return TGC() >= t; });
}

void GlobalDependencyService::NotifyProgress() {
  util::MutexLock lock(&mu_);
  progress_.notify_all();
}

}  // namespace snb::driver
