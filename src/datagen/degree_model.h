// Friendship-degree model: discretized Facebook degree distribution.
//
// Paper section 2.3: DATAGEN discretizes the Facebook power-law degree
// distribution [Ugander et al.] into 100 percentiles (Figure 2b), assigns
// each person a uniform percentile, draws a target degree uniformly between
// the percentile's min and max degree, then scales all degrees so the mean
// matches avg_degree(n) = n^(0.512 - 0.028*log10(n)).
#ifndef SNB_DATAGEN_DEGREE_MODEL_H_
#define SNB_DATAGEN_DEGREE_MODEL_H_

#include <array>
#include <cstdint>

#include "schema/ids.h"
#include "util/rng.h"

namespace snb::datagen {

/// Deterministic per-person target friendship degree.
class DegreeModel {
 public:
  /// Number of percentile buckets in the discretized distribution.
  static constexpr int kPercentiles = 100;
  /// Mean of the (unscaled) reference Facebook distribution.
  static constexpr double kFacebookAvgDegree = 190.0;

  /// Builds the model for a network of `num_persons` people.
  explicit DegreeModel(uint64_t num_persons);

  /// The paper's average-degree formula: n^(0.512 - 0.028*log10(n)).
  static double AverageDegreeFormula(uint64_t num_persons);

  /// Target degree for one person; pure function of (seed, person id).
  uint32_t TargetDegree(uint64_t seed, schema::PersonId person) const;

  /// Maximum degree of the reference (unscaled Facebook-shaped) distribution
  /// at a percentile in [0, 100) — the series plotted in Figure 2b.
  uint32_t ReferenceMaxDegree(int percentile) const {
    return max_degree_[percentile];
  }
  /// Minimum degree of the reference distribution at a percentile.
  uint32_t ReferenceMinDegree(int percentile) const {
    return percentile == 0 ? 1 : max_degree_[percentile - 1];
  }

  /// Scale applied to reference degrees (avg_degree(n) / facebook avg).
  double degree_scale() const { return scale_; }
  /// Target mean degree of this network.
  double target_avg_degree() const { return target_avg_; }

 private:
  std::array<uint32_t, kPercentiles> max_degree_;
  double scale_ = 1.0;
  double target_avg_ = 0.0;
};

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_DEGREE_MODEL_H_
