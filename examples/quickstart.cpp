// Quickstart: generate a small SNB social network, load it into the graph
// store, apply the update stream, and run a few interactive queries.
//
//   ./examples/quickstart
#include <cstdio>

#include "datagen/datagen.h"
#include "queries/complex_queries.h"
#include "queries/short_queries.h"
#include "queries/update_queries.h"
#include "store/graph_store.h"

int main() {
  using namespace snb;

  // 1. Generate a deterministic social network (~600 persons, 3 simulated
  //    years; the last 4 months become the update stream).
  datagen::DatagenConfig config = datagen::DatagenConfig::ForScaleFactor(0.1);
  std::printf("Generating network with %llu persons...\n",
              (unsigned long long)config.num_persons);
  datagen::Dataset dataset = datagen::Generate(config);
  std::printf("  bulk: %zu persons, %zu friendships, %zu messages\n",
              dataset.bulk.persons.size(), dataset.bulk.knows.size(),
              dataset.bulk.messages.size());
  std::printf("  update stream: %zu operations\n", dataset.updates.size());

  // 2. Bulk-load the first 32 months into the store.
  store::GraphStore store;
  util::Status status = store.BulkLoad(dataset.bulk);
  if (!status.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Apply the final 4 months as individual transactions.
  for (const datagen::UpdateOperation& op : dataset.updates) {
    status = queries::ApplyUpdate(store, op);
    if (!status.ok()) {
      std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("Store now holds %llu persons, %llu messages, %llu likes.\n\n",
              (unsigned long long)store.NumPersons(),
              (unsigned long long)store.NumMessages(),
              (unsigned long long)store.NumLikes());

  // 4. Run interactive queries. Pick a well-connected person as the start.
  schema::PersonId start = 0;
  {
    auto pin = store.ReadLock();
    size_t best = 0;
    for (schema::PersonId id : store.PersonIds(pin)) {
      const store::PersonRecord* p = store.FindPerson(pin, id);
      if (p != nullptr && p->friends.size() > best) {
        best = p->friends.size();
        start = id;
      }
    }
  }
  queries::S1Result profile = queries::ShortQuery1PersonProfile(store, start);
  std::printf("Start person #%llu: %s %s (%zu friends)\n",
              (unsigned long long)start, profile.first_name.c_str(),
              profile.last_name.c_str(),
              queries::FriendIds(store, start).size());

  // Q2: newest messages from friends.
  util::TimestampMs now = util::NetworkEndMs();
  auto feed = queries::Query2(store, start, now, 5);
  std::printf("\nQ2 — newest 5 messages from friends:\n");
  for (const auto& item : feed) {
    auto content = queries::ShortQuery4MessageContent(store, item.message_id);
    auto creator = queries::ShortQuery5MessageCreator(store, item.message_id);
    std::printf("  [%s] msg %llu by %s %s: %.48s...\n",
                util::FormatTimestamp(item.creation_date).c_str(),
                (unsigned long long)item.message_id,
                creator.first_name.c_str(), creator.last_name.c_str(),
                content.content.c_str());
  }

  // Q13: how far apart are two people?
  schema::PersonId other = (start + 17) % store.NumPersons();
  int distance = queries::Query13(store, start, other);
  std::printf("\nQ13 — shortest Knows-path from %llu to %llu: %d hops\n",
              (unsigned long long)start, (unsigned long long)other, distance);

  // Q9: recent messages in the 2-hop circle.
  auto circle_feed = queries::Query9(store, start, now, 3);
  std::printf("\nQ9 — newest 3 messages from the 2-hop circle:\n");
  for (const auto& item : circle_feed) {
    std::printf("  msg %llu by person %llu at %s\n",
                (unsigned long long)item.message_id,
                (unsigned long long)item.creator_id,
                util::FormatTimestamp(item.creation_date).c_str());
  }
  std::printf("\nDone.\n");
  return 0;
}
