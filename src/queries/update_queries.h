// Dispatch of pre-generated update operations to the store (Table 9).
#ifndef SNB_QUERIES_UPDATE_QUERIES_H_
#define SNB_QUERIES_UPDATE_QUERIES_H_

#include "datagen/update_stream.h"
#include "store/graph_store.h"
#include "util/status.h"

namespace snb::queries {

/// Executes one update operation as a transaction against the store.
/// Returns NotFound when a dependency is missing (a driver ordering bug).
util::Status ApplyUpdate(store::GraphStore& store,
                         const datagen::UpdateOperation& op);

}  // namespace snb::queries

#endif  // SNB_QUERIES_UPDATE_QUERIES_H_
