// Minimal embedded HTTP server for live run observation.
//
// A benchmark run is opaque while it executes: report.json lands only at
// the end, and attaching a profiler perturbs the measurement. This
// exporter serves the existing text artifacts over HTTP while the run is
// in flight — `GET /metrics` (Prometheus text exposition, scrapeable),
// `GET /report.json` (the snb-report document built from a live
// snapshot), `GET /profile?seconds=N` (an on-demand sampling-profiler
// capture window, see HandleDynamic), and a built-in `GET /healthz`
// liveness probe that bypasses every handler (no snapshot, no cache) —
// with no dependencies beyond POSIX sockets.
//
// Design: one background thread runs a blocking accept loop and serves
// cached routes sequentially; handlers are registered as content
// callbacks before Start(). Responses are cached per path and rebuilt at
// most once per refresh interval, so an aggressive scraper cannot turn
// MetricsRegistry::Snapshot() merges into measurable load on the run.
// Dynamic routes (HandleDynamic) opt out of the cache and see the raw
// query string — they choose their own status code and content type per
// request (the /profile 503-when-unavailable contract). Because a
// dynamic handler may run for seconds (/profile?seconds=N captures a
// whole window), it is served on its own worker thread: the accept loop
// hands the connection off and keeps answering /healthz and the cached
// routes throughout. One dynamic request runs at a time; a concurrent
// one is refused immediately with 503 + JSON error rather than queued.
// Serving is deliberately simple (HTTP/1.0-style close-after-response);
// the clients are curl, Prometheus, and the raw-socket test.
#ifndef SNB_OBS_HTTP_EXPORTER_H_
#define SNB_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace snb::obs {

class HttpExporter {
 public:
  /// Builds the current response body for a path (called at most once per
  /// refresh interval; must be thread-safe with respect to the run).
  using ContentFn = std::function<std::string()>;

  HttpExporter() = default;
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;
  ~HttpExporter() { Stop(); }

  /// Registers `fn` as the handler for exact path `path` (e.g.
  /// "/metrics"). Must be called before Start().
  void Handle(std::string path, std::string content_type, ContentFn fn);

  /// A full per-request response: dynamic routes pick status, type and
  /// body themselves (e.g. /profile answers 503 + JSON error while the
  /// profiler backend is no-op, folded text otherwise).
  struct HttpResponse {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Builds the response for one request; receives the raw query string
  /// (text after '?', without it; empty when absent). Never cached:
  /// every request re-invokes the handler. Runs on a dedicated worker
  /// thread (not the accept loop), so it may block for a capture
  /// window — but Stop() joins it, so a long-running handler should
  /// poll running() and bail out early once the exporter is stopping.
  using DynamicFn = std::function<HttpResponse(const std::string& query)>;

  /// Registers `fn` as an uncached dynamic handler for exact path
  /// `path`. Must be called before Start().
  void HandleDynamic(std::string path, DynamicFn fn);

  /// Cached responses younger than this are served without re-invoking
  /// their ContentFn. 0 rebuilds on every request. Default 250 ms.
  void set_refresh_interval_ms(int64_t ms) { refresh_interval_ms_ = ms; }

  /// Binds (port 0 picks an ephemeral port — see port()), listens, and
  /// starts the accept thread.
  util::Status Start(uint16_t port);

  /// Unblocks the accept loop and joins the thread. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }
  bool running() const {
    return listen_fd_.load(std::memory_order_acquire) >= 0;
  }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    ContentFn build;
    DynamicFn build_dynamic;  // Non-null for HandleDynamic routes.
    // Response cache (accessed only from the serve thread after Start;
    // dynamic routes never populate it).
    std::string cached_body;
    std::chrono::steady_clock::time_point cached_at{};
    bool cache_valid = false;
  };

  void ServeLoop();
  /// Serves one connection; returns true when ownership of `fd` was
  /// handed to the dynamic worker thread (which sends and closes it).
  bool ServeConnection(int fd);

  std::vector<Route> routes_;
  int64_t refresh_interval_ms_ = 250;
  /// The listening socket; -1 when stopped. Atomic because Stop() retires
  /// it while the serve thread reads it between accepts.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread server_;
  /// The in-flight dynamic request, if any. `dynamic_busy_` is set by
  /// the serve thread when it hands a connection off and cleared by the
  /// worker as its last action; the serve thread reaps the finished
  /// worker before launching the next one, Stop() reaps the last.
  std::thread dynamic_worker_;
  std::atomic<bool> dynamic_busy_{false};
};

}  // namespace snb::obs

#endif  // SNB_OBS_HTTP_EXPORTER_H_
