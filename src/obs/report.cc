#include "obs/report.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

// Provenance macros come from CMake (src/obs/CMakeLists.txt); default to
// "unknown" so non-CMake builds (e.g. single-file test compiles) still
// link.
#ifndef SNB_PROVENANCE_GIT_SHA
#define SNB_PROVENANCE_GIT_SHA "unknown"
#endif
#ifndef SNB_PROVENANCE_COMPILER
#define SNB_PROVENANCE_COMPILER "unknown"
#endif
#ifndef SNB_PROVENANCE_BUILD_TYPE
#define SNB_PROVENANCE_BUILD_TYPE ""
#endif
#ifndef SNB_PROVENANCE_SANITIZE
#define SNB_PROVENANCE_SANITIZE "none"
#endif
#ifndef SNB_PROVENANCE_SIMD
#define SNB_PROVENANCE_SIMD 0
#endif

namespace snb::obs {
namespace {

// ---- JSON writing helpers -------------------------------------------------

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0.0;  // JSON has no Inf/NaN.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendKey(std::string* out, const char* key) {
  AppendEscaped(out, key);
  out->push_back(':');
}

/// Appends hardware-counter ratio fields derived from `hw` averaged over
/// `samples` operations, each preceded by a comma (callers are mid-object).
/// Emits nothing when the counts are invalid — counter-less rows keep the
/// exact pre-v4 shape.
void AppendHwFields(std::string* out, const perf::HwCounts& hw,
                    uint64_t samples) {
  if (!hw.valid() || samples == 0) return;
  double n = static_cast<double>(samples);
  *out += ",";
  AppendKey(out, "hw_samples");
  AppendU64(out, samples);
  if (hw.Has(perf::HwMetric::kCycles) &&
      hw.Has(perf::HwMetric::kInstructions)) {
    *out += ",";
    AppendKey(out, "ipc");
    AppendDouble(out, hw.Ipc());
  }
  if (hw.Has(perf::HwMetric::kCycles)) {
    *out += ",";
    AppendKey(out, "cycles_per_op");
    AppendDouble(out,
                 static_cast<double>(hw.Value(perf::HwMetric::kCycles)) / n);
  }
  if (hw.Has(perf::HwMetric::kInstructions)) {
    *out += ",";
    AppendKey(out, "instructions_per_op");
    AppendDouble(
        out, static_cast<double>(hw.Value(perf::HwMetric::kInstructions)) / n);
  }
  if (hw.Has(perf::HwMetric::kLlcLoadMisses)) {
    *out += ",";
    AppendKey(out, "llc_miss_per_op");
    AppendDouble(
        out,
        static_cast<double>(hw.Value(perf::HwMetric::kLlcLoadMisses)) / n);
    if (hw.Has(perf::HwMetric::kInstructions)) {
      *out += ",";
      AppendKey(out, "llc_miss_per_kinstr");
      AppendDouble(out, hw.LlcMissesPerKiloInstr());
    }
  }
  if (hw.Has(perf::HwMetric::kBranchMisses)) {
    *out += ",";
    AppendKey(out, "branch_miss_per_op");
    AppendDouble(
        out,
        static_cast<double>(hw.Value(perf::HwMetric::kBranchMisses)) / n);
    if (hw.Has(perf::HwMetric::kInstructions)) {
      *out += ",";
      AppendKey(out, "branch_miss_per_kinstr");
      AppendDouble(out, hw.BranchMissesPerKiloInstr());
    }
  }
}

// ---- JSON parser ----------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* why) {
    if (error_ != nullptr) {
      *error_ = std::string(why) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseLiteral(c == 't' ? "true" : "false", out);
      case 'n':
        return ParseLiteral("null", out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(const char* lit, JsonValue* out) {
    size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return Fail("bad literal");
    pos_ += n;
    if (lit[0] == 'n') {
      out->kind = JsonValue::Kind::kNull;
    } else {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = lit[0] == 't';
    }
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) return Fail("expected a value");
    pos_ += static_cast<size_t>(end - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          // The writer only emits \u00XX control escapes; decode the low
          // byte and ignore the rest of the plane.
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return Fail("expected '{'");
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return Fail("expected '['");
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

/// Numeric object member or fallback.
double NumberOr(const JsonValue& obj, const std::string& key,
                double fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text, error).ParseDocument(out);
}

std::string ToJson(const RunReport& report) {
  std::string out;
  out.reserve(16 * 1024);
  out += "{";
  AppendKey(&out, "schema");
  out += "\"snb-report-v5\",";
  AppendKey(&out, "title");
  AppendEscaped(&out, report.title);
  out += ",";
  if (!report.exec_mode.empty()) {
    AppendKey(&out, "exec_mode");
    AppendEscaped(&out, report.exec_mode);
    out += ",";
  }

  // Per-op-type latency table (Tables 6/7/9 layout).
  AppendKey(&out, "ops");
  out += "[";
  bool first = true;
  for (size_t i = 0; i < kNumOpTypes; ++i) {
    const OpSnapshot& op = report.metrics.ops[i];
    if (op.count == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "{";
    AppendKey(&out, "op");
    AppendEscaped(&out, OpTypeName(static_cast<OpType>(i)));
    out += ",";
    AppendKey(&out, "count");
    AppendU64(&out, op.count);
    out += ",";
    AppendKey(&out, "mean_ms");
    AppendDouble(&out, op.MeanUs() / 1000.0);
    out += ",";
    AppendKey(&out, "min_ms");
    AppendDouble(&out, op.MinUs() / 1000.0);
    out += ",";
    AppendKey(&out, "p50_ms");
    AppendDouble(&out, op.PercentileUs(50) / 1000.0);
    out += ",";
    AppendKey(&out, "p90_ms");
    AppendDouble(&out, op.PercentileUs(90) / 1000.0);
    out += ",";
    AppendKey(&out, "p95_ms");
    AppendDouble(&out, op.PercentileUs(95) / 1000.0);
    out += ",";
    AppendKey(&out, "p99_ms");
    AppendDouble(&out, op.PercentileUs(99) / 1000.0);
    out += ",";
    AppendKey(&out, "max_ms");
    AppendDouble(&out, op.MaxUs() / 1000.0);
    AppendHwFields(&out, op.hw, op.hw_samples);
    out += "}";
  }
  out += "],";

  AppendKey(&out, "counters");
  out += "{";
  for (size_t c = 0; c < kNumCounters; ++c) {
    if (c != 0) out += ",";
    AppendKey(&out, CounterName(static_cast<Counter>(c)));
    AppendU64(&out, report.metrics.counters[c]);
  }
  out += "},";

  AppendKey(&out, "gauges");
  out += "{";
  for (size_t g = 0; g < kNumGauges; ++g) {
    if (g != 0) out += ",";
    AppendKey(&out, GaugeName(static_cast<Gauge>(g)));
    AppendU64(&out, report.metrics.gauges[g]);
  }
  out += "}";

  if (report.has_driver) {
    const DriverSection& d = report.driver;
    out += ",";
    AppendKey(&out, "driver");
    out += "{";
    AppendKey(&out, "operations_executed");
    AppendU64(&out, d.operations_executed);
    out += ",";
    AppendKey(&out, "operations_failed");
    AppendU64(&out, d.operations_failed);
    out += ",";
    AppendKey(&out, "elapsed_seconds");
    AppendDouble(&out, d.elapsed_seconds);
    out += ",";
    AppendKey(&out, "ops_per_second");
    AppendDouble(&out, d.ops_per_second);
    out += ",";
    AppendKey(&out, "max_schedule_lag_ms");
    AppendDouble(&out, d.max_schedule_lag_ms);
    out += ",";
    AppendKey(&out, "sustained");
    out += d.sustained ? "true" : "false";
    out += ",";
    AppendKey(&out, "dependencies_tracked");
    AppendU64(&out, d.dependencies_tracked);
    out += ",";
    AppendKey(&out, "dependent_waits");
    AppendU64(&out, d.dependent_waits);
    out += ",";
    AppendKey(&out, "lag_timeline_ms");
    out += "[";
    for (size_t i = 0; i < d.lag_timeline_ms.size(); ++i) {
      if (i != 0) out += ",";
      out += "[";
      AppendDouble(&out, d.lag_timeline_ms[i].first);
      out += ",";
      AppendDouble(&out, d.lag_timeline_ms[i].second);
      out += "]";
    }
    out += "]}";
  }

  if (report.has_compliance) {
    const ComplianceSection& c = report.compliance;
    out += ",";
    AppendKey(&out, "compliance");
    out += "{";
    AppendKey(&out, "window_ms");
    AppendDouble(&out, c.window_ms);
    out += ",";
    AppendKey(&out, "required_on_time_fraction");
    AppendDouble(&out, c.required_on_time_fraction);
    out += ",";
    AppendKey(&out, "scheduled_ops");
    AppendU64(&out, c.scheduled_ops);
    out += ",";
    AppendKey(&out, "on_time_ops");
    AppendU64(&out, c.on_time_ops);
    out += ",";
    AppendKey(&out, "on_time_fraction");
    AppendDouble(&out, c.on_time_fraction);
    out += ",";
    AppendKey(&out, "passed");
    out += c.passed ? "true" : "false";
    out += ",";
    AppendKey(&out, "lateness_histogram_ms");
    out += "[";
    for (size_t i = 0; i < c.lateness_histogram_ms.size(); ++i) {
      if (i != 0) out += ",";
      out += "[";
      AppendDouble(&out, c.lateness_histogram_ms[i].first);
      out += ",";
      AppendU64(&out, c.lateness_histogram_ms[i].second);
      out += "]";
    }
    out += "],";
    AppendKey(&out, "worst_offenders");
    out += "[";
    for (size_t i = 0; i < c.per_op.size(); ++i) {
      const ComplianceOpEntry& entry = c.per_op[i];
      if (i != 0) out += ",";
      out += "{";
      AppendKey(&out, "op");
      AppendEscaped(&out, entry.op);
      out += ",";
      AppendKey(&out, "scheduled");
      AppendU64(&out, entry.scheduled);
      out += ",";
      AppendKey(&out, "late");
      AppendU64(&out, entry.late);
      out += ",";
      AppendKey(&out, "max_late_ms");
      AppendDouble(&out, entry.max_late_ms);
      out += "}";
    }
    out += "]}";
  }

  if (report.has_q9_profile) {
    const Q9ProfileSection& q9 = report.q9_profile;
    out += ",";
    AppendKey(&out, "q9_profile");
    out += "{";
    AppendKey(&out, "plan");
    AppendEscaped(&out, q9.plan);
    out += ",";
    AppendKey(&out, "operators");
    out += "[";
    for (size_t i = 0; i < q9.operators.size(); ++i) {
      const OperatorEntry& entry = q9.operators[i];
      if (i != 0) out += ",";
      out += "{";
      AppendKey(&out, "name");
      AppendEscaped(&out, entry.name);
      out += ",";
      AppendKey(&out, "invocations");
      AppendU64(&out, entry.stats.invocations);
      out += ",";
      AppendKey(&out, "time_ms");
      AppendDouble(&out, entry.stats.TimeMs());
      out += ",";
      AppendKey(&out, "rows");
      AppendU64(&out, entry.stats.rows);
      AppendHwFields(&out, entry.stats.hw, entry.stats.hw_invocations);
      out += "}";
    }
    out += "]}";
  }

  if (report.has_validation) {
    const ValidationSection& v = report.validation;
    out += ",";
    AppendKey(&out, "validation");
    out += "{";
    AppendKey(&out, "passed");
    out += v.passed ? "true" : "false";
    out += ",";
    AppendKey(&out, "golden_path");
    AppendEscaped(&out, v.golden_path);
    out += ",";
    AppendKey(&out, "threads");
    AppendU64(&out, v.threads);
    out += ",";
    AppendKey(&out, "mode");
    AppendEscaped(&out, v.mode);
    out += ",";
    AppendKey(&out, "segments_compared");
    AppendU64(&out, v.segments_compared);
    out += ",";
    AppendKey(&out, "ops_compared");
    AppendU64(&out, v.ops_compared);
    out += ",";
    AppendKey(&out, "rows_compared");
    AppendU64(&out, v.rows_compared);
    out += ",";
    AppendKey(&out, "diffs");
    AppendU64(&out, v.diffs);
    out += ",";
    AppendKey(&out, "first_divergence");
    AppendEscaped(&out, v.first_divergence);
    out += "}";
  }

  if (report.has_provenance) {
    const ProvenanceSection& p = report.provenance;
    out += ",";
    AppendKey(&out, "provenance");
    out += "{";
    AppendKey(&out, "git_sha");
    AppendEscaped(&out, p.git_sha);
    out += ",";
    AppendKey(&out, "compiler");
    AppendEscaped(&out, p.compiler);
    out += ",";
    AppendKey(&out, "build_type");
    AppendEscaped(&out, p.build_type);
    out += ",";
    AppendKey(&out, "simd");
    out += p.simd ? "true" : "false";
    out += ",";
    AppendKey(&out, "sanitizer");
    AppendEscaped(&out, p.sanitizer);
    out += "}";
  }

  if (report.has_perf) {
    const PerfSection& p = report.perf;
    out += ",";
    AppendKey(&out, "perf");
    out += "{";
    AppendKey(&out, "backend");
    AppendEscaped(&out, p.backend);
    out += ",";
    AppendKey(&out, "counters_available");
    out += p.counters_available ? "true" : "false";
    out += ",";
    AppendKey(&out, "message");
    AppendEscaped(&out, p.message);
    out += "}";
  }

  if (!report.dossiers.empty()) {
    out += ",";
    AppendKey(&out, "dossiers");
    out += "[";
    for (size_t i = 0; i < report.dossiers.size(); ++i) {
      const SlowQueryDossier& d = report.dossiers[i];
      if (i != 0) out += ",";
      out += "{";
      AppendKey(&out, "op");
      AppendEscaped(&out, OpTypeName(d.op));
      out += ",";
      AppendKey(&out, "seq");
      AppendU64(&out, d.seq);
      out += ",";
      AppendKey(&out, "latency_ms");
      AppendDouble(&out, static_cast<double>(d.latency_ns) / 1e6);
      AppendHwFields(&out, d.hw, 1);
      out += ",";
      AppendKey(&out, "operators");
      out += "[";
      for (size_t j = 0; j < d.operators.size(); ++j) {
        const DossierOperatorRow& row = d.operators[j];
        if (j != 0) out += ",";
        out += "{";
        AppendKey(&out, "name");
        AppendEscaped(&out, row.name);
        out += ",";
        AppendKey(&out, "invocations");
        AppendU64(&out, row.invocations);
        out += ",";
        AppendKey(&out, "time_ms");
        AppendDouble(&out, static_cast<double>(row.time_ns) / 1e6);
        out += ",";
        AppendKey(&out, "rows");
        AppendU64(&out, row.rows);
        AppendHwFields(&out, row.hw, row.hw_invocations);
        out += "}";
      }
      out += "]}";
    }
    out += "]";
  }

  if (report.has_trace_stats) {
    const TraceStatsSection& t = report.trace_stats;
    out += ",";
    AppendKey(&out, "trace");
    out += "{";
    AppendKey(&out, "recorded");
    AppendU64(&out, t.recorded);
    out += ",";
    AppendKey(&out, "dropped");
    AppendU64(&out, t.dropped);
    out += ",";
    AppendKey(&out, "lanes");
    out += "[";
    for (size_t i = 0; i < t.lanes.size(); ++i) {
      const TraceStatsSection::LaneRow& lane = t.lanes[i];
      if (i != 0) out += ",";
      out += "{";
      AppendKey(&out, "lane");
      AppendU64(&out, lane.lane);
      out += ",";
      AppendKey(&out, "recorded");
      AppendU64(&out, lane.recorded);
      out += ",";
      AppendKey(&out, "retained");
      AppendU64(&out, lane.retained);
      out += ",";
      AppendKey(&out, "dropped");
      AppendU64(&out, lane.dropped);
      out += "}";
    }
    out += "]}";
  }

  if (report.has_profile) {
    const ProfileSection& p = report.profile;
    out += ",";
    AppendKey(&out, "profile");
    out += "{";
    AppendKey(&out, "backend");
    AppendEscaped(&out, p.backend);
    out += ",";
    AppendKey(&out, "message");
    AppendEscaped(&out, p.message);
    out += ",";
    AppendKey(&out, "interval_us");
    AppendU64(&out, p.interval_us);
    out += ",";
    AppendKey(&out, "captured");
    AppendU64(&out, p.captured);
    out += ",";
    AppendKey(&out, "attributed");
    AppendU64(&out, p.attributed);
    out += ",";
    AppendKey(&out, "unattributed");
    AppendU64(&out, p.unattributed);
    out += ",";
    AppendKey(&out, "dropped");
    AppendU64(&out, p.dropped);
    out += ",";
    AppendKey(&out, "self_overhead_ns");
    AppendU64(&out, p.self_overhead_ns);
    out += ",";
    AppendKey(&out, "task_clock_ns");
    AppendU64(&out, p.task_clock_ns);
    out += ",";
    AppendKey(&out, "threads");
    AppendU64(&out, p.threads);
    out += ",";
    AppendKey(&out, "top_frames");
    out += "[";
    for (size_t i = 0; i < p.top_frames.size(); ++i) {
      const ProfileSection::OpFrames& op = p.top_frames[i];
      if (i != 0) out += ",";
      out += "{";
      AppendKey(&out, "op");
      AppendEscaped(&out, op.op);
      out += ",";
      AppendKey(&out, "samples");
      AppendU64(&out, op.samples);
      out += ",";
      AppendKey(&out, "frames");
      out += "[";
      for (size_t j = 0; j < op.frames.size(); ++j) {
        if (j != 0) out += ",";
        out += "{";
        AppendKey(&out, "frame");
        AppendEscaped(&out, op.frames[j].frame);
        out += ",";
        AppendKey(&out, "samples");
        AppendU64(&out, op.frames[j].samples);
        out += "}";
      }
      out += "]}";
    }
    out += "]}";
  }

  out += "}";
  return out;
}

ProvenanceSection BuildProvenance() {
  ProvenanceSection p;
  p.git_sha = SNB_PROVENANCE_GIT_SHA;
  p.compiler = SNB_PROVENANCE_COMPILER;
  p.build_type = SNB_PROVENANCE_BUILD_TYPE;
  p.simd = SNB_PROVENANCE_SIMD != 0;
  p.sanitizer = SNB_PROVENANCE_SANITIZE;
  if (p.sanitizer.empty()) p.sanitizer = "none";
  return p;
}

PerfSection CurrentPerfSection() {
  PerfSection p;
  p.backend = perf::BackendName(perf::ActiveBackend());
  p.counters_available = perf::CountersLive();
  p.message = perf::BackendMessage();
  return p;
}

ProfileSection MakeProfileSection(const prof::FoldedProfile& profile,
                                  size_t top_n) {
  ProfileSection out;
  out.backend = prof::BackendName(profile.backend);
  out.message = profile.message;
  out.interval_us = profile.interval_us;
  out.captured = profile.accounting.captured;
  out.attributed = profile.accounting.attributed;
  out.unattributed = profile.accounting.unattributed;
  out.dropped = profile.accounting.dropped;
  out.self_overhead_ns = profile.accounting.self_overhead_ns;
  out.task_clock_ns = profile.accounting.task_clock_ns;
  out.threads = profile.accounting.threads;

  // Rank leaf frames (self samples) within each op. A stack's leaf is
  // its last rendered frame; frame-less stacks fall back to the
  // operator label, then to a placeholder.
  std::map<std::string, std::map<std::string, uint64_t>> per_op;
  for (const prof::FoldedStack& stack : profile.stacks) {
    std::string op = stack.op.empty() ? "(unattributed)" : stack.op;
    std::string leaf = !stack.frames.empty()
                           ? stack.frames.back()
                           : (!stack.op_label.empty() ? stack.op_label
                                                      : "[no frames]");
    per_op[op][leaf] += stack.count;
  }
  for (const auto& [op, frames] : per_op) {
    ProfileSection::OpFrames row;
    row.op = op;
    std::vector<ProfileSection::FrameRow> ranked;
    ranked.reserve(frames.size());
    for (const auto& [frame, samples] : frames) {
      row.samples += samples;
      ranked.push_back({frame, samples});
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const ProfileSection::FrameRow& a,
                        const ProfileSection::FrameRow& b) {
                       return a.samples > b.samples;
                     });
    if (ranked.size() > top_n) ranked.resize(top_n);
    row.frames = std::move(ranked);
    out.top_frames.push_back(std::move(row));
  }
  std::stable_sort(out.top_frames.begin(), out.top_frames.end(),
                   [](const ProfileSection::OpFrames& a,
                      const ProfileSection::OpFrames& b) {
                     return a.samples > b.samples;
                   });
  return out;
}

std::string EscapePromLabelValue(const std::string& value) {
  // Text exposition format: inside a label value, backslash, double quote
  // and line feed must be escaped; everything else passes through.
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

/// Appends one sample line: `metric{label="escaped value"} <number>`.
void AppendPromSample(std::string* out, const char* metric,
                      const char* label, const std::string& value,
                      const char* extra, double number) {
  *out += metric;
  *out += '{';
  *out += label;
  *out += "=\"";
  *out += EscapePromLabelValue(value);
  *out += '"';
  *out += extra;  // Pre-formatted, e.g. ",quantile=\"0.99\"" or "".
  *out += "} ";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", number);
  *out += buf;
  *out += '\n';
}

void AppendPromSampleU64(std::string* out, const char* metric,
                         const char* label, const std::string& value,
                         uint64_t number) {
  *out += metric;
  *out += '{';
  *out += label;
  *out += "=\"";
  *out += EscapePromLabelValue(value);
  *out += "\"} ";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, number);
  *out += buf;
  *out += '\n';
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(8 * 1024);
  out += "# TYPE snb_op_count counter\n";
  out += "# TYPE snb_op_latency_ms summary\n";
  for (size_t i = 0; i < kNumOpTypes; ++i) {
    const OpSnapshot& op = snapshot.ops[i];
    if (op.count == 0) continue;
    const std::string name = OpTypeName(static_cast<OpType>(i));
    AppendPromSampleU64(&out, "snb_op_count", "op", name, op.count);
    AppendPromSample(&out, "snb_op_latency_ms_sum", "op", name, "",
                     static_cast<double>(op.sum_ns) / 1e6);
    const double quantiles[] = {0.5, 0.9, 0.95, 0.99};
    for (double q : quantiles) {
      char extra[32];
      std::snprintf(extra, sizeof(extra), ",quantile=\"%.2f\"", q);
      AppendPromSample(&out, "snb_op_latency_ms", "op", name, extra,
                       op.PercentileUs(q * 100.0) / 1000.0);
    }
  }
  out += "# TYPE snb_counter counter\n";
  for (size_t c = 0; c < kNumCounters; ++c) {
    AppendPromSampleU64(&out, "snb_counter", "name",
                        CounterName(static_cast<Counter>(c)),
                        snapshot.counters[c]);
  }
  out += "# TYPE snb_gauge gauge\n";
  for (size_t g = 0; g < kNumGauges; ++g) {
    AppendPromSampleU64(&out, "snb_gauge", "name",
                        GaugeName(static_cast<Gauge>(g)),
                        snapshot.gauges[g]);
  }
  return out;
}

util::Status ValidateReportJson(const std::string& json) {
  JsonValue root;
  std::string error;
  if (!ParseJson(json, &root, &error)) {
    return util::Status::InvalidArgument("report is not valid JSON: " +
                                         error);
  }
  if (root.kind != JsonValue::Kind::kObject) {
    return util::Status::InvalidArgument("report root is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  // Each version is a superset of its predecessors; archived v1-v4
  // reports must keep validating.
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      (schema->string != "snb-report-v1" &&
       schema->string != "snb-report-v2" &&
       schema->string != "snb-report-v3" &&
       schema->string != "snb-report-v4" &&
       schema->string != "snb-report-v5")) {
    return util::Status::InvalidArgument("missing/unknown schema tag");
  }
  const JsonValue* exec_mode = root.Find("exec_mode");
  if (exec_mode != nullptr && (exec_mode->kind != JsonValue::Kind::kString ||
                               exec_mode->string.empty())) {
    return util::Status::InvalidArgument(
        "exec_mode must be a non-empty string when present");
  }
  const JsonValue* ops = root.Find("ops");
  if (ops == nullptr || ops->kind != JsonValue::Kind::kArray) {
    return util::Status::InvalidArgument("missing \"ops\" array");
  }
  if (ops->array.empty()) {
    return util::Status::InvalidArgument("\"ops\" array is empty");
  }
  for (const JsonValue& op : ops->array) {
    if (op.kind != JsonValue::Kind::kObject) {
      return util::Status::InvalidArgument("op entry is not an object");
    }
    const JsonValue* name = op.Find("op");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      return util::Status::InvalidArgument("op entry lacks a name");
    }
    double count = NumberOr(op, "count", -1.0);
    if (count <= 0.0) {
      return util::Status::InvalidArgument("op " + name->string +
                                           " has no samples");
    }
    double p50 = NumberOr(op, "p50_ms", -1.0);
    double p90 = NumberOr(op, "p90_ms", -1.0);
    double p95 = NumberOr(op, "p95_ms", -1.0);
    double p99 = NumberOr(op, "p99_ms", -1.0);
    double max = NumberOr(op, "max_ms", -1.0);
    if (p50 < 0.0 || p90 < 0.0 || p95 < 0.0 || p99 < 0.0 || max < 0.0) {
      return util::Status::InvalidArgument("op " + name->string +
                                           " lacks percentile fields");
    }
    // Monotone percentiles; bucket midpoints can overshoot the exact max
    // by at most half a bucket width (1/32), so allow that much slack at
    // the top end.
    if (p50 > p90 || p90 > p95 || p95 > p99 || p99 > max * (1.0 + 1.0 / 32) + 1e-9) {
      return util::Status::InvalidArgument(
          "op " + name->string + " has non-monotone percentiles");
    }
  }
  const JsonValue* compliance = root.Find("compliance");
  if (compliance != nullptr) {
    double scheduled = NumberOr(*compliance, "scheduled_ops", -1.0);
    double on_time = NumberOr(*compliance, "on_time_ops", -1.0);
    double fraction = NumberOr(*compliance, "on_time_fraction", -1.0);
    if (scheduled < 0.0 || on_time < 0.0 || fraction < 0.0 ||
        fraction > 1.0 + 1e-9 || on_time > scheduled + 1e-9) {
      return util::Status::InvalidArgument(
          "compliance section is inconsistent");
    }
    const JsonValue* hist = compliance->Find("lateness_histogram_ms");
    if (hist == nullptr || hist->kind != JsonValue::Kind::kArray) {
      return util::Status::InvalidArgument(
          "compliance lacks a lateness histogram");
    }
    double hist_total = 0.0;
    for (const JsonValue& row : hist->array) {
      if (row.kind != JsonValue::Kind::kArray || row.array.size() != 2) {
        return util::Status::InvalidArgument(
            "compliance histogram row is not a [edge_ms, count] pair");
      }
      hist_total += row.array[1].number;
    }
    if (scheduled > 0.0 && std::abs(hist_total - scheduled) > 1e-6) {
      return util::Status::InvalidArgument(
          "compliance histogram does not sum to scheduled_ops");
    }
  }
  const JsonValue* q9 = root.Find("q9_profile");
  if (q9 != nullptr) {
    const JsonValue* operators = q9->Find("operators");
    if (operators == nullptr ||
        operators->kind != JsonValue::Kind::kArray ||
        operators->array.empty()) {
      return util::Status::InvalidArgument(
          "q9_profile lacks a non-empty operators array");
    }
    for (const JsonValue& entry : operators->array) {
      if (NumberOr(entry, "time_ms", -1.0) < 0.0 ||
          NumberOr(entry, "invocations", -1.0) < 0.0) {
        return util::Status::InvalidArgument(
            "q9_profile operator entry lacks time/invocations");
      }
    }
  }
  const JsonValue* validation = root.Find("validation");
  if (validation != nullptr) {
    const JsonValue* passed = validation->Find("passed");
    if (passed == nullptr || passed->kind != JsonValue::Kind::kBool) {
      return util::Status::InvalidArgument(
          "validation section lacks a boolean \"passed\"");
    }
    double diffs = NumberOr(*validation, "diffs", -1.0);
    double rows = NumberOr(*validation, "rows_compared", -1.0);
    if (diffs < 0.0 || rows < 0.0) {
      return util::Status::InvalidArgument(
          "validation section lacks diffs/rows_compared");
    }
    if (passed->boolean && diffs != 0.0) {
      return util::Status::InvalidArgument(
          "validation section passed with non-zero diffs");
    }
  }
  const JsonValue* provenance = root.Find("provenance");
  if (provenance != nullptr) {
    const JsonValue* sha = provenance->Find("git_sha");
    const JsonValue* compiler = provenance->Find("compiler");
    if (sha == nullptr || sha->kind != JsonValue::Kind::kString ||
        sha->string.empty() || compiler == nullptr ||
        compiler->kind != JsonValue::Kind::kString) {
      return util::Status::InvalidArgument(
          "provenance section lacks git_sha/compiler strings");
    }
  }
  const JsonValue* perf = root.Find("perf");
  if (perf != nullptr) {
    const JsonValue* backend = perf->Find("backend");
    if (backend == nullptr || backend->kind != JsonValue::Kind::kString ||
        (backend->string != "disabled" && backend->string != "noop" &&
         backend->string != "linux")) {
      return util::Status::InvalidArgument(
          "perf section has a missing/unknown backend");
    }
    const JsonValue* available = perf->Find("counters_available");
    if (available == nullptr ||
        available->kind != JsonValue::Kind::kBool) {
      return util::Status::InvalidArgument(
          "perf section lacks a boolean counters_available");
    }
    // Only the linux backend can produce live counters.
    if (available->boolean && backend->string != "linux") {
      return util::Status::InvalidArgument(
          "perf section claims counters without the linux backend");
    }
  }
  const JsonValue* dossiers = root.Find("dossiers");
  if (dossiers != nullptr) {
    if (dossiers->kind != JsonValue::Kind::kArray) {
      return util::Status::InvalidArgument("dossiers is not an array");
    }
    for (const JsonValue& d : dossiers->array) {
      const JsonValue* op = d.Find("op");
      if (op == nullptr || op->kind != JsonValue::Kind::kString) {
        return util::Status::InvalidArgument("dossier lacks an op name");
      }
      if (NumberOr(d, "latency_ms", -1.0) < 0.0) {
        return util::Status::InvalidArgument(
            "dossier " + op->string + " lacks a latency");
      }
      const JsonValue* operators = d.Find("operators");
      if (operators == nullptr ||
          operators->kind != JsonValue::Kind::kArray) {
        return util::Status::InvalidArgument(
            "dossier " + op->string + " lacks an operators array");
      }
    }
  }
  const JsonValue* trace = root.Find("trace");
  if (trace != nullptr) {
    double recorded = NumberOr(*trace, "recorded", -1.0);
    double dropped = NumberOr(*trace, "dropped", -1.0);
    if (recorded < 0.0 || dropped < 0.0 || dropped > recorded + 1e-9) {
      return util::Status::InvalidArgument(
          "trace section accounting is inconsistent");
    }
    const JsonValue* lanes = trace->Find("lanes");
    if (lanes != nullptr) {
      if (lanes->kind != JsonValue::Kind::kArray) {
        return util::Status::InvalidArgument("trace lanes is not an array");
      }
      double lane_recorded = 0.0;
      double lane_dropped = 0.0;
      for (const JsonValue& lane : lanes->array) {
        double rec = NumberOr(lane, "recorded", -1.0);
        double ret = NumberOr(lane, "retained", -1.0);
        double drop = NumberOr(lane, "dropped", -1.0);
        if (rec < 0.0 || ret < 0.0 || drop < 0.0 ||
            std::abs(ret + drop - rec) > 1e-6) {
          return util::Status::InvalidArgument(
              "trace lane row does not satisfy recorded == retained + "
              "dropped");
        }
        lane_recorded += rec;
        lane_dropped += drop;
      }
      if (std::abs(lane_recorded - recorded) > 1e-6 ||
          std::abs(lane_dropped - dropped) > 1e-6) {
        return util::Status::InvalidArgument(
            "trace lane rows do not sum to the aggregate counts");
      }
    }
  }
  const JsonValue* profile = root.Find("profile");
  if (profile != nullptr) {
    if (profile->kind != JsonValue::Kind::kObject) {
      return util::Status::InvalidArgument("profile is not an object");
    }
    const JsonValue* backend = profile->Find("backend");
    if (backend == nullptr || backend->kind != JsonValue::Kind::kString ||
        (backend->string != "disabled" && backend->string != "noop" &&
         backend->string != "timer")) {
      return util::Status::InvalidArgument(
          "profile backend is not one of disabled/noop/timer");
    }
    double captured = NumberOr(*profile, "captured", -1.0);
    double attributed = NumberOr(*profile, "attributed", -1.0);
    double unattributed = NumberOr(*profile, "unattributed", -1.0);
    double dropped = NumberOr(*profile, "dropped", -1.0);
    double overhead = NumberOr(*profile, "self_overhead_ns", -1.0);
    double task_clock = NumberOr(*profile, "task_clock_ns", -1.0);
    if (captured < 0.0 || attributed < 0.0 || unattributed < 0.0 ||
        dropped < 0.0 || overhead < 0.0 || task_clock < 0.0) {
      return util::Status::InvalidArgument(
          "profile accounting fields are missing or negative");
    }
    // The conservation invariant the collator maintains by construction;
    // a report violating it was assembled by hand or corrupted.
    if (std::abs(captured - (attributed + unattributed + dropped)) > 1e-6) {
      return util::Status::InvalidArgument(
          "profile accounting does not satisfy captured == attributed + "
          "unattributed + dropped");
    }
    // Handler time is a subset of the sampled threads' CPU time, so it
    // can never exceed the task clock.
    if (overhead > task_clock + 1e-6) {
      return util::Status::InvalidArgument(
          "profile self-overhead exceeds the task clock");
    }
    if (backend->string != "timer" && captured > 0.0) {
      return util::Status::InvalidArgument(
          "profile captured samples under a non-timer backend");
    }
    const JsonValue* top_frames = profile->Find("top_frames");
    if (top_frames != nullptr) {
      if (top_frames->kind != JsonValue::Kind::kArray) {
        return util::Status::InvalidArgument(
            "profile top_frames is not an array");
      }
      for (const JsonValue& op_row : top_frames->array) {
        const JsonValue* op = op_row.Find("op");
        if (op == nullptr || op->kind != JsonValue::Kind::kString ||
            op->string.empty()) {
          return util::Status::InvalidArgument(
              "profile top_frames row lacks an op name");
        }
        if (NumberOr(op_row, "samples", -1.0) < 0.0) {
          return util::Status::InvalidArgument(
              "profile top_frames row " + op->string + " lacks samples");
        }
        const JsonValue* frames = op_row.Find("frames");
        if (frames == nullptr || frames->kind != JsonValue::Kind::kArray) {
          return util::Status::InvalidArgument(
              "profile top_frames row " + op->string +
              " lacks a frames array");
        }
        // Every sampled stack contributes a leaf (a placeholder at
        // worst), so an op that claims samples must show frames.
        if (frames->array.empty() &&
            NumberOr(op_row, "samples", 0.0) > 0.0) {
          return util::Status::InvalidArgument(
              "profile top_frames row " + op->string +
              " has samples but no frames");
        }
        for (const JsonValue& frame : frames->array) {
          const JsonValue* name = frame.Find("frame");
          if (name == nullptr || name->kind != JsonValue::Kind::kString ||
              NumberOr(frame, "samples", -1.0) < 0.0) {
            return util::Status::InvalidArgument(
                "profile frame row under " + op->string +
                " lacks frame/samples");
          }
        }
      }
    }
  }
  return util::Status::Ok();
}

util::Status WriteFileReport(const std::string& path,
                             const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::Internal("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    return util::Status::Internal("short write to " + path);
  }
  return util::Status::Ok();
}

}  // namespace snb::obs
