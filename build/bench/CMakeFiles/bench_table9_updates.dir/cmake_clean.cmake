file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_updates.dir/bench_table9_updates.cc.o"
  "CMakeFiles/bench_table9_updates.dir/bench_table9_updates.cc.o.d"
  "bench_table9_updates"
  "bench_table9_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
