// Positive control for the negative-compilation suite: the sanctioned
// pinned-read pattern must compile. If this case ever fails, the WILL_FAIL
// cases are passing for the wrong reason (broken include paths, bad
// flags), not because the API rejected the misuse.
#include "store/graph_store.h"

const snb::store::PersonRecord* Lookup(const snb::store::GraphStore& store,
                                       snb::schema::PersonId id) {
  auto pin = store.ReadLock();
  return store.FindPerson(pin, id);
}

// Moving a pin transfers ownership; returning one from a helper is the
// supported way to hold a snapshot open across scopes.
snb::util::EpochPin HoldSnapshot(snb::util::EpochManager& epochs) {
  snb::util::EpochPin pin = epochs.pin();
  return pin;
}
