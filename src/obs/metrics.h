// Low-overhead metrics: lock-free sharded counters, gauges and log-bucketed
// latency histograms keyed by fixed enums.
//
// The benchmark's deliverables are per-operation-type percentile tables
// (paper Tables 6/7/9) and sustained-throughput evidence, which means the
// measurement path runs once per driver operation on every worker thread.
// The old LatencyRecorder took a global mutex per sample and retained every
// sample forever; under an 8-thread throttled run the recorder itself
// contended with the epoch-based read path it was measuring. This registry
// inverts the design:
//
//   * the record path is lock-free: a thread indexes a per-thread shard
//     (assigned once, round-robin over a fixed pool) and performs a handful
//     of relaxed atomic adds — count, sum, min/max, one histogram bucket;
//   * samples are folded into HDR-style log-bucketed histograms of bounded
//     size (relative error <= 1/32 per bucket midpoint), so memory is O(1)
//     in run length instead of O(samples);
//   * merging across shards happens only at Snapshot() time, off the hot
//     path.
//
// Metric identity is a fixed enum, not a string: no hashing, no allocation,
// no map lookup per record. OpType covers the 29 SNB operation types plus
// driver-internal series (scheduling lag, T_GC waits); Counter and Gauge
// cover the subsystems that already counted things but surfaced nothing
// (epoch advances and retired-buffer backlog, recycler hits/misses/
// evictions, DenseTable occupancy, dependency-service traffic).
#ifndef SNB_OBS_METRICS_H_
#define SNB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/perf_counters.h"

namespace snb::obs {

// ---- Metric identity ------------------------------------------------------

/// Per-operation latency series. Contiguous so snapshots are arrays.
enum class OpType : uint16_t {
  // Complex reads Q1..Q14 (Table 6).
  kComplexQ1 = 0,
  // Short reads S1..S7 (Table 7) follow at kShortBegin.
  // Updates U1..U8 (Table 9) follow at kUpdateBegin.
  kSchedLag = 29,     // Driver lateness behind the throttled schedule.
  kGctWait = 30,      // Time a dependent op blocked on T_GC (actual blocks
                      // only; already-satisfied waits are not recorded).
  kPointRead = 31,    // Micro: single FindPerson under a read guard.
};

inline constexpr size_t kComplexBegin = 0;   // Q1..Q14 -> 0..13.
inline constexpr size_t kShortBegin = 14;    // S1..S7  -> 14..20.
inline constexpr size_t kUpdateBegin = 21;   // U1..U8  -> 21..28.
inline constexpr size_t kNumOpTypes = 32;

/// OpType for complex read Qi (1-based, i in [1,14]).
constexpr OpType ComplexOp(int query_id) {
  return static_cast<OpType>(kComplexBegin + query_id - 1);
}
/// OpType for short read Si (1-based, i in [1,7]).
constexpr OpType ShortOp(int query_id) {
  return static_cast<OpType>(kShortBegin + query_id - 1);
}
/// OpType for update Ui (1-based, i in [1,8] — datagen::UpdateKind values).
constexpr OpType UpdateOp(int kind) {
  return static_cast<OpType>(kUpdateBegin + kind - 1);
}

/// Stable dotted name ("complex.Q9", "update.U3", "driver.sched_lag").
const char* OpTypeName(OpType op);

/// Monotonically increasing event counts (AddCounter accumulates).
enum class Counter : uint16_t {
  kOperationsExecuted = 0,
  kOperationsFailed,
  kDependenciesTracked,   // IT/CT registrations with the dependency services.
  kGctDependentWaits,     // Operations that consulted T_GC before executing.
  kShortReadWalkSteps,    // Short reads spawned by the random walk.
  kCount,
};
inline constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);
const char* CounterName(Counter c);

/// Last-write-wins instantaneous values (SetGauge overwrites).
enum class Gauge : uint16_t {
  kEpochAdvances = 0,       // Global-epoch advances since process start.
  kEpochRetired,            // Objects ever retired to the limbo list.
  kEpochFreed,              // Objects reclaimed out of the limbo list.
  kEpochPending,            // Retired-but-unfreed backlog right now.
  kRecyclerHits,
  kRecyclerMisses,
  kRecyclerEvictions,
  kPersonSlotsUsed,         // Live records vs chunk capacity: DenseTable
  kPersonSlotsAllocated,    // occupancy per entity table.
  kForumSlotsUsed,
  kForumSlotsAllocated,
  kMessageSlotsUsed,
  kMessageSlotsAllocated,
  kCount,
};
inline constexpr size_t kNumGauges = static_cast<size_t>(Gauge::kCount);
const char* GaugeName(Gauge g);

// ---- Log-bucketed histogram ----------------------------------------------

/// Bucket geometry shared by the record path and snapshots. Values are
/// nanoseconds. Values < 32 get exact unit buckets; every octave
/// [2^e, 2^(e+1)) above splits into 16 sub-buckets, so a bucket's width is
/// at most 1/16 of its lower edge and the midpoint estimate is within
/// ~3.2% of any sample in the bucket. 2^50 ns (~13 days) saturates into the
/// last bucket.
struct LogBuckets {
  static constexpr uint32_t kSubBucketBits = 4;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;  // 16.
  static constexpr uint32_t kMinExponent = kSubBucketBits + 1;   // 5.
  static constexpr uint32_t kMaxExponent = 49;
  static constexpr size_t kNumBuckets =
      2 * kSubBuckets + (kMaxExponent - kMinExponent + 1) * kSubBuckets;

  static size_t BucketFor(uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<size_t>(v);
    uint32_t e = 63 - static_cast<uint32_t>(std::countl_zero(v));
    if (e > kMaxExponent) return kNumBuckets - 1;
    uint64_t sub = (v >> (e - kSubBucketBits)) - kSubBuckets;
    return 2 * kSubBuckets +
           static_cast<size_t>(e - kMinExponent) * kSubBuckets +
           static_cast<size_t>(sub);
  }

  /// Inclusive lower edge of bucket b.
  static uint64_t BucketLow(size_t b) {
    if (b < 2 * kSubBuckets) return b;
    size_t g = (b - 2 * kSubBuckets) / kSubBuckets;
    uint32_t e = kMinExponent + static_cast<uint32_t>(g);
    uint64_t sub = (b - 2 * kSubBuckets) % kSubBuckets;
    return (uint64_t{kSubBuckets} + sub) << (e - kSubBucketBits);
  }

  /// Representative value reported for samples landing in bucket b.
  static uint64_t BucketMid(size_t b) {
    if (b < 2 * kSubBuckets) return b;  // Exact range: width 1.
    uint64_t low = BucketLow(b);
    size_t g = (b - 2 * kSubBuckets) / kSubBuckets;
    uint32_t e = kMinExponent + static_cast<uint32_t>(g);
    return low + (uint64_t{1} << (e - kSubBucketBits)) / 2;
  }
};

// ---- Snapshots ------------------------------------------------------------

/// Merged view of one operation type's latency series. `hw` totals the
/// hardware-counter deltas recorded alongside latencies (hw.mask == 0 when
/// counters were unavailable for the whole run); `hw_samples` counts how
/// many recorded operations carried valid counters.
struct OpSnapshot {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t min_ns = 0;  // 0 when count == 0.
  uint64_t max_ns = 0;
  perf::HwCounts hw;
  uint64_t hw_samples = 0;
  std::array<uint64_t, LogBuckets::kNumBuckets> buckets{};

  double MeanUs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) /
                            static_cast<double>(count) / 1000.0;
  }
  /// Nearest-rank percentile (p in [0,100]) in microseconds, from bucket
  /// midpoints. Monotone in p by construction.
  double PercentileUs(double p) const;
  double MaxUs() const { return static_cast<double>(max_ns) / 1000.0; }
  double MinUs() const { return static_cast<double>(min_ns) / 1000.0; }
};

/// Point-in-time merge of all shards. Consistent enough for reporting:
/// concurrent records may straddle the merge, but every sample recorded
/// before Snapshot() is counted exactly once.
struct MetricsSnapshot {
  std::array<OpSnapshot, kNumOpTypes> ops;
  std::array<uint64_t, kNumCounters> counters{};
  std::array<uint64_t, kNumGauges> gauges{};

  const OpSnapshot& Op(OpType op) const {
    return ops[static_cast<size_t>(op)];
  }
  uint64_t CounterValue(Counter c) const {
    return counters[static_cast<size_t>(c)];
  }
  uint64_t GaugeValue(Gauge g) const {
    return gauges[static_cast<size_t>(g)];
  }
  /// Total recorded latency (microseconds) over an OpType index range
  /// [begin, end) — the prefix sums the old recorder computed in O(n).
  double SumMicros(size_t begin, size_t end) const;
  /// Total sample count over an OpType index range [begin, end).
  uint64_t CountInRange(size_t begin, size_t end) const;
};

// ---- Registry -------------------------------------------------------------

/// The run-wide metrics sink. Record paths are lock-free and wait-free
/// apart from bounded min/max CAS loops; Snapshot() is the only merge
/// point. Threads are assigned shards round-robin from a fixed pool, so
/// unrelated threads may share a shard — correctness does not depend on
/// exclusivity, only the (preserved) common case of thread-private cache
/// lines.
class MetricsRegistry {
 public:
  static constexpr size_t kMaxShards = 64;  // Power of two.

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// Records one latency sample for `op`. Lock-free.
  void RecordLatencyNs(OpType op, uint64_t ns);
  void RecordLatencyMicros(OpType op, double micros) {
    RecordLatencyNs(op, micros <= 0.0
                            ? 0
                            : static_cast<uint64_t>(micros * 1000.0 + 0.5));
  }

  /// Accumulates `delta` onto a counter. Lock-free.
  void AddCounter(Counter c, uint64_t delta = 1);

  /// Accumulates one operation's hardware-counter delta onto `op`'s
  /// series. Lock-free; a no-op when `delta` is invalid (counters
  /// unavailable), so call sites need no backend checks.
  void RecordHwCounts(OpType op, const perf::HwCounts& delta);

  /// Overwrites a gauge with an instantaneous value.
  void SetGauge(Gauge g, uint64_t value) {
    gauges_[static_cast<size_t>(g)].store(value, std::memory_order_relaxed);
  }

  /// Merges all shards. Safe to call concurrently with record paths.
  MetricsSnapshot Snapshot() const;

 private:
  struct OpCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ns{0};
    std::atomic<uint64_t> min_ns{~uint64_t{0}};
    std::atomic<uint64_t> max_ns{0};
    std::atomic<uint64_t> hw[perf::kNumHwMetrics] = {};
    std::atomic<uint32_t> hw_mask{0};
    std::atomic<uint64_t> hw_samples{0};
    std::atomic<uint64_t> buckets[LogBuckets::kNumBuckets];
  };

  struct alignas(64) Shard {
    OpCell ops[kNumOpTypes];
    std::atomic<uint64_t> counters[kNumCounters];
  };

  /// This thread's shard, allocated on first use (value-initialized, so
  /// all atomics start at zero / the min sentinel set by OpCell).
  Shard& LocalShard();

  std::atomic<Shard*> shards_[kMaxShards] = {};
  std::atomic<uint64_t> gauges_[kNumGauges] = {};
};

}  // namespace snb::obs

#endif  // SNB_OBS_METRICS_H_
