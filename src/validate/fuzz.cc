#include "validate/fuzz.h"

#include <algorithm>
#include <utility>

#include "obs/report.h"
#include "queries/batched_queries.h"
#include "queries/complex_queries.h"
#include "queries/short_queries.h"
#include "relational/rel_queries.h"
#include "store/graph_store.h"
#include "store/shard_router.h"
#include "util/rng.h"
#include "validate/canonical.h"
#include "validate/json_io.h"
#include "validate/oracle.h"

namespace snb::validate {
namespace {

constexpr char kArtifactTag[] = "snb-fuzz-regression-v2";
// v1 artifacts (predating the sharded store) are still accepted on read;
// they carry no shard_count and reproduce at 1 shard.
constexpr char kArtifactTagV1[] = "snb-fuzz-regression-v1";
constexpr char kWhat[] = "fuzz artifact";

/// Shard count for one fuzz graph: a power of two in [1, 8], a pure
/// function of the graph seed so a campaign replay (and a regression
/// artifact) lands on the same store topology.
uint32_t ShardCountForSeed(uint64_t graph_seed) {
  return 1u << (store::ShardMix64(graph_seed ^ 0x5AD5ULL) & 3);
}

// ---- Synthetic correlated domains ----------------------------------------
//
// Small fixed dictionaries shared by generation and query execution: three
// countries, six cities (city c lies in country c % 3), five companies,
// eight tags in two alternating tag classes. Small domains force collisions
// — several persons per city, several messages per tag — which is what the
// aggregate queries need to produce non-trivial results on tiny graphs.

constexpr size_t kNumCountries = 3;
constexpr size_t kNumCities = 6;
constexpr size_t kNumCompanies = 5;
constexpr size_t kNumUniversities = 4;
constexpr size_t kNumTags = 8;
constexpr size_t kNumTagClasses = 2;

const std::vector<schema::PlaceId>& CityCountry() {
  static const std::vector<schema::PlaceId> v = {0, 1, 2, 0, 1, 2};
  return v;
}

const std::vector<schema::PlaceId>& CompanyCountry() {
  static const std::vector<schema::PlaceId> v = {0, 1, 2, 0, 1};
  return v;
}

std::vector<bool> TagClassVector(uint64_t tag_class) {
  std::vector<bool> v(kNumTags, false);
  for (size_t t = 0; t < kNumTags; ++t) {
    v[t] = t % kNumTagClasses == tag_class % kNumTagClasses;
  }
  return v;
}

const char* const kFirstNames[] = {"Ada", "Bela", "Chen", "Ada"};
const char* const kLastNames[] = {"Ng", "Okafor", "Ng", "Petrov"};

// ---- Backend dispatch -----------------------------------------------------

/// Runs one binding against the graph store. Q5/Q9/Q14 call the *Scalar
/// entry points directly (not the exec-mode dispatchers), so the fuzz
/// campaign always compares the genuine scalar paths no matter what the
/// process-wide exec::DefaultExecMode() happens to be; the batched paths
/// are covered separately by RunOnStoreBatched.
std::vector<std::string> RunOnStore(const store::GraphStore& s,
                                    const FuzzBinding& b) {
  const std::string& op = b.op;
  if (op == "complex.Q1") return CanonicalRows(queries::Query1(s, b.person, b.name));
  if (op == "complex.Q2") return CanonicalRows(queries::Query2(s, b.person, b.date));
  if (op == "complex.Q3") {
    return CanonicalRows(queries::Query3(s, b.person, CityCountry(),
                                         static_cast<schema::PlaceId>(b.a),
                                         static_cast<schema::PlaceId>(b.b),
                                         b.date, b.days));
  }
  if (op == "complex.Q4") return CanonicalRows(queries::Query4(s, b.person, b.date, b.days));
  if (op == "complex.Q5") return CanonicalRows(queries::Query5Scalar(s, b.person, b.date));
  if (op == "complex.Q6") {
    return CanonicalRows(
        queries::Query6(s, b.person, static_cast<schema::TagId>(b.a)));
  }
  if (op == "complex.Q7") return CanonicalRows(queries::Query7(s, b.person));
  if (op == "complex.Q8") return CanonicalRows(queries::Query8(s, b.person));
  if (op == "complex.Q9") return CanonicalRows(queries::Query9Scalar(s, b.person, b.date));
  if (op == "complex.Q10") {
    return CanonicalRows(
        queries::Query10(s, b.person, static_cast<int>(b.a)));
  }
  if (op == "complex.Q11") {
    return CanonicalRows(queries::Query11(s, b.person, CompanyCountry(),
                                          static_cast<schema::PlaceId>(b.b),
                                          static_cast<uint16_t>(b.a)));
  }
  if (op == "complex.Q12") {
    return CanonicalRows(queries::Query12(s, b.person, TagClassVector(b.a)));
  }
  if (op == "complex.Q13") {
    return CanonicalScalar(queries::Query13(s, b.person, b.person2));
  }
  if (op == "complex.Q14") {
    return CanonicalRows(queries::Query14Scalar(s, b.person, b.person2));
  }
  if (op == "short.S1") {
    return {CanonicalRow(queries::ShortQuery1PersonProfile(s, b.person))};
  }
  if (op == "short.S2") {
    return CanonicalRows(queries::ShortQuery2RecentMessages(s, b.person));
  }
  if (op == "short.S3") {
    return CanonicalRows(queries::ShortQuery3Friends(s, b.person));
  }
  if (op == "short.S4") {
    return {CanonicalRow(queries::ShortQuery4MessageContent(s, b.message))};
  }
  if (op == "short.S5") {
    return {CanonicalRow(queries::ShortQuery5MessageCreator(s, b.message))};
  }
  if (op == "short.S6") {
    return {CanonicalRow(queries::ShortQuery6MessageForum(s, b.message))};
  }
  if (op == "short.S7") {
    return CanonicalRows(queries::ShortQuery7MessageReplies(s, b.message));
  }
  return {"<unknown op " + op + ">"};
}

/// True for the ops that have a block-at-a-time engine port.
bool HasBatchedVariant(const std::string& op) {
  return op == "complex.Q5" || op == "complex.Q9" || op == "complex.Q14";
}

/// Runs one binding against the batched (block-at-a-time) query engine.
/// Only valid for ops where HasBatchedVariant() holds.
std::vector<std::string> RunOnStoreBatched(const store::GraphStore& s,
                                           const FuzzBinding& b) {
  const std::string& op = b.op;
  if (op == "complex.Q5") {
    return CanonicalRows(queries::Query5Batched(s, b.person, b.date));
  }
  if (op == "complex.Q9") {
    return CanonicalRows(queries::Query9Batched(s, b.person, b.date));
  }
  if (op == "complex.Q14") {
    return CanonicalRows(queries::Query14Batched(s, b.person, b.person2));
  }
  return {"<no batched variant for op " + op + ">"};
}

/// Runs one binding against the relational baseline.
std::vector<std::string> RunOnRelational(const rel::RelationalDb& db,
                                         const FuzzBinding& b) {
  const std::string& op = b.op;
  if (op == "complex.Q1") return CanonicalRows(rel::Query1(db, b.person, b.name));
  if (op == "complex.Q2") return CanonicalRows(rel::Query2(db, b.person, b.date));
  if (op == "complex.Q3") {
    return CanonicalRows(rel::Query3(db, b.person, CityCountry(),
                                     static_cast<schema::PlaceId>(b.a),
                                     static_cast<schema::PlaceId>(b.b),
                                     b.date, b.days));
  }
  if (op == "complex.Q4") return CanonicalRows(rel::Query4(db, b.person, b.date, b.days));
  if (op == "complex.Q5") return CanonicalRows(rel::Query5(db, b.person, b.date));
  if (op == "complex.Q6") {
    return CanonicalRows(
        rel::Query6(db, b.person, static_cast<schema::TagId>(b.a)));
  }
  if (op == "complex.Q7") return CanonicalRows(rel::Query7(db, b.person));
  if (op == "complex.Q8") return CanonicalRows(rel::Query8(db, b.person));
  if (op == "complex.Q9") return CanonicalRows(rel::Query9(db, b.person, b.date));
  if (op == "complex.Q10") {
    return CanonicalRows(rel::Query10(db, b.person, static_cast<int>(b.a)));
  }
  if (op == "complex.Q11") {
    return CanonicalRows(rel::Query11(db, b.person, CompanyCountry(),
                                      static_cast<schema::PlaceId>(b.b),
                                      static_cast<uint16_t>(b.a)));
  }
  if (op == "complex.Q12") {
    return CanonicalRows(rel::Query12(db, b.person, TagClassVector(b.a)));
  }
  if (op == "complex.Q13") {
    return CanonicalScalar(rel::Query13(db, b.person, b.person2));
  }
  if (op == "complex.Q14") {
    return CanonicalRows(rel::Query14(db, b.person, b.person2));
  }
  if (op == "short.S1") {
    return {CanonicalRow(rel::ShortQuery1PersonProfile(db, b.person))};
  }
  if (op == "short.S2") {
    return CanonicalRows(rel::ShortQuery2RecentMessages(db, b.person));
  }
  if (op == "short.S3") {
    return CanonicalRows(rel::ShortQuery3Friends(db, b.person));
  }
  if (op == "short.S4") {
    return {CanonicalRow(rel::ShortQuery4MessageContent(db, b.message))};
  }
  if (op == "short.S5") {
    return {CanonicalRow(rel::ShortQuery5MessageCreator(db, b.message))};
  }
  if (op == "short.S6") {
    return {CanonicalRow(rel::ShortQuery6MessageForum(db, b.message))};
  }
  if (op == "short.S7") {
    return CanonicalRows(rel::ShortQuery7MessageReplies(db, b.message));
  }
  return {"<unknown op " + op + ">"};
}

/// Runs one binding against the naive oracle.
std::vector<std::string> RunOnOracle(const Oracle& o, const FuzzBinding& b) {
  const std::string& op = b.op;
  if (op == "complex.Q1") return CanonicalRows(o.Query1(b.person, b.name));
  if (op == "complex.Q2") return CanonicalRows(o.Query2(b.person, b.date));
  if (op == "complex.Q3") {
    return CanonicalRows(o.Query3(b.person, CityCountry(),
                                  static_cast<schema::PlaceId>(b.a),
                                  static_cast<schema::PlaceId>(b.b), b.date,
                                  b.days));
  }
  if (op == "complex.Q4") return CanonicalRows(o.Query4(b.person, b.date, b.days));
  if (op == "complex.Q5") return CanonicalRows(o.Query5(b.person, b.date));
  if (op == "complex.Q6") {
    return CanonicalRows(o.Query6(b.person, static_cast<schema::TagId>(b.a)));
  }
  if (op == "complex.Q7") return CanonicalRows(o.Query7(b.person));
  if (op == "complex.Q8") return CanonicalRows(o.Query8(b.person));
  if (op == "complex.Q9") return CanonicalRows(o.Query9(b.person, b.date));
  if (op == "complex.Q10") {
    return CanonicalRows(o.Query10(b.person, static_cast<int>(b.a)));
  }
  if (op == "complex.Q11") {
    return CanonicalRows(o.Query11(b.person, CompanyCountry(),
                                   static_cast<schema::PlaceId>(b.b),
                                   static_cast<uint16_t>(b.a)));
  }
  if (op == "complex.Q12") {
    return CanonicalRows(o.Query12(b.person, TagClassVector(b.a)));
  }
  if (op == "complex.Q13") {
    return CanonicalScalar(o.Query13(b.person, b.person2));
  }
  if (op == "complex.Q14") {
    return CanonicalRows(o.Query14(b.person, b.person2));
  }
  if (op == "short.S1") {
    return {CanonicalRow(o.ShortQuery1PersonProfile(b.person))};
  }
  if (op == "short.S2") {
    return CanonicalRows(o.ShortQuery2RecentMessages(b.person));
  }
  if (op == "short.S3") return CanonicalRows(o.ShortQuery3Friends(b.person));
  if (op == "short.S4") {
    return {CanonicalRow(o.ShortQuery4MessageContent(b.message))};
  }
  if (op == "short.S5") {
    return {CanonicalRow(o.ShortQuery5MessageCreator(b.message))};
  }
  if (op == "short.S6") {
    return {CanonicalRow(o.ShortQuery6MessageForum(b.message))};
  }
  if (op == "short.S7") {
    return CanonicalRows(o.ShortQuery7MessageReplies(b.message));
  }
  return {"<unknown op " + op + ">"};
}

// ---- Trial ---------------------------------------------------------------

/// One execution of a binding on a network across all backends (store,
/// store-batched where the op has a batched port, relational), each judged
/// against the oracle.
struct Trial {
  bool loaded = false;  // Both SUTs bulk-loaded successfully.
  bool mismatch = false;
  std::string backend;
  std::vector<std::string> expected;
  std::vector<std::string> actual;
};

Trial RunTrial(const schema::SocialNetwork& net, const FuzzBinding& binding,
               const StorePerturbation& perturb, uint32_t shard_count) {
  Trial trial;
  store::GraphStore store(store::ReadConcurrency::kEpoch,
                          shard_count == 0 ? 1 : shard_count);
  rel::RelationalDb db;
  if (!store.BulkLoad(net).ok() || !db.BulkLoad(net).ok()) return trial;
  trial.loaded = true;
  Oracle oracle(net);

  std::vector<std::string> oracle_rows = RunOnOracle(oracle, binding);
  std::vector<std::string> store_rows = RunOnStore(store, binding);
  if (perturb) perturb(binding.op, &store_rows);
  if (store_rows != oracle_rows) {
    trial.mismatch = true;
    trial.backend = "store";
    trial.expected = std::move(oracle_rows);
    trial.actual = std::move(store_rows);
    return trial;
  }
  if (HasBatchedVariant(binding.op)) {
    std::vector<std::string> batched_rows = RunOnStoreBatched(store, binding);
    if (batched_rows != oracle_rows) {
      trial.mismatch = true;
      trial.backend = "store-batched";
      trial.expected = std::move(oracle_rows);
      trial.actual = std::move(batched_rows);
      return trial;
    }
  }
  std::vector<std::string> rel_rows = RunOnRelational(db, binding);
  if (rel_rows != oracle_rows) {
    trial.mismatch = true;
    trial.backend = "relational";
    trial.expected = std::move(oracle_rows);
    trial.actual = std::move(rel_rows);
  }
  return trial;
}

// ---- Shrinking ------------------------------------------------------------

/// True when no comment replies to message index `idx` (safe to remove).
bool IsLeafMessage(const schema::SocialNetwork& net, size_t idx) {
  schema::MessageId id = net.messages[idx].id;
  for (const schema::Message& m : net.messages) {
    if (m.kind == schema::MessageKind::kComment && m.reply_to_id == id) {
      return false;
    }
  }
  return true;
}

bool PersonReferenced(const schema::SocialNetwork& net, schema::PersonId id) {
  for (const schema::Knows& k : net.knows) {
    if (k.person1_id == id || k.person2_id == id) return true;
  }
  for (const schema::Forum& f : net.forums) {
    if (f.moderator_id == id) return true;
  }
  for (const schema::ForumMembership& m : net.memberships) {
    if (m.person_id == id) return true;
  }
  for (const schema::Message& m : net.messages) {
    if (m.creator_id == id) return true;
  }
  for (const schema::Like& l : net.likes) {
    if (l.person_id == id) return true;
  }
  return false;
}

bool ForumReferenced(const schema::SocialNetwork& net, schema::ForumId id) {
  for (const schema::ForumMembership& m : net.memberships) {
    if (m.forum_id == id) return true;
  }
  for (const schema::Message& m : net.messages) {
    if (m.forum_id == id) return true;
  }
  return false;
}

/// Greedy delta-debugging: remove one entity at a time (likes first, then
/// memberships, leaf messages, knows edges, unreferenced forums, finally
/// unreferenced persons), keeping a removal only when the mismatch still
/// reproduces. Runs passes until a fixpoint.
schema::SocialNetwork ShrinkNetwork(schema::SocialNetwork net,
                                    const FuzzBinding& binding,
                                    const StorePerturbation& perturb,
                                    uint32_t shard_count,
                                    Trial* final_trial) {
  auto still_fails = [&](const schema::SocialNetwork& candidate) {
    Trial t = RunTrial(candidate, binding, perturb, shard_count);
    return t.loaded && t.mismatch;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < net.likes.size();) {
      schema::SocialNetwork candidate = net;
      candidate.likes.erase(candidate.likes.begin() + i);
      if (still_fails(candidate)) {
        net = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
    for (size_t i = 0; i < net.memberships.size();) {
      schema::SocialNetwork candidate = net;
      candidate.memberships.erase(candidate.memberships.begin() + i);
      if (still_fails(candidate)) {
        net = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
    // Messages: remove leaves only (reply trees stay well-formed); the
    // removed message's likes go with it.
    for (size_t i = net.messages.size(); i-- > 0;) {
      if (!IsLeafMessage(net, i)) continue;
      schema::SocialNetwork candidate = net;
      schema::MessageId id = candidate.messages[i].id;
      candidate.messages.erase(candidate.messages.begin() + i);
      candidate.likes.erase(
          std::remove_if(candidate.likes.begin(), candidate.likes.end(),
                         [id](const schema::Like& l) {
                           return l.message_id == id;
                         }),
          candidate.likes.end());
      if (still_fails(candidate)) {
        net = std::move(candidate);
        changed = true;
      }
    }
    for (size_t i = 0; i < net.knows.size();) {
      schema::SocialNetwork candidate = net;
      candidate.knows.erase(candidate.knows.begin() + i);
      if (still_fails(candidate)) {
        net = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
    for (size_t i = net.forums.size(); i-- > 0;) {
      if (ForumReferenced(net, net.forums[i].id)) continue;
      schema::SocialNetwork candidate = net;
      candidate.forums.erase(candidate.forums.begin() + i);
      if (still_fails(candidate)) {
        net = std::move(candidate);
        changed = true;
      }
    }
    for (size_t i = net.persons.size(); i-- > 0;) {
      if (PersonReferenced(net, net.persons[i].id)) continue;
      schema::SocialNetwork candidate = net;
      candidate.persons.erase(candidate.persons.begin() + i);
      if (still_fails(candidate)) {
        net = std::move(candidate);
        changed = true;
      }
    }
  }
  *final_trial = RunTrial(net, binding, perturb, shard_count);
  return net;
}

// ---- Generation -----------------------------------------------------------

std::vector<FuzzBinding> BuildBindings(const schema::SocialNetwork& net,
                                       util::Rng& rng) {
  std::vector<FuzzBinding> bindings;
  size_t num_persons = net.persons.size();
  std::vector<schema::PersonId> probes = {
      net.persons[rng.NextBounded(num_persons)].id,
      net.persons[rng.NextBounded(num_persons)].id,
      static_cast<schema::PersonId>(num_persons + 77),  // Absent.
  };
  std::vector<schema::MessageId> msg_probes;
  if (!net.messages.empty()) {
    msg_probes.push_back(
        net.messages[rng.NextBounded(net.messages.size())].id);
    msg_probes.push_back(
        net.messages[rng.NextBounded(net.messages.size())].id);
  }
  msg_probes.push_back(
      static_cast<schema::MessageId>(net.messages.size() + 7777));  // Absent.

  // Dates spanning the generated message range (see GenerateFuzzNetwork).
  auto random_date = [&rng]() -> int64_t {
    return util::kNetworkStartMs +
           static_cast<int64_t>(rng.NextBounded(80)) * util::kMillisPerHour;
  };

  for (schema::PersonId person : probes) {
    FuzzBinding base;
    base.person = person;
    {
      FuzzBinding b = base;
      b.op = "complex.Q1";
      b.name = kFirstNames[rng.NextBounded(4)];
      bindings.push_back(b);
    }
    for (const char* op : {"complex.Q2", "complex.Q5", "complex.Q9"}) {
      FuzzBinding b = base;
      b.op = op;
      b.date = random_date();
      bindings.push_back(b);
    }
    {
      FuzzBinding b = base;
      b.op = "complex.Q3";
      b.a = rng.NextBounded(kNumCountries);
      b.b = (b.a + 1 + rng.NextBounded(kNumCountries - 1)) % kNumCountries;
      b.date = random_date();
      b.days = 1 + static_cast<int>(rng.NextBounded(4));
      bindings.push_back(b);
    }
    {
      FuzzBinding b = base;
      b.op = "complex.Q4";
      b.date = random_date();
      b.days = 1 + static_cast<int>(rng.NextBounded(4));
      bindings.push_back(b);
    }
    {
      FuzzBinding b = base;
      b.op = "complex.Q6";
      b.a = rng.NextBounded(kNumTags);
      bindings.push_back(b);
    }
    for (const char* op : {"complex.Q7", "complex.Q8", "short.S1",
                           "short.S2", "short.S3"}) {
      FuzzBinding b = base;
      b.op = op;
      bindings.push_back(b);
    }
    {
      FuzzBinding b = base;
      b.op = "complex.Q10";
      b.a = 1 + rng.NextBounded(12);
      bindings.push_back(b);
    }
    {
      FuzzBinding b = base;
      b.op = "complex.Q11";
      b.b = rng.NextBounded(kNumCountries);
      b.a = 2000 + rng.NextBounded(16);  // max_work_year.
      bindings.push_back(b);
    }
    {
      FuzzBinding b = base;
      b.op = "complex.Q12";
      b.a = rng.NextBounded(kNumTagClasses);
      bindings.push_back(b);
    }
  }
  for (auto [p1, p2] : {std::pair(probes[0], probes[1]),
                        std::pair(probes[1], probes[1]),
                        std::pair(probes[0], probes[2])}) {
    FuzzBinding q13;
    q13.op = "complex.Q13";
    q13.person = p1;
    q13.person2 = p2;
    bindings.push_back(q13);
    FuzzBinding q14 = q13;
    q14.op = "complex.Q14";
    bindings.push_back(q14);
  }
  for (schema::MessageId message : msg_probes) {
    for (const char* op : {"short.S4", "short.S5", "short.S6", "short.S7"}) {
      FuzzBinding b;
      b.op = op;
      b.message = message;
      bindings.push_back(b);
    }
  }
  return bindings;
}

}  // namespace

schema::SocialNetwork GenerateFuzzNetwork(uint64_t seed, int max_persons) {
  if (max_persons < 2) max_persons = 2;
  util::Rng rng(seed, 0xF022ULL, util::RandomPurpose::kParameterPick);
  schema::SocialNetwork net;

  size_t num_persons =
      2 + rng.NextBounded(static_cast<uint64_t>(max_persons) - 1);
  for (size_t i = 0; i < num_persons; ++i) {
    schema::Person p;
    p.id = i + 1;  // Dense ids 1..P.
    p.first_name = kFirstNames[rng.NextBounded(4)];
    p.last_name = kLastNames[rng.NextBounded(4)];
    p.gender = static_cast<uint8_t>(rng.NextBounded(2));
    // Birthdays spread over ~4 years so every horoscope month occurs.
    p.birthday = util::TimestampFromDate(1985, 1, 1) +
                 static_cast<int64_t>(rng.NextBounded(365 * 4)) *
                     util::kMillisPerDay;
    p.creation_date = util::kNetworkStartMs -
                      static_cast<int64_t>(rng.NextBounded(100)) *
                          util::kMillisPerDay;
    p.city_id = static_cast<schema::PlaceId>(rng.NextBounded(kNumCities));
    p.browser = rng.NextBool(0.5) ? "Firefox" : "Safari";
    p.location_ip = "10.0.0." + FormatU64(rng.NextBounded(256));
    for (size_t t = 0; t < kNumTags; ++t) {
      if (rng.NextBool(0.3)) p.interests.push_back(static_cast<schema::TagId>(t));
    }
    if (rng.NextBool(0.6)) {
      p.university_id =
          static_cast<schema::OrganizationId>(rng.NextBounded(kNumUniversities));
      p.study_year = static_cast<uint16_t>(2000 + rng.NextBounded(10));
    }
    if (rng.NextBool(0.6)) {
      p.company_id =
          static_cast<schema::OrganizationId>(rng.NextBounded(kNumCompanies));
      p.work_year = static_cast<uint16_t>(2000 + rng.NextBounded(15));
    }
    net.persons.push_back(std::move(p));
  }

  // Knows: each unordered pair with probability ~3/P (average degree ~3,
  // enough for multi-hop structure without saturating tiny graphs).
  double edge_probability =
      std::min(0.9, 3.0 / static_cast<double>(num_persons));
  for (size_t i = 0; i < num_persons; ++i) {
    for (size_t j = i + 1; j < num_persons; ++j) {
      if (!rng.NextBool(edge_probability)) continue;
      schema::Knows k;
      k.person1_id = net.persons[i].id;
      k.person2_id = net.persons[j].id;
      k.creation_date = util::kNetworkStartMs +
                        static_cast<int64_t>(rng.NextBounded(50)) *
                            util::kMillisPerHour;
      net.knows.push_back(k);
    }
  }

  size_t num_forums = 1 + rng.NextBounded(3);
  for (size_t f = 0; f < num_forums; ++f) {
    schema::Forum forum;
    forum.id = f + 1;
    forum.title = "Forum " + FormatU64(f + 1);
    forum.moderator_id = net.persons[rng.NextBounded(num_persons)].id;
    forum.creation_date = util::kNetworkStartMs;
    net.forums.push_back(std::move(forum));
  }
  for (const schema::Forum& forum : net.forums) {
    for (const schema::Person& person : net.persons) {
      if (!rng.NextBool(0.4)) continue;
      schema::ForumMembership m;
      m.forum_id = forum.id;
      m.person_id = person.id;
      m.join_date = util::kNetworkStartMs +
                    static_cast<int64_t>(rng.NextBounded(60)) *
                        util::kMillisPerHour;
      net.memberships.push_back(m);
    }
  }

  // Messages: ids in creation order with strictly increasing dates, so a
  // comment always replies to an earlier message; roots and forums
  // propagate down reply chains. Content occasionally contains JSON-hostile
  // characters to exercise artifact escaping.
  size_t num_messages = rng.NextBounded(4 * num_persons + 1);
  for (size_t m = 0; m < num_messages; ++m) {
    schema::Message msg;
    msg.id = m + 1;
    msg.creator_id = net.persons[rng.NextBounded(num_persons)].id;
    msg.creation_date = util::kNetworkStartMs +
                        static_cast<int64_t>(m) * 2 * util::kMillisPerHour +
                        static_cast<int64_t>(rng.NextBounded(60)) *
                            util::kMillisPerMinute;
    msg.content = "msg-" + FormatU64(msg.id);
    if (rng.NextBool(0.2)) msg.content += " \"quoted\\path\"";
    for (size_t t = 0; t < kNumTags; ++t) {
      if (rng.NextBool(0.25)) msg.tags.push_back(static_cast<schema::TagId>(t));
    }
    msg.country_id =
        static_cast<schema::PlaceId>(rng.NextBounded(kNumCountries));
    if (m == 0 || rng.NextBool(0.55)) {
      msg.kind = rng.NextBool(0.2) ? schema::MessageKind::kPhoto
                                   : schema::MessageKind::kPost;
      msg.forum_id = net.forums[rng.NextBounded(net.forums.size())].id;
      msg.root_post_id = msg.id;
    } else {
      const schema::Message& parent = net.messages[rng.NextBounded(m)];
      msg.kind = schema::MessageKind::kComment;
      msg.reply_to_id = parent.id;
      msg.root_post_id = parent.root_post_id;
      msg.forum_id = parent.forum_id;
    }
    net.messages.push_back(std::move(msg));
  }

  // Likes: globally distinct creation dates (Q7's comparator ties only on
  // equal dates; distinct dates keep every result totally ordered), each
  // like strictly after its message.
  int64_t like_serial = 0;
  for (const schema::Person& person : net.persons) {
    for (const schema::Message& msg : net.messages) {
      if (!rng.NextBool(0.12)) continue;
      schema::Like like;
      like.person_id = person.id;
      like.message_id = msg.id;
      like.creation_date =
          msg.creation_date + 1 + (like_serial++) * util::kMillisPerMinute;
      net.likes.push_back(like);
    }
  }
  return net;
}

util::Status RunDifferentialFuzz(const FuzzConfig& config, FuzzOutcome* out) {
  return RunDifferentialFuzz(config, nullptr, out);
}

util::Status RunDifferentialFuzz(const FuzzConfig& config,
                                 const StorePerturbation& perturb,
                                 FuzzOutcome* out) {
  *out = FuzzOutcome();
  for (int g = 0; g < config.num_graphs; ++g) {
    uint64_t graph_seed =
        util::Mix64(config.seed + static_cast<uint64_t>(g) * 0x9e3779b9ULL);
    schema::SocialNetwork net =
        GenerateFuzzNetwork(graph_seed, config.max_persons);
    uint32_t shard_count = ShardCountForSeed(graph_seed);

    store::GraphStore store(store::ReadConcurrency::kEpoch, shard_count);
    SNB_RETURN_IF_ERROR(store.BulkLoad(net));
    rel::RelationalDb db;
    SNB_RETURN_IF_ERROR(db.BulkLoad(net));
    Oracle oracle(net);

    util::Rng binding_rng(graph_seed, 0xB16DULL,
                          util::RandomPurpose::kParameterPick);
    std::vector<FuzzBinding> bindings = BuildBindings(net, binding_rng);
    for (const FuzzBinding& binding : bindings) {
      std::vector<std::string> oracle_rows = RunOnOracle(oracle, binding);
      std::vector<std::string> store_rows = RunOnStore(store, binding);
      if (perturb) perturb(binding.op, &store_rows);
      bool has_batched = HasBatchedVariant(binding.op);
      std::vector<std::string> batched_rows;
      if (has_batched) batched_rows = RunOnStoreBatched(store, binding);
      std::vector<std::string> rel_rows = RunOnRelational(db, binding);
      out->comparisons += has_batched ? 3 : 2;

      std::string backend;
      if (store_rows != oracle_rows) {
        backend = "store";
      } else if (has_batched && batched_rows != oracle_rows) {
        backend = "store-batched";
      } else if (rel_rows != oracle_rows) {
        backend = "relational";
      } else {
        continue;
      }
      ++out->mismatches;
      Trial final_trial;
      out->first.graph =
          ShrinkNetwork(net, binding, perturb, shard_count, &final_trial);
      out->first.graph_seed = graph_seed;
      out->first.shard_count = shard_count;
      out->first.binding = binding;
      if (final_trial.mismatch) {
        out->first.backend = final_trial.backend;
        out->first.expected = std::move(final_trial.expected);
        out->first.actual = std::move(final_trial.actual);
      } else {
        // Shrinking should preserve the mismatch; fall back to the
        // original-graph evidence if it somehow evaporated.
        out->first.backend = backend;
        out->first.expected = std::move(oracle_rows);
        if (backend == "store") {
          out->first.actual = std::move(store_rows);
        } else if (backend == "store-batched") {
          out->first.actual = std::move(batched_rows);
        } else {
          out->first.actual = std::move(rel_rows);
        }
        out->first.graph = std::move(net);
      }
      return util::Status::Ok();  // Stop at the first counterexample.
    }
    ++out->graphs_run;
  }
  return util::Status::Ok();
}

bool MismatchReproduces(const FuzzMismatch& mismatch,
                        const StorePerturbation& perturb) {
  Trial trial =
      RunTrial(mismatch.graph, mismatch.binding, perturb, mismatch.shard_count);
  return trial.loaded && trial.mismatch && trial.backend == mismatch.backend;
}

// ---- Artifact serialization ----------------------------------------------

namespace {

using jsonio::AppendEscaped;
using jsonio::AppendI64Field;
using jsonio::AppendKey;
using jsonio::AppendU64Field;
using jsonio::AppendU64StrField;

void AppendStringField(std::string* out, const char* key,
                       const std::string& value) {
  AppendKey(out, key);
  AppendEscaped(out, value);
}

void AppendTagArray(std::string* out, const char* key,
                    const std::vector<schema::TagId>& tags) {
  AppendKey(out, key);
  *out += "[";
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i != 0) *out += ",";
    *out += FormatU64(tags[i]);
  }
  *out += "]";
}

void AppendRows(std::string* out, const char* key,
                const std::vector<std::string>& rows) {
  AppendKey(out, key);
  *out += "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) *out += ",";
    AppendEscaped(out, rows[i]);
  }
  *out += "]";
}

util::Status GetTagArray(const obs::JsonValue& obj, const char* key,
                         std::vector<schema::TagId>* out) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kArray) {
    return util::Status::InvalidArgument(std::string(kWhat) + ": bad \"" +
                                         key + "\"");
  }
  for (const obs::JsonValue& e : v->array) {
    out->push_back(static_cast<schema::TagId>(e.number));
  }
  return util::Status::Ok();
}

util::Status GetRows(const obs::JsonValue& obj, const char* key,
                     std::vector<std::string>* out) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kArray) {
    return util::Status::InvalidArgument(std::string(kWhat) + ": bad \"" +
                                         key + "\"");
  }
  for (const obs::JsonValue& e : v->array) {
    out->push_back(e.string);
  }
  return util::Status::Ok();
}

const obs::JsonValue* RequireArray(const obs::JsonValue& obj,
                                   const char* key) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kArray) return nullptr;
  return v;
}

}  // namespace

std::string MismatchToJson(const FuzzMismatch& mismatch) {
  std::string out = "{";
  AppendStringField(&out, "schema", kArtifactTag);
  out += ",";
  AppendKey(&out, "graph_seed");
  AppendEscaped(&out, FormatU64(mismatch.graph_seed));
  out += ",";
  AppendU64Field(&out, "shard_count",
                 mismatch.shard_count == 0 ? 1 : mismatch.shard_count);
  out += ",";
  AppendStringField(&out, "backend", mismatch.backend);
  out += ",\n";

  const FuzzBinding& b = mismatch.binding;
  AppendKey(&out, "binding");
  out += "{";
  AppendStringField(&out, "op", b.op);
  out += ",";
  AppendU64StrField(&out, "person", b.person);
  out += ",";
  AppendU64StrField(&out, "person2", b.person2);
  out += ",";
  AppendU64StrField(&out, "message", b.message);
  out += ",";
  AppendI64Field(&out, "date", b.date);
  out += ",";
  AppendI64Field(&out, "days", b.days);
  out += ",";
  AppendU64Field(&out, "a", b.a);
  out += ",";
  AppendU64Field(&out, "b", b.b);
  out += ",";
  AppendStringField(&out, "name", b.name);
  out += "},\n";

  AppendRows(&out, "expected", mismatch.expected);
  out += ",\n";
  AppendRows(&out, "actual", mismatch.actual);
  out += ",\n";

  const schema::SocialNetwork& g = mismatch.graph;
  AppendKey(&out, "graph");
  out += "{";
  AppendKey(&out, "persons");
  out += "[";
  for (size_t i = 0; i < g.persons.size(); ++i) {
    const schema::Person& p = g.persons[i];
    if (i != 0) out += ",";
    out += "\n{";
    AppendU64StrField(&out, "id", p.id);
    out += ",";
    AppendStringField(&out, "first_name", p.first_name);
    out += ",";
    AppendStringField(&out, "last_name", p.last_name);
    out += ",";
    AppendU64Field(&out, "gender", p.gender);
    out += ",";
    AppendI64Field(&out, "birthday", p.birthday);
    out += ",";
    AppendI64Field(&out, "creation_date", p.creation_date);
    out += ",";
    AppendU64Field(&out, "city", p.city_id);
    out += ",";
    AppendStringField(&out, "browser", p.browser);
    out += ",";
    AppendStringField(&out, "ip", p.location_ip);
    out += ",";
    AppendTagArray(&out, "interests", p.interests);
    out += ",";
    AppendU64Field(&out, "university", p.university_id);
    out += ",";
    AppendU64Field(&out, "study_year", p.study_year);
    out += ",";
    AppendU64Field(&out, "company", p.company_id);
    out += ",";
    AppendU64Field(&out, "work_year", p.work_year);
    out += "}";
  }
  out += "],";
  AppendKey(&out, "knows");
  out += "[";
  for (size_t i = 0; i < g.knows.size(); ++i) {
    const schema::Knows& k = g.knows[i];
    if (i != 0) out += ",";
    out += "\n{";
    AppendU64StrField(&out, "p1", k.person1_id);
    out += ",";
    AppendU64StrField(&out, "p2", k.person2_id);
    out += ",";
    AppendI64Field(&out, "since", k.creation_date);
    out += "}";
  }
  out += "],";
  AppendKey(&out, "forums");
  out += "[";
  for (size_t i = 0; i < g.forums.size(); ++i) {
    const schema::Forum& f = g.forums[i];
    if (i != 0) out += ",";
    out += "\n{";
    AppendU64StrField(&out, "id", f.id);
    out += ",";
    AppendStringField(&out, "title", f.title);
    out += ",";
    AppendU64StrField(&out, "moderator", f.moderator_id);
    out += ",";
    AppendI64Field(&out, "creation_date", f.creation_date);
    out += "}";
  }
  out += "],";
  AppendKey(&out, "memberships");
  out += "[";
  for (size_t i = 0; i < g.memberships.size(); ++i) {
    const schema::ForumMembership& m = g.memberships[i];
    if (i != 0) out += ",";
    out += "\n{";
    AppendU64StrField(&out, "forum", m.forum_id);
    out += ",";
    AppendU64StrField(&out, "person", m.person_id);
    out += ",";
    AppendI64Field(&out, "join_date", m.join_date);
    out += "}";
  }
  out += "],";
  AppendKey(&out, "messages");
  out += "[";
  for (size_t i = 0; i < g.messages.size(); ++i) {
    const schema::Message& m = g.messages[i];
    if (i != 0) out += ",";
    out += "\n{";
    AppendU64StrField(&out, "id", m.id);
    out += ",";
    AppendU64Field(&out, "kind", static_cast<uint64_t>(m.kind));
    out += ",";
    AppendU64StrField(&out, "creator", m.creator_id);
    out += ",";
    AppendI64Field(&out, "creation_date", m.creation_date);
    out += ",";
    AppendU64StrField(&out, "forum", m.forum_id);
    out += ",";
    AppendU64StrField(&out, "reply_to", m.reply_to_id);
    out += ",";
    AppendU64StrField(&out, "root", m.root_post_id);
    out += ",";
    AppendStringField(&out, "content", m.content);
    out += ",";
    AppendTagArray(&out, "tags", m.tags);
    out += ",";
    AppendU64Field(&out, "country", m.country_id);
    out += "}";
  }
  out += "],";
  AppendKey(&out, "likes");
  out += "[";
  for (size_t i = 0; i < g.likes.size(); ++i) {
    const schema::Like& l = g.likes[i];
    if (i != 0) out += ",";
    out += "\n{";
    AppendU64StrField(&out, "person", l.person_id);
    out += ",";
    AppendU64StrField(&out, "message", l.message_id);
    out += ",";
    AppendI64Field(&out, "creation_date", l.creation_date);
    out += "}";
  }
  out += "]}}\n";
  return out;
}

util::Status MismatchFromJson(const std::string& json, FuzzMismatch* out) {
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(json, &root, &error)) {
    return util::Status::InvalidArgument(std::string(kWhat) +
                                         ": JSON parse error: " + error);
  }
  std::string schema_tag;
  SNB_RETURN_IF_ERROR(jsonio::GetString(root, "schema", &schema_tag, kWhat));
  if (schema_tag != kArtifactTag && schema_tag != kArtifactTagV1) {
    return util::Status::InvalidArgument(std::string(kWhat) +
                                         ": unsupported schema \"" +
                                         schema_tag + "\"");
  }
  SNB_RETURN_IF_ERROR(
      jsonio::GetU64(root, "graph_seed", &out->graph_seed, kWhat));
  out->shard_count = 1;  // v1 artifacts predate sharding.
  if (schema_tag == std::string(kArtifactTag)) {
    uint64_t shards = 0;
    SNB_RETURN_IF_ERROR(jsonio::GetU64(root, "shard_count", &shards, kWhat));
    if (shards < 1 || shards > store::kMaxShards) {
      return util::Status::InvalidArgument(
          std::string(kWhat) + ": shard_count out of range [1, " +
          FormatU64(store::kMaxShards) + "]");
    }
    out->shard_count = static_cast<uint32_t>(shards);
  }
  SNB_RETURN_IF_ERROR(jsonio::GetString(root, "backend", &out->backend, kWhat));

  const obs::JsonValue* binding = root.Find("binding");
  if (binding == nullptr) {
    return util::Status::InvalidArgument(std::string(kWhat) +
                                         ": missing \"binding\"");
  }
  FuzzBinding& b = out->binding;
  SNB_RETURN_IF_ERROR(jsonio::GetString(*binding, "op", &b.op, kWhat));
  SNB_RETURN_IF_ERROR(jsonio::GetU64(*binding, "person", &b.person, kWhat));
  SNB_RETURN_IF_ERROR(jsonio::GetU64(*binding, "person2", &b.person2, kWhat));
  SNB_RETURN_IF_ERROR(jsonio::GetU64(*binding, "message", &b.message, kWhat));
  SNB_RETURN_IF_ERROR(jsonio::GetI64(*binding, "date", &b.date, kWhat));
  int64_t days = 0;
  SNB_RETURN_IF_ERROR(jsonio::GetI64(*binding, "days", &days, kWhat));
  b.days = static_cast<int>(days);
  SNB_RETURN_IF_ERROR(jsonio::GetU64(*binding, "a", &b.a, kWhat));
  SNB_RETURN_IF_ERROR(jsonio::GetU64(*binding, "b", &b.b, kWhat));
  SNB_RETURN_IF_ERROR(jsonio::GetString(*binding, "name", &b.name, kWhat));

  SNB_RETURN_IF_ERROR(GetRows(root, "expected", &out->expected));
  SNB_RETURN_IF_ERROR(GetRows(root, "actual", &out->actual));

  const obs::JsonValue* graph = root.Find("graph");
  if (graph == nullptr) {
    return util::Status::InvalidArgument(std::string(kWhat) +
                                         ": missing \"graph\"");
  }
  schema::SocialNetwork& g = out->graph;
  const obs::JsonValue* persons = RequireArray(*graph, "persons");
  const obs::JsonValue* knows = RequireArray(*graph, "knows");
  const obs::JsonValue* forums = RequireArray(*graph, "forums");
  const obs::JsonValue* memberships = RequireArray(*graph, "memberships");
  const obs::JsonValue* messages = RequireArray(*graph, "messages");
  const obs::JsonValue* likes = RequireArray(*graph, "likes");
  if (persons == nullptr || knows == nullptr || forums == nullptr ||
      memberships == nullptr || messages == nullptr || likes == nullptr) {
    return util::Status::InvalidArgument(std::string(kWhat) +
                                         ": graph section incomplete");
  }
  for (const obs::JsonValue& v : persons->array) {
    schema::Person p;
    uint64_t u = 0;
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "id", &p.id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetString(v, "first_name", &p.first_name, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetString(v, "last_name", &p.last_name, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "gender", &u, kWhat));
    p.gender = static_cast<uint8_t>(u);
    SNB_RETURN_IF_ERROR(jsonio::GetI64(v, "birthday", &p.birthday, kWhat));
    SNB_RETURN_IF_ERROR(
        jsonio::GetI64(v, "creation_date", &p.creation_date, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "city", &u, kWhat));
    p.city_id = static_cast<schema::PlaceId>(u);
    SNB_RETURN_IF_ERROR(jsonio::GetString(v, "browser", &p.browser, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetString(v, "ip", &p.location_ip, kWhat));
    SNB_RETURN_IF_ERROR(GetTagArray(v, "interests", &p.interests));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "university", &u, kWhat));
    p.university_id = static_cast<schema::OrganizationId>(u);
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "study_year", &u, kWhat));
    p.study_year = static_cast<uint16_t>(u);
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "company", &u, kWhat));
    p.company_id = static_cast<schema::OrganizationId>(u);
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "work_year", &u, kWhat));
    p.work_year = static_cast<uint16_t>(u);
    g.persons.push_back(std::move(p));
  }
  for (const obs::JsonValue& v : knows->array) {
    schema::Knows k;
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "p1", &k.person1_id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "p2", &k.person2_id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetI64(v, "since", &k.creation_date, kWhat));
    g.knows.push_back(k);
  }
  for (const obs::JsonValue& v : forums->array) {
    schema::Forum f;
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "id", &f.id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetString(v, "title", &f.title, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "moderator", &f.moderator_id, kWhat));
    SNB_RETURN_IF_ERROR(
        jsonio::GetI64(v, "creation_date", &f.creation_date, kWhat));
    g.forums.push_back(std::move(f));
  }
  for (const obs::JsonValue& v : memberships->array) {
    schema::ForumMembership m;
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "forum", &m.forum_id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "person", &m.person_id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetI64(v, "join_date", &m.join_date, kWhat));
    g.memberships.push_back(m);
  }
  for (const obs::JsonValue& v : messages->array) {
    schema::Message m;
    uint64_t u = 0;
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "id", &m.id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "kind", &u, kWhat));
    if (u > static_cast<uint64_t>(schema::MessageKind::kPhoto)) {
      return util::Status::InvalidArgument(std::string(kWhat) +
                                           ": bad message kind");
    }
    m.kind = static_cast<schema::MessageKind>(u);
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "creator", &m.creator_id, kWhat));
    SNB_RETURN_IF_ERROR(
        jsonio::GetI64(v, "creation_date", &m.creation_date, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "forum", &m.forum_id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "reply_to", &m.reply_to_id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "root", &m.root_post_id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetString(v, "content", &m.content, kWhat));
    SNB_RETURN_IF_ERROR(GetTagArray(v, "tags", &m.tags));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "country", &u, kWhat));
    m.country_id = static_cast<schema::PlaceId>(u);
    g.messages.push_back(std::move(m));
  }
  for (const obs::JsonValue& v : likes->array) {
    schema::Like l;
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "person", &l.person_id, kWhat));
    SNB_RETURN_IF_ERROR(jsonio::GetU64(v, "message", &l.message_id, kWhat));
    SNB_RETURN_IF_ERROR(
        jsonio::GetI64(v, "creation_date", &l.creation_date, kWhat));
    g.likes.push_back(l);
  }
  return util::Status::Ok();
}

util::Status WriteMismatch(const FuzzMismatch& mismatch,
                           const std::string& path) {
  return obs::WriteFileReport(path, MismatchToJson(mismatch));
}

util::Status ReadMismatch(const std::string& path, FuzzMismatch* out) {
  std::string text;
  SNB_RETURN_IF_ERROR(jsonio::ReadWholeFile(path, &text));
  return MismatchFromJson(text, out);
}

}  // namespace snb::validate
