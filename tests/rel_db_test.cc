// Unit tests for the relational baseline engine's storage layer (the
// cross-SUT equivalence suite covers the queries; these cover the index
// structures and transactional edge cases directly).
#include <gtest/gtest.h>

#include "relational/relational_db.h"

namespace snb::rel {
namespace {

schema::Person MakePerson(PersonId id) {
  schema::Person p;
  p.id = id;
  p.first_name = "P" + std::to_string(id);
  p.creation_date = 1000 + static_cast<int64_t>(id);
  return p;
}

schema::Forum MakeForum(ForumId id, PersonId moderator) {
  schema::Forum f;
  f.id = id;
  f.moderator_id = moderator;
  f.creation_date = 2000;
  return f;
}

schema::Message MakePost(MessageId id, PersonId creator, ForumId forum,
                         TimestampMs date) {
  schema::Message m;
  m.id = id;
  m.kind = schema::MessageKind::kPost;
  m.creator_id = creator;
  m.forum_id = forum;
  m.root_post_id = id;
  m.creation_date = date;
  return m;
}

TEST(RelationalDbTest, PkLookupsAfterUnorderedInserts) {
  RelationalDb db;
  // Insert persons out of id order; the PK-sorted table must stay sorted.
  for (PersonId id : {5, 1, 9, 3, 7}) {
    ASSERT_TRUE(db.AddPerson(MakePerson(id)).ok());
  }
  auto lock = db.ReadLock();
  for (PersonId id : {1, 3, 5, 7, 9}) {
    const schema::Person* p = db.FindPerson(id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->first_name, "P" + std::to_string(id));
  }
  EXPECT_EQ(db.FindPerson(2), nullptr);
  EXPECT_EQ(db.FindPerson(100), nullptr);
}

TEST(RelationalDbTest, KnowsIndexBothDirections) {
  RelationalDb db;
  for (PersonId id = 0; id < 5; ++id) {
    ASSERT_TRUE(db.AddPerson(MakePerson(id)).ok());
  }
  ASSERT_TRUE(db.AddFriendship({1, 3, 500}).ok());
  ASSERT_TRUE(db.AddFriendship({1, 2, 600}).ok());
  auto lock = db.ReadLock();
  auto [lo, hi] = db.FriendsOf(1);
  ASSERT_EQ(hi - lo, 2);
  EXPECT_EQ(lo[0].dst, 2u);  // Sorted by (src, dst).
  EXPECT_EQ(lo[1].dst, 3u);
  auto [rlo, rhi] = db.FriendsOf(3);
  ASSERT_EQ(rhi - rlo, 1);
  EXPECT_EQ(rlo->dst, 1u);
  EXPECT_TRUE(db.AreFriends(2, 1));
  EXPECT_FALSE(db.AreFriends(2, 3));
  EXPECT_EQ(db.NumKnowsEdges(), 2u);
}

TEST(RelationalDbTest, CreatorIndexDateOrdered) {
  RelationalDb db;
  ASSERT_TRUE(db.AddPerson(MakePerson(1)).ok());
  ASSERT_TRUE(db.AddForum(MakeForum(10, 1)).ok());
  // Message ids ascend with creation date by construction; insert shuffled.
  for (MessageId id : {4, 1, 3, 0, 2}) {
    ASSERT_TRUE(
        db.AddMessage(MakePost(id, 1, 10, 3000 + static_cast<int64_t>(id)))
            .ok());
  }
  auto lock = db.ReadLock();
  auto [lo, hi] = db.MessagesBy(1);
  ASSERT_EQ(hi - lo, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lo[i].message, static_cast<MessageId>(i));
  }
}

TEST(RelationalDbTest, RejectsDanglingReferences) {
  RelationalDb db;
  EXPECT_EQ(db.AddFriendship({1, 2, 100}).code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(db.AddForum(MakeForum(10, 1)).code(),
            util::StatusCode::kNotFound);
  ASSERT_TRUE(db.AddPerson(MakePerson(1)).ok());
  EXPECT_EQ(db.AddMessage(MakePost(0, 1, 10, 3000)).code(),
            util::StatusCode::kNotFound);  // Forum missing.
  ASSERT_TRUE(db.AddForum(MakeForum(10, 1)).ok());
  ASSERT_TRUE(db.AddMessage(MakePost(0, 1, 10, 3000)).ok());
  EXPECT_EQ(db.AddMessage(MakePost(0, 1, 10, 3000)).code(),
            util::StatusCode::kAlreadyExists);

  schema::Message comment;
  comment.id = 1;
  comment.kind = schema::MessageKind::kComment;
  comment.creator_id = 1;
  comment.reply_to_id = 99;
  comment.creation_date = 3100;
  EXPECT_EQ(db.AddMessage(comment).code(), util::StatusCode::kNotFound);
  comment.reply_to_id = 0;
  EXPECT_TRUE(db.AddMessage(comment).ok());
  auto lock = db.ReadLock();
  auto [lo, hi] = db.RepliesTo(0);
  ASSERT_EQ(hi - lo, 1);
  EXPECT_EQ(lo->child, 1u);
}

TEST(RelationalDbTest, MembershipAndLikeIndexes) {
  RelationalDb db;
  for (PersonId id = 0; id < 3; ++id) {
    ASSERT_TRUE(db.AddPerson(MakePerson(id)).ok());
  }
  ASSERT_TRUE(db.AddForum(MakeForum(10, 0)).ok());
  ASSERT_TRUE(db.AddForumMembership({10, 1, 2500}).ok());
  ASSERT_TRUE(db.AddForumMembership({10, 2, 2600}).ok());
  ASSERT_TRUE(db.AddMessage(MakePost(0, 1, 10, 3000)).ok());
  ASSERT_TRUE(db.AddLike({2, 0, 3500}).ok());

  auto lock = db.ReadLock();
  auto [mlo, mhi] = db.MembersOf(10);
  EXPECT_EQ(mhi - mlo, 2);
  auto [flo, fhi] = db.ForumsOf(1);
  ASSERT_EQ(fhi - flo, 1);
  EXPECT_EQ(flo->forum, 10u);
  auto [llo, lhi] = db.LikesOf(0);
  ASSERT_EQ(lhi - llo, 1);
  EXPECT_EQ(llo->person, 2u);
  auto [plo, phi] = db.LikesBy(2);
  ASSERT_EQ(phi - plo, 1);
  EXPECT_EQ(plo->message, 0u);
  auto [plo2, phi2] = db.LikesBy(1);
  EXPECT_EQ(phi2 - plo2, 0);
}

TEST(RelationalDbTest, BulkLoadRequiresEmpty) {
  RelationalDb db;
  ASSERT_TRUE(db.AddPerson(MakePerson(1)).ok());
  schema::SocialNetwork network;
  EXPECT_EQ(db.BulkLoad(network).code(),
            util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace snb::rel
