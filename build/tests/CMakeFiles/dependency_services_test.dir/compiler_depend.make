# Empty compiler generated dependencies file for dependency_services_test.
# This may be replaced when dependencies are built.
