// Chunked entity table with lock-free reads and stable record addresses.
//
// Datagen emits dense ids (persons and messages count up from zero; forum
// ids are owner_id * slots_per_person + slot, i.e. bounded by a small
// multiple of the person count), so an id-indexed table beats a hash map on
// the hot lookup path: one shift, one directory load, one chunk load. The
// concurrency problem with a plain vector is that growth moves records out
// from under lock-free readers; DenseTable fixes both:
//
//   * records live in fixed-size chunks that never move once allocated, so
//     a reader-held record pointer stays valid for the store's lifetime;
//   * the chunk directory grows copy-on-write and is published with a
//     release store (the old directory is retired through the
//     EpochManager); chunk pointers inside a directory are themselves
//     atomic, so allocating a chunk never copies the directory;
//   * absent chunks stay nullptr, which keeps sparse id ranges (the forum
//     id space) cheap.
//
// A slot's existence is a separate concern from its address: callers embed
// a `ready` flag in T and publish it with a release store after filling the
// record, and readers check it with an acquire load. The writer must be
// externally serialized; readers must hold an EpochPin while they
// dereference (only the retired directories need it — records and chunks
// are never freed before the table itself).
#ifndef SNB_STORE_DENSE_TABLE_H_
#define SNB_STORE_DENSE_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "util/epoch.h"

namespace snb::store {

template <typename T, size_t kChunkSize = 1024>
class DenseTable {
  static_assert((kChunkSize & (kChunkSize - 1)) == 0,
                "chunk size must be a power of two");

 public:
  DenseTable() = default;
  DenseTable(const DenseTable&) = delete;
  DenseTable& operator=(const DenseTable&) = delete;

  ~DenseTable() {
    Directory* d = dir_.load(std::memory_order_relaxed);
    if (d == nullptr) return;
    for (size_t c = 0; c < d->capacity; ++c) {
      delete d->chunks()[c].load(std::memory_order_relaxed);
    }
    FreeDirectory(d);
  }

  /// Lock-free address lookup; nullptr when the id's chunk was never
  /// allocated. A non-null result may still be an empty slot — the caller
  /// checks T's ready flag.
  const T* Slot(uint64_t id) const {
    const Directory* d = dir_.load(std::memory_order_acquire);
    if (d == nullptr) return nullptr;
    uint64_t c = id / kChunkSize;
    if (c >= d->capacity) return nullptr;
    const Chunk* ch = d->chunks()[c].load(std::memory_order_acquire);
    if (ch == nullptr) return nullptr;
    return &ch->slots[id & (kChunkSize - 1)];
  }

  /// One past the largest id ever grown to (monotonic).
  uint64_t bound() const { return bound_.load(std::memory_order_acquire); }

  // ---- Writer API (externally serialized) -------------------------------

  /// Ensures id's chunk exists and returns the slot's stable address.
  T* GrowToSlot(uint64_t id, util::EpochManager& epoch) {
    uint64_t c = id / kChunkSize;
    Directory* d = dir_.load(std::memory_order_relaxed);
    if (d == nullptr || c >= d->capacity) {
      size_t cap = d == nullptr ? kMinDirCapacity : d->capacity;
      while (cap <= c) cap *= 2;
      Directory* fresh = AllocDirectory(cap);
      size_t old_cap = d == nullptr ? 0 : d->capacity;
      for (size_t i = 0; i < old_cap; ++i) {
        fresh->chunks()[i].store(
            d->chunks()[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      dir_.store(fresh, std::memory_order_release);
      if (d != nullptr) {
        epoch.Retire(static_cast<void*>(d), [](void* p) {
          FreeDirectory(static_cast<Directory*>(p));
        });
      }
      d = fresh;
    }
    std::atomic<Chunk*>& entry = d->chunks()[c];
    Chunk* ch = entry.load(std::memory_order_relaxed);
    if (ch == nullptr) {
      ch = new Chunk();
      entry.store(ch, std::memory_order_release);
    }
    if (id + 1 > bound_.load(std::memory_order_relaxed)) {
      bound_.store(id + 1, std::memory_order_release);
    }
    return &ch->slots[id & (kChunkSize - 1)];
  }

  /// Writer-side lookup without allocation.
  T* MutableSlot(uint64_t id) {
    return const_cast<T*>(Slot(id));
  }

  /// Slots backed by an allocated chunk (allocated chunks × kChunkSize).
  /// With bound() this gives table occupancy: sparse id ranges (forums)
  /// allocate far fewer slots than their bound suggests.
  uint64_t allocated_slots() const {
    const Directory* d = dir_.load(std::memory_order_acquire);
    if (d == nullptr) return 0;
    uint64_t chunks = 0;
    for (size_t c = 0; c < d->capacity; ++c) {
      if (d->chunks()[c].load(std::memory_order_acquire) != nullptr) {
        ++chunks;
      }
    }
    return chunks * kChunkSize;
  }

  /// Directory + chunk overhead in bytes, excluding what T owns.
  uint64_t overhead_bytes() const {
    const Directory* d = dir_.load(std::memory_order_acquire);
    if (d == nullptr) return 0;
    uint64_t bytes = sizeof(Directory) +
                     d->capacity * sizeof(std::atomic<Chunk*>);
    for (size_t c = 0; c < d->capacity; ++c) {
      if (d->chunks()[c].load(std::memory_order_acquire) != nullptr) {
        bytes += sizeof(Chunk);
      }
    }
    return bytes;
  }

 private:
  static constexpr size_t kMinDirCapacity = 8;

  struct Chunk {
    T slots[kChunkSize];
  };

  struct Directory {
    size_t capacity;

    std::atomic<Chunk*>* chunks() {
      return reinterpret_cast<std::atomic<Chunk*>*>(this + 1);
    }
    const std::atomic<Chunk*>* chunks() const {
      return reinterpret_cast<const std::atomic<Chunk*>*>(this + 1);
    }
  };

  static Directory* AllocDirectory(size_t capacity) {
    void* raw = ::operator new(sizeof(Directory) +
                               capacity * sizeof(std::atomic<Chunk*>));
    Directory* d = new (raw) Directory;
    d->capacity = capacity;
    for (size_t i = 0; i < capacity; ++i) {
      new (d->chunks() + i) std::atomic<Chunk*>(nullptr);
    }
    return d;
  }

  static void FreeDirectory(Directory* d) {
    // Directory and its atomic pointers are trivially destructible.
    ::operator delete(static_cast<void*>(d));
  }

  std::atomic<Directory*> dir_{nullptr};
  std::atomic<uint64_t> bound_{0};
};

}  // namespace snb::store

#endif  // SNB_STORE_DENSE_TABLE_H_
