// Table 7 reproduction: mean runtime of the 7 simple read-only queries at
// two (mini) scale factors.
#include <cstdio>

#include "bench/bench_util.h"
#include "relational/rel_queries.h"
#include "queries/short_queries.h"
#include "util/histogram.h"
#include "util/stopwatch.h"
#include "util/rng.h"

namespace snb::bench {
namespace {

template <typename Db, typename Api>
std::vector<double> MeasureShortReads(const Db& db, BenchWorld& world,
                                      int runs) {
  util::Rng rng(3, 9, util::RandomPurpose::kShortReadWalk);
  uint64_t persons = world.dataset.stats.num_persons;
  schema::MessageId messages = world.store.MessageIdBound();

  std::vector<double> means(8, 0.0);
  for (int q = 1; q <= 7; ++q) {
    util::SampleStats stats;
    for (int r = 0; r < runs; ++r) {
      schema::PersonId person = rng.NextBounded(persons);
      schema::MessageId message = rng.NextBounded(messages);
      util::Stopwatch watch;
      switch (q) {
        case 1:
          Api::S1(db, person);
          break;
        case 2:
          Api::S2(db, person);
          break;
        case 3:
          Api::S3(db, person);
          break;
        case 4:
          Api::S4(db, message);
          break;
        case 5:
          Api::S5(db, message);
          break;
        case 6:
          Api::S6(db, message);
          break;
        case 7:
          Api::S7(db, message);
          break;
      }
      stats.Add(watch.ElapsedMicros() / 1000.0);
    }
    means[q] = stats.Mean();
  }
  return means;
}

struct GraphShortApi {
  static auto S1(const store::GraphStore& db, schema::PersonId p) {
    return queries::ShortQuery1PersonProfile(db, p);
  }
  static auto S2(const store::GraphStore& db, schema::PersonId p) {
    return queries::ShortQuery2RecentMessages(db, p);
  }
  static auto S3(const store::GraphStore& db, schema::PersonId p) {
    return queries::ShortQuery3Friends(db, p);
  }
  static auto S4(const store::GraphStore& db, schema::MessageId m) {
    return queries::ShortQuery4MessageContent(db, m);
  }
  static auto S5(const store::GraphStore& db, schema::MessageId m) {
    return queries::ShortQuery5MessageCreator(db, m);
  }
  static auto S6(const store::GraphStore& db, schema::MessageId m) {
    return queries::ShortQuery6MessageForum(db, m);
  }
  static auto S7(const store::GraphStore& db, schema::MessageId m) {
    return queries::ShortQuery7MessageReplies(db, m);
  }
};

struct RelShortApi {
  static auto S1(const rel::RelationalDb& db, schema::PersonId p) {
    return rel::ShortQuery1PersonProfile(db, p);
  }
  static auto S2(const rel::RelationalDb& db, schema::PersonId p) {
    return rel::ShortQuery2RecentMessages(db, p);
  }
  static auto S3(const rel::RelationalDb& db, schema::PersonId p) {
    return rel::ShortQuery3Friends(db, p);
  }
  static auto S4(const rel::RelationalDb& db, schema::MessageId m) {
    return rel::ShortQuery4MessageContent(db, m);
  }
  static auto S5(const rel::RelationalDb& db, schema::MessageId m) {
    return rel::ShortQuery5MessageCreator(db, m);
  }
  static auto S6(const rel::RelationalDb& db, schema::MessageId m) {
    return rel::ShortQuery6MessageForum(db, m);
  }
  static auto S7(const rel::RelationalDb& db, schema::MessageId m) {
    return rel::ShortQuery7MessageReplies(db, m);
  }
};

void PrintRow(const char* label, const std::vector<double>& ms) {
  std::printf("\n  %-22s", label);
  for (int q = 1; q <= 7; ++q) std::printf("%9.4f", ms[q]);
}

void RunAt(double sf, const char* graph_label, const char* rel_label) {
  std::unique_ptr<BenchWorld> world = MakeWorld(sf);
  rel::RelationalDb relational;
  if (!relational.BulkLoad(world->dataset.bulk).ok()) std::abort();
  for (const datagen::UpdateOperation& op : world->dataset.updates) {
    if (!rel::ApplyUpdate(relational, op).ok()) std::abort();
  }
  PrintRow(graph_label, MeasureShortReads<store::GraphStore, GraphShortApi>(
                            world->store, *world, 400));
  PrintRow(rel_label, MeasureShortReads<rel::RelationalDb, RelShortApi>(
                          relational, *world, 400));
}

void Run() {
  PrintHeader("Table 7 — mean runtime of simple read-only queries (ms)");
  std::printf("  %-22s", "system,scale");
  for (int q = 1; q <= 7; ++q) std::printf("%9s", ("S" + std::to_string(q)).c_str());
  RunAt(kSmallSf, "graph,SF0.05", "relational,SF0.05");
  RunAt(kLargeSf, "graph,SF0.4", "relational,SF0.4");
  std::printf("\n\n  Paper (ms): Sparksee,SF10 : 7 9 9 8 9 9 8\n");
  std::printf("              Virtuoso,SF300: 6 147 37 7 2 1 8\n");
  std::printf(
      "  Shape to check: all short reads are point lookups, orders of\n"
      "  magnitude cheaper than the complex reads of Table 6, and nearly\n"
      "  scale-independent (O(log n) index access).\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
