# Empty dependencies file for snb_schema.
# This may be replaced when dependencies are built.
