#include "store/graph_store.h"

#include <algorithm>
#include <mutex>

namespace snb::store {

using schema::Knows;
using schema::Message;
using schema::Person;
using util::Status;

namespace {

// Inserts into a sorted FriendEdge vector, keeping order by `other`.
void InsertFriendSorted(std::vector<FriendEdge>& friends, FriendEdge edge) {
  auto it = std::lower_bound(
      friends.begin(), friends.end(), edge,
      [](const FriendEdge& a, const FriendEdge& b) {
        return a.other < b.other;
      });
  friends.insert(it, edge);
}

}  // namespace

// ---- Public transactional API ----------------------------------------------

Status GraphStore::BulkLoad(const schema::SocialNetwork& network) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!persons_.empty() || !messages_.empty()) {
    return Status::FailedPrecondition("BulkLoad requires an empty store");
  }
  persons_.reserve(network.persons.size());
  for (const Person& p : network.persons) {
    SNB_RETURN_IF_ERROR(AddPersonLocked(p));
  }
  for (const Knows& k : network.knows) {
    SNB_RETURN_IF_ERROR(AddFriendshipLocked(k));
  }
  forums_.reserve(network.forums.size());
  for (const schema::Forum& f : network.forums) {
    SNB_RETURN_IF_ERROR(AddForumLocked(f));
  }
  for (const schema::ForumMembership& fm : network.memberships) {
    SNB_RETURN_IF_ERROR(AddForumMembershipLocked(fm));
  }
  messages_.reserve(network.messages.size());
  for (const Message& m : network.messages) {
    SNB_RETURN_IF_ERROR(AddMessageLocked(m));
  }
  for (const schema::Like& l : network.likes) {
    SNB_RETURN_IF_ERROR(AddLikeLocked(l));
  }
  return Status::Ok();
}

Status GraphStore::AddPerson(const Person& person) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return AddPersonLocked(person);
}

Status GraphStore::AddFriendship(const Knows& knows) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return AddFriendshipLocked(knows);
}

Status GraphStore::AddForum(const schema::Forum& forum) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return AddForumLocked(forum);
}

Status GraphStore::AddForumMembership(
    const schema::ForumMembership& membership) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return AddForumMembershipLocked(membership);
}

Status GraphStore::AddMessage(const Message& message) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return AddMessageLocked(message);
}

Status GraphStore::AddLike(const schema::Like& like) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return AddLikeLocked(like);
}

// ---- Locked internals -------------------------------------------------------

Status GraphStore::AddPersonLocked(const Person& person) {
  auto [it, inserted] = persons_.try_emplace(person.id);
  if (!inserted) {
    return Status::AlreadyExists("person " + std::to_string(person.id));
  }
  it->second.data = person;
  return Status::Ok();
}

Status GraphStore::AddFriendshipLocked(const Knows& knows) {
  PersonRecord* p1 = FindPersonMutable(knows.person1_id);
  PersonRecord* p2 = FindPersonMutable(knows.person2_id);
  if (p1 == nullptr || p2 == nullptr) {
    return Status::NotFound("friendship endpoint missing");
  }
  InsertFriendSorted(p1->friends, {knows.person2_id, knows.creation_date});
  InsertFriendSorted(p2->friends, {knows.person1_id, knows.creation_date});
  ++num_knows_;
  knows_version_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::AddForumLocked(const schema::Forum& forum) {
  if (FindPersonMutable(forum.moderator_id) == nullptr) {
    return Status::NotFound("forum moderator missing");
  }
  auto [it, inserted] = forums_.try_emplace(forum.id);
  if (!inserted) {
    return Status::AlreadyExists("forum " + std::to_string(forum.id));
  }
  it->second.data = forum;
  return Status::Ok();
}

Status GraphStore::AddForumMembershipLocked(
    const schema::ForumMembership& membership) {
  PersonRecord* person = FindPersonMutable(membership.person_id);
  auto forum_it = forums_.find(membership.forum_id);
  if (person == nullptr || forum_it == forums_.end()) {
    return Status::NotFound("membership endpoint missing");
  }
  person->forums.push_back({membership.forum_id, membership.join_date});
  forum_it->second.members.push_back(
      {membership.person_id, membership.join_date});
  ++num_memberships_;
  return Status::Ok();
}

Status GraphStore::AddMessageLocked(const Message& message) {
  PersonRecord* creator = FindPersonMutable(message.creator_id);
  if (creator == nullptr) {
    return Status::NotFound("message creator missing");
  }
  bool is_comment = message.kind == schema::MessageKind::kComment;
  ForumRecord* forum = nullptr;
  if (is_comment) {
    if (message.reply_to_id >= messages_.size() ||
        !messages_[message.reply_to_id].present()) {
      return Status::NotFound("comment parent missing");
    }
  } else {
    auto it = forums_.find(message.forum_id);
    if (it == forums_.end()) {
      return Status::NotFound("post forum missing");
    }
    forum = &it->second;
  }
  if (message.id < messages_.size() && messages_[message.id].present()) {
    return Status::AlreadyExists("message " + std::to_string(message.id));
  }
  if (message.id >= messages_.size()) {
    // NOTE: resizing invalidates pointers into messages_; the parent is
    // re-resolved below.
    messages_.resize(message.id + 1);
  }
  MessageRecord& record = messages_[message.id];
  record.data = message;
  creator->messages.push_back(message.id);
  if (is_comment) {
    messages_[message.reply_to_id].replies.push_back(message.id);
  } else {
    forum->posts.push_back(message.id);
  }
  ++num_messages_;
  return Status::Ok();
}

Status GraphStore::AddLikeLocked(const schema::Like& like) {
  PersonRecord* person = FindPersonMutable(like.person_id);
  if (person == nullptr) {
    return Status::NotFound("like person missing");
  }
  if (like.message_id >= messages_.size() ||
      !messages_[like.message_id].present()) {
    return Status::NotFound("liked message missing");
  }
  person->likes.push_back({like.message_id, like.creation_date});
  messages_[like.message_id].likes.push_back(
      {like.person_id, like.creation_date});
  ++num_likes_;
  return Status::Ok();
}

// ---- Read accessors ------------------------------------------------------------

const PersonRecord* GraphStore::FindPerson(schema::PersonId id) const {
  auto it = persons_.find(id);
  return it == persons_.end() ? nullptr : &it->second;
}

PersonRecord* GraphStore::FindPersonMutable(schema::PersonId id) {
  auto it = persons_.find(id);
  return it == persons_.end() ? nullptr : &it->second;
}

const ForumRecord* GraphStore::FindForum(schema::ForumId id) const {
  auto it = forums_.find(id);
  return it == forums_.end() ? nullptr : &it->second;
}

const MessageRecord* GraphStore::FindMessage(schema::MessageId id) const {
  if (id >= messages_.size() || !messages_[id].present()) return nullptr;
  return &messages_[id];
}

bool GraphStore::AreFriends(schema::PersonId a, schema::PersonId b) const {
  const PersonRecord* pa = FindPerson(a);
  if (pa == nullptr) return false;
  auto it = std::lower_bound(
      pa->friends.begin(), pa->friends.end(), b,
      [](const FriendEdge& e, schema::PersonId id) { return e.other < id; });
  return it != pa->friends.end() && it->other == b;
}

std::vector<schema::PersonId> GraphStore::PersonIds() const {
  std::vector<schema::PersonId> ids;
  ids.reserve(persons_.size());
  for (const auto& [id, _] : persons_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<schema::ForumId> GraphStore::ForumIds() const {
  std::vector<schema::ForumId> ids;
  ids.reserve(forums_.size());
  for (const auto& [id, _] : forums_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

StorageBreakdown GraphStore::ComputeStorageBreakdown() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  StorageBreakdown b;
  for (const MessageRecord& m : messages_) {
    b.message_bytes += sizeof(MessageRecord) + m.data.content.capacity() +
                       m.data.tags.capacity() * sizeof(schema::TagId) +
                       m.replies.capacity() * sizeof(schema::MessageId);
    b.message_content_bytes += m.data.content.capacity();
    b.likes_bytes += m.likes.capacity() * sizeof(DatedEdge);
  }
  for (const auto& [_, p] : persons_) {
    uint64_t attr = sizeof(PersonRecord) + p.data.first_name.capacity() +
                    p.data.last_name.capacity() +
                    p.data.browser.capacity() +
                    p.data.location_ip.capacity() +
                    p.data.interests.capacity() * sizeof(schema::TagId) +
                    p.data.languages.capacity() * sizeof(uint32_t);
    for (const std::string& e : p.data.emails) attr += e.capacity();
    b.person_bytes += attr;
    b.friends_bytes += p.friends.capacity() * sizeof(FriendEdge);
    b.membership_bytes += p.forums.capacity() * sizeof(DatedEdge);
    b.likes_bytes += p.likes.capacity() * sizeof(DatedEdge);
    b.message_bytes += p.messages.capacity() * sizeof(schema::MessageId);
  }
  for (const auto& [_, f] : forums_) {
    b.forum_bytes += sizeof(ForumRecord) + f.data.title.capacity() +
                     f.data.tags.capacity() * sizeof(schema::TagId) +
                     f.posts.capacity() * sizeof(schema::MessageId);
    b.membership_bytes += f.members.capacity() * sizeof(DatedEdge);
  }
  return b;
}

}  // namespace snb::store
