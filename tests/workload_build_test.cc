// Tests for query-mix / workload construction: frequencies, parameters and
// dependency metadata of the generated operation stream.
#include <map>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "driver/query_mix.h"

namespace snb::driver {
namespace {

class WorkloadBuildTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    std::unique_ptr<schema::Dictionaries> dict;
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 250;
      world->dataset = datagen::Generate(config);
      world->dict = std::make_unique<schema::Dictionaries>(config.seed);
      return world;
    }();
    return *w;
  }
};

TEST_F(WorkloadBuildTest, FrequenciesControlReadCounts) {
  QueryMixConfig mix;
  for (auto& f : mix.frequencies) f = 100;
  mix.frequencies[0] = 10;  // Q1 ten times as often.
  Workload workload = BuildWorkload(world().dataset, *world().dict, mix);

  std::map<int, uint64_t> counts;
  for (const Operation& op : workload.operations) {
    if (op.type == OperationType::kComplexRead) ++counts[op.query_id];
  }
  uint64_t updates = workload.num_updates;
  EXPECT_EQ(counts[1], updates / 10);
  EXPECT_EQ(counts[2], updates / 100);
  EXPECT_EQ(counts[14], updates / 100);
}

TEST_F(WorkloadBuildTest, FrequencyScaleSlowsReads) {
  QueryMixConfig mix;
  for (auto& f : mix.frequencies) f = 50;
  Workload base = BuildWorkload(world().dataset, *world().dict, mix);
  mix.frequency_scale = 2.0;
  Workload scaled = BuildWorkload(world().dataset, *world().dict, mix);
  EXPECT_NEAR(static_cast<double>(base.num_complex_reads) /
                  static_cast<double>(scaled.num_complex_reads),
              2.0, 0.2);
}

TEST_F(WorkloadBuildTest, ReadParametersAreCuratedAndPlausible) {
  QueryMixConfig mix;
  for (auto& f : mix.frequencies) f = 20;
  Workload workload = BuildWorkload(world().dataset, *world().dict, mix);

  for (const Operation& op : workload.operations) {
    if (op.type != OperationType::kComplexRead) continue;
    EXPECT_NE(op.person_param, schema::kInvalidId);
    EXPECT_LT(op.person_param, 250u);
    switch (op.query_id) {
      case 2:
      case 9:
        // "Before" dates lie just before the op's own simulation time.
        EXPECT_LT(static_cast<util::TimestampMs>(op.aux0), op.due_time);
        EXPECT_GT(static_cast<util::TimestampMs>(op.aux0),
                  util::kNetworkStartMs);
        break;
      case 10:
        EXPECT_GE(op.aux0, 1u);
        EXPECT_LE(op.aux0, 12u);
        break;
      case 13:
      case 14:
        EXPECT_NE(op.person_param2, schema::kInvalidId);
        break;
      default:
        break;
    }
    // Reads never participate in dependency tracking.
    EXPECT_FALSE(op.is_dependency);
    EXPECT_EQ(op.dependency_time, 0);
  }
}

TEST_F(WorkloadBuildTest, UpdateOpsCarryDependencyMetadata) {
  QueryMixConfig mix;
  mix.include_complex_reads = false;
  Workload workload = BuildWorkload(world().dataset, *world().dict, mix);
  ASSERT_EQ(workload.operations.size(), world().dataset.updates.size());

  uint64_t dependencies = 0, forum_ops = 0;
  for (const Operation& op : workload.operations) {
    EXPECT_EQ(op.type, OperationType::kUpdate);
    const datagen::UpdateOperation& u =
        world().dataset.updates[op.update_index];
    EXPECT_EQ(op.due_time, u.due_time);
    EXPECT_EQ(op.dependency_time, u.dependency_time);
    EXPECT_EQ(op.person_dependency_time, u.person_dependency_time);
    if (op.is_dependency) {
      ++dependencies;
      EXPECT_TRUE(u.kind == datagen::UpdateKind::kAddPerson ||
                  u.kind == datagen::UpdateKind::kAddFriendship);
    }
    if (op.forum_partition != schema::kInvalidId) ++forum_ops;
  }
  EXPECT_GT(dependencies, 0u);
  EXPECT_GT(forum_ops, dependencies);  // Forum-tree ops dominate.
}

TEST_F(WorkloadBuildTest, ReadOnlyWorkloadWithoutUpdates) {
  QueryMixConfig mix;
  mix.include_updates = false;
  for (auto& f : mix.frequencies) f = 200;
  Workload workload = BuildWorkload(world().dataset, *world().dict, mix);
  EXPECT_EQ(workload.num_updates, 0u);
  EXPECT_GT(workload.num_complex_reads, 0u);
  for (const Operation& op : workload.operations) {
    EXPECT_EQ(op.type, OperationType::kComplexRead);
  }
}

TEST_F(WorkloadBuildTest, DeterministicConstruction) {
  QueryMixConfig mix;
  for (auto& f : mix.frequencies) f = 40;
  Workload a = BuildWorkload(world().dataset, *world().dict, mix);
  Workload b = BuildWorkload(world().dataset, *world().dict, mix);
  ASSERT_EQ(a.operations.size(), b.operations.size());
  for (size_t i = 0; i < a.operations.size(); ++i) {
    EXPECT_EQ(a.operations[i].due_time, b.operations[i].due_time);
    EXPECT_EQ(a.operations[i].query_id, b.operations[i].query_id);
    EXPECT_EQ(a.operations[i].person_param, b.operations[i].person_param);
    EXPECT_EQ(a.operations[i].aux0, b.operations[i].aux0);
  }
}

}  // namespace
}  // namespace snb::driver
