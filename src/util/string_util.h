// Small string helpers shared by the library.
#ifndef SNB_UTIL_STRING_UTIL_H_
#define SNB_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace snb::util {

/// Joins `parts` with `sep`.
inline std::string Join(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// Splits `s` on `sep` (single character); keeps empty fields.
inline std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace snb::util

#endif  // SNB_UTIL_STRING_UTIL_H_
