// Canonical result serialization must be byte-stable across platforms and
// locales: these are the bytes golden sets and fuzz artifacts store.
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>
#include <string>

#include "validate/canonical.h"

namespace snb::validate {
namespace {

TEST(FormatDoubleTest, StableShortestRoundTripForms) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(-0.0), "0");  // Signed zero normalized.
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(-1.5), "-1.5");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  // Q14 weights are k/2 sums — always exactly representable.
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatDouble(std::nan("")), "nan");
}

TEST(FormatDoubleTest, SeventeenDigitsRoundTrip) {
  for (double v : {0.1, 1.0 / 3.0, 123456.789, 1e-300, 1e300, 0.30000000000000004}) {
    std::string s = FormatDouble(v);
    EXPECT_EQ(std::stod(s), v) << s;
    std::string again = FormatDouble(std::stod(s));
    EXPECT_EQ(again, s);
  }
}

TEST(FormatDoubleTest, LocaleDoesNotLeakIntoOutput) {
  // Locales with ',' decimal separators must not change the bytes. Not
  // every container ships non-C locales; skip silently when absent.
  const char* candidates[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR"};
  std::string saved = std::setlocale(LC_ALL, nullptr);
  bool tried = false;
  for (const char* name : candidates) {
    if (std::setlocale(LC_ALL, name) == nullptr) continue;
    tried = true;
    EXPECT_EQ(FormatDouble(1.5), "1.5") << "under locale " << name;
    EXPECT_EQ(FormatDouble(-12345.75), "-12345.75") << "under locale " << name;
    EXPECT_EQ(FormatU64(1234567), "1234567") << "under locale " << name;
    EXPECT_EQ(FormatI64(-1234567), "-1234567") << "under locale " << name;
    break;
  }
  std::setlocale(LC_ALL, saved.c_str());
  if (!tried) GTEST_SKIP() << "no non-C locale installed";
}

TEST(FormatIntTest, FullRange) {
  EXPECT_EQ(FormatU64(0), "0");
  EXPECT_EQ(FormatU64(~0ULL), "18446744073709551615");
  EXPECT_EQ(FormatI64(std::numeric_limits<int64_t>::min()),
            "-9223372036854775808");
  EXPECT_EQ(FormatI64(std::numeric_limits<int64_t>::max()),
            "9223372036854775807");
}

TEST(CanonicalRowTest, EveryFieldAppearsInOrder) {
  queries::Q1Result q1;
  q1.person_id = 42;
  q1.distance = 2;
  q1.last_name = "Ng";
  q1.city_id = 7;
  q1.university_id = 3;
  q1.company_id = 9;
  EXPECT_EQ(CanonicalRow(q1), "42|2|Ng|7|3|9");

  queries::Q7Result q7;
  q7.liker_id = 5;
  q7.message_id = 11;
  q7.like_date = 1262304000000;
  q7.latency_minutes = 90;
  q7.is_outside_friendship = true;
  EXPECT_EQ(CanonicalRow(q7), "5|11|1262304000000|90|1");

  queries::Q14Result q14;
  q14.path = {1, 2, 3};
  q14.weight = 1.5;
  EXPECT_EQ(CanonicalRow(q14), "1,2,3|1.5");

  queries::S1Result s1;  // Not-found renders with found=0 leading.
  EXPECT_EQ(CanonicalRow(s1).substr(0, 2), "0|");
}

TEST(CanonicalRowTest, ScalarAndSetHelpers) {
  EXPECT_EQ(CanonicalScalar(-1), std::vector<std::string>{"-1"});
  EXPECT_EQ(CanonicalScalar(3), std::vector<std::string>{"3"});

  std::vector<queries::Q5Result> rows(2);
  rows[0].forum_id = 10;
  rows[0].post_count = 4;
  rows[1].forum_id = 3;
  rows[1].post_count = 4;
  std::vector<std::string> canonical = CanonicalRows(rows);
  ASSERT_EQ(canonical.size(), 2u);
  EXPECT_EQ(canonical[0], "10|4");
  EXPECT_EQ(canonical[1], "3|4");  // Returned order preserved, not re-sorted.
}

}  // namespace
}  // namespace snb::validate
