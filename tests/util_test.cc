// Unit tests for the util substrate.
#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/datetime.h"
#include "util/distributions.h"
#include "util/histogram.h"
#include "util/stopwatch.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/zorder.h"

namespace snb::util {
namespace {

// ---- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("person 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: person 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kInvalidArgument,
        StatusCode::kAlreadyExists, StatusCode::kAborted,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

Status FailingHelper() { return Status::Aborted("inner"); }

Status PropagatingHelper() {
  SNB_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kAborted);
}

// ---- Rng --------------------------------------------------------------------

TEST(RngTest, SameKeySameSequence) {
  Rng a(1, 2, RandomPurpose::kFirstName);
  Rng b(1, 2, RandomPurpose::kFirstName);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentPurposeDifferentSequence) {
  Rng a(1, 2, RandomPurpose::kFirstName);
  Rng b(1, 2, RandomPurpose::kLastName);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3, 4, RandomPurpose::kGender);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5, 6, RandomPurpose::kDegree);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(RngTest, BoundedUniformish) {
  Rng rng(7, 8, RandomPurpose::kIp);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.15);
  }
}

// ---- Distributions ----------------------------------------------------------

TEST(GeometricRankSamplerTest, RankZeroMostLikely) {
  Rng rng(1, 1, RandomPurpose::kInterests);
  GeometricRankSampler sampler(0.2, 50);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[0], 50000 / 10);
}

TEST(GeometricRankSamplerTest, StaysInDomain) {
  Rng rng(2, 2, RandomPurpose::kInterests);
  GeometricRankSampler sampler(0.01, 7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(sampler.Sample(rng), 7u);
  }
}

TEST(DiscreteSamplerTest, RespectsWeights) {
  Rng rng(3, 3, RandomPurpose::kLocation);
  DiscreteSampler sampler({1.0, 0.0, 3.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(BoundedParetoTest, WithinBoundsAndSkewed) {
  Rng rng(4, 4, RandomPurpose::kEventSpike);
  BoundedParetoSampler sampler(1.2, 1.0, 100.0);
  double below10 = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    double v = sampler.Sample(rng);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
    if (v < 10.0) ++below10;
  }
  EXPECT_GT(below10 / kDraws, 0.8);  // Heavy head.
}

TEST(ExponentialTest, MeanMatchesRate) {
  Rng rng(5, 5, RandomPurpose::kPostDate);
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += SampleExponential(rng, 0.5);
  EXPECT_NEAR(sum / kDraws, 2.0, 0.1);
}

// ---- Z-order ----------------------------------------------------------------

TEST(ZOrderTest, InterleavesBits) {
  EXPECT_EQ(MortonInterleave16(0, 0), 0u);
  EXPECT_EQ(MortonInterleave16(1, 0), 1u);
  EXPECT_EQ(MortonInterleave16(0, 1), 2u);
  EXPECT_EQ(MortonInterleave16(3, 3), 15u);
}

TEST(ZOrderTest, NearbyCoordinatesShareZOrder) {
  uint8_t berlin = ZOrder8(52.5, 13.4);
  uint8_t hamburg = ZOrder8(53.5, 10.0);
  uint8_t sydney = ZOrder8(-33.8, 151.2);
  EXPECT_EQ(berlin, hamburg);  // 4-bit quantization: same cell.
  EXPECT_NE(berlin, sydney);
}

TEST(ZOrderTest, StudyLocationKeyPacksFields) {
  uint32_t key = StudyLocationKey(0xAB, 0x123, 0x7D5);
  EXPECT_EQ(key >> 24, 0xABu);
  EXPECT_EQ((key >> 12) & 0xfff, 0x123u);
  EXPECT_EQ(key & 0xfff, 0x7D5u);
}

// ---- Datetime ----------------------------------------------------------------

TEST(DatetimeTest, NetworkStartFormats) {
  EXPECT_EQ(FormatTimestamp(kNetworkStartMs), "2010-01-01 00:00:00");
}

TEST(DatetimeTest, TimestampFromDateRoundTrips) {
  TimestampMs ts = TimestampFromDate(2012, 6, 15);
  EXPECT_EQ(FormatTimestamp(ts), "2012-06-15 00:00:00");
}

TEST(DatetimeTest, MonthIndexClampsAndCounts) {
  EXPECT_EQ(MonthIndex(kNetworkStartMs), 0);
  EXPECT_EQ(MonthIndex(kNetworkStartMs - 1), 0);
  EXPECT_EQ(MonthIndex(kNetworkStartMs + kMillisPerMonth), 1);
  EXPECT_EQ(MonthIndex(NetworkEndMs() + kMillisPerDay),
            kSimulationMonths - 1);
}

TEST(DatetimeTest, UpdateSplitIsFourMonthsBeforeEnd) {
  EXPECT_EQ(NetworkEndMs() - UpdateStreamStartMs(), 4 * kMillisPerMonth);
}

// ---- Histogram / stats --------------------------------------------------------

TEST(SampleStatsTest, BasicMoments) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.Variance(), 1.25);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
}

TEST(SampleStatsTest, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.Add(i);
  EXPECT_NEAR(stats.Percentile(50), 50.5, 0.5);
  EXPECT_NEAR(stats.Percentile(99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 100.0);
}

TEST(SampleStatsTest, MergeCombines) {
  SampleStats a, b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(SampleStatsTest, SumIsRunningAndExact) {
  SampleStats stats;
  EXPECT_DOUBLE_EQ(stats.Sum(), 0.0);
  stats.Add(1.5);
  stats.Add(2.5);
  EXPECT_DOUBLE_EQ(stats.Sum(), 4.0);
  SampleStats other;
  other.Add(6.0);
  stats.Merge(other);
  EXPECT_DOUBLE_EQ(stats.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), stats.Sum() / 3.0);
}

TEST(SampleStatsTest, LazySortInvalidatedByAddAndMerge) {
  SampleStats stats;
  for (double v : {5.0, 1.0, 3.0}) stats.Add(v);
  // Query once to trigger the sort, then mutate and query again: the new
  // extremes must be visible (the sorted cache was invalidated).
  EXPECT_DOUBLE_EQ(stats.Max(), 5.0);
  stats.Add(9.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 9.0);
  SampleStats lower;
  lower.Add(0.5);
  stats.Merge(lower);
  EXPECT_DOUBLE_EQ(stats.Min(), 0.5);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 0.5);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-1.0);
  h.Add(10.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
}

// ---- Thread pool ----------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelForRanges(1000, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelForRanges(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

// ---- Stopwatch --------------------------------------------------------------

TEST(StopwatchTest, ElapsedIsMonotoneAndResets) {
  Stopwatch watch;
  uint64_t a = watch.ElapsedNanos();
  uint64_t b = watch.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(watch.ElapsedMicros(), 0.0);
  watch.Reset();
  EXPECT_GE(watch.ElapsedNanos(), 0u);
}

// ---- String utils -------------------------------------------------------------------

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

}  // namespace
}  // namespace snb::util
