# Empty compiler generated dependencies file for bench_table4_query_mix.
# This may be replaced when dependencies are built.
