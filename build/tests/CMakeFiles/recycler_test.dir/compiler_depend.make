# Empty compiler generated dependencies file for recycler_test.
# This may be replaced when dependencies are built.
