// Negative-compilation case (ctest WILL_FAIL): an EpochPin cannot be
// conjured — the only way to obtain one is EpochManager::pin(), which
// actually enters the epoch. Default construction must not compile.
#include "util/epoch.h"

snb::util::EpochPin Forge() {
  snb::util::EpochPin pin;  // error: no default constructor
  return pin;
}
