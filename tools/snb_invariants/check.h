// Rule engine: evaluates declared reachability invariants over the
// direct-call graph.
//
// A rule is a domain ("signal_safe", "pinned_read", "lockfree", ...) with
// roots — functions carrying SNB_INVARIANT_ROOT tags for that domain,
// plus optional manifest-listed root globs — and one of two modes:
//
//   * allowlist: every function in the roots' transitive callee closure
//     must match an `allow` glob (async-signal-safety: the handler may
//     only ever reach an explicitly blessed set);
//   * denylist: no function in the closure may match a `deny` glob
//     (pin discipline / lock-freedom: the fast path must not reach
//     malloc / pthread_mutex_lock / ...).
//
// Indirect calls defeat static reachability, so they are conservative
// violations by default: any flagged indirect transfer inside the closure
// fails the rule unless the containing function matches an
// `indirect_allow` glob (the per-edge analogue of objtool's
// ANNOTATE_RETPOLINE_SAFE).
//
// Per-edge suppressions ("caller -> callee" glob pairs) cut individual
// edges out of the traversal; each requires a non-empty justification
// string in the manifest, and suppressions that matched nothing are
// surfaced as warnings so dead entries cannot accumulate.
//
// Every violation carries the shortest call path from a root to the
// offending node (BFS parent chain), which is the line a reader needs to
// either fix the code or write an honest suppression.
#ifndef SNB_TOOLS_INVARIANTS_CHECK_H_
#define SNB_TOOLS_INVARIANTS_CHECK_H_

#include <string>
#include <vector>

#include "snb_invariants/callgraph.h"
#include "snb_invariants/minitoml.h"

namespace snb::inv {

struct SuppressSpec {
  std::string caller;  // Glob over the caller's display/match name.
  std::string callee;  // Glob over the callee's display/match name.
  std::string justification;
};

struct RuleSpec {
  enum class Mode { kAllowlist, kDenylist };

  std::string name;  // == tag domain.
  Mode mode = Mode::kDenylist;
  std::vector<std::string> roots;  // Extra root globs (match names).
  std::vector<std::string> allow;
  std::vector<std::string> deny;
  bool indirect_forbid = true;
  std::vector<std::string> indirect_allow;
  std::vector<SuppressSpec> suppress;
};

struct Manifest {
  std::string schema;
  std::vector<RuleSpec> rules;
};

/// Interprets a parsed TOML document as a manifest. Unknown keys, missing
/// mode lists, and suppressions without a justification are hard errors.
bool InterpretManifest(const toml::Value& doc, Manifest* out,
                       std::string* error);

/// Convenience: parse text then interpret.
bool ParseManifest(const std::string& text, Manifest* out,
                   std::string* error);

struct Violation {
  enum class Kind {
    kForbiddenSymbol,   // Denylist hit.
    kOutsideAllowlist,  // Allowlist miss.
    kIndirectCall,      // Unvetted indirect transfer in the closure.
    kMissingRoot,       // Tag present but function absent from the binary.
  };

  std::string rule;
  Kind kind = Kind::kForbiddenSymbol;
  std::vector<std::string> path;  // Display names, root first.
  std::string detail;             // Matched pattern / site text.
};

struct CheckResult {
  std::vector<Violation> violations;
  std::vector<std::string> warnings;  // Unused suppressions, skipped rules.
  std::vector<std::string> notes;     // Per-rule closure statistics.
};

struct CheckOptions {
  /// Downgrade kMissingRoot to a warning (exploratory runs on binaries
  /// that never odr-anchor the inline roots, e.g. benchmark_run).
  bool allow_inlined_roots = false;
};

/// Evaluates every manifest rule against one binary's graph and tags.
/// Rules whose domain has no tag and no matching extra root in this
/// binary are skipped with a warning (the fixtures share one manifest).
CheckResult CheckBinary(const CallGraph& graph,
                        const std::vector<RootTag>& tags,
                        const Manifest& manifest,
                        const CheckOptions& options);

/// Human-readable rendering of one violation (multi-line, indented path).
std::string FormatViolation(const Violation& v);

const char* ViolationKindName(Violation::Kind kind);

}  // namespace snb::inv

#endif  // SNB_TOOLS_INVARIANTS_CHECK_H_
