# Empty compiler generated dependencies file for bench_algorithms_workload.
# This may be replaced when dependencies are built.
