// Histograms and summary statistics used by benches and the metrics layer.
#ifndef SNB_UTIL_HISTOGRAM_H_
#define SNB_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace snb::util {

/// Accumulates double-valued samples; computes mean/variance/percentiles.
/// Exact (retains every sample) — the reference the log-bucketed obs
/// histograms are tested against. Not thread-safe; aggregate per-thread
/// instances with Merge().
///
/// Order statistics (Min/Max/Percentile) sort the sample buffer in place
/// once and reuse it until the next Add/Merge invalidates it, so a burst of
/// percentile reads after a run costs one sort, not one per call.
class SampleStats {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sum_ += v;
    sorted_ = false;
  }

  void Merge(const SampleStats& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  /// Running sum of all samples; O(1).
  double Sum() const { return sum_; }

  double Mean() const {
    return samples_.empty()
               ? 0.0
               : sum_ / static_cast<double>(samples_.size());
  }

  /// Population variance.
  double Variance() const {
    if (samples_.size() < 2) return 0.0;
    double m = Mean();
    double acc = 0.0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return acc / static_cast<double>(samples_.size());
  }

  double StdDev() const { return std::sqrt(Variance()); }

  double Min() const {
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    return samples_.front();
  }

  double Max() const {
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    return samples_.back();
  }

  /// p in [0, 100]. Nearest-rank percentile with linear interpolation.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t idx = static_cast<size_t>(rank);
    if (idx + 1 >= samples_.size()) return samples_.back();
    double frac = rank - static_cast<double>(idx);
    return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
  }

  /// Sample buffer; sorted ascending iff an order statistic was queried
  /// since the last Add/Merge (insertion order is not preserved).
  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const {
    if (sorted_) return;
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    assert(hi > lo && buckets > 0);
  }

  void Add(double v) {
    if (v < lo_) {
      ++underflow_;
      return;
    }
    if (v >= hi_) {
      ++overflow_;
      return;
    }
    size_t idx = static_cast<size_t>((v - lo_) / (hi_ - lo_) *
                                     static_cast<double>(counts_.size()));
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
  }

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  /// Inclusive lower edge of bucket i.
  double BucketLow(size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

  uint64_t TotalCount() const {
    uint64_t total = underflow_ + overflow_;
    for (uint64_t c : counts_) total += c;
    return total;
  }

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

}  // namespace snb::util

#endif  // SNB_UTIL_HISTOGRAM_H_
