// Tests of the snb::obs subsystem: log-bucket histogram accuracy against
// exact sample statistics, lock-free registry semantics under concurrency
// (run under TSan via scripts/check.sh), TraceSpan engagement, the
// report.json writer/parser round trip, and the Q9 operator profile's
// consistency with the plan's cardinality counters.
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "queries/complex_queries.h"
#include "queries/query9_plans.h"
#include "store/graph_store.h"
#include "util/datetime.h"
#include "util/histogram.h"

namespace snb::obs {
namespace {

// ---- Log buckets ----------------------------------------------------------

TEST(LogBucketsTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 2 * LogBuckets::kSubBuckets; ++v) {
    size_t b = LogBuckets::BucketFor(v);
    EXPECT_EQ(LogBuckets::BucketMid(b), v);
    EXPECT_EQ(LogBuckets::BucketLow(b), v);
  }
}

TEST(LogBucketsTest, MidpointWithinRelativeErrorBound) {
  // Bucket width is at most 1/16 of its lower edge, so the midpoint is
  // within 1/32 (~3.2%) of any sample in the bucket.
  for (uint64_t v = 32; v < (uint64_t{1} << 40); v = v * 29 / 16 + 3) {
    size_t b = LogBuckets::BucketFor(v);
    ASSERT_LT(b, LogBuckets::kNumBuckets);
    uint64_t low = LogBuckets::BucketLow(b);
    EXPECT_LE(low, v);
    uint64_t mid = LogBuckets::BucketMid(b);
    double rel = std::abs(static_cast<double>(mid) - static_cast<double>(v)) /
                 static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / 32.0 + 1e-9) << "v=" << v << " bucket=" << b;
  }
}

TEST(LogBucketsTest, BucketsAreMonotone) {
  size_t prev = LogBuckets::BucketFor(0);
  for (uint64_t v = 1; v < (uint64_t{1} << 20); v = v + 1 + v / 7) {
    size_t b = LogBuckets::BucketFor(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
  // Saturation: absurd values land in the last bucket, not out of range.
  EXPECT_EQ(LogBuckets::BucketFor(~uint64_t{0}), LogBuckets::kNumBuckets - 1);
}

// ---- Registry exactness ---------------------------------------------------

TEST(MetricsRegistryTest, CountSumMinMaxExact) {
  MetricsRegistry registry;
  registry.RecordLatencyNs(OpType::kComplexQ1, 100);
  registry.RecordLatencyNs(OpType::kComplexQ1, 900);
  registry.RecordLatencyNs(OpType::kComplexQ1, 500);
  MetricsSnapshot snap = registry.Snapshot();
  const OpSnapshot& op = snap.Op(OpType::kComplexQ1);
  EXPECT_EQ(op.count, 3u);
  EXPECT_EQ(op.sum_ns, 1500u);
  EXPECT_EQ(op.min_ns, 100u);
  EXPECT_EQ(op.max_ns, 900u);
  EXPECT_DOUBLE_EQ(op.MeanUs(), 0.5);
  // Untouched series stay zeroed (min sentinel must not leak).
  EXPECT_EQ(snap.Op(ComplexOp(2)).count, 0u);
  EXPECT_EQ(snap.Op(ComplexOp(2)).min_ns, 0u);
}

TEST(MetricsRegistryTest, SumMicrosAndCountInRange) {
  MetricsRegistry registry;
  registry.RecordLatencyMicros(ComplexOp(1), 100.0);
  registry.RecordLatencyMicros(ComplexOp(14), 200.0);
  registry.RecordLatencyMicros(ShortOp(1), 50.0);
  registry.RecordLatencyMicros(UpdateOp(8), 25.0);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.SumMicros(kComplexBegin, kShortBegin), 300.0);
  EXPECT_DOUBLE_EQ(snap.SumMicros(kShortBegin, kUpdateBegin), 50.0);
  EXPECT_DOUBLE_EQ(snap.SumMicros(kUpdateBegin, kUpdateBegin + 8), 25.0);
  EXPECT_EQ(snap.CountInRange(kComplexBegin, kShortBegin), 2u);
  EXPECT_EQ(snap.CountInRange(0, kNumOpTypes), 4u);
}

TEST(MetricsRegistryTest, CountersAccumulateGaugesOverwrite) {
  MetricsRegistry registry;
  registry.AddCounter(Counter::kOperationsExecuted);
  registry.AddCounter(Counter::kOperationsExecuted, 41);
  registry.SetGauge(Gauge::kEpochPending, 7);
  registry.SetGauge(Gauge::kEpochPending, 3);  // Last write wins.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue(Counter::kOperationsExecuted), 42u);
  EXPECT_EQ(snap.CounterValue(Counter::kOperationsFailed), 0u);
  EXPECT_EQ(snap.GaugeValue(Gauge::kEpochPending), 3u);
}

// Percentiles from bucket midpoints vs. the exact (sample-retaining)
// statistics the old recorder kept: within the bucket error bound, i.e.
// well under 5% relative error, across a skewed distribution.
TEST(MetricsRegistryTest, PercentilesTrackExactStatsWithin5Percent) {
  MetricsRegistry registry;
  util::SampleStats exact;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 20000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    // Latencies spanning ~1us .. ~16ms with a long tail, like a query mix.
    uint64_t ns = 1000 + (state % 1000) * (state % 16384);
    registry.RecordLatencyNs(OpType::kPointRead, ns);
    exact.Add(static_cast<double>(ns) / 1000.0);  // us.
  }
  MetricsSnapshot snap = registry.Snapshot();
  const OpSnapshot& op = snap.Op(OpType::kPointRead);
  ASSERT_EQ(op.count, 20000u);
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    double approx = op.PercentileUs(p);
    double truth = exact.Percentile(p);
    EXPECT_NEAR(approx, truth, truth * 0.05) << "p" << p;
  }
  // Percentiles are monotone and bounded by the exact extremes' buckets.
  EXPECT_LE(op.PercentileUs(50), op.PercentileUs(90));
  EXPECT_LE(op.PercentileUs(90), op.PercentileUs(99));
  EXPECT_LE(op.PercentileUs(99), op.PercentileUs(100));
  EXPECT_NEAR(op.PercentileUs(100), exact.Max(), exact.Max() * 0.05);
}

// 8 recorder threads + concurrent snapshots; every pre-join sample must be
// merged exactly once. This is the TSan target for the lock-free path.
TEST(MetricsRegistryTest, ConcurrentRecordAndSnapshot) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      OpType op = ComplexOp(1 + (t % 14));
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        registry.RecordLatencyNs(op, 100 + (i & 0xff));
        registry.AddCounter(Counter::kOperationsExecuted);
      }
    });
  }
  // Snapshot while recording is in flight: totals may be partial but must
  // never be torn below what simple monotonicity allows.
  uint64_t last_total = 0;
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot mid = registry.Snapshot();
    uint64_t total = mid.CountInRange(kComplexBegin, kShortBegin);
    EXPECT_GE(total, last_total);
    last_total = total;
  }
  for (std::thread& w : workers) w.join();
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CountInRange(kComplexBegin, kShortBegin),
            kThreads * kPerThread);
  EXPECT_EQ(snap.CounterValue(Counter::kOperationsExecuted),
            kThreads * kPerThread);
  uint64_t sum = 0;
  for (size_t i = kComplexBegin; i < kShortBegin; ++i) {
    sum += snap.ops[i].sum_ns;
    if (snap.ops[i].count > 0) {
      EXPECT_EQ(snap.ops[i].min_ns, 100u);  // i & 0xff == 0 at i = 256.
      EXPECT_EQ(snap.ops[i].max_ns, 100u + 0xff);
    }
  }
  // Per-thread sum of (100 + (i & 0xff)) over i in [1, 20000].
  uint64_t expected_per_thread = 0;
  for (uint64_t i = 1; i <= kPerThread; ++i) expected_per_thread += 100 + (i & 0xff);
  EXPECT_EQ(sum, kThreads * expected_per_thread);
}

TEST(MetricsRegistryTest, NamesAreStable) {
  EXPECT_STREQ(OpTypeName(ComplexOp(9)), "complex.Q9");
  EXPECT_STREQ(OpTypeName(ShortOp(2)), "short.S2");
  EXPECT_STREQ(OpTypeName(UpdateOp(8)), "update.U8");
  EXPECT_STREQ(OpTypeName(OpType::kSchedLag), "driver.sched_lag");
  EXPECT_STREQ(CounterName(Counter::kGctDependentWaits),
               "driver.gct_dependent_waits");
  EXPECT_STREQ(GaugeName(Gauge::kRecyclerEvictions), "recycler.evictions");
}

// ---- TraceSpan ------------------------------------------------------------

TEST(TraceSpanTest, AccumulatesIntoSink) {
  OperatorStats stats;
  {
    TraceSpan span(&stats);
    EXPECT_TRUE(span.engaged());
    span.AddRows(5);
    span.AddRows(2);
  }
  {
    TraceSpan span(&stats);
    span.AddRows(3);
  }
  EXPECT_EQ(stats.invocations, 2u);
  EXPECT_EQ(stats.rows, 10u);
  EXPECT_GT(stats.time_ns, 0u);

  OperatorStats other;
  other.invocations = 1;
  other.rows = 90;
  other.time_ns = 1000;
  stats.Merge(other);
  EXPECT_EQ(stats.invocations, 3u);
  EXPECT_EQ(stats.rows, 100u);
}

TEST(TraceSpanTest, NullSinkIsDisengaged) {
  TraceSpan span(nullptr);
  EXPECT_FALSE(span.engaged());
  span.AddRows(7);  // Must be a harmless no-op.
  TraceSpan default_constructed;
  EXPECT_FALSE(default_constructed.engaged());
}

// ---- JSON parser ----------------------------------------------------------

TEST(JsonParserTest, ParsesWriterSubset) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"s":"a\"b\nc","n":[1,2.5,-3e2],"t":true,"f":false,"z":null})", &v,
      &error))
      << error;
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  const JsonValue* s = v.Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, "a\"b\nc");
  const JsonValue* n = v.Find("n");
  ASSERT_NE(n, nullptr);
  ASSERT_EQ(n->array.size(), 3u);
  EXPECT_DOUBLE_EQ(n->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(n->array[2].number, -300.0);
  EXPECT_TRUE(v.Find("t")->boolean);
  EXPECT_EQ(v.Find("z")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  for (const char* bad :
       {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "{}extra", ""}) {
    EXPECT_FALSE(ParseJson(bad, &v, &error)) << bad;
    EXPECT_FALSE(error.empty());
  }
}

// ---- Report round trip ----------------------------------------------------

RunReport MakeSampleReport() {
  MetricsRegistry registry;
  for (int i = 1; i <= 200; ++i) {
    registry.RecordLatencyMicros(ComplexOp(9), 100.0 * i);
    registry.RecordLatencyMicros(ShortOp(1), 5.0);
  }
  registry.AddCounter(Counter::kOperationsExecuted, 400);
  registry.SetGauge(Gauge::kEpochAdvances, 12);

  RunReport report;
  report.title = "unit-test run";
  report.metrics = registry.Snapshot();
  report.has_driver = true;
  report.driver.operations_executed = 400;
  report.driver.elapsed_seconds = 1.5;
  report.driver.ops_per_second = 400 / 1.5;
  report.driver.max_schedule_lag_ms = 42.0;
  report.driver.sustained = true;
  report.driver.lag_timeline_ms = {{0.0, 1.0}, {1.0, 42.0}};
  report.has_q9_profile = true;
  report.q9_profile.plan = "INL-INL-HASH (intended)";
  OperatorEntry entry;
  entry.name = "join1_friends";
  entry.stats.invocations = 200;
  entry.stats.time_ns = 5000000;
  entry.stats.rows = 2400;
  report.q9_profile.operators.push_back(entry);
  return report;
}

TEST(ReportTest, JsonRoundTripPreservesStructure) {
  RunReport report = MakeSampleReport();
  std::string json = ToJson(report);

  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &v, &error)) << error;
  EXPECT_EQ(v.Find("schema")->string, "snb-report-v5");
  EXPECT_EQ(v.Find("title")->string, "unit-test run");

  const JsonValue* ops = v.Find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_EQ(ops->array.size(), 2u);  // Zero-count ops omitted.
  const JsonValue& q9 = ops->array[0];
  EXPECT_EQ(q9.Find("op")->string, "complex.Q9");
  EXPECT_DOUBLE_EQ(q9.Find("count")->number, 200.0);
  // p50 of 100us..20000us uniform ~ 10000us = 10ms (bucket error only).
  EXPECT_NEAR(q9.Find("p50_ms")->number, 10.0, 0.5);
  EXPECT_NEAR(q9.Find("max_ms")->number, 20.0, 1.0);

  const JsonValue* driver = v.Find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_DOUBLE_EQ(driver->Find("operations_executed")->number, 400.0);
  EXPECT_TRUE(driver->Find("sustained")->boolean);
  ASSERT_EQ(driver->Find("lag_timeline_ms")->array.size(), 2u);

  const JsonValue* profile = v.Find("q9_profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->Find("plan")->string, "INL-INL-HASH (intended)");
  ASSERT_EQ(profile->Find("operators")->array.size(), 1u);
  EXPECT_EQ(profile->Find("operators")->array[0].Find("name")->string,
            "join1_friends");

  EXPECT_TRUE(ValidateReportJson(json).ok());
}

TEST(ReportTest, CountersAndGaugesSerialized) {
  std::string json = ToJson(MakeSampleReport());
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &v, &error)) << error;
  const JsonValue* counters = v.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* executed = counters->Find("driver.operations_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_DOUBLE_EQ(executed->number, 400.0);
  const JsonValue* gauges = v.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("epoch.advances")->number, 12.0);
}

TEST(ReportTest, ValidationCatchesBrokenReports) {
  // Not the schema.
  EXPECT_FALSE(ValidateReportJson("{\"schema\":\"other\"}").ok());
  // Parse error.
  EXPECT_FALSE(ValidateReportJson("{").ok());
  // Empty ops table.
  EXPECT_FALSE(
      ValidateReportJson("{\"schema\":\"snb-report-v1\",\"ops\":[]}").ok());
  // Non-monotone percentiles.
  EXPECT_FALSE(ValidateReportJson(
                   "{\"schema\":\"snb-report-v1\",\"ops\":[{\"op\":\"x\","
                   "\"count\":2,\"p50_ms\":5.0,\"p90_ms\":1.0,"
                   "\"p95_ms\":6.0,\"p99_ms\":7.0,\"max_ms\":8.0}]}")
                   .ok());
  // Zero-count row.
  EXPECT_FALSE(ValidateReportJson(
                   "{\"schema\":\"snb-report-v1\",\"ops\":[{\"op\":\"x\","
                   "\"count\":0,\"p50_ms\":1.0,\"p90_ms\":1.0,"
                   "\"p95_ms\":1.0,\"p99_ms\":1.0,\"max_ms\":1.0}]}")
                   .ok());
}

TEST(ReportTest, PrometheusTextExposesSeries) {
  RunReport report = MakeSampleReport();
  std::string text = ToPrometheusText(report.metrics);
  EXPECT_NE(text.find("snb_op_count{op=\"complex.Q9\"} 200"),
            std::string::npos);
  EXPECT_NE(text.find("snb_op_latency_ms{op=\"complex.Q9\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("snb_counter{name=\"driver.operations_executed\"} 400"),
            std::string::npos);
  EXPECT_NE(text.find("snb_gauge{name=\"epoch.advances\"} 12"),
            std::string::npos);
}

// Per the Prometheus text exposition format, label values must escape
// backslash, double quote and newline — and nothing else.
TEST(ReportTest, PrometheusLabelEscaping) {
  EXPECT_EQ(EscapePromLabelValue("plain.value"), "plain.value");
  EXPECT_EQ(EscapePromLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapePromLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapePromLabelValue("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapePromLabelValue("\\\"\n"), "\\\\\\\"\\n");
  // A hostile value in the dump stays on one line and keeps its quotes
  // balanced: the exposition must still parse line-by-line.
  std::string hostile = "evil\"} 1\nsnb_injected{x=\"";
  std::string escaped = EscapePromLabelValue(hostile);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped, "evil\\\"} 1\\nsnb_injected{x=\\\"");
}

// ---- Compliance section ---------------------------------------------------

ComplianceSection MakeCompliance() {
  ComplianceSection c;
  c.window_ms = 100.0;
  c.required_on_time_fraction = 0.95;
  c.scheduled_ops = 1000;
  c.on_time_ops = 970;
  c.on_time_fraction = 0.97;
  c.passed = true;
  c.lateness_histogram_ms = {{0.0, 900}, {50.0, 70}, {200.0, 30}};
  c.per_op = {{"update.U7", 600, 25, 350.5}, {"complex.Q9", 400, 5, 120.0}};
  return c;
}

TEST(ReportTest, ComplianceSectionRoundTrip) {
  RunReport report = MakeSampleReport();
  report.has_compliance = true;
  report.compliance = MakeCompliance();
  std::string json = ToJson(report);
  EXPECT_TRUE(ValidateReportJson(json).ok());

  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &v, &error)) << error;
  const JsonValue* c = v.Find("compliance");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->Find("window_ms")->number, 100.0);
  EXPECT_DOUBLE_EQ(c->Find("required_on_time_fraction")->number, 0.95);
  EXPECT_DOUBLE_EQ(c->Find("scheduled_ops")->number, 1000.0);
  EXPECT_DOUBLE_EQ(c->Find("on_time_ops")->number, 970.0);
  EXPECT_TRUE(c->Find("passed")->boolean);
  const JsonValue* hist = c->Find("lateness_histogram_ms");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->array.size(), 3u);
  EXPECT_DOUBLE_EQ(hist->array[1].array[0].number, 50.0);
  EXPECT_DOUBLE_EQ(hist->array[1].array[1].number, 70.0);
  const JsonValue* worst = c->Find("worst_offenders");
  ASSERT_NE(worst, nullptr);
  ASSERT_EQ(worst->array.size(), 2u);
  EXPECT_EQ(worst->array[0].Find("op")->string, "update.U7");
  EXPECT_DOUBLE_EQ(worst->array[0].Find("max_late_ms")->number, 350.5);
}

TEST(ReportTest, ValidationChecksComplianceConsistency) {
  RunReport report = MakeSampleReport();
  report.has_compliance = true;

  // On-time count exceeding the scheduled count is structural corruption.
  report.compliance = MakeCompliance();
  report.compliance.on_time_ops = 2000;
  EXPECT_FALSE(ValidateReportJson(ToJson(report)).ok());

  // Fraction outside [0, 1].
  report.compliance = MakeCompliance();
  report.compliance.on_time_fraction = 1.5;
  EXPECT_FALSE(ValidateReportJson(ToJson(report)).ok());

  // Histogram must account for every scheduled operation.
  report.compliance = MakeCompliance();
  report.compliance.lateness_histogram_ms = {{0.0, 1}};
  EXPECT_FALSE(ValidateReportJson(ToJson(report)).ok());
}

TEST(ReportTest, ValidatorStillAcceptsV1Documents) {
  // A v1 reader's document — no compliance section, old schema tag — must
  // keep validating, so archived baselines stay comparable.
  EXPECT_TRUE(ValidateReportJson(
                  "{\"schema\":\"snb-report-v1\",\"ops\":[{\"op\":\"x\","
                  "\"count\":2,\"p50_ms\":1.0,\"p90_ms\":2.0,"
                  "\"p95_ms\":3.0,\"p99_ms\":4.0,\"max_ms\":5.0}]}")
                  .ok());
}

// ---- Profile section (v5) -------------------------------------------------

/// A structurally valid v5 profile section to perturb per invariant.
ProfileSection MakeProfile() {
  ProfileSection p;
  p.backend = "timer";
  p.message = "sampling live";
  p.interval_us = 997;
  p.captured = 100;
  p.attributed = 90;
  p.unattributed = 8;
  p.dropped = 2;
  p.self_overhead_ns = 50'000;
  p.task_clock_ns = 500'000'000;
  p.threads = 5;
  ProfileSection::OpFrames op;
  op.op = "complex.Q9";
  op.samples = 90;
  op.frames.push_back({"snb::queries::Query9WithPlan", 60});
  op.frames.push_back({"snb::store::MessageIndex::Scan", 30});
  p.top_frames.push_back(op);
  return p;
}

TEST(ReportTest, ProfileSectionRoundTrip) {
  RunReport report = MakeSampleReport();
  report.has_profile = true;
  report.profile = MakeProfile();
  std::string json = ToJson(report);
  ASSERT_TRUE(ValidateReportJson(json).ok()) << json.substr(0, 300);

  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &v, &error)) << error;
  const JsonValue* profile = v.Find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->Find("backend")->string, "timer");
  EXPECT_DOUBLE_EQ(profile->Find("captured")->number, 100.0);
  EXPECT_DOUBLE_EQ(profile->Find("self_overhead_ns")->number, 50'000.0);
  const JsonValue* top = profile->Find("top_frames");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->array.size(), 1u);
  EXPECT_EQ(top->array[0].Find("op")->string, "complex.Q9");
  ASSERT_EQ(top->array[0].Find("frames")->array.size(), 2u);
  EXPECT_EQ(top->array[0].Find("frames")->array[0].Find("frame")->string,
            "snb::queries::Query9WithPlan");
}

TEST(ReportTest, ValidatorRejectsUnconservedProfileAccounting) {
  RunReport report = MakeSampleReport();
  report.has_profile = true;
  report.profile = MakeProfile();
  report.profile.attributed = 50;  // 50 + 8 + 2 != 100.
  util::Status status = ValidateReportJson(ToJson(report));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("captured == attributed"),
            std::string::npos)
      << status.ToString();
}

TEST(ReportTest, ValidatorRejectsOverheadExceedingTaskClock) {
  RunReport report = MakeSampleReport();
  report.has_profile = true;
  report.profile = MakeProfile();
  // Handler time is a subset of sampled CPU time; more is impossible.
  report.profile.self_overhead_ns = report.profile.task_clock_ns + 1;
  util::Status status = ValidateReportJson(ToJson(report));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("task clock"), std::string::npos)
      << status.ToString();
}

TEST(ReportTest, ValidatorRejectsUnknownProfileBackend) {
  RunReport report = MakeSampleReport();
  report.has_profile = true;
  report.profile = MakeProfile();
  report.profile.backend = "quantum";
  EXPECT_FALSE(ValidateReportJson(ToJson(report)).ok());
}

TEST(ReportTest, ValidatorRejectsSamplesUnderNoopBackend) {
  RunReport report = MakeSampleReport();
  report.has_profile = true;
  report.profile = MakeProfile();
  // A no-op backend cannot have captured anything: fabricated samples.
  report.profile.backend = "noop";
  util::Status status = ValidateReportJson(ToJson(report));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("non-timer"), std::string::npos)
      << status.ToString();

  // The degradation shape CI actually produces — noop with all-zero
  // accounting — stays valid.
  report.profile = ProfileSection();
  report.profile.backend = "noop";
  report.profile.message = "forced no-op (SNB_PROF_FORCE_NOOP)";
  EXPECT_TRUE(ValidateReportJson(ToJson(report)).ok());
}

TEST(ReportTest, ValidatorRejectsMalformedTopFrames) {
  RunReport report = MakeSampleReport();
  report.has_profile = true;
  report.profile = MakeProfile();
  report.profile.top_frames[0].frames.clear();  // Op row with no frames.
  EXPECT_FALSE(ValidateReportJson(ToJson(report)).ok());
}

TEST(ReportTest, MakeProfileSectionRanksLeafFramesPerOp) {
  prof::FoldedProfile folded;
  folded.backend = prof::Backend::kTimer;
  folded.message = "sampling live";
  folded.interval_us = 997;
  folded.accounting.captured = 60;
  folded.accounting.attributed = 50;
  folded.accounting.unattributed = 10;
  folded.accounting.threads = 2;
  auto stack = [](const char* lane, const char* op,
                  std::vector<std::string> frames, uint64_t count) {
    prof::FoldedStack s;
    s.lane = lane;
    s.op = op;
    s.frames = std::move(frames);
    s.count = count;
    return s;
  };
  // Two stacks share the leaf "Scan" under Q9 (different callers), so
  // its self-samples merge: 20 + 15 = 35, ranking above "Sort" (15).
  folded.stacks.push_back(stack("d.0", "complex.Q9", {"main", "Scan"}, 20));
  folded.stacks.push_back(stack("d.1", "complex.Q9", {"run", "Scan"}, 15));
  folded.stacks.push_back(stack("d.0", "complex.Q9", {"main", "Sort"}, 15));
  folded.stacks.push_back(stack("d.0", "", {"main", "Wait"}, 10));

  ProfileSection p = MakeProfileSection(folded, /*top_n=*/2);
  EXPECT_EQ(p.backend, "timer");
  EXPECT_EQ(p.captured, 60u);
  ASSERT_EQ(p.top_frames.size(), 2u);
  // Ops ranked by total samples: Q9 (50) before unattributed (10).
  EXPECT_EQ(p.top_frames[0].op, "complex.Q9");
  EXPECT_EQ(p.top_frames[0].samples, 50u);
  ASSERT_EQ(p.top_frames[0].frames.size(), 2u);
  EXPECT_EQ(p.top_frames[0].frames[0].frame, "Scan");
  EXPECT_EQ(p.top_frames[0].frames[0].samples, 35u);
  EXPECT_EQ(p.top_frames[0].frames[1].frame, "Sort");
  EXPECT_EQ(p.top_frames[0].frames[1].samples, 15u);
  EXPECT_EQ(p.top_frames[1].op, "(unattributed)");

  // The emitted JSON validates as a v5 document end to end.
  RunReport report = MakeSampleReport();
  report.has_profile = true;
  report.profile = p;
  EXPECT_TRUE(ValidateReportJson(ToJson(report)).ok());
}

// ---- TraceBuffer ----------------------------------------------------------

// Chrome-trace validation helper: walks traceEvents and checks, per lane,
// strictly matched B/E pairs with non-decreasing timestamps.
void CheckChromeTrace(const std::string& json, size_t* out_spans) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &v, &error)) << error;
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  std::map<int, int> open_per_lane;
  std::map<int, double> last_ts;
  size_t spans = 0;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.Find("ph")->string;
    if (ph == "M") continue;  // Metadata carries no timestamp.
    ASSERT_TRUE(ph == "B" || ph == "E") << ph;
    int lane = static_cast<int>(e.Find("tid")->number);
    double ts = e.Find("ts")->number;
    auto [it, fresh] = last_ts.emplace(lane, ts);
    if (!fresh) {
      EXPECT_GE(ts, it->second) << "lane " << lane;
      it->second = ts;
    }
    if (ph == "B") {
      ASSERT_NE(e.Find("name"), nullptr);
      ++open_per_lane[lane];
      ++spans;
    } else {
      ASSERT_GT(open_per_lane[lane], 0) << "E without B on lane " << lane;
      --open_per_lane[lane];
    }
  }
  for (const auto& [lane, open] : open_per_lane) {
    EXPECT_EQ(open, 0) << "unclosed span on lane " << lane;
  }
  if (out_spans != nullptr) *out_spans = spans;
}

TEST(TraceBufferTest, MultiThreadExportIsWellFormedChromeTrace) {
  TraceBuffer buffer;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&buffer, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        TraceEvent event;
        event.op = ComplexOp(1 + ((t + i) % 14));
        event.exec_begin_ns = buffer.NowNs();
        if (i % 3 == 0) {
          // Simulate a T_GC wait preceding execution.
          event.gct_begin_ns =
              event.exec_begin_ns > 500 ? event.exec_begin_ns - 500 : 0;
          event.gct_wait_ns = 400;
        }
        if (i % 2 == 0) {
          event.sched_ns = static_cast<int64_t>(event.exec_begin_ns) - 100;
        }
        event.end_ns = event.exec_begin_ns + 1000 + i;
        buffer.Record(event);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(buffer.recorded(), kThreads * kOpsPerThread);
  EXPECT_EQ(buffer.dropped(), 0u);
  ASSERT_EQ(buffer.Events().size(), kThreads * kOpsPerThread);

  size_t spans = 0;
  CheckChromeTrace(ToChromeTraceJson(buffer), &spans);
  // Every op span, plus one gct_wait sub-span per i%3==0 event.
  size_t gct_spans = 0;
  for (const TraceEvent& e : buffer.Events()) {
    if (e.gct_wait_ns > 0) ++gct_spans;
  }
  EXPECT_EQ(spans, kThreads * kOpsPerThread + gct_spans);
}

TEST(TraceBufferTest, RingBoundOverwritesOldestAndCounts) {
  TraceBuffer buffer(/*events_per_lane=*/16);
  for (int i = 0; i < 100; ++i) {
    TraceEvent event;
    event.op = ShortOp(1);
    event.exec_begin_ns = static_cast<uint64_t>(i) * 10;
    event.end_ns = event.exec_begin_ns + 5;
    buffer.Record(event);
  }
  EXPECT_EQ(buffer.recorded(), 100u);
  EXPECT_EQ(buffer.dropped(), 84u);  // 100 - 16 retained.
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 16u);
  // The retained window is the *tail* of the run.
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.exec_begin_ns, 84u * 10);
  }
  CheckChromeTrace(ToChromeTraceJson(buffer), nullptr);
}

TEST(TraceBufferTest, PerLaneStatsAccountForEveryRecordedEvent) {
  TraceBuffer buffer(/*events_per_lane=*/8);
  constexpr int kThreads = 3;
  const int counts[kThreads] = {4, 8, 30};  // Under, at, past the ring bound.
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&buffer, n = counts[t]] {
      for (int i = 0; i < n; ++i) {
        TraceEvent event;
        event.op = ShortOp(1);
        event.exec_begin_ns = static_cast<uint64_t>(i) * 10;
        event.end_ns = event.exec_begin_ns + 5;
        buffer.Record(event);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<TraceBuffer::LaneStats> lanes = buffer.PerLaneStats();
  ASSERT_EQ(lanes.size(), static_cast<size_t>(kThreads));
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  for (const TraceBuffer::LaneStats& lane : lanes) {
    EXPECT_EQ(lane.recorded, lane.retained + lane.dropped)
        << "lane " << lane.lane;
    EXPECT_LE(lane.retained, 8u);
    recorded += lane.recorded;
    dropped += lane.dropped;
  }
  // Lane rows must sum to the aggregate counters: no event unaccounted.
  EXPECT_EQ(recorded, buffer.recorded());
  EXPECT_EQ(dropped, buffer.dropped());
  EXPECT_EQ(recorded, 42u);
  EXPECT_EQ(dropped, 22u);  // Only the 30-event lane wraps: 30 - 8.
}

TEST(TraceBufferTest, SchedArgsOnlyOnScheduledOps) {
  TraceBuffer buffer;
  TraceEvent scheduled;
  scheduled.op = UpdateOp(7);
  scheduled.sched_ns = 1'000'000;
  scheduled.exec_begin_ns = 3'500'000;
  scheduled.end_ns = 4'000'000;
  buffer.Record(scheduled);
  TraceEvent unscheduled;
  unscheduled.op = ShortOp(2);
  unscheduled.exec_begin_ns = 5'000'000;
  unscheduled.end_ns = 6'000'000;
  buffer.Record(unscheduled);

  std::string json = ToChromeTraceJson(buffer);
  CheckChromeTrace(json, nullptr);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &v, &error)) << error;
  int with_args = 0;
  for (const JsonValue& e : v.Find("traceEvents")->array) {
    if (e.Find("ph")->string != "B") continue;
    const JsonValue* args = e.Find("args");
    if (e.Find("name")->string == OpTypeName(UpdateOp(7))) {
      ASSERT_NE(args, nullptr);
      // 3.5ms actual - 1.0ms scheduled = 2.5ms lag (exact at the %.3f
      // precision the exporter prints args with).
      EXPECT_NEAR(args->Find("lag_ms")->number, 2.5, 1e-9);
      EXPECT_NEAR(args->Find("sched_ms")->number, 1.0, 1e-9);
      ++with_args;
    } else {
      EXPECT_EQ(args, nullptr) << e.Find("name")->string;
    }
  }
  EXPECT_EQ(with_args, 1);
}

// ---- Q9 operator profile --------------------------------------------------

TEST(Q9ProfileTest, ProfileConsistentWithPlanStats) {
  datagen::DatagenConfig config;
  config.num_persons = 250;
  config.split_update_stream = false;
  datagen::Dataset dataset = datagen::Generate(config);
  store::GraphStore store;
  ASSERT_TRUE(store.BulkLoad(dataset.bulk).ok());
  util::TimestampMs max_date =
      util::kNetworkStartMs + 30 * util::kMillisPerMonth;

  queries::Q9OperatorProfile inl_profile;
  queries::Q9OperatorProfile hash_profile;
  queries::Q9PlanStats stats_sum{};
  int executions = 0;
  std::vector<schema::PersonId> person_ids;
  {
    auto pin = store.ReadLock();
    person_ids = store.PersonIds(pin);
  }
  for (schema::PersonId p : person_ids) {
    if (p % 23 != 0) continue;
    queries::Q9PlanStats s{};
    std::vector<queries::Q9Result> with_profile = queries::Query9WithPlan(
        store, p, max_date, 20, queries::JoinStrategy::kIndexNestedLoop,
        queries::JoinStrategy::kIndexNestedLoop,
        queries::JoinStrategy::kIndexNestedLoop, &s, &inl_profile);
    std::vector<queries::Q9Result> reference =
        queries::Query9(store, p, max_date, 20);
    ASSERT_EQ(with_profile.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(with_profile[i].message_id, reference[i].message_id);
    }
    (void)queries::Query9WithPlan(
        store, p, max_date, 20, queries::JoinStrategy::kHash,
        queries::JoinStrategy::kHash, queries::JoinStrategy::kHash, nullptr,
        &hash_profile);
    stats_sum.join1_output += s.join1_output;
    stats_sum.join2_output += s.join2_output;
    stats_sum.join3_output += s.join3_output;
    ++executions;
  }
  ASSERT_GT(executions, 0);

  // Operator row counts mirror the cardinality counters exactly.
  EXPECT_EQ(inl_profile.join1.invocations, (uint64_t)executions);
  EXPECT_EQ(inl_profile.join1.rows, stats_sum.join1_output);
  EXPECT_EQ(inl_profile.join2.rows, stats_sum.join2_output);
  EXPECT_EQ(inl_profile.join3.rows, stats_sum.join3_output);
  // A pure-INL plan never builds a hash table; ProfileRows drops the row.
  EXPECT_EQ(inl_profile.hash_build.invocations, 0u);
  for (const auto& [name, op] : queries::ProfileRows(inl_profile)) {
    EXPECT_NE(name, "hash_build");
    EXPECT_GT(op.invocations, 0u);
  }
  // The all-hash plan does build, and its profile keeps the row.
  EXPECT_GT(hash_profile.hash_build.invocations, 0u);

  obs::Q9ProfileSection section =
      queries::MakeQ9ProfileSection(inl_profile, "INL-INL-INL");
  EXPECT_EQ(section.plan, "INL-INL-INL");
  EXPECT_EQ(section.operators.size(),
            queries::ProfileRows(inl_profile).size());

  // And the section survives the JSON round trip inside a report.
  RunReport report;
  report.title = "q9 profile test";
  MetricsRegistry registry;
  registry.RecordLatencyMicros(ComplexOp(9), 123.0);
  report.metrics = registry.Snapshot();
  report.has_q9_profile = true;
  report.q9_profile = section;
  std::string json = ToJson(report);
  EXPECT_TRUE(ValidateReportJson(json).ok());
}

}  // namespace
}  // namespace snb::obs
