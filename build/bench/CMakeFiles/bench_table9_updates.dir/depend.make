# Empty dependencies file for bench_table9_updates.
# This may be replaced when dependencies are built.
