// SNB-Interactive read queries against the relational baseline engine.
//
// Same logical plans and result types as snb::queries (so tests assert
// result equality between the two SUTs), executed via sorted-index
// equal-range lookups instead of adjacency pointers.
#ifndef SNB_RELATIONAL_REL_QUERIES_H_
#define SNB_RELATIONAL_REL_QUERIES_H_

#include <string>
#include <vector>

#include "datagen/update_stream.h"
#include "queries/complex_queries.h"
#include "queries/short_queries.h"
#include "relational/relational_db.h"

namespace snb::rel {

using queries::Q10Result;
using queries::Q11Result;
using queries::Q12Result;
using queries::Q14Result;
using queries::Q1Result;
using queries::Q2Result;
using queries::Q3Result;
using queries::Q4Result;
using queries::Q5Result;
using queries::Q6Result;
using queries::Q7Result;
using queries::Q8Result;
using queries::Q9Result;

std::vector<Q1Result> Query1(const RelationalDb& db, PersonId start,
                             const std::string& first_name, int limit = 20);
std::vector<Q2Result> Query2(const RelationalDb& db, PersonId start,
                             TimestampMs max_date, int limit = 20);
std::vector<Q3Result> Query3(const RelationalDb& db, PersonId start,
                             const std::vector<schema::PlaceId>& city_country,
                             schema::PlaceId country_x,
                             schema::PlaceId country_y,
                             TimestampMs start_date, int duration_days,
                             int limit = 20);
std::vector<Q4Result> Query4(const RelationalDb& db, PersonId start,
                             TimestampMs start_date, int duration_days,
                             int limit = 10);
std::vector<Q5Result> Query5(const RelationalDb& db, PersonId start,
                             TimestampMs min_date, int limit = 20);
std::vector<Q6Result> Query6(const RelationalDb& db, PersonId start,
                             schema::TagId tag, int limit = 10);
std::vector<Q7Result> Query7(const RelationalDb& db, PersonId start,
                             int limit = 20);
std::vector<Q8Result> Query8(const RelationalDb& db, PersonId start,
                             int limit = 20);
std::vector<Q9Result> Query9(const RelationalDb& db, PersonId start,
                             TimestampMs max_date, int limit = 20);
std::vector<Q10Result> Query10(const RelationalDb& db, PersonId start,
                               int horoscope_month, int limit = 10);
std::vector<Q11Result> Query11(
    const RelationalDb& db, PersonId start,
    const std::vector<schema::PlaceId>& company_country,
    schema::PlaceId country, uint16_t max_work_year, int limit = 10);
std::vector<Q12Result> Query12(const RelationalDb& db, PersonId start,
                               const std::vector<bool>& tag_in_class,
                               int limit = 20);
int Query13(const RelationalDb& db, PersonId person1, PersonId person2);
std::vector<Q14Result> Query14(const RelationalDb& db, PersonId person1,
                               PersonId person2);

// Short reads (same result structs as snb::queries).
queries::S1Result ShortQuery1PersonProfile(const RelationalDb& db,
                                           PersonId person);
std::vector<queries::S2Result> ShortQuery2RecentMessages(
    const RelationalDb& db, PersonId person, int limit = 10);
std::vector<queries::S3Result> ShortQuery3Friends(const RelationalDb& db,
                                                  PersonId person);
queries::S4Result ShortQuery4MessageContent(const RelationalDb& db,
                                            MessageId message);
queries::S5Result ShortQuery5MessageCreator(const RelationalDb& db,
                                            MessageId message);
queries::S6Result ShortQuery6MessageForum(const RelationalDb& db,
                                          MessageId message);
std::vector<queries::S7Result> ShortQuery7MessageReplies(
    const RelationalDb& db, MessageId message);

/// Applies one pre-generated update operation as a transaction.
util::Status ApplyUpdate(RelationalDb& db,
                         const datagen::UpdateOperation& op);

/// Friends + friends-of-friends, excluding start (sorted) — shared by the
/// 2-hop queries and exposed for tests.
std::vector<PersonId> TwoHopCircle(const RelationalDb& db, PersonId start);

}  // namespace snb::rel

#endif  // SNB_RELATIONAL_REL_QUERIES_H_
