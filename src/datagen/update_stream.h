// Update stream: the transactional-write half of the workload.
//
// DATAGEN splits its output at one timestamp (paper section 4): data created
// before the split (32 of 36 simulated months) is bulk-loaded; everything
// after becomes individual DML operations "played out" by the driver. Time
// correlations guarantee referential integrity of the split: an entity's
// dependencies are always created strictly earlier, so they land either in
// the bulk load or earlier in the stream.
#ifndef SNB_DATAGEN_UPDATE_STREAM_H_
#define SNB_DATAGEN_UPDATE_STREAM_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "schema/entities.h"
#include "util/datetime.h"

namespace snb::datagen {

/// The 8 transactional update types of SNB-Interactive (Table 9).
enum class UpdateKind : uint8_t {
  kAddPerson = 1,
  kAddLikePost = 2,
  kAddLikeComment = 3,
  kAddForum = 4,
  kAddForumMembership = 5,
  kAddPost = 6,
  kAddComment = 7,
  kAddFriendship = 8,
};

/// Human-readable name ("U1 AddPerson" etc).
const char* UpdateKindName(UpdateKind kind);

/// One pre-generated insert operation.
struct UpdateOperation {
  UpdateKind kind = UpdateKind::kAddPerson;
  /// Simulation time at which the operation is scheduled (T_DUE).
  util::TimestampMs due_time = 0;
  /// Latest creation time among the operation's dependencies (T_DEP);
  /// the driver must not run the op before every dependency with a
  /// timestamp <= dependency_time has completed.
  util::TimestampMs dependency_time = 0;
  /// Latest dependency timestamp restricted to *person-graph* entities
  /// (persons, friendships). Sequential per-forum execution already orders
  /// intra-forum dependencies, so this is all the Global Dependency Service
  /// has to wait for in the default execution mode.
  util::TimestampMs person_dependency_time = 0;
  /// Forum whose discussion tree this op belongs to, or kInvalidId for
  /// person-graph operations. The driver partitions forum-tree operations
  /// into sequential streams by this key (paper section 4.2).
  schema::ForumId forum_partition = schema::kInvalidId;

  std::variant<schema::Person, schema::Knows, schema::Forum,
               schema::ForumMembership, schema::Message, schema::Like>
      payload;
};

/// Result of splitting a generated network.
struct SplitResult {
  schema::SocialNetwork bulk;
  /// Sorted by due_time.
  std::vector<UpdateOperation> updates;
};

/// Splits `network` (consumed) at `split_time`. Persons/knows/forums/
/// memberships/messages/likes created at or after the split become update
/// operations.
SplitResult SplitAtTimestamp(schema::SocialNetwork&& network,
                             util::TimestampMs split_time);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_UPDATE_STREAM_H_
