// Dataset export: generate a network and write the LDBC-style CSV bulk
// files, the update-stream file, and an N-Triples view — then read the CSV
// back and verify the round trip.
//
//   ./examples/export_dataset [scale_factor] [output_dir]
#include <cstdio>
#include <cstdlib>

#include "datagen/datagen.h"
#include "datagen/serializer.h"

int main(int argc, char** argv) {
  using namespace snb;

  double scale_factor = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::string dir = argc > 2 ? argv[2] : "/tmp/snb_export";

  datagen::DatagenConfig config =
      datagen::DatagenConfig::ForScaleFactor(scale_factor);
  std::printf("Generating mini SF %.2f (%llu persons)...\n", scale_factor,
              (unsigned long long)config.num_persons);
  datagen::Dataset dataset = datagen::Generate(config);

  auto sizes = datagen::WriteCsv(dataset, dir);
  if (!sizes.ok()) {
    std::fprintf(stderr, "CSV export failed: %s\n",
                 sizes.status().ToString().c_str());
    return 1;
  }
  std::printf("CSV written to %s:\n", dir.c_str());
  std::printf("  person.csv                 %10.1f KB\n",
              sizes.value().person_bytes / 1024.0);
  std::printf("  person_knows_person.csv    %10.1f KB\n",
              sizes.value().knows_bytes / 1024.0);
  std::printf("  forum.csv                  %10.1f KB\n",
              sizes.value().forum_bytes / 1024.0);
  std::printf("  forum_hasMember_person.csv %10.1f KB\n",
              sizes.value().membership_bytes / 1024.0);
  std::printf("  message.csv                %10.1f KB\n",
              sizes.value().message_bytes / 1024.0);
  std::printf("  person_likes_message.csv   %10.1f KB\n",
              sizes.value().likes_bytes / 1024.0);
  std::printf("  update_stream.csv          %10.1f KB\n",
              sizes.value().update_bytes / 1024.0);
  std::printf("  TOTAL                      %10.3f MB (the LDBC scale"
              " factor is GB of this)\n",
              sizes.value().Total() / (1024.0 * 1024.0));

  auto nt = datagen::WriteNTriples(dataset.bulk, dir + "/graph.nt");
  if (nt.ok()) {
    std::printf("N-Triples view: %s/graph.nt (%.1f KB, time-ordered URIs)\n",
                dir.c_str(), nt.value() / 1024.0);
  }

  // Round-trip check.
  auto loaded = datagen::ReadCsv(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "CSV read-back failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  bool same = loaded.value().persons.size() == dataset.bulk.persons.size() &&
              loaded.value().messages.size() == dataset.bulk.messages.size() &&
              loaded.value().knows.size() == dataset.bulk.knows.size();
  std::printf("Round trip: %s (%zu persons, %zu messages, %zu knows)\n",
              same ? "OK" : "MISMATCH", loaded.value().persons.size(),
              loaded.value().messages.size(), loaded.value().knows.size());
  return same ? 0 : 1;
}
