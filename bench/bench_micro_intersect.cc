// Microbenchmark of the sorted-set intersection kernels (src/exec):
// branch-free scalar merge vs galloping vs SIMD vs the adaptive
// Intersect() entry point, swept across list-length ratios from 1:1 to
// 1:1000 — the shapes friend-of-friend expansion and mutual-friend
// counting actually produce (comparable lists for two average persons,
// extreme ratios when a hub's list meets a small circle).
//
// Every (ratio, kernel) cell is cross-checked against
// std::set_intersection before timing; any divergence exits nonzero, so
// the bench doubles as a correctness gate (scripts/check.sh runs it with
// --smoke: small lists, one reported rep, full cross-check).
//
// With --perf-counters every (ratio, kernel) cell additionally reports
// hardware-counter columns (IPC, LLC misses and branch misses per kilo
// instruction) from a perf_event group scoped to the timed loop, so the
// scalar/gallop/SIMD crossover can be read micro-architecturally: the
// galloping win past 1:64 shows up as fewer retired instructions, the
// SIMD win as higher IPC at equal miss rates. Where perf_event_open is
// denied the bench degrades to the wall-clock table.
//
// Usage: bench_micro_intersect [--smoke] [--perf-counters]
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "exec/intersect.h"
#include "obs/perf_counters.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace snb::bench {
namespace {

using Kernel = size_t (*)(const uint64_t*, size_t, const uint64_t*, size_t,
                          uint64_t*);

/// Strictly ascending list of `n` ids with mean gap `gap` (controls how
/// interleaved the two lists are; gap 2 gives ~50% overlap density).
std::vector<uint64_t> MakeSortedList(uint64_t seed, size_t n, uint64_t gap) {
  util::Rng rng(seed);
  std::vector<uint64_t> out(n);
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    v += 1 + rng.Next() % (2 * gap - 1);
    out[i] = v;
  }
  return out;
}

struct Cell {
  const char* name;
  Kernel kernel;
};

/// Prints one counter column ("ipc=2.31 llc/ki=0.2 br/ki=1.4" folded to
/// the per-kernel column width) or "-" when the cell has no counters.
void PrintHwCell(const obs::perf::HwCounts& hw) {
  if (!hw.valid()) {
    std::printf(" %10s", "-");
    return;
  }
  char cell[32];
  std::snprintf(cell, sizeof(cell), "%.2f/%.1f/%.1f", hw.Ipc(),
                hw.LlcMissesPerKiloInstr(), hw.BranchMissesPerKiloInstr());
  std::printf(" %10s", cell);
}

int RunSweep(bool smoke, bool perf_counters) {
  PrintHeader("micro: sorted-set intersection kernels (scalar/gallop/SIMD)");
  std::printf("  simd available: %s\n",
              exec::SimdAvailable() ? "yes (AVX2)" : "no (scalar fallback)");
  if (perf_counters) EnablePerfCounters();

  const size_t base = smoke ? 512 : 4096;
  const size_t reps = smoke ? 3 : 200;
  const size_t ratios[] = {1, 4, 16, 64, 256, 1000};
  const Cell cells[] = {
      {"scalar", exec::IntersectScalar},
      {"gallop", exec::IntersectGalloping},
      {"simd", exec::IntersectSimd},
      {"adaptive", exec::Intersect},
  };

  std::printf("  %-8s %8s %9s", "ratio", "|a|", "|b|");
  for (const Cell& c : cells) std::printf(" %10s", c.name);
  std::printf("   (ns/output row; lower is better)\n");

  for (size_t ratio : ratios) {
    size_t na = base;
    size_t nb = base * ratio;
    // Match value ranges so the lists actually interleave at every ratio.
    std::vector<uint64_t> a = MakeSortedList(0x5eed + ratio, na, 2 * ratio);
    std::vector<uint64_t> b = MakeSortedList(0xcafe + ratio, nb, 2);
    std::vector<uint64_t> expect(std::min(na, nb));
    expect.resize(static_cast<size_t>(
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              expect.begin()) -
        expect.begin()));

    std::printf("  1:%-6zu %8zu %9zu", ratio, na, nb);
    std::array<obs::perf::HwCounts, std::size(cells)> cell_hw{};
    size_t cell_index = 0;
    for (const Cell& c : cells) {
      std::vector<uint64_t> out(std::min(na, nb));
      size_t n = c.kernel(a.data(), na, b.data(), nb, out.data());
      if (n != expect.size() ||
          !std::equal(expect.begin(), expect.end(), out.begin())) {
        std::fprintf(stderr,
                     "\nkernel %s disagrees with std::set_intersection at "
                     "ratio 1:%zu (%zu vs %zu rows)\n",
                     c.name, ratio, n, expect.size());
        return 1;
      }
      // IntersectCount must agree with the materializing kernels too.
      if (exec::IntersectCount(a.data(), na, b.data(), nb) != expect.size()) {
        std::fprintf(stderr, "\nIntersectCount disagrees at ratio 1:%zu\n",
                     ratio);
        return 1;
      }
      util::Stopwatch watch;
      obs::perf::ScopedHwCounts hw_scope;
      size_t sink = 0;
      for (size_t r = 0; r < reps; ++r) {
        sink += c.kernel(a.data(), na, b.data(), nb, out.data());
      }
      cell_hw[cell_index++] = hw_scope.Delta();
      uint64_t nanos = watch.ElapsedNanos();
      double per_row = sink == 0 ? 0.0
                                 : static_cast<double>(nanos) /
                                       static_cast<double>(sink);
      std::printf(" %10.2f", per_row);
    }
    std::printf("   |a∩b|=%zu\n", expect.size());
    if (obs::perf::CountersLive()) {
      std::printf("  %-8s %8s %9s", "", "", "hw:");
      for (const obs::perf::HwCounts& hw : cell_hw) PrintHwCell(hw);
      std::printf("   (ipc/llc per ki/br per ki)\n");
    }
  }
  std::printf(
      "\n  Expected shape: scalar wins near 1:1 (branch-free merge is\n"
      "  O(na+nb) but with tiny constants), galloping takes over past\n"
      "  ~1:%zu (O(na log nb)); SIMD tracks scalar with a constant-factor\n"
      "  win where supported. `adaptive` should ride the envelope.\n\n",
      exec::kGallopRatio);
  return 0;
}

}  // namespace
}  // namespace snb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool perf_counters = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--perf-counters") == 0) {
      perf_counters = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--perf-counters]\n",
                   argv[0]);
      return 1;
    }
  }
  return snb::bench::RunSweep(smoke, perf_counters);
}
