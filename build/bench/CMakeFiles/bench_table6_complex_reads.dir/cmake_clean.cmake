file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_complex_reads.dir/bench_table6_complex_reads.cc.o"
  "CMakeFiles/bench_table6_complex_reads.dir/bench_table6_complex_reads.cc.o.d"
  "bench_table6_complex_reads"
  "bench_table6_complex_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_complex_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
