# Empty compiler generated dependencies file for snb_driver.
# This may be replaced when dependencies are built.
