file(REMOVE_RECURSE
  "CMakeFiles/rel_db_test.dir/rel_db_test.cc.o"
  "CMakeFiles/rel_db_test.dir/rel_db_test.cc.o.d"
  "rel_db_test"
  "rel_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
