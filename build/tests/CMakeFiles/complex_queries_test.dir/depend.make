# Empty dependencies file for complex_queries_test.
# This may be replaced when dependencies are built.
