file(REMOVE_RECURSE
  "libsnb_schema.a"
)
