// Snapshot-isolation history checking for the graph store's RCU read path.
//
// A stress run records a *history*: a single writer announces a commit
// point (a release increment of a global commit counter) after each fully
// published update, and concurrent readers record, per read, the counter
// value loaded (acquire) before pinning an epoch plus what the pinned
// snapshot showed (adjacency lengths, and whether every adjacency id
// resolved to a ready record). CheckHistory then replays the log offline
// and flags:
//
//   * "torn-update"   — an adjacency entry whose target record was not
//                       resolvable under the same pin: the edge was linked
//                       before the record was published (a torn
//                       multi-entity update).
//   * "stale-read"    — a reader whose pre-pin watermark was w saw fewer
//                       edges than commit w guarantees. This is the
//                       read-your-GCT-dependency property from the paper's
//                       update-dependency discussion: once a dependency's
//                       commit point is globally visible, every later
//                       snapshot must contain it.
//   * "non-monotonic" — one reader thread observed an entity shrink
//                       between two of its own reads (snapshots moving
//                       backwards in time).
//   * "phantom-write" — a reader saw more edges than the writer ever
//                       committed.
//
// Tracked entities must start empty (the stress harnesses bulk-load only
// the fixed scaffolding — persons and a forum — and grow adjacency lists
// exclusively through recorded commits).
//
// RecordStoreHistory drives the real store concurrently (run it under
// TSan); RecordBrokenWriterHistory is a deterministic, single-threaded
// scripted interleaving whose writer announces commits *before*
// publishing — the fixture CheckHistory must reject.
#ifndef SNB_VALIDATE_HISTORY_H_
#define SNB_VALIDATE_HISTORY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "store/shard_router.h"
#include "util/status.h"

namespace snb::validate {

/// Adjacency-list domains a history can track.
inline constexpr uint32_t kDomainPersonMessages = 0;
inline constexpr uint32_t kDomainForumPosts = 1;

/// One reader observation under a single multi-shard snapshot.
struct ReadObservation {
  uint64_t watermark = 0;   // Commit counter loaded before pinning.
  uint32_t domain = 0;      // kDomain* constant.
  uint64_t entity = 0;      // Person or forum id.
  uint64_t edges_seen = 0;  // Adjacency length under the pin.
  uint64_t dangling = 0;    // Adjacency ids that did not resolve.
  /// Sharded runs: per-shard commit watermarks loaded in ascending shard
  /// order *before* pinning — mirroring ShardSnapshot's pin order. When
  /// non-empty, the checker evaluates each commit against the committing
  /// shard's entry and the scalar `watermark` is ignored.
  std::vector<uint64_t> watermarks;
};

/// One writer commit point. Multiple entries may share a `seq` when a
/// single update touches several adjacency lists. Sharded runs have one
/// independent commit counter per shard; `seq` is meaningful only within
/// the committing shard's sequence.
struct WriterCommit {
  uint64_t seq = 0;
  uint32_t domain = 0;
  uint64_t entity = 0;
  uint64_t edges_after = 0;  // Entity's adjacency length as of this commit.
  uint32_t shard = 0;        // Shard whose counter issued `seq`.
};

/// A recorded run: the writer's commit log plus one observation log per
/// reader thread.
struct History {
  std::vector<WriterCommit> commits;
  std::vector<std::vector<ReadObservation>> readers;
};

struct HistoryViolation {
  std::string kind;  // "torn-update", "stale-read", "non-monotonic", ...
  std::string detail;
};

struct HistoryCheckOutcome {
  bool consistent = true;
  uint64_t observations_checked = 0;
  uint64_t violation_count = 0;
  /// First violations, capped (see history.cc) so a badly broken run does
  /// not produce an unbounded report.
  std::vector<HistoryViolation> violations;
};

/// Offline checker; pure function of the recorded history.
HistoryCheckOutcome CheckHistory(const History& history);

/// Collects a history. The per-shard commit counters are the only shared
/// state; per-reader logs are written by exactly one thread each, and
/// each shard's commit log by exactly one writer thread.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(int num_readers, uint32_t num_shards = 1)
      : num_shards_(num_shards) {
    history_.readers.resize(static_cast<size_t>(num_readers));
    shard_logs_.resize(num_shards);
  }

  /// Reader side: loads shard 0's watermark. Call before pinning.
  uint64_t BeginRead() const {
    return counters_[0].load(std::memory_order_acquire);
  }

  /// Reader side: loads every shard's watermark in ascending shard
  /// order — the same order ShardSnapshot acquires its pins. Call before
  /// pinning; store the result in ReadObservation::watermarks.
  std::vector<uint64_t> BeginReadVector() const {
    std::vector<uint64_t> w(num_shards_);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      w[s] = counters_[s].load(std::memory_order_acquire);
    }
    return w;
  }

  /// Reader side: appends to reader `reader`'s log (single-threaded per
  /// reader index).
  void RecordRead(int reader, const ReadObservation& observation) {
    history_.readers[static_cast<size_t>(reader)].push_back(observation);
  }

  /// Writer side: announces shard 0's next commit point and logs it.
  uint64_t Commit(uint32_t domain, uint64_t entity, uint64_t edges_after) {
    return CommitOnShard(0, domain, entity, edges_after);
  }

  /// Writer side: logs an additional entry under an already-announced
  /// commit point (one update touching a second adjacency list).
  void CommitAt(uint64_t seq, uint32_t domain, uint64_t entity,
                uint64_t edges_after) {
    CommitAtOnShard(0, seq, domain, entity, edges_after);
  }

  /// Writer side, sharded: announces shard `shard`'s next commit point.
  /// Exactly one writer thread per shard.
  uint64_t CommitOnShard(uint32_t shard, uint32_t domain, uint64_t entity,
                         uint64_t edges_after) {
    uint64_t seq =
        counters_[shard].fetch_add(1, std::memory_order_release) + 1;
    shard_logs_[shard].push_back({seq, domain, entity, edges_after, shard});
    return seq;
  }

  /// Writer side, sharded: an additional entry under shard `shard`'s
  /// already-announced commit point.
  void CommitAtOnShard(uint32_t shard, uint64_t seq, uint32_t domain,
                       uint64_t entity, uint64_t edges_after) {
    shard_logs_[shard].push_back({seq, domain, entity, edges_after, shard});
  }

  /// Moves the history out (merging the per-shard commit logs). Call only
  /// after all threads have joined.
  History TakeHistory() {
    for (std::vector<WriterCommit>& log : shard_logs_) {
      history_.commits.insert(history_.commits.end(), log.begin(), log.end());
      log.clear();
    }
    return std::move(history_);
  }

 private:
  uint32_t num_shards_;
  std::array<std::atomic<uint64_t>, store::kMaxShards> counters_{};
  std::vector<std::vector<WriterCommit>> shard_logs_;
  History history_;
};

/// Stress-run knobs.
struct HistoryConfig {
  int num_readers = 4;
  int reads_per_reader = 200;
  int num_commits = 400;
};

/// Concurrent stress of the real store: one writer posting messages (each
/// growing a person's message list and a forum's post list) racing
/// `num_readers` reader threads. Run under TSan; feed the result to
/// CheckHistory.
util::Status RecordStoreHistory(const HistoryConfig& config, History* out);

/// Deterministic broken-writer fixture: a single-threaded scripted
/// interleaving whose writer announces each commit before publishing the
/// message, with a read in the gap. CheckHistory must report a
/// "stale-read" violation for every such read.
util::Status RecordBrokenWriterHistory(const HistoryConfig& config,
                                       History* out);

/// Sharded stress knobs.
struct ShardedHistoryConfig {
  uint32_t num_shards = 4;
  int num_readers = 4;
  int reads_per_reader = 100;
  int commits_per_shard = 100;
};

/// Concurrent multi-writer stress of the sharded store: one writer thread
/// per shard posting messages to that shard's creator person and forum,
/// racing `num_readers` readers that record per-shard watermark vectors
/// before taking a multi-shard snapshot and resolve every cross-shard
/// edge under it. Run under TSan; feed the result to CheckHistory.
util::Status RecordShardedStoreHistory(const ShardedHistoryConfig& config,
                                       History* out);

/// Deterministic broken fixture for the sharded checker: a reader whose
/// shard list views predate an update but whose watermark vector was
/// loaded after its commit — the observable signature of pinning shards
/// at mismatched epochs. CheckHistory must flag a "stale-read" for every
/// such observation.
util::Status RecordMismatchedPinHistory(const ShardedHistoryConfig& config,
                                        History* out);

}  // namespace snb::validate

#endif  // SNB_VALIDATE_HISTORY_H_
