// Parameterized integration invariants: after loading a generated dataset
// (bulk only, or bulk + replayed update stream) the store's index
// structures must be mutually consistent at every scale.
#include <map>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/update_queries.h"
#include "store/graph_store.h"

namespace snb::store {
namespace {

using Param = std::tuple<double /*sf*/, bool /*apply_updates*/>;

class StoreInvariantsTest : public ::testing::TestWithParam<Param> {
 protected:
  static GraphStore& store() { return World().store_; }
  static const datagen::Dataset& dataset() { return World().dataset_; }

 private:
  struct WorldState {
    datagen::Dataset dataset_;
    GraphStore store_;
  };

  static WorldState& World() {
    // One world per parameter combination, built lazily and cached.
    static std::map<Param, WorldState*>* worlds =
        new std::map<Param, WorldState*>();
    auto it = worlds->find(GetParam());
    if (it == worlds->end()) {
      auto* world = new WorldState();
      auto [sf, apply_updates] = GetParam();
      datagen::DatagenConfig config =
          datagen::DatagenConfig::ForScaleFactor(sf);
      world->dataset_ = datagen::Generate(config);
      EXPECT_TRUE(world->store_.BulkLoad(world->dataset_.bulk).ok());
      if (apply_updates) {
        for (const datagen::UpdateOperation& op : world->dataset_.updates) {
          EXPECT_TRUE(queries::ApplyUpdate(world->store_, op).ok());
        }
      }
      it = worlds->emplace(GetParam(), world).first;
    }
    return *it->second;
  }
};

TEST_P(StoreInvariantsTest, FriendListsSortedAndSymmetric) {
  auto pin = store().ReadLock();
  uint64_t directed_edges = 0;
  for (schema::PersonId id : store().PersonIds(pin)) {
    const PersonRecord* p = store().FindPerson(pin, id);
    ASSERT_NE(p, nullptr);
    auto friends = p->friends.view();
    for (size_t i = 1; i < friends.size(); ++i) {
      EXPECT_LT(friends[i - 1].other, friends[i].other);
    }
    for (const FriendEdge& e : friends) {
      EXPECT_TRUE(store().AreFriends(pin, e.other, id))
          << id << " <-> " << e.other;
      ++directed_edges;
    }
  }
  EXPECT_EQ(directed_edges, 2 * store().NumKnowsEdges());
}

TEST_P(StoreInvariantsTest, ReplyTreeIsConsistent) {
  auto pin = store().ReadLock();
  uint64_t replies_seen = 0;
  for (schema::MessageId id = 0; id < store().MessageIdBound(); ++id) {
    const MessageRecord* m = store().FindMessage(pin, id);
    if (m == nullptr) continue;
    if (m->data.kind == schema::MessageKind::kComment) {
      const MessageRecord* parent = store().FindMessage(pin, m->data.reply_to_id);
      ASSERT_NE(parent, nullptr);
      // Child is registered in the parent's reply list.
      bool found = false;
      for (schema::MessageId r : parent->replies.view()) {
        if (r == id) found = true;
      }
      EXPECT_TRUE(found);
      // Root chains to a post/photo in the same forum.
      const MessageRecord* root = store().FindMessage(pin, m->data.root_post_id);
      ASSERT_NE(root, nullptr);
      EXPECT_NE(root->data.kind, schema::MessageKind::kComment);
      EXPECT_EQ(root->data.forum_id, m->data.forum_id);
    } else {
      EXPECT_EQ(m->data.root_post_id, id);
    }
    replies_seen += m->replies.size();
  }
  // Every comment appears in exactly one reply list.
  uint64_t comments = 0;
  for (schema::MessageId id = 0; id < store().MessageIdBound(); ++id) {
    const MessageRecord* m = store().FindMessage(pin, id);
    if (m != nullptr && m->data.kind == schema::MessageKind::kComment) {
      ++comments;
    }
  }
  EXPECT_EQ(replies_seen, comments);
}

TEST_P(StoreInvariantsTest, ForumPostsMatchMessages) {
  auto pin = store().ReadLock();
  uint64_t posts_in_forums = 0;
  for (schema::ForumId fid : store().ForumIds(pin)) {
    const ForumRecord* f = store().FindForum(pin, fid);
    ASSERT_NE(f, nullptr);
    for (schema::MessageId mid : f->posts.view()) {
      const MessageRecord* m = store().FindMessage(pin, mid);
      ASSERT_NE(m, nullptr);
      EXPECT_NE(m->data.kind, schema::MessageKind::kComment);
      EXPECT_EQ(m->data.forum_id, fid);
      ++posts_in_forums;
    }
    // Moderator exists and membership dates follow forum creation.
    EXPECT_NE(store().FindPerson(pin, f->data.moderator_id), nullptr);
    for (const DatedEdge& member : f->members.view()) {
      EXPECT_GE(member.date, f->data.creation_date);
    }
  }
  uint64_t root_messages = 0;
  for (schema::MessageId id = 0; id < store().MessageIdBound(); ++id) {
    const MessageRecord* m = store().FindMessage(pin, id);
    if (m != nullptr && m->data.kind != schema::MessageKind::kComment) {
      ++root_messages;
    }
  }
  EXPECT_EQ(posts_in_forums, root_messages);
}

TEST_P(StoreInvariantsTest, LikesAreBidirectional) {
  auto pin = store().ReadLock();
  uint64_t from_messages = 0, from_persons = 0;
  for (schema::MessageId id = 0; id < store().MessageIdBound(); ++id) {
    const MessageRecord* m = store().FindMessage(pin, id);
    if (m != nullptr) from_messages += m->likes.size();
  }
  for (schema::PersonId id : store().PersonIds(pin)) {
    from_persons += store().FindPerson(pin, id)->likes.size();
  }
  EXPECT_EQ(from_messages, store().NumLikes());
  EXPECT_EQ(from_persons, store().NumLikes());
}

TEST_P(StoreInvariantsTest, CreatorListsCoverAllMessages) {
  auto pin = store().ReadLock();
  uint64_t via_creators = 0;
  for (schema::PersonId id : store().PersonIds(pin)) {
    const PersonRecord* p = store().FindPerson(pin, id);
    util::TimestampMs last = 0;
    for (const DatedEdge& e : p->messages.view()) {
      const MessageRecord* m = store().FindMessage(pin, e.id);
      ASSERT_NE(m, nullptr);
      EXPECT_EQ(m->data.creator_id, id);
      EXPECT_EQ(m->data.creation_date, e.date);  // Inline date matches.
      EXPECT_GE(e.date, last);  // Date-ordered.
      last = e.date;
      ++via_creators;
    }
  }
  EXPECT_EQ(via_creators, store().NumMessages());
}

TEST_P(StoreInvariantsTest, CountsMatchDatasetStats) {
  auto [sf, apply_updates] = GetParam();
  if (apply_updates) {
    EXPECT_EQ(store().NumPersons(), dataset().stats.num_persons);
    EXPECT_EQ(store().NumKnowsEdges(), dataset().stats.num_knows);
    EXPECT_EQ(store().NumMessages(), dataset().stats.NumMessages());
    EXPECT_EQ(store().NumLikes(), dataset().stats.num_likes);
  } else {
    EXPECT_EQ(store().NumPersons(), dataset().bulk.persons.size());
    EXPECT_EQ(store().NumMessages(), dataset().bulk.messages.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StoreInvariantsTest,
    ::testing::Combine(::testing::Values(0.02, 0.08),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string("sf") +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             (std::get<1>(info.param) ? "WithUpdates" : "BulkOnly");
    });

}  // namespace
}  // namespace snb::store
