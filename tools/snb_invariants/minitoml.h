// Minimal TOML-subset parser for the invariants manifest.
//
// The checker must run on the GCC-only container with no third-party
// libraries, so the manifest format is a small, strictly defined TOML
// subset parsed here:
//
//   * comments (#) and blank lines;
//   * [table] and nested [table.sub] headers;
//   * [[array-of-tables]] headers, including nested ones relative to the
//     most recent parent element ([[rule]] ... [[rule.suppress]]);
//   * key = "string" (basic strings, \" \\ \n \t escapes);
//   * key = ["array", "of", "strings"], multi-line, trailing comma ok;
//   * key = true | false;
//   * key = 123 (decimal integers, optional leading -).
//
// Anything else (dotted keys, inline tables, floats, dates, literal
// strings) is a parse error with a line number — the manifest is checked
// in, so failing loudly beats guessing.
#ifndef SNB_TOOLS_INVARIANTS_MINITOML_H_
#define SNB_TOOLS_INVARIANTS_MINITOML_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace snb::inv::toml {

struct Value {
  enum class Kind { kString, kInt, kBool, kArray, kTable, kTableArray };

  Kind kind = Kind::kTable;
  std::string str;
  int64_t integer = 0;
  bool boolean = false;
  /// kArray elements, or kTableArray elements (each a kTable).
  std::vector<Value> array;
  /// kTable entries, in insertion order via `order`.
  std::map<std::string, Value> table;
  std::vector<std::string> order;

  bool Has(const std::string& key) const { return table.count(key) != 0; }
  const Value* Find(const std::string& key) const {
    auto it = table.find(key);
    return it == table.end() ? nullptr : &it->second;
  }
};

/// Parses `text` into `*root` (a kTable). On failure returns false and
/// sets `*error` to "line N: what went wrong".
bool Parse(const std::string& text, Value* root, std::string* error);

}  // namespace snb::inv::toml

#endif  // SNB_TOOLS_INVARIANTS_MINITOML_H_
