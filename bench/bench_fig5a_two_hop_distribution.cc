// Figure 5a reproduction: distribution of the size of the 2-hop friendship
// environment. The power-law degree distribution makes it wide and
// multimodal — the reason uniform parameter sampling fails (Figure 5b).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/histogram.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("Figure 5a — size of 2-hop friend environment");
  std::unique_ptr<BenchWorld> world = MakeWorld(kLargeSf, false, false);
  const datagen::GenerationStats& stats = world->dataset.stats;

  uint32_t max_size = 0;
  for (uint32_t c : stats.two_hop_count) max_size = std::max(max_size, c);
  constexpr int kBuckets = 20;
  util::Histogram hist(0, max_size + 1.0, kBuckets);
  util::SampleStats sample;
  for (uint32_t c : stats.two_hop_count) {
    hist.Add(c);
    sample.Add(c);
  }
  uint64_t max_bucket = 1;
  for (size_t b = 0; b < hist.bucket_count(); ++b) {
    max_bucket = std::max(max_bucket, hist.bucket(b));
  }
  std::printf("  %-16s %-7s\n", "#2-hop friends", "count");
  for (size_t b = 0; b < hist.bucket_count(); ++b) {
    char range[32];
    std::snprintf(range, sizeof(range), "[%.0f,%.0f)", hist.BucketLow(b),
                  hist.BucketLow(b + 1));
    std::printf("  %-16s %-7llu %s\n", range,
                (unsigned long long)hist.bucket(b),
                Bar(static_cast<double>(hist.bucket(b)),
                    static_cast<double>(max_bucket), 40)
                    .c_str());
  }
  std::printf("\n  min %.0f / mean %.0f / p95 %.0f / max %.0f\n",
              sample.Min(), sample.Mean(), sample.Percentile(95),
              sample.Max());
  std::printf(
      "  Shape to check: wide spread (max several times the mean) — the\n"
      "  runtime of any 2-hop query template varies accordingly unless\n"
      "  parameters are curated.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
