#!/usr/bin/env python3
"""Tests for scripts/compare_reports.py (the perf-regression gate).

Each case materialises baseline/candidate report JSON into a temp dir and
runs the script as a subprocess, asserting on its exit code — the contract
check.sh and CI actually consume (0 = ok, 1 = regression, 2 = bad input).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, "scripts", "compare_reports.py")


def make_report(schema="snb-report-v2", ops_per_second=1000.0, ops=None,
                on_time_fraction=0.99):
    doc = {
        "schema": schema,
        "driver": {"ops_per_second": ops_per_second},
        "ops": ops if ops is not None else [
            {"op": "complex_2", "count": 100,
             "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 4.0},
            {"op": "short_1", "count": 200,
             "p50_ms": 0.1, "p95_ms": 0.2, "p99_ms": 0.4},
        ],
    }
    if schema == "snb-report-v2":
        doc["compliance"] = {"on_time_fraction": on_time_fraction}
    return doc


class CompareReportsTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, base, cand, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, base, cand, *extra],
            capture_output=True, text=True)

    def test_identical_reports_pass(self):
        base = self.write("base.json", make_report())
        cand = self.write("cand.json", make_report())
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK: within thresholds", result.stdout)

    def test_throughput_drop_fails(self):
        base = self.write("base.json", make_report(ops_per_second=1000.0))
        cand = self.write("cand.json", make_report(ops_per_second=500.0))
        result = self.run_compare(base, cand)  # Default max drop: 30%.
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION: throughput", result.stdout)

    def test_latency_slack_absorbs_small_absolute_growth(self):
        # short_1 p99 triples (far past the 50% relative ceiling) but grows
        # only 0.8 ms absolute — under the 1.0 ms slack, so it must pass.
        base = self.write("base.json", make_report())
        fast_ops = [
            {"op": "short_1", "count": 200,
             "p50_ms": 0.1, "p95_ms": 0.2, "p99_ms": 1.2},
        ]
        cand = self.write("cand.json", make_report(ops=fast_ops))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_latency_inflation_past_slack_fails(self):
        slow_ops = [
            {"op": "complex_2", "count": 100,
             "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 9.0},
        ]
        base = self.write("base.json", make_report())
        cand = self.write("cand.json", make_report(ops=slow_ops))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("complex_2 p99_ms", result.stdout)

    def test_v1_baseline_skips_compliance(self):
        # v1 has no compliance section; a terrible candidate fraction must
        # not be compared against it.
        base = self.write("base.json", make_report(schema="snb-report-v1"))
        cand = self.write("cand.json", make_report(on_time_fraction=0.10))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_compliance_drop_fails_on_v2_pair(self):
        base = self.write("base.json", make_report(on_time_fraction=0.99))
        cand = self.write("cand.json", make_report(on_time_fraction=0.80))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION: compliance", result.stdout)

    def hw_ops(self, ipc, llc_mpki, hw_samples=100):
        return [{"op": "complex_9", "count": 100,
                 "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 4.0,
                 "hw_samples": hw_samples, "ipc": ipc,
                 "llc_miss_per_kinstr": llc_mpki}]

    def test_v4_identical_counter_reports_pass(self):
        doc = make_report(schema="snb-report-v4", ops=self.hw_ops(2.0, 1.0))
        base = self.write("base.json", doc)
        cand = self.write("cand.json", doc)
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_injected_ipc_regression_fails(self):
        # IPC halves (well past the default 20% drop): the gate must trip
        # even though every wall-clock number is identical.
        base = self.write("base.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(2.0, 1.0)))
        cand = self.write("cand.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(1.0, 1.0)))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("complex_9 ipc", result.stdout)

    def test_small_ipc_wobble_passes(self):
        base = self.write("base.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(2.0, 1.0)))
        cand = self.write("cand.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(1.9, 1.0)))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_llc_miss_inflation_fails(self):
        base = self.write("base.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(2.0, 1.0)))
        cand = self.write("cand.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(2.0, 3.0)))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("llc_miss_per_kinstr", result.stdout)

    def test_llc_slack_absorbs_small_absolute_growth(self):
        # 0.1 -> 0.4 misses/kinstr is 4x relative but only 0.3 absolute —
        # under the 0.5 slack, so near-zero baselines don't trip on noise.
        base = self.write("base.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(2.0, 0.1)))
        cand = self.write("cand.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(2.0, 0.4)))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_counterless_baseline_skips_hw_checks(self):
        # A wall-clock-only baseline (no hw fields) must not be compared
        # against a candidate that happens to carry counters.
        base = self.write("base.json", make_report())
        cand = self.write("cand.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(0.1, 50.0)))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_too_few_hw_samples_skips_hw_checks(self):
        base = self.write("base.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(2.0, 1.0)))
        cand = self.write("cand.json", make_report(
            schema="snb-report-v4", ops=self.hw_ops(0.5, 1.0, hw_samples=2)))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def profile_report(self, backend="timer", captured=1000,
                       overhead_ns=10_000, task_clock_ns=10_000_000):
        doc = make_report(schema="snb-report-v5")
        doc["profile"] = {
            "backend": backend, "captured": captured,
            "attributed": captured, "unattributed": 0, "dropped": 0,
            "self_overhead_ns": overhead_ns,
            "task_clock_ns": task_clock_ns,
        }
        return doc

    def test_low_profiler_overhead_passes(self):
        base = self.write("base.json", make_report())
        # 10 us over 10 ms = 0.1%, well under the 2% gate.
        cand = self.write("cand.json", self.profile_report())
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_excessive_profiler_overhead_fails(self):
        base = self.write("base.json", make_report())
        # 500 us over 10 ms = 5% — past the 2% default gate. The gate is
        # absolute on the candidate: the baseline carries no profile.
        cand = self.write("cand.json",
                          self.profile_report(overhead_ns=500_000))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("profiler self-overhead", result.stdout)

    def test_few_samples_skip_overhead_gate(self):
        base = self.write("base.json", make_report())
        # Same 5% overhead ratio, but from 3 samples: too noisy to gate.
        cand = self.write("cand.json",
                          self.profile_report(captured=3,
                                              overhead_ns=500_000))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_noop_backend_skips_overhead_gate(self):
        base = self.write("base.json", make_report())
        cand = self.write("cand.json",
                          self.profile_report(backend="noop", captured=0,
                                              overhead_ns=0,
                                              task_clock_ns=0))
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_overhead_threshold_is_tunable(self):
        base = self.write("base.json", make_report())
        # 0.1% overhead trips a deliberately cruel 0.01% threshold.
        cand = self.write("cand.json", self.profile_report())
        result = self.run_compare(base, cand,
                                  "--max-profiler-overhead", "0.0001")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("profiler self-overhead", result.stdout)

    def test_unknown_schema_is_bad_input(self):
        base = self.write("base.json", make_report(schema="not-a-report"))
        cand = self.write("cand.json", make_report())
        result = self.run_compare(base, cand)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
