#!/usr/bin/env python3
"""Folded-stack viewer: render a sampling-profiler capture offline.

Consumes the collapsed-stack artifact written by `benchmark_run
--cpu-profile=PATH` (or fetched live from `GET /profile?seconds=N`) —
one stack per line, semicolon-separated frames root-first with a
trailing sample count:

  thread:driver.0;op:complex.Q9;opr:join2;main;...;Lookup 17

and renders it as either (or both):

  * --svg OUT         a self-contained interactive flamegraph SVG
                      (hover titles, click-free, no JavaScript, no
                      external assets — opens in any browser);
  * --speedscope OUT  a speedscope-format JSON profile for
                      https://www.speedscope.app (drag-and-drop).

Pure stdlib on purpose: this is the only viewer guaranteed to exist in
the benchmark container, so the flamegraph recipe in EXPERIMENTS.md
cannot rot on a missing dependency.

Exit codes: 0 = ok, 2 = bad input / bad usage.
"""

import argparse
import hashlib
import json
import sys

# ---------------------------------------------------------------------------
# Folded-stack parsing.
# ---------------------------------------------------------------------------


def parse_folded(text, path="<input>"):
    """Parses folded text into a list of (frames, count) tuples.

    Frames are root-first, exactly as written. Raises SystemExit(2) on a
    malformed line — a truncated artifact should fail loudly, not render
    a silently wrong graph.
    """
    stacks = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        stack, sep, count_str = line.rpartition(" ")
        if not sep or not stack:
            print(f"error: {path}:{lineno}: expected 'frames... count', "
                  f"got {raw!r}", file=sys.stderr)
            raise SystemExit(2)
        try:
            count = int(count_str)
        except ValueError:
            print(f"error: {path}:{lineno}: sample count {count_str!r} is "
                  f"not an integer", file=sys.stderr)
            raise SystemExit(2)
        if count <= 0:
            print(f"error: {path}:{lineno}: sample count must be positive, "
                  f"got {count}", file=sys.stderr)
            raise SystemExit(2)
        frames = [f for f in stack.split(";") if f]
        if not frames:
            print(f"error: {path}:{lineno}: empty frame list", file=sys.stderr)
            raise SystemExit(2)
        stacks.append((frames, count))
    if not stacks:
        print(f"error: {path}: no stacks (empty capture?)", file=sys.stderr)
        raise SystemExit(2)
    return stacks


# ---------------------------------------------------------------------------
# Flamegraph SVG.
# ---------------------------------------------------------------------------


class Node:
    __slots__ = ("name", "total", "children")

    def __init__(self, name):
        self.name = name
        self.total = 0
        self.children = {}


def build_tree(stacks):
    root = Node("all")
    for frames, count in stacks:
        root.total += count
        node = root
        for frame in frames:
            child = node.children.get(frame)
            if child is None:
                child = Node(frame)
                node.children[frame] = child
            child.total += count
            node = child
    return root


def frame_color(name):
    """Deterministic warm color per frame name (flamegraph convention).

    Hash-seeded so the same function keeps its color across captures —
    diffs by eye stay possible.
    """
    digest = hashlib.md5(name.encode("utf-8")).digest()
    # Red 200-255, green 60-210, blue 0-70: the classic flame palette.
    r = 200 + digest[0] * 55 // 255
    g = 60 + digest[1] * 150 // 255
    b = digest[2] * 70 // 255
    # Context frames (thread:/op:/opr:) render cool so the attribution
    # bands are visually separable from real code frames.
    if name.startswith(("thread:", "op:", "opr:")):
        return f"rgb({b},{g},{r})"
    return f"rgb({r},{g},{b})"


def esc(text):
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def max_depth(node, depth=0):
    if not node.children:
        return depth
    return max(max_depth(c, depth + 1) for c in node.children.values())


def render_svg(stacks, title, width, min_fraction):
    root = build_tree(stacks)
    row_h = 17
    font_px = 11
    # Approximate glyph advance for the truncation heuristic; SVG text is
    # not clipped, so over-long labels must be cut before emission.
    char_w = font_px * 0.62
    depth = max_depth(root)
    top_pad = 34
    height = top_pad + (depth + 1) * row_h + 12
    out = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="{font_px}px">')
    out.append(f'<rect width="{width}" height="{height}" fill="#f8f8f8"/>')
    out.append(f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
               f'font-size="15px">{esc(title)}</text>')
    total = root.total

    def emit(node, depth_idx, x, w):
        # Flamegraph orientation: root row at the bottom, leaves on top.
        y = height - 12 - (depth_idx + 1) * row_h
        pct = 100.0 * node.total / total
        label = f"{node.name} ({node.total} samples, {pct:.2f}%)"
        out.append(f'<g><title>{esc(label)}</title>'
                   f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
                   f'height="{row_h - 1}" fill="{frame_color(node.name)}" '
                   f'rx="1"/>')
        max_chars = int(w / char_w)
        if max_chars >= 3:
            text = node.name
            if len(text) > max_chars:
                text = text[:max_chars - 2] + ".."
            out.append(f'<text x="{x + 2:.2f}" y="{y + row_h - 5}">'
                       f'{esc(text)}</text>')
        out.append("</g>")
        child_x = x
        # Lexicographic child order keeps the layout stable run to run.
        for name in sorted(node.children):
            child = node.children[name]
            child_w = w * child.total / node.total
            if child.total / total >= min_fraction and child_w >= 0.5:
                emit(child, depth_idx + 1, child_x, child_w)
            child_x += child_w

    emit(root, 0, 10.0, width - 20.0)
    out.append("</svg>")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Speedscope JSON.
# ---------------------------------------------------------------------------


def render_speedscope(stacks, title):
    frame_index = {}
    frame_list = []
    samples = []
    weights = []
    for frames, count in stacks:
        indexed = []
        for frame in frames:
            idx = frame_index.get(frame)
            if idx is None:
                idx = len(frame_list)
                frame_index[frame] = idx
                frame_list.append({"name": frame})
            indexed.append(idx)
        samples.append(indexed)  # Root-first, as speedscope expects.
        weights.append(count)
    total = sum(weights)
    doc = {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frame_list},
        "profiles": [{
            "type": "sampled",
            "name": title,
            "unit": "none",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
        "name": title,
        "exporter": "snb profile_view.py",
    }
    return json.dumps(doc, indent=1) + "\n"


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description="render a folded-stack CPU profile as a flamegraph SVG "
                    "and/or a speedscope JSON document")
    parser.add_argument("folded", help="collapsed-stack input file "
                        "(from --cpu-profile or /profile)")
    parser.add_argument("--svg", metavar="OUT",
                        help="write a flamegraph SVG here")
    parser.add_argument("--speedscope", metavar="OUT",
                        help="write a speedscope JSON profile here")
    parser.add_argument("--title", default="snb cpu profile",
                        help="graph title (default: 'snb cpu profile')")
    parser.add_argument("--width", type=int, default=1200,
                        help="SVG width in px (default 1200)")
    parser.add_argument("--min-percent", type=float, default=0.1,
                        metavar="PCT",
                        help="prune SVG frames below this share of total "
                             "samples (default 0.1)")
    args = parser.parse_args()
    if not args.svg and not args.speedscope:
        print("error: nothing to do — pass --svg and/or --speedscope",
              file=sys.stderr)
        return 2

    try:
        with open(args.folded, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"error: cannot read {args.folded}: {e}", file=sys.stderr)
        return 2
    stacks = parse_folded(text, args.folded)
    total = sum(count for _, count in stacks)

    if args.svg:
        svg = render_svg(stacks, args.title, args.width,
                         args.min_percent / 100.0)
        with open(args.svg, "w", encoding="utf-8") as f:
            f.write(svg)
        print(f"wrote {args.svg} ({len(stacks)} stacks, {total} samples)")
    if args.speedscope:
        doc = render_speedscope(stacks, args.title)
        with open(args.speedscope, "w", encoding="utf-8") as f:
            f.write(doc)
        print(f"wrote {args.speedscope} ({len(stacks)} stacks, "
              f"{total} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
