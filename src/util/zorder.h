// Z-order (Morton) encoding.
//
// The friendship generator's first correlation dimension packs the Z-order
// of the university city's coordinates into bits 31..24 of the sort key
// (paper section 2.3), so that geographically close universities sort close
// together.
#ifndef SNB_UTIL_ZORDER_H_
#define SNB_UTIL_ZORDER_H_

#include <cstdint>

namespace snb::util {

/// Interleaves the low 16 bits of x and y: result bit 2i = x bit i,
/// bit 2i+1 = y bit i.
inline uint32_t MortonInterleave16(uint16_t x, uint16_t y) {
  auto spread = [](uint32_t v) {
    v &= 0xffff;
    v = (v | (v << 8)) & 0x00ff00ff;
    v = (v | (v << 4)) & 0x0f0f0f0f;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

/// Z-order of a lat/long pair quantized to an 8-bit value (4 bits per axis),
/// matching the paper's 8-bit city Z-order field (bits 31-24 of the
/// studied-location dimension key).
inline uint8_t ZOrder8(double latitude, double longitude) {
  // Quantize latitude [-90, 90] and longitude [-180, 180] to 4 bits each.
  double lat01 = (latitude + 90.0) / 180.0;
  double lon01 = (longitude + 180.0) / 360.0;
  if (lat01 < 0.0) lat01 = 0.0;
  if (lat01 > 1.0) lat01 = 1.0;
  if (lon01 < 0.0) lon01 = 0.0;
  if (lon01 > 1.0) lon01 = 1.0;
  auto lat4 = static_cast<uint16_t>(lat01 * 15.0 + 0.5);
  auto lon4 = static_cast<uint16_t>(lon01 * 15.0 + 0.5);
  return static_cast<uint8_t>(MortonInterleave16(lat4, lon4) & 0xff);
}

/// Builds the studied-location correlation-dimension key of the paper:
/// city Z-order in bits 31-24, university id in bits 23-12, study year in
/// bits 11-0.
inline uint32_t StudyLocationKey(uint8_t city_zorder, uint16_t university_id,
                                 uint16_t study_year) {
  return (static_cast<uint32_t>(city_zorder) << 24) |
         (static_cast<uint32_t>(university_id & 0x0fff) << 12) |
         static_cast<uint32_t>(study_year & 0x0fff);
}

}  // namespace snb::util

#endif  // SNB_UTIL_ZORDER_H_
