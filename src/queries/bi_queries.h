// SNB-BI workload preview (paper section 1, "SNB-BI").
//
// The Business Intelligence workload is a working draft in the paper:
// queries that touch a large share of all entities ("fact tables"), group
// them along dimensions, and mix in graph predicates and recursion. These
// three queries implement the draft's flavour on the same dataset:
//
//   BI-1  Posting summary: all messages grouped by (year, kind,
//         language) with counts and average length — a pure fact-table
//         rollup (TPC-H style).
//   BI-2  Tag evolution: per tag, post volume in two consecutive time
//         windows and the delta — trend detection over the whole fact
//         table (powered by the same spikes as Figure 2a).
//   BI-3  Country influencers: top persons per country ranked by total
//         likes received on their messages — an aggregation joined
//         through a graph edge (person -> message -> like).
//
// All three run against the graph store under one read snapshot.
#ifndef SNB_QUERIES_BI_QUERIES_H_
#define SNB_QUERIES_BI_QUERIES_H_

#include <cstdint>
#include <vector>

#include "schema/ids.h"
#include "store/graph_store.h"
#include "util/datetime.h"

namespace snb::queries {

using store::GraphStore;

/// BI-1 row: one (year, kind, language) group.
struct Bi1Result {
  int year = 0;
  schema::MessageKind kind = schema::MessageKind::kPost;
  uint32_t language = 0;
  uint64_t message_count = 0;
  double avg_length = 0.0;
};

/// Message rollup by (year, kind, language); sorted by count descending.
std::vector<Bi1Result> BiQuery1PostingSummary(const GraphStore& store);

/// BI-2 row: one tag's volumes in the two windows.
struct Bi2Result {
  schema::TagId tag = 0;
  uint32_t count_window1 = 0;
  uint32_t count_window2 = 0;
  /// |w2 - w1| — the "trending" magnitude.
  uint32_t delta = 0;
};

/// Tag volumes in [start, start+days) vs the following window of equal
/// length, top `limit` by absolute delta.
std::vector<Bi2Result> BiQuery2TagEvolution(const GraphStore& store,
                                            util::TimestampMs window_start,
                                            int window_days, int limit = 20);

/// BI-3 row: an influencer within one country.
struct Bi3Result {
  schema::PlaceId country = schema::kInvalidId32;
  schema::PersonId person = schema::kInvalidId;
  uint64_t likes_received = 0;
  uint64_t messages = 0;
};

/// For each country (by home city), the `per_country` persons with the most
/// likes received. `city_country` maps city -> country.
std::vector<Bi3Result> BiQuery3CountryInfluencers(
    const GraphStore& store,
    const std::vector<schema::PlaceId>& city_country, int per_country = 3);

}  // namespace snb::queries

#endif  // SNB_QUERIES_BI_QUERIES_H_
