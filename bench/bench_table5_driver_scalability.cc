// Table 5 reproduction: driver ops/second vs. number of partitions with a
// sleeping dummy connector (1 ms and 100 us per op), updates only.
// Also runs the execution-mode ablation the paper motivates: per-forum
// sequential streams vs. tracking every dependency through T_GC.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "driver/driver.h"
#include "driver/query_mix.h"
#include "obs/metrics.h"
#include "queries/short_queries.h"

namespace snb::bench {
namespace {

/// Read-path ablation: N reader threads hammer point reads (FindPerson +
/// friend probe — the primitive under every short read) while one writer
/// continuously inserts likes. Measures sustained reads/second per
/// snapshot mode. The paper's premise (section 4.2) is that the driver is
/// only as fast as the SUT lets concurrent clients be; a global reader
/// lock caps exactly this number.
std::atomic<uint64_t> ablation_sink{0};

double RunReadAblation(store::ReadConcurrency mode, int reader_threads,
                       std::chrono::milliseconds window) {
  std::unique_ptr<BenchWorld> world = MakeWorld(kMediumSf, true, true, mode);
  store::GraphStore& store = world->store;
  std::vector<schema::PersonId> persons;
  {
    auto pin = store.ReadLock();
    persons = store.PersonIds(pin);
  }
  const schema::MessageId message_bound = store.MessageIdBound();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&, t] {
      // Point lookups over a small window of persons: the loop body is a
      // FindPerson (directory + chunk + ready check), so per-op snapshot
      // acquisition is what the measurement weighs — the same cost every
      // short read pays once per driver operation.
      size_t kWindowMask = 1;
      while ((kWindowMask << 1) <= persons.size() && kWindowMask < 64) {
        kWindowMask <<= 1;
      }
      --kWindowMask;
      uint64_t reads = 0;
      uint64_t sink = 0;
      size_t cursor = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        schema::PersonId pid = persons[cursor & kWindowMask];
        ++cursor;
        auto pin = store.ReadLock();
        sink += store.FindPerson(pin, pid) != nullptr;
        ++reads;
      }
      ablation_sink.fetch_add(sink & 1, std::memory_order_relaxed);
      total_reads.fetch_add(reads, std::memory_order_relaxed);
    });
  }

  // Writer: sustained like insertions (duplicates still pay the full
  // write-lock round trip, so pressure is constant once the space fills).
  auto start = std::chrono::steady_clock::now();
  uint64_t writes = 0;
  while (std::chrono::steady_clock::now() - start < window) {
    schema::Like like;
    like.person_id = persons[writes % persons.size()];
    like.message_id = (writes * 7) % (message_bound == 0 ? 1 : message_bound);
    like.creation_date = 4102444800000 + static_cast<int64_t>(writes);
    (void)store.AddLike(like);
    ++writes;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return static_cast<double>(total_reads.load()) / seconds;
}

/// Metrics-overhead ablation: the same read+update workload replayed
/// through the real StoreConnector at 8 partitions (8 worker threads),
/// with the full instrumentation enabled (per-operation Stopwatch +
/// histogram sample, driver counters, lag recording) vs with metrics
/// disconnected. This is the end-to-end question the 5%-budget answers:
/// does observing the benchmark change the benchmark? The record path in
/// isolation (~20ns, flat from 1 to 8 threads) is in bench_micro_store.
struct AblationSample {
  double ops_per_second = 0;
  double cpu_us_per_op = 0;
};

/// One ablation sample: replays a prepared (read-only, so the store is
/// immutable and the workload reusable) operation stream through the real
/// StoreConnector at 8 partitions, metrics wired or disconnected.
AblationSample RunStoreMetricsAblation(BenchWorld& world,
                                       const std::vector<driver::Operation>& ops,
                                       bool with_metrics) {
  obs::MetricsRegistry metrics;
  driver::StoreConnector connector(&world.store, &world.dataset.updates,
                                   world.dictionaries.get(),
                                   with_metrics ? &metrics : nullptr);
  driver::DriverConfig config;
  config.num_partitions = 8;
  if (with_metrics) config.metrics = &metrics;
  // std::clock() sums CPU across all threads of the process; on a box where
  // worker threads outnumber cores, CPU-per-op is the stable measure of
  // added work (wall throughput is dominated by scheduler noise).
  std::clock_t cpu_before = std::clock();
  driver::DriverReport report = driver::RunWorkload(ops, connector, config);
  std::clock_t cpu_after = std::clock();
  if (report.operations_failed != 0) {
    std::fprintf(stderr, "failures: %s\n", report.first_error.c_str());
  }
  AblationSample sample;
  sample.ops_per_second = report.ops_per_second;
  double cpu_us = 1e6 * static_cast<double>(cpu_after - cpu_before) /
                  CLOCKS_PER_SEC;
  sample.cpu_us_per_op =
      report.operations_executed == 0
          ? 0
          : cpu_us / static_cast<double>(report.operations_executed);
  return sample;
}

double RunOnce(const std::vector<driver::Operation>& ops,
               int64_t sleep_micros, uint32_t partitions,
               driver::ExecutionMode mode) {
  driver::SleepingConnector connector(sleep_micros);
  driver::DriverConfig config;
  config.num_partitions = partitions;
  config.mode = mode;
  driver::DriverReport report =
      driver::RunWorkload(ops, connector, config);
  if (report.operations_failed != 0) {
    std::fprintf(stderr, "failures: %s\n", report.first_error.c_str());
  }
  return report.ops_per_second;
}

void RunMetricsOverheadSection() {
  PrintHeader("Ablation — metrics overhead, read workload at 8 partitions");
  constexpr int kTrials = 3;
  // Read-only mix: the store stays immutable, so one world and one
  // operation stream serve every sample, and the stream can be replicated
  // until a sample runs long enough to average out scheduler phases
  // (reads carry no dependency times, so replaying past due times is safe
  // — MarkTime is monotone and ignores stale marks).
  std::unique_ptr<BenchWorld> world = MakeWorld(kMediumSf, false, true);
  driver::QueryMixConfig mix;
  mix.include_updates = false;
  driver::Workload workload =
      driver::BuildWorkload(world->dataset, *world->dictionaries, mix);
  std::vector<driver::Operation> ops = workload.operations;
  constexpr size_t kMinOpsPerSample = 60000;
  while (!workload.operations.empty() && ops.size() < kMinOpsPerSample) {
    ops.insert(ops.end(), workload.operations.begin(),
               workload.operations.end());
  }
  // One discarded warmup run (allocator growth, page faults), then
  // alternate which mode goes first each trial: slow drift (heap reuse,
  // frequency scaling) would otherwise systematically favor whichever
  // side always ran second.
  (void)RunStoreMetricsAblation(*world, ops, false);
  double off_rate = 0, on_rate = 0;
  double off_cpu = 1e18, on_cpu = 1e18;
  for (int i = 0; i < 2 * kTrials; ++i) {
    bool with = (i % 4 == 1 || i % 4 == 2);  // off,on,on,off,off,on,...
    AblationSample s = RunStoreMetricsAblation(*world, ops, with);
    std::printf("  sample %d (%s): %8.0f ops/s  %6.2f cpu-us/op\n", i,
                with ? "on " : "off", s.ops_per_second, s.cpu_us_per_op);
    if (with) {
      on_rate = std::max(on_rate, s.ops_per_second);
      on_cpu = std::min(on_cpu, s.cpu_us_per_op);
    } else {
      off_rate = std::max(off_rate, s.ops_per_second);
      off_cpu = std::min(off_cpu, s.cpu_us_per_op);
    }
  }
  double overhead_pct = 100.0 * (on_cpu - off_cpu) / off_cpu;
  std::printf("  %-22s %14s %14s\n", "metrics", "driver ops/s", "cpu-us/op");
  std::printf("  %-22s %14.0f %14.2f\n", "off", off_rate, off_cpu);
  std::printf("  %-22s %14.0f %14.2f\n", "on (full instr.)", on_rate, on_cpu);
  std::printf("  overhead (cpu/op): %.1f%%  (acceptance ceiling: 5%%)\n",
              overhead_pct);
  std::printf(
      "  Shape to check: the full per-operation instrumentation (one\n"
      "  Stopwatch plus one lock-free histogram sample per op, driver\n"
      "  counters, lag recording) is invisible next to microsecond-scale\n"
      "  operations — well under the 5%% budget, i.e. observing the\n"
      "  benchmark does not change the benchmark. The gate is CPU cost\n"
      "  per operation (min over trials per side): with more worker\n"
      "  threads than cores, wall throughput swings +/-8%% run to run on\n"
      "  scheduler noise alone, while added work shows up in CPU time\n"
      "  regardless of interleaving. bench_micro_store has the isolated\n"
      "  record path (~20ns, flat from 1 to 8 threads).\n\n");
}

void Run() {
  PrintHeader("Table 5 — driver op/second vs #partitions (sleep connector)");

  // Update-only workload, as in the paper ("the chosen workload consists
  // only of the SNB-Interactive updates").
  std::unique_ptr<BenchWorld> world = MakeWorld(kLargeSf, false, true);
  driver::QueryMixConfig mix;
  mix.include_complex_reads = false;
  driver::Workload workload =
      driver::BuildWorkload(world->dataset, *world->dictionaries, mix);
  std::printf("  update stream: %zu operations\n\n",
              workload.operations.size());

  std::vector<uint32_t> partition_counts = {1, 2, 4, 8, 12};
  std::printf("  %-12s", "partitions:");
  for (uint32_t p : partition_counts) std::printf("%9u", p);
  std::printf("\n");
  for (int64_t sleep_us : {1000, 100}) {
    // Cap the replayed prefix so the single-partition run stays ~5 s.
    size_t cap = sleep_us == 1000 ? 5000 : 40000;
    std::vector<driver::Operation> ops(
        workload.operations.begin(),
        workload.operations.begin() +
            std::min(cap, workload.operations.size()));
    std::printf("  %-12s",
                sleep_us == 1000 ? "1ms" : "100us");
    for (uint32_t p : partition_counts) {
      double rate = RunOnce(ops, sleep_us, p,
                            driver::ExecutionMode::kSequentialForum);
      std::printf("%9.0f", rate);
    }
    std::printf("\n");
  }
  std::printf(
      "\n  Paper Table 5 (SF10, 32M ops):\n"
      "    1ms   :   997  1990  3969  7836  11298\n"
      "    100us :  9745 19245 38285 78913 110837\n"
      "  Shape to check: near-linear scaling with partition count at both\n"
      "  sleep durations despite inter-partition dependencies.\n");

  PrintHeader("Ablation — execution mode at 8 partitions, 100us connector");
  std::vector<driver::Operation> ablation_ops(
      workload.operations.begin(),
      workload.operations.begin() +
          std::min<size_t>(40000, workload.operations.size()));
  std::printf("  %-18s %10s %14s %14s\n", "mode", "ops/s",
              "deps tracked", "T_GC waits");
  for (driver::ExecutionMode mode :
       {driver::ExecutionMode::kSequentialForum,
        driver::ExecutionMode::kParallelGct,
        driver::ExecutionMode::kWindowed}) {
    driver::SleepingConnector connector(100);
    driver::DriverConfig config;
    config.num_partitions = 8;
    config.mode = mode;
    driver::DriverReport r =
        driver::RunWorkload(ablation_ops, connector, config);
    std::printf("  %-18s %10.0f %14llu %14llu\n",
                driver::ExecutionModeName(mode), r.ops_per_second,
                (unsigned long long)r.dependencies_tracked,
                (unsigned long long)r.dependent_waits);
  }
  std::printf(
      "  Shape to check: per-forum sequential streams capture intra-forum\n"
      "  dependencies implicitly, so they register orders of magnitude\n"
      "  fewer operations with the dependency services than tracking every\n"
      "  update through T_GC; windowed execution removes per-op T_GC waits\n"
      "  entirely (one barrier per T_SAFE of simulation time).\n\n");

  PrintHeader("Ablation — read-path snapshot mode, 8 readers + live writer");
  constexpr int kReaderThreads = 8;
  constexpr int kTrials = 3;  // Best-of: scheduler noise dwarfs run cost.
  constexpr std::chrono::milliseconds kWindow(1500);
  double epoch_rate = 0, lock_rate = 0;
  for (int i = 0; i < kTrials; ++i) {
    epoch_rate = std::max(
        epoch_rate, RunReadAblation(store::ReadConcurrency::kEpoch,
                                    kReaderThreads, kWindow));
    lock_rate = std::max(
        lock_rate, RunReadAblation(store::ReadConcurrency::kGlobalLock,
                                   kReaderThreads, kWindow));
  }
  std::printf("  %-22s %14s\n", "mode", "point reads/s");
  std::printf("  %-22s %14.0f\n", "epoch (default)", epoch_rate);
  std::printf("  %-22s %14.0f\n", "global shared_mutex", lock_rate);
  std::printf("  speedup: %.2fx  (acceptance floor: 1.50x)\n",
              epoch_rate / lock_rate);
  std::printf(
      "  Shape to check: with the global reader-writer lock every point\n"
      "  read pays two contended RMWs plus futex blocking whenever the\n"
      "  writer holds the mutex; the epoch pin is two uncontended stores\n"
      "  on a thread-private cache line, so read throughput no longer\n"
      "  collapses under a live update stream.\n\n");

  RunMetricsOverheadSection();
}

}  // namespace
}  // namespace snb::bench

int main(int argc, char** argv) {
  // --only-metrics: run just the metrics-overhead ablation (iteration aid;
  // the full run takes minutes).
  if (argc > 1 && std::string_view(argv[1]) == "--only-metrics") {
    snb::bench::RunMetricsOverheadSection();
    return 0;
  }
  snb::bench::Run();
  return 0;
}
