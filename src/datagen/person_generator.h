// Person generation stage (paper section 2.4, "person generation").
//
// Each worker generates a disjoint range of persons; every attribute is a
// pure function of (seed, person id), so the output is identical for any
// thread count. All Table 1 attribute correlations that involve only the
// person entity are realized here:
//   location -> firstName/lastName (typical names), university (nearby),
//   company (in country), languages (spoken in country), interests (popular
//   in country), employer -> email, birthday < createdDate.
#ifndef SNB_DATAGEN_PERSON_GENERATOR_H_
#define SNB_DATAGEN_PERSON_GENERATOR_H_

#include <vector>

#include "datagen/config.h"
#include "schema/dictionaries.h"
#include "schema/entities.h"
#include "util/thread_pool.h"

namespace snb::datagen {

/// Generates the `num_persons` people of the network in parallel.
std::vector<schema::Person> GeneratePersons(
    const DatagenConfig& config, const schema::Dictionaries& dictionaries,
    util::ThreadPool& pool);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_PERSON_GENERATOR_H_
