// Single-writer append-mostly vector with lock-free snapshot reads.
//
// The store's adjacency lists (friend lists, per-creator message lists,
// forum members, likes) are insert-only and read by many query threads at
// once. RcuVector publishes a buffer whose header carries its own element
// count, so a reader obtains a consistent (data, size) snapshot with one
// pointer chase and no lock:
//
//   * append: the element is written into reserved capacity *before* the
//     buffer-local size is bumped with a release store, so a reader that
//     observes the new size also observes the element (capacity doubles on
//     growth; the old buffer is retired through the EpochManager);
//   * insert_sorted: always copy-on-write — a fully built replacement
//     buffer is published with a release store, because shifting elements
//     in place would tear concurrent readers.
//
// Because size lives inside the buffer, a reader can never pair a stale
// size with a different buffer — the snapshot is per-object atomic. The
// writer must be externally serialized (the store's writer mutex).
//
// Readers must hold an EpochPin for as long as they dereference a View;
// the guard is what keeps retired buffers alive.
#ifndef SNB_UTIL_RCU_VECTOR_H_
#define SNB_UTIL_RCU_VECTOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

#include "util/epoch.h"

namespace snb::util {

template <typename T>
class RcuVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "RcuVector elements are memcpy'd between buffers and freed "
                "without destruction");

 public:
  /// An immutable (data, size) snapshot. Valid while the reader's
  /// EpochPin is held (or, for writers/quiescent code, indefinitely
  /// until the vector is mutated).
  class View {
   public:
    View() = default;
    View(const T* data, size_t size) : data_(data), size_(size) {}
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }
    const T* data() const { return data_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const T& operator[](size_t i) const { return data_[i]; }
    const T& front() const { return data_[0]; }
    const T& back() const { return data_[size_ - 1]; }

   private:
    const T* data_ = nullptr;
    size_t size_ = 0;
  };

  RcuVector() = default;
  RcuVector(const RcuVector&) = delete;
  RcuVector& operator=(const RcuVector&) = delete;
  ~RcuVector() {
    // Destruction implies quiescence; retired buffers are owned by the
    // epoch manager, only the live one is freed here.
    Buffer* b = buf_.load(std::memory_order_relaxed);
    if (b != nullptr) FreeBuffer(b);
  }

  /// Consistent snapshot: one acquire load of the buffer pointer, one
  /// acquire load of the buffer-resident size.
  View view() const {
    const Buffer* b = buf_.load(std::memory_order_acquire);
    if (b == nullptr) return View();
    return View(b->data(), b->size.load(std::memory_order_acquire));
  }

  size_t size() const { return view().size(); }
  bool empty() const { return size() == 0; }
  /// Single-element access through a fresh snapshot. `i` must be below a
  /// size obtained earlier from this vector (sizes only grow).
  const T& operator[](size_t i) const {
    return buf_.load(std::memory_order_acquire)->data()[i];
  }

  // ---- Writer API (externally serialized) -------------------------------

  void push_back(const T& value, EpochManager& epoch) {
    Buffer* b = buf_.load(std::memory_order_relaxed);
    size_t n = b == nullptr ? 0 : b->size.load(std::memory_order_relaxed);
    if (b == nullptr || n == b->capacity) {
      b = Grow(b, n, epoch);
    }
    b->data()[n] = value;
    b->size.store(n + 1, std::memory_order_release);
  }

  /// Copy-on-write insertion keeping `less` order (stable for equals:
  /// inserts after the last equal element). Appends in place when the value
  /// sorts last — the common case for datagen's mostly-ordered edge
  /// streams.
  template <typename Less>
  void insert_sorted(const T& value, Less less, EpochManager& epoch) {
    Buffer* old = buf_.load(std::memory_order_relaxed);
    size_t n = old == nullptr ? 0 : old->size.load(std::memory_order_relaxed);
    const T* src = old == nullptr ? nullptr : old->data();
    size_t pos = std::upper_bound(src, src + n, value, less) - src;
    if (pos == n) {
      push_back(value, epoch);
      return;
    }
    size_t cap = old->capacity < n + 1 ? old->capacity * 2 : old->capacity;
    Buffer* fresh = AllocBuffer(cap);
    if (pos > 0) std::memcpy(fresh->data(), src, pos * sizeof(T));
    fresh->data()[pos] = value;
    std::memcpy(fresh->data() + pos + 1, src + pos, (n - pos) * sizeof(T));
    fresh->size.store(n + 1, std::memory_order_relaxed);
    buf_.store(fresh, std::memory_order_release);
    RetireBuffer(old, epoch);
  }

  /// Allocated element capacity in bytes (storage accounting).
  size_t capacity_bytes() const {
    const Buffer* b = buf_.load(std::memory_order_acquire);
    return b == nullptr ? 0 : b->capacity * sizeof(T);
  }

 private:
  static constexpr size_t kMinCapacity = 4;

  struct Buffer {
    size_t capacity;
    std::atomic<size_t> size;

    T* data() { return reinterpret_cast<T*>(this + 1); }
    const T* data() const { return reinterpret_cast<const T*>(this + 1); }
  };
  static_assert(alignof(T) <= alignof(Buffer),
                "element alignment exceeds buffer header alignment");

  static Buffer* AllocBuffer(size_t capacity) {
    void* raw = ::operator new(sizeof(Buffer) + capacity * sizeof(T));
    Buffer* b = new (raw) Buffer;
    b->capacity = capacity;
    b->size.store(0, std::memory_order_relaxed);
    return b;
  }

  static void FreeBuffer(Buffer* b) {
    b->~Buffer();
    ::operator delete(static_cast<void*>(b));
  }

  static void RetireBuffer(Buffer* b, EpochManager& epoch) {
    epoch.Retire(static_cast<void*>(b), [](void* p) {
      FreeBuffer(static_cast<Buffer*>(p));
    });
  }

  Buffer* Grow(Buffer* old, size_t n, EpochManager& epoch) {
    size_t cap = old == nullptr ? kMinCapacity : old->capacity * 2;
    Buffer* fresh = AllocBuffer(cap);
    if (n > 0) std::memcpy(fresh->data(), old->data(), n * sizeof(T));
    fresh->size.store(n, std::memory_order_relaxed);
    buf_.store(fresh, std::memory_order_release);
    if (old != nullptr) RetireBuffer(old, epoch);
    return fresh;
  }

  std::atomic<Buffer*> buf_{nullptr};
};

}  // namespace snb::util

#endif  // SNB_UTIL_RCU_VECTOR_H_
