// Golden validation sets: record-and-replay correctness checking.
//
// A golden set captures, for a fixed datagen seed, the canonical results of
// a deterministic read battery executed at several points along the update
// stream ("segments"): once against the freshly bulk-loaded store and once
// after each contiguous chunk of updates has been applied. Emission runs
// everything serially — one thread, updates applied in stream order via
// queries::ApplyUpdate — so the recorded rows are the ground truth the
// single-writer store semantics define.
//
// Replay regenerates the same dataset, re-executes each update segment
// through the real driver at any thread count and execution mode, re-runs
// the identical battery (optionally on a thread pool) and diffs every
// canonical row against the recording. Any divergence — a row lost to a
// racy adjacency publish, an out-of-order update application changing a
// sort key, a nondeterministic tie-break — is reported with full context:
// segment, operation, parameter rendering, row index, expected vs actual.
//
// The golden file ("snb-validation-v1") stores only canonical strings plus
// the generation parameters, so it is stable across platforms and versions
// as long as query semantics are unchanged; a semantic change shows up as a
// reviewable diff of the regenerated file.
#ifndef SNB_VALIDATE_GOLDEN_H_
#define SNB_VALIDATE_GOLDEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "driver/driver.h"
#include "obs/metrics.h"
#include "schema/dictionaries.h"
#include "util/status.h"

namespace snb::validate {

/// One recorded battery operation: a dotted op name, a human-readable
/// parameter rendering, and the canonical result rows in returned order.
struct GoldenOp {
  std::string op;      // "complex.Q1", "short.S4", ...
  std::string params;  // "person=42 name=Hans" — diagnostic only.
  std::vector<std::string> rows;
};

/// Battery recording at one point of the update stream.
struct GoldenSegment {
  /// Updates [0, updates_end) of the stream were applied before recording.
  uint64_t updates_end = 0;
  // Store occupancy digest at recording time: catches lost or duplicated
  // updates even when no battery probe happens to touch them.
  uint64_t num_persons = 0;
  uint64_t num_knows = 0;
  uint64_t num_forums = 0;
  uint64_t num_memberships = 0;
  uint64_t num_messages = 0;
  uint64_t num_likes = 0;
  std::vector<GoldenOp> operations;
};

/// A complete versioned golden validation set.
struct GoldenSet {
  uint64_t seed = 0;
  uint64_t num_persons = 0;
  std::vector<GoldenSegment> segments;
};

/// Emission knobs.
struct GoldenEmitOptions {
  uint64_t seed = 0x5eedULL;
  uint64_t num_persons = 200;
  /// Number of update segments; the emitted set has this many plus the
  /// bulk-only segment 0.
  int num_segments = 4;
};

/// Runs the serial reference execution and fills `*out`.
util::Status EmitGoldenSet(const GoldenEmitOptions& options, GoldenSet* out);

/// Serialization round-trip ("snb-validation-v1").
std::string GoldenSetToJson(const GoldenSet& golden);
util::Status GoldenSetFromJson(const std::string& json, GoldenSet* out);
util::Status WriteGoldenSet(const GoldenSet& golden, const std::string& path);
util::Status ReadGoldenSet(const std::string& path, GoldenSet* out);

/// Replay knobs.
struct ReplayOptions {
  /// Driver partitions for update segments and battery pool width.
  uint32_t threads = 1;
  driver::ExecutionMode mode = driver::ExecutionMode::kSequentialForum;
  /// Store shard count for the replayed store (1..store::kMaxShards).
  /// Results must be byte-identical at every count — the emission is
  /// always serial single-shard, so any routing- or snapshot-dependent
  /// divergence in the sharded store shows up as a diff.
  uint32_t shards = 1;
  /// Optional: update-operation latencies of the replayed segments are
  /// recorded here (feeds the report.json "ops" table of validate_run).
  obs::MetricsRegistry* metrics = nullptr;
  /// Testing hook (mutation test): every replayed result for this dotted op
  /// name is corrupted before diffing, so the replay MUST report a
  /// divergence. Empty = disabled.
  std::string mutate_op;
};

/// First recorded divergence of a replay.
struct Divergence {
  int segment = 0;
  uint64_t op_index = 0;
  std::string op;
  std::string params;
  /// Row index of the first differing row (min of the two row counts when
  /// one side has extra rows).
  uint64_t row = 0;
  std::string expected;  // "<absent>" when the replay produced extra rows.
  std::string actual;    // "<absent>" when the replay lost rows.
};

/// Outcome of a replay; `error` is non-empty only for setup/driver
/// failures (not result mismatches).
struct ReplayOutcome {
  bool passed = false;
  uint64_t segments_compared = 0;
  uint64_t ops_compared = 0;
  uint64_t rows_compared = 0;
  uint64_t diffs = 0;
  Divergence first;  // Meaningful only when diffs > 0.
  std::string error;
};

/// Regenerates the dataset from the golden set's parameters and replays.
util::Status ReplayGoldenSet(const GoldenSet& golden,
                             const ReplayOptions& options,
                             ReplayOutcome* out);

/// Replay against a caller-provided dataset/dictionaries pair (must come
/// from the golden set's seed and person count — checked). Lets tests
/// amortize generation across several replays.
util::Status ReplayGoldenSetWith(const GoldenSet& golden,
                                 const datagen::Dataset& dataset,
                                 const schema::Dictionaries& dictionaries,
                                 const ReplayOptions& options,
                                 ReplayOutcome* out);

}  // namespace snb::validate

#endif  // SNB_VALIDATE_GOLDEN_H_
