#include "validate/json_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace snb::validate::jsonio {
namespace {

util::Status FieldError(const char* what, const char* key,
                        const char* problem) {
  return util::Status::InvalidArgument(std::string(what) + ": field \"" + key +
                                       "\" " + problem);
}

}  // namespace

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendKey(std::string* out, const char* key) {
  AppendEscaped(out, key);
  out->push_back(':');
}

void AppendU64Field(std::string* out, const char* key, uint64_t v) {
  AppendKey(out, key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64Field(std::string* out, const char* key, int64_t v) {
  AppendKey(out, key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void AppendU64StrField(std::string* out, const char* key, uint64_t v) {
  AppendKey(out, key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->push_back('"');
  *out += buf;
  out->push_back('"');
}

util::Status GetU64(const obs::JsonValue& obj, const char* key, uint64_t* out,
                    const char* what) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr) return FieldError(what, key, "is missing");
  if (v->kind == obs::JsonValue::Kind::kNumber) {
    *out = static_cast<uint64_t>(v->number);
    return util::Status::Ok();
  }
  if (v->kind == obs::JsonValue::Kind::kString) {
    *out = std::strtoull(v->string.c_str(), nullptr, 10);
    return util::Status::Ok();
  }
  return FieldError(what, key, "is not a number");
}

util::Status GetI64(const obs::JsonValue& obj, const char* key, int64_t* out,
                    const char* what) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr) return FieldError(what, key, "is missing");
  if (v->kind == obs::JsonValue::Kind::kNumber) {
    *out = static_cast<int64_t>(v->number);
    return util::Status::Ok();
  }
  if (v->kind == obs::JsonValue::Kind::kString) {
    *out = std::strtoll(v->string.c_str(), nullptr, 10);
    return util::Status::Ok();
  }
  return FieldError(what, key, "is not a number");
}

util::Status GetString(const obs::JsonValue& obj, const char* key,
                       std::string* out, const char* what) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kString) {
    return FieldError(what, key, "is missing or not a string");
  }
  *out = v->string;
  return util::Status::Ok();
}

util::Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::NotFound("cannot open " + path);
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return util::Status::Internal("read error on " + path);
  return util::Status::Ok();
}

}  // namespace snb::validate::jsonio
