// Tests for intermediate-result recycling (section 3 choke point).
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/complex_queries.h"
#include "queries/recycler.h"
#include "store/graph_store.h"

namespace snb::queries {
namespace {

class RecyclerTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    store::GraphStore store;
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 200;
      config.split_update_stream = false;
      world->dataset = datagen::Generate(config);
      EXPECT_TRUE(world->store.BulkLoad(world->dataset.bulk).ok());
      return world;
    }();
    return *w;
  }
};

TEST_F(RecyclerTest, HitsOnRepeatMissOnFirst) {
  TwoHopRecycler recycler;
  auto first = recycler.Get(world().store, 5);
  EXPECT_EQ(recycler.misses(), 1u);
  EXPECT_EQ(recycler.hits(), 0u);
  auto second = recycler.Get(world().store, 5);
  EXPECT_EQ(recycler.hits(), 1u);
  EXPECT_EQ(first.get(), second.get());  // Same recycled object.
  EXPECT_EQ(*first, TwoHopCircle(world().store, 5));
}

TEST_F(RecyclerTest, RecycledQuery9MatchesPlain) {
  TwoHopRecycler recycler;
  util::TimestampMs mid = util::kNetworkStartMs + 24 * util::kMillisPerMonth;
  for (schema::PersonId p : {0u, 17u, 42u, 99u}) {
    auto plain = Query9(world().store, p, mid);
    auto recycled = Query9Recycled(world().store, recycler, p, mid);
    auto recycled_again = Query9Recycled(world().store, recycler, p, mid);
    ASSERT_EQ(plain.size(), recycled.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].message_id, recycled[i].message_id);
      EXPECT_EQ(recycled[i].message_id, recycled_again[i].message_id);
    }
  }
  EXPECT_GT(recycler.hits(), 0u);
}

TEST_F(RecyclerTest, FriendshipUpdateInvalidates) {
  // Fresh store so the mutation does not disturb the shared fixture.
  store::GraphStore store;
  for (schema::PersonId id = 0; id < 10; ++id) {
    schema::Person p;
    p.id = id;
    p.creation_date = 1000;
    ASSERT_TRUE(store.AddPerson(p).ok());
  }
  ASSERT_TRUE(store.AddFriendship({0, 1, 2000}).ok());
  ASSERT_TRUE(store.AddFriendship({1, 2, 2000}).ok());

  TwoHopRecycler recycler;
  auto before = recycler.Get(store, 0);
  EXPECT_EQ(*before, (std::vector<schema::PersonId>{1, 2}));

  // New edge extends 0's 2-hop circle through 2 -> 3.
  ASSERT_TRUE(store.AddFriendship({2, 3, 3000}).ok());
  auto after = recycler.Get(store, 0);
  EXPECT_EQ(recycler.misses(), 2u) << "version bump must invalidate";
  EXPECT_EQ(*after, (std::vector<schema::PersonId>{1, 2}));

  ASSERT_TRUE(store.AddFriendship({0, 5, 3500}).ok());
  auto extended = recycler.Get(store, 0);
  EXPECT_EQ(*extended, (std::vector<schema::PersonId>{1, 2, 5}));
}

TEST_F(RecyclerTest, CapacityEvictionStillCorrect) {
  TwoHopRecycler recycler(/*capacity=*/4);
  for (schema::PersonId p = 0; p < 20; ++p) {
    auto circle = recycler.Get(world().store, p);
    EXPECT_EQ(*circle, TwoHopCircle(world().store, p));
  }
  // All 20 distinct persons with capacity 4: mostly misses, never wrong.
  EXPECT_GE(recycler.misses(), 16u);
}

}  // namespace
}  // namespace snb::queries
