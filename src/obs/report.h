// Machine-readable run reports: report.json + Prometheus-style text dump.
//
// The LDBC SNB audit rules (arXiv:2001.02299 sec. 7; Interactive v2,
// arXiv:2307.04820) require drivers to publish per-operation-type
// percentile latencies and sustained-throughput evidence as artifacts, not
// stdout prose. RunReport is the artifact: a MetricsSnapshot (per-op
// p50/p90/p95/p99/max, counters, gauges — the layout of Tables 6/7/9),
// optionally a driver section (throughput, scheduling-lag time series), a
// schedule-compliance audit (LDBC-style on-time-fraction pass/fail with a
// lateness histogram and per-op worst offenders) and a Q9 per-operator
// profile (the Figure 4 choke point).
//
// The JSON schema ("snb-report-v5") is stable and self-validating:
// ValidateReportJson re-parses an emitted document and checks structural
// invariants (non-empty op table, monotone percentiles, compliance
// consistency), which is what the bench smoke mode in scripts/check.sh
// runs. Each version is a strict superset of its predecessor — every
// field keeps its name and shape; v2 added the optional "compliance"
// section, v3 the optional "validation" section (golden-replay outcome,
// see src/validate/golden.h), v4 the optional "provenance", "perf",
// "dossiers" and "trace" sections plus hardware-counter fields (ipc,
// cycles_per_op, ...) on op and q9_profile rows, and v5 adds the
// optional "profile" section (sampling-profiler accounting + top frames
// per op, see src/obs/prof.h) — and the validator still accepts v1–v4
// documents, so pre-existing readers and archived baselines keep
// working. A deliberately small JSON parser is exposed for tests and
// validation; it handles exactly what the writer emits (objects,
// arrays, strings, finite numbers, bools, null).
#ifndef SNB_OBS_REPORT_H_
#define SNB_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/dossier.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/status.h"

namespace snb::obs {

// ---- Minimal JSON value / parser (for validation & tests) ----------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses a complete JSON document. On failure returns false and describes
/// the problem in *error (byte offset + reason).
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// ---- Report assembly ------------------------------------------------------

/// Driver-level outcome mirrored from driver::DriverReport (obs cannot
/// depend on the driver; the driver converts).
struct DriverSection {
  uint64_t operations_executed = 0;
  uint64_t operations_failed = 0;
  double elapsed_seconds = 0.0;
  double ops_per_second = 0.0;
  double max_schedule_lag_ms = 0.0;
  bool sustained = true;
  uint64_t dependencies_tracked = 0;
  uint64_t dependent_waits = 0;
  /// Scheduling-lag time series: (elapsed real second, max lag ms within
  /// that second). Sustained-throughput evidence over the whole run.
  std::vector<std::pair<double, double>> lag_timeline_ms;
};

/// Per-op-type compliance row ("worst offenders" table).
struct ComplianceOpEntry {
  std::string op;           // Stable dotted name ("complex.Q9").
  uint64_t scheduled = 0;   // Operations with a throttled schedule.
  uint64_t late = 0;        // Started later than the lateness window.
  double max_late_ms = 0.0; // Worst observed lateness.
};

/// Schedule-compliance audit of a throttled run: did operations start at
/// their scheduled simulation time? Mirrors the LDBC driver's validation
/// rule — a run passes when at least `required_on_time_fraction` of
/// scheduled operations start within `window_ms` of their schedule.
struct ComplianceSection {
  double window_ms = 0.0;
  double required_on_time_fraction = 0.0;
  uint64_t scheduled_ops = 0;
  uint64_t on_time_ops = 0;
  double on_time_fraction = 1.0;
  bool passed = true;
  /// Lateness histogram over all scheduled ops: (bucket lower edge in ms,
  /// count). Zero-count buckets are omitted; on-time ops land in the
  /// low buckets, so the histogram always sums to scheduled_ops.
  std::vector<std::pair<double, uint64_t>> lateness_histogram_ms;
  /// Per-op-type rows with at least one scheduled execution, sorted by
  /// max lateness descending — the worst offenders lead.
  std::vector<ComplianceOpEntry> per_op;
};

/// One operator row of a physical-plan profile.
struct OperatorEntry {
  std::string name;
  OperatorStats stats;
};

/// Per-operator profile of a Q9 plan execution (Figure 4).
struct Q9ProfileSection {
  std::string plan;  // e.g. "INL-INL-HASH (intended)".
  std::vector<OperatorEntry> operators;
};

/// Outcome of a golden-set replay (tools/validate_run). Mirrors
/// snb::validate::ReplayOutcome — obs cannot depend on the validate layer,
/// so the tool converts. New in schema v3.
struct ValidationSection {
  bool passed = false;
  std::string golden_path;
  uint64_t threads = 0;
  std::string mode;  // driver::ExecutionModeName rendering.
  uint64_t segments_compared = 0;
  uint64_t ops_compared = 0;
  uint64_t rows_compared = 0;
  uint64_t diffs = 0;
  /// Human-readable first divergence; empty when the replay passed.
  std::string first_divergence;
};

/// Build/run provenance stamped into every report so counter numbers are
/// comparable across machines and configs. New in schema v4.
struct ProvenanceSection {
  std::string git_sha;     // HEAD at configure time; "unknown" outside git.
  std::string compiler;    // e.g. "GNU 13.2.0".
  std::string build_type;  // CMAKE_BUILD_TYPE; may be empty.
  bool simd = false;       // SNB_SIMD at build time.
  std::string sanitizer;   // SNB_SANITIZE value or "none".
};

/// Provenance captured at build time (CMake stamps the values in as
/// compile definitions on the obs library).
ProvenanceSection BuildProvenance();

/// Hardware-counter subsystem outcome for the run. New in schema v4.
struct PerfSection {
  std::string backend;  // perf::BackendName: disabled / noop / linux.
  bool counters_available = false;
  std::string message;  // perf::BackendMessage at report time.
};

/// PerfSection describing the perf backend's current state.
PerfSection CurrentPerfSection();

/// Trace-buffer accounting: how much of the run trace was retained and,
/// per lane, how much a wrapped ring dropped. New in schema v4.
struct TraceStatsSection {
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  struct LaneRow {
    uint32_t lane = 0;
    uint64_t recorded = 0;
    uint64_t retained = 0;
    uint64_t dropped = 0;
  };
  std::vector<LaneRow> lanes;
};

/// Sampling-CPU-profiler outcome: backend state, conserved sample
/// accounting and the hottest frames per operation type. New in schema
/// v5. The accounting invariants (captured == attributed + unattributed
/// + dropped, self-overhead bounded by task-clock) are checked by
/// ValidateReportJson and gated by scripts/compare_reports.py.
struct ProfileSection {
  std::string backend;  // prof::BackendName: disabled / noop / timer.
  std::string message;  // prof::BackendMessage at report time.
  uint32_t interval_us = 0;
  uint64_t captured = 0;
  uint64_t attributed = 0;
  uint64_t unattributed = 0;
  uint64_t dropped = 0;
  uint64_t self_overhead_ns = 0;
  uint64_t task_clock_ns = 0;
  uint32_t threads = 0;
  struct FrameRow {
    std::string frame;    // Symbolized leaf frame (or operator label).
    uint64_t samples = 0;
  };
  struct OpFrames {
    std::string op;       // OpTypeName, or "(unattributed)".
    uint64_t samples = 0; // All samples under this op.
    std::vector<FrameRow> frames;  // Top-N leaf frames, descending.
  };
  /// Per-op leaf-frame ranking, ops sorted by samples descending.
  std::vector<OpFrames> top_frames;
};

/// Builds the report section from a collected profile: per-op sample
/// totals and the `top_n` hottest leaf frames of each op.
ProfileSection MakeProfileSection(const prof::FoldedProfile& profile,
                                  size_t top_n = 5);

struct RunReport {
  std::string title;
  /// Execution engine the run used for the batched-capable queries
  /// ("scalar" or "batched", exec::ExecModeName). Optional — omitted from
  /// the JSON when empty, so pre-existing readers and archived baselines
  /// are unaffected (the field is an in-place superset extension per the
  /// evolution rule above).
  std::string exec_mode;
  MetricsSnapshot metrics;
  bool has_driver = false;
  DriverSection driver;
  bool has_compliance = false;
  ComplianceSection compliance;
  bool has_q9_profile = false;
  Q9ProfileSection q9_profile;
  bool has_validation = false;
  ValidationSection validation;
  bool has_provenance = false;
  ProvenanceSection provenance;
  bool has_perf = false;
  PerfSection perf;
  /// Slow-query dossiers (emitted when non-empty). New in schema v4.
  std::vector<SlowQueryDossier> dossiers;
  bool has_trace_stats = false;
  TraceStatsSection trace_stats;
  bool has_profile = false;
  ProfileSection profile;
};

/// Serializes the report as schema "snb-report-v5". Op types with zero
/// samples are omitted from the "ops" table; hardware-counter fields are
/// omitted per row when that row never saw live counters.
std::string ToJson(const RunReport& report);

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and newline become \\, \" and \n.
std::string EscapePromLabelValue(const std::string& value);

/// Prometheus text-exposition-style dump of a snapshot: one line per
/// sample, `snb_op_*{op="..."}` series plus counters and gauges.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Structural validation of an emitted report.json: parses, checks the
/// schema tag (v1 through v5), a non-empty "ops" array, per-op monotone
/// percentiles (p50 <= p90 <= p95 <= p99 <= max), and — when present —
/// compliance-section consistency (fraction in [0,1], on-time count not
/// exceeding scheduled count), validation-section consistency (a passing
/// replay must report zero diffs), perf/provenance shape, dossier rows
/// (op name + non-negative latency), trace accounting (per-lane
/// recorded == retained + dropped) and profile accounting (captured ==
/// attributed + unattributed + dropped, self-overhead not exceeding the
/// task clock, samples only under the timer backend). Used by tests and
/// the check.sh smoke modes.
util::Status ValidateReportJson(const std::string& json);

/// Writes `content` to `path` atomically enough for a report artifact
/// (truncate + write + close).
util::Status WriteFileReport(const std::string& path,
                             const std::string& content);

}  // namespace snb::obs

#endif  // SNB_OBS_REPORT_H_
