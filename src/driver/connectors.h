// Database connectors: how the driver talks to a System Under Test.
#ifndef SNB_DRIVER_CONNECTORS_H_
#define SNB_DRIVER_CONNECTORS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "datagen/datagen.h"
#include "driver/operation.h"
#include "obs/dossier.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace_buffer.h"
#include "schema/dictionaries.h"
#include "store/graph_store.h"
#include "util/status.h"

namespace snb::driver {

class ShardWriterPool;

/// Abstract SUT connection. Execute() must be thread-safe.
class Connector {
 public:
  virtual ~Connector() = default;
  /// Runs one operation; a non-OK status on an update indicates a
  /// dependency violation (driver bug) or SUT failure.
  virtual util::Status Execute(const Operation& op) = 0;
};

/// Configuration of the short-read random walk (paper section 4):
/// after every complex read, with probability P a short read runs on an
/// entity from the previous result; P decreases by `decay` at each step.
struct ShortReadWalkConfig {
  double initial_probability = 0.5;
  double decay = 0.08;
};

/// Connector executing the workload against the in-process GraphStore.
/// Complex-read results seed the short-read random walk; every executed
/// query records its latency under the matching obs::OpType
/// (complex.Q<i>, short.S<i>, update.U<i>).
class StoreConnector : public Connector {
 public:
  /// `store` must outlive the connector. `updates` is the pre-generated
  /// update stream referenced by Operation::update_index. `dictionaries`
  /// resolves names/countries/tag classes for read parameters. `metrics`
  /// may be null — execution then records nothing.
  /// `dispatch_overhead_us` emulates the per-operation client-server
  /// round-trip of the paper's setups (0 = in-process, no overhead). It is
  /// added to every executed query/update before latency recording.
  /// `trace` may be null; when set, every short read executed here (in
  /// particular the walk-spawned ones the driver never sees) records a
  /// trace span, nesting inside the seeding complex read's span.
  /// `dossiers` may be null; when set, every executed operation is offered
  /// to the collector with its whole-op hardware-counter delta, and Q9
  /// additionally runs through its profiled plan so tail dossiers carry a
  /// per-operator breakdown (results are identical to Query9 — see
  /// queries/query9_plans.h).
  StoreConnector(store::GraphStore* store,
                 const std::vector<datagen::UpdateOperation>* updates,
                 const schema::Dictionaries* dictionaries,
                 obs::MetricsRegistry* metrics,
                 ShortReadWalkConfig walk = ShortReadWalkConfig(),
                 int64_t dispatch_overhead_us = 0,
                 obs::TraceBuffer* trace = nullptr,
                 obs::DossierCollector* dossiers = nullptr);

  util::Status Execute(const Operation& op) override;

  /// Optional asynchronous update path. When set, ExecuteUpdate routes
  /// the operation to the pool — which splits it into per-shard halves on
  /// the owning shards' SPSC queues — instead of applying it inline.
  /// Before routing a dependent update, the connector honors the pool's
  /// cross-shard creation watermark (WaitCompletedThrough on the
  /// operation's dependency time): the driver's dependency services track
  /// submission, the pool's watermark confirms application on every shard
  /// the dependency touched. Application errors surface on the pool's
  /// Drain(), which the run owner must call after the driver finishes.
  /// The pool must outlive the connector and wrap the same store.
  void set_shard_writer_pool(ShardWriterPool* pool) { pool_ = pool; }

  /// Number of short reads spawned by the random walk so far.
  uint64_t short_reads_executed() const {
    return short_reads_.load(std::memory_order_relaxed);
  }

 private:
  util::Status ExecuteComplex(const Operation& op);
  util::Status ExecuteShort(uint8_t query_id, schema::PersonId person,
                            schema::MessageId message);
  util::Status ExecuteUpdate(const Operation& op);

  /// Runs the decaying random walk of short reads seeded by a complex
  /// query's result entities.
  void RunShortReadWalk(const Operation& op,
                        const std::vector<schema::PersonId>& persons,
                        const std::vector<schema::MessageId>& messages);

  /// Offers one executed operation to the dossier collector (no-op when
  /// collection is off or the instance is not a tail candidate).
  void OfferDossier(obs::OpType op, uint64_t latency_ns,
                    const obs::perf::HwCounts& hw,
                    std::vector<obs::DossierOperatorRow> operators);

  store::GraphStore* store_;
  ShardWriterPool* pool_ = nullptr;
  const std::vector<datagen::UpdateOperation>* updates_;
  const schema::Dictionaries* dict_;
  obs::MetricsRegistry* metrics_;
  ShortReadWalkConfig walk_;
  int64_t dispatch_overhead_us_ = 0;
  obs::TraceBuffer* trace_ = nullptr;
  obs::DossierCollector* dossiers_ = nullptr;
  /// Operation sequence numbers for dossier identification.
  std::atomic<uint64_t> op_seq_{0};
  std::vector<schema::PlaceId> city_country_;
  std::vector<schema::PlaceId> company_country_;
  /// tag_in_class_[c][t]: tag t belongs to tag class c.
  std::vector<std::vector<bool>> tag_in_class_;
  std::atomic<uint64_t> short_reads_{0};
};

/// Dummy connector that sleeps for a configured duration instead of talking
/// to a database — the paper's driver-scalability instrument (Table 5).
class SleepingConnector : public Connector {
 public:
  explicit SleepingConnector(int64_t sleep_micros)
      : sleep_micros_(sleep_micros) {}

  util::Status Execute(const Operation& op) override;

  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  int64_t sleep_micros_;
  std::atomic<uint64_t> executed_{0};
};

/// Publishes the store's structural gauges — epoch-reclamation stats and
/// per-entity DenseTable occupancy — into the registry. Call at snapshot
/// points (end of run, bench report time); no-op when `metrics` is null.
void PublishStoreMetrics(const store::GraphStore& store,
                         obs::MetricsRegistry* metrics);

}  // namespace snb::driver

#endif  // SNB_DRIVER_CONNECTORS_H_
