file(REMOVE_RECURSE
  "libsnb_curation.a"
)
