// Tests for the discretized Facebook degree model (section 2.3, Figure 2b).
#include <gtest/gtest.h>

#include "datagen/degree_model.h"

namespace snb::datagen {
namespace {

TEST(DegreeModelTest, FormulaMatchesPaperAnchor) {
  // Paper: at Facebook scale (700M persons) the average degree is ~200.
  double avg = DegreeModel::AverageDegreeFormula(700000000ULL);
  EXPECT_NEAR(avg, 200.0, 25.0);
}

TEST(DegreeModelTest, FormulaShrinksWithNetwork) {
  // Smaller networks get (somewhat) lower average degree.
  EXPECT_LT(DegreeModel::AverageDegreeFormula(1000),
            DegreeModel::AverageDegreeFormula(100000));
  EXPECT_LT(DegreeModel::AverageDegreeFormula(100000),
            DegreeModel::AverageDegreeFormula(10000000));
}

TEST(DegreeModelTest, PercentileCurveIsMonotone) {
  DegreeModel model(10000);
  for (int p = 1; p < DegreeModel::kPercentiles; ++p) {
    EXPECT_GE(model.ReferenceMaxDegree(p), model.ReferenceMaxDegree(p - 1));
  }
  // Figure 2b spans roughly 10..5000.
  EXPECT_LE(model.ReferenceMaxDegree(0), 20u);
  EXPECT_GE(model.ReferenceMaxDegree(DegreeModel::kPercentiles - 1), 1000u);
}

TEST(DegreeModelTest, TargetDegreeDeterministic) {
  DegreeModel model(5000);
  for (schema::PersonId id = 0; id < 100; ++id) {
    EXPECT_EQ(model.TargetDegree(7, id), model.TargetDegree(7, id));
  }
}

TEST(DegreeModelTest, MeanTargetNearFormula) {
  constexpr uint64_t kPersons = 20000;
  DegreeModel model(kPersons);
  double sum = 0;
  for (schema::PersonId id = 0; id < kPersons; ++id) {
    sum += model.TargetDegree(3, id);
  }
  double mean = sum / kPersons;
  double target = DegreeModel::AverageDegreeFormula(kPersons);
  EXPECT_NEAR(mean, target, target * 0.15);
}

TEST(DegreeModelTest, DegreesAreSkewed) {
  constexpr uint64_t kPersons = 20000;
  DegreeModel model(kPersons);
  uint32_t max_degree = 0;
  for (schema::PersonId id = 0; id < kPersons; ++id) {
    max_degree = std::max(max_degree, model.TargetDegree(3, id));
  }
  double avg = DegreeModel::AverageDegreeFormula(kPersons);
  // Power-law: max degree far above the mean.
  EXPECT_GT(max_degree, avg * 5);
}

TEST(DegreeModelTest, MinimumDegreeIsOne) {
  DegreeModel model(100);
  for (schema::PersonId id = 0; id < 100; ++id) {
    EXPECT_GE(model.TargetDegree(1, id), 1u);
  }
}

}  // namespace
}  // namespace snb::datagen
