// Mutation fixture: a "lock-free" record path that quietly takes a
// util::Mutex. The wrapper inlines down to pthread_mutex_lock /
// pthread_mutex_unlock in the binary, which is exactly the futex-backed
// symbol pair the lockfree denylist watches for; the checker must print
// BadRecord -> pthread_mutex_lock.
#include <cstdint>

#include "util/invariant_root.h"
#include "util/mutex.h"

namespace fixture {

snb::util::Mutex g_mu;
uint64_t g_counter SNB_GUARDED_BY(g_mu) = 0;

__attribute__((noinline, used)) void BadRecord(uint64_t delta) {
  SNB_INVARIANT_ROOT("lockfree");
  snb::util::MutexLock lock(&g_mu);  // The violation under test.
  g_counter += delta;
}

}  // namespace fixture

void (*volatile g_record)(uint64_t) = &fixture::BadRecord;

int main(int argc, char**) {
  g_record(static_cast<uint64_t>(argc));
  return 0;
}
