// Thread-safe latency recording keyed by operation type.
#ifndef SNB_UTIL_LATENCY_RECORDER_H_
#define SNB_UTIL_LATENCY_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace snb::util {

/// Steady-clock stopwatch returning elapsed microseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Microseconds since construction or last Reset().
  double ElapsedMicros() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - start_).count();
  }

  /// Nanoseconds since construction or last Reset().
  uint64_t ElapsedNanos() const {
    auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
            .count());
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects latency samples per named operation from many threads.
///
/// Legacy exact-stats recorder: a global mutex per sample and O(samples)
/// memory. Production paths use obs::MetricsRegistry instead; this class
/// remains as the exact-percentile fallback for tests and offline analysis.
class LatencyRecorder {
 public:
  /// Records one latency sample (microseconds) for `op`.
  void Record(const std::string& op, double micros) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_[op].Add(micros);
  }

  /// Snapshot of the stats for one operation (empty stats if unseen).
  SampleStats Get(const std::string& op) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stats_.find(op);
    return it == stats_.end() ? SampleStats() : it->second;
  }

  /// All operation names seen so far, sorted.
  std::vector<std::string> Operations() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(stats_.size());
    for (const auto& [name, _] : stats_) names.push_back(name);
    return names;
  }

  /// Total number of recorded samples across all operations.
  uint64_t TotalCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& [_, s] : stats_) total += s.count();
    return total;
  }

  /// Sum of all recorded latencies (microseconds) across operations matching
  /// the given name prefix.
  double TotalMicrosWithPrefix(const std::string& prefix) const {
    std::lock_guard<std::mutex> lock(mu_);
    double total = 0.0;
    for (const auto& [name, s] : stats_) {
      if (name.rfind(prefix, 0) == 0) {
        total += s.Sum();
      }
    }
    return total;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, SampleStats> stats_;
};

}  // namespace snb::util

#endif  // SNB_UTIL_LATENCY_RECORDER_H_
