#include "util/thread_pool.h"

#include <algorithm>

namespace snb::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelForRanges(
    size_t n,
    const std::function<void(size_t begin, size_t end, size_t worker)>& fn) {
  size_t workers = workers_.size();
  size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = std::min(w * chunk, n);
    size_t end = std::min(begin + chunk, n);
    if (begin >= end) continue;
    Submit([&fn, begin, end, w] { fn(begin, end, w); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace snb::util
