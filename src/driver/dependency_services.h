// Local / Global Dependency Services (paper section 4.2, Figure 7).
//
// Each parallel stream owns a LocalDependencyService tracking the Initiated
// Times (IT) and Completed Times (CT) of the *dependency* operations it
// executes, and exposes
//   T_LI — Local Initiation Time: no operation with a smaller timestamp will
//          ever start in this stream (monotone),
//   T_LC — Local Completion Time: every operation of this stream at or
//          before it has completed (monotone).
// The GlobalDependencyService aggregates all LDS instances into
//   T_GI = min over streams of T_LI,
//   T_GC — Global Completion Time: every operation from every stream with
//          timestamp <= T_GC has completed. Dependent operations spin-wait
//          on T_GC before executing.
//
// Streams that currently have no dependency operation in flight advance
// their T_LI with MarkTime() (time markers), so T_GC never stalls behind an
// idle stream. Timestamps must be added in monotonically increasing order
// per stream (update streams are due-time sorted) but may complete in any
// order.
#ifndef SNB_DRIVER_DEPENDENCY_SERVICES_H_
#define SNB_DRIVER_DEPENDENCY_SERVICES_H_

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "util/datetime.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::driver {

using util::TimestampMs;

inline constexpr TimestampMs kTimeMax =
    std::numeric_limits<TimestampMs>::max();

class GlobalDependencyService;

/// Anything exposing the (T_LI, T_LC) watermark pair: a stream-local
/// service or a whole GlobalDependencyService — which is what makes GDS
/// composable ("a GDS instance could track other GDS instances in the same
/// manner as it tracks LDS instances", section 4.2).
class DependencyWatermark {
 public:
  virtual ~DependencyWatermark() = default;
  /// No operation with a smaller timestamp will ever start. Monotone.
  virtual TimestampMs WatermarkTLI() const = 0;
  /// Every operation at or before this timestamp completed. Monotone.
  virtual TimestampMs WatermarkTLC() const = 0;
};

/// Per-stream dependency bookkeeping. Thread-safe; one writer stream plus
/// concurrent readers.
class LocalDependencyService : public DependencyWatermark {
 public:
  LocalDependencyService() = default;
  LocalDependencyService(const LocalDependencyService&) = delete;
  LocalDependencyService& operator=(const LocalDependencyService&) = delete;

  /// Registers a dependency operation about to execute. `t` must be >= every
  /// previously initiated or marked time.
  void Initiate(TimestampMs t);

  /// Marks a previously initiated dependency operation as completed.
  void Complete(TimestampMs t);

  /// Advances T_LI for streams executing non-dependency operations: promises
  /// that no dependency with timestamp < t will ever be initiated.
  void MarkTime(TimestampMs t);

  /// Lowest in-flight initiated time, or the last known floor when IT is
  /// empty. Monotone.
  TimestampMs TLI() const;

  /// Highest time t such that every dependency of this stream with
  /// timestamp <= t has completed. Monotone.
  TimestampMs TLC() const;

  TimestampMs WatermarkTLI() const override { return TLI(); }
  TimestampMs WatermarkTLC() const override { return TLC(); }

 private:
  friend class GlobalDependencyService;

  /// Folds durable completions into the cached watermark; mu_ held.
  void FoldLocked() SNB_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::multiset<TimestampMs> initiated_ SNB_GUARDED_BY(mu_);
  std::multiset<TimestampMs> completed_ SNB_GUARDED_BY(mu_);
  // Last marker / last initiated time.
  TimestampMs floor_ SNB_GUARDED_BY(mu_) = 0;
  // Cached TLC.
  TimestampMs completed_high_ SNB_GUARDED_BY(mu_) = 0;
  // Set once at registration (AddStream), before execution starts; read
  // without mu_ afterwards — deliberately not SNB_GUARDED_BY.
  GlobalDependencyService* gds_ = nullptr;  // Notified on progress.
};

/// Aggregates watermark sources (LDS instances or child GDS instances);
/// dependent operations wait on T_GC. T_GI/T_GC are exposed exactly as in
/// Figure 7, and the service itself implements DependencyWatermark, so GDS
/// trees model hierarchical/distributed driver deployments.
class GlobalDependencyService : public DependencyWatermark {
 public:
  GlobalDependencyService() = default;
  GlobalDependencyService(const GlobalDependencyService&) = delete;
  GlobalDependencyService& operator=(const GlobalDependencyService&) = delete;

  /// Creates and registers a new stream-local service. All registrations
  /// must happen before execution starts.
  LocalDependencyService* AddStream();

  /// Registers a child watermark source (typically another GDS) without
  /// taking ownership. The child must outlive this service and must notify
  /// progress through its own waiters; parents poll on progress events.
  void AddChild(DependencyWatermark* child);

  /// Global Initiation Time: min over streams of T_LI.
  TimestampMs TGI() const;

  /// Global Completion Time: every operation from all streams with
  /// timestamp <= TGC has completed.
  TimestampMs TGC() const;

  /// Blocks until TGC() >= t.
  void WaitUntilCompleted(TimestampMs t);

  /// Non-blocking probe: true iff TGC() >= t already. TGC is monotone, so
  /// a true answer stays true; callers can skip WaitUntilCompleted (and its
  /// mutex) for dependencies that are already satisfied.
  bool CompletedThrough(TimestampMs t) const { return TGC() >= t; }

  /// Wakes waiters; called by LDS on every progress event.
  void NotifyProgress();

  TimestampMs WatermarkTLI() const override { return TGI(); }
  TimestampMs WatermarkTLC() const override { return TGC(); }

 private:
  mutable util::Mutex mu_;
  // Waits on the MutexLock itself (BasicLockable) so the capability stays
  // analysable across the wait.
  std::condition_variable_any progress_;
  // Mutated only during the registration phase (AddStream/AddChild, under
  // mu_, before execution starts); TGI/TGC read them lock-free afterwards.
  // Deliberately not SNB_GUARDED_BY: the registration-then-frozen protocol
  // is the synchronisation, not the mutex.
  std::vector<std::unique_ptr<LocalDependencyService>> streams_;
  std::vector<DependencyWatermark*> children_;
};

}  // namespace snb::driver

#endif  // SNB_DRIVER_DEPENDENCY_SERVICES_H_
