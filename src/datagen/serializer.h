// Dataset serialization: CSV bulk-load files and the update-stream file
// (paper section 2.4) plus an N-Triples RDF view (the paper's alternative
// output format; entity URIs encode the creation timestamp in an
// order-preserving way so URI order follows the time dimension).
#ifndef SNB_DATAGEN_SERIALIZER_H_
#define SNB_DATAGEN_SERIALIZER_H_

#include <cstdint>
#include <string>

#include "datagen/datagen.h"
#include "util/status.h"

namespace snb::datagen {

/// File names produced by WriteCsv (inside the target directory).
struct CsvFileSet {
  static constexpr const char* kPersons = "person.csv";
  static constexpr const char* kKnows = "person_knows_person.csv";
  static constexpr const char* kForums = "forum.csv";
  static constexpr const char* kMemberships = "forum_hasMember_person.csv";
  static constexpr const char* kMessages = "message.csv";
  static constexpr const char* kLikes = "person_likes_message.csv";
  static constexpr const char* kUpdates = "update_stream.csv";
};

/// Byte totals written per entity family.
struct CsvSizes {
  uint64_t person_bytes = 0;
  uint64_t knows_bytes = 0;
  uint64_t forum_bytes = 0;
  uint64_t membership_bytes = 0;
  uint64_t message_bytes = 0;
  uint64_t likes_bytes = 0;
  uint64_t update_bytes = 0;

  uint64_t Total() const {
    return person_bytes + knows_bytes + forum_bytes + membership_bytes +
           message_bytes + likes_bytes + update_bytes;
  }
};

/// Writes the bulk-load portion as pipe-separated CSV files plus the update
/// stream file into `directory` (created if missing). Returns written byte
/// counts — the measured definition of the LDBC scale factor.
util::Result<CsvSizes> WriteCsv(const Dataset& dataset,
                                const std::string& directory);

/// Reads back a dataset written by WriteCsv. Only the bulk portion is
/// reconstructed (the update stream file is replayed by the driver from the
/// in-memory dataset; the reader exists for round-trip validation and for
/// loading pre-generated data from disk).
util::Result<schema::SocialNetwork> ReadCsv(const std::string& directory);

/// Writes an N-Triples view of the bulk data to a single file. Entity URIs
/// embed a zero-padded creation timestamp so lexicographic URI order equals
/// creation-time order. Returns bytes written.
util::Result<uint64_t> WriteNTriples(const schema::SocialNetwork& network,
                                     const std::string& path);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_SERIALIZER_H_
