#!/usr/bin/env python3
"""Tests for scripts/profile_view.py (folded-stack -> SVG/speedscope).

Each case materialises a folded-stack file into a temp dir and runs the
script as a subprocess, asserting on exit code and on the structure of
the emitted artifacts — the contract EXPERIMENTS.md's flamegraph recipe
and CI actually consume (0 = ok, 2 = bad input).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, "scripts", "profile_view.py")

FOLDED = """\
thread:driver.0;op:complex.Q9;main;RunStream;Query9WithPlan 17
thread:driver.0;op:complex.Q9;opr:join2;main;RunStream;Query9WithPlan;Join2 5
thread:driver.1;op:complex.Q14;main;RunStream;Query14Scalar 9
thread:main;op:complex.Q9;opr:sort_limit;main;Sort 3
"""


class ProfileViewTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, text):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def run_view(self, *argv):
        return subprocess.run([sys.executable, SCRIPT, *argv],
                              capture_output=True, text=True)

    def test_svg_renders_every_frame(self):
        folded = self.write("prof.folded", FOLDED)
        svg = os.path.join(self.tmp.name, "out.svg")
        result = self.run_view(folded, "--svg", svg, "--title", "t-title")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(svg, encoding="utf-8") as f:
            body = f.read()
        self.assertTrue(body.startswith("<svg"), body[:80])
        self.assertIn("t-title", body)
        # Every distinct frame (context bands and code frames alike) must
        # appear in a hover title with its sample count.
        for frame in ("thread:driver.0", "op:complex.Q9", "opr:join2",
                      "Query9WithPlan", "Query14Scalar", "opr:sort_limit"):
            self.assertIn(frame, body)
        # Root row accounts for all 34 samples.
        self.assertIn("all (34 samples, 100.00%)", body)
        # Stacks sharing a full prefix merge: both driver.0 lines carry
        # op:complex.Q9, so the band totals 17+5=22 samples.
        self.assertIn("op:complex.Q9 (22 samples", body)

    def test_speedscope_document_is_valid(self):
        folded = self.write("prof.folded", FOLDED)
        out = os.path.join(self.tmp.name, "out.speedscope.json")
        result = self.run_view(folded, "--speedscope", out)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(out, encoding="utf-8") as f:
            doc = json.load(f)
        self.assertIn("speedscope", doc["$schema"])
        prof = doc["profiles"][0]
        self.assertEqual(prof["type"], "sampled")
        self.assertEqual(len(prof["samples"]), 4)
        self.assertEqual(prof["weights"], [17, 5, 9, 3])
        self.assertEqual(prof["endValue"], 34)
        # Every samples entry must index into shared.frames, root-first.
        frames = doc["shared"]["frames"]
        first = [frames[i]["name"] for i in prof["samples"][0]]
        self.assertEqual(first[0], "thread:driver.0")
        self.assertEqual(first[-1], "Query9WithPlan")

    def test_both_outputs_in_one_run(self):
        folded = self.write("prof.folded", FOLDED)
        svg = os.path.join(self.tmp.name, "o.svg")
        ss = os.path.join(self.tmp.name, "o.json")
        result = self.run_view(folded, "--svg", svg, "--speedscope", ss)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertTrue(os.path.exists(svg))
        self.assertTrue(os.path.exists(ss))

    def test_no_output_flag_is_usage_error(self):
        folded = self.write("prof.folded", FOLDED)
        result = self.run_view(folded)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("nothing to do", result.stderr)

    def test_missing_input_is_bad_input(self):
        result = self.run_view(os.path.join(self.tmp.name, "absent"),
                               "--svg", os.path.join(self.tmp.name, "o.svg"))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)

    def test_malformed_count_is_bad_input(self):
        folded = self.write("bad.folded", "main;f notanumber\n")
        result = self.run_view(folded, "--svg",
                               os.path.join(self.tmp.name, "o.svg"))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("not an integer", result.stderr)

    def test_zero_count_is_bad_input(self):
        folded = self.write("bad.folded", "main;f 0\n")
        result = self.run_view(folded, "--svg",
                               os.path.join(self.tmp.name, "o.svg"))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("must be positive", result.stderr)

    def test_empty_capture_is_bad_input(self):
        folded = self.write("empty.folded", "\n\n")
        result = self.run_view(folded, "--svg",
                               os.path.join(self.tmp.name, "o.svg"))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("no stacks", result.stderr)

    def test_min_percent_prunes_rare_frames(self):
        folded = self.write("prof.folded",
                            "main;hot 99\nmain;rare_leaf_frame 1\n")
        svg = os.path.join(self.tmp.name, "out.svg")
        result = self.run_view(folded, "--svg", svg, "--min-percent", "5")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(svg, encoding="utf-8") as f:
            body = f.read()
        self.assertIn("hot", body)
        self.assertNotIn("rare_leaf_frame", body)


if __name__ == "__main__":
    unittest.main()
