# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bi_queries_test.
