# Empty compiler generated dependencies file for snb_store.
# This may be replaced when dependencies are built.
