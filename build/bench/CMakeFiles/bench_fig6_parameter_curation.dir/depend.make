# Empty dependencies file for bench_fig6_parameter_curation.
# This may be replaced when dependencies are built.
