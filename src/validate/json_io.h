// Small JSON writing/reading helpers shared by the validation artifacts
// (golden sets, fuzz regression files). Writing emits exactly the subset
// obs::ParseJson accepts; reading wraps obs::JsonValue lookups with typed
// error messages. Unsigned 64-bit fields that may exceed 2^53 (seeds) are
// written as decimal strings; GetU64 accepts both forms.
#ifndef SNB_VALIDATE_JSON_IO_H_
#define SNB_VALIDATE_JSON_IO_H_

#include <cstdint>
#include <string>

#include "obs/report.h"
#include "util/status.h"

namespace snb::validate::jsonio {

/// Appends `s` as a quoted, escaped JSON string.
void AppendEscaped(std::string* out, const std::string& s);

/// Appends `"key":`.
void AppendKey(std::string* out, const char* key);

/// Appends `"key":<decimal>`.
void AppendU64Field(std::string* out, const char* key, uint64_t v);
void AppendI64Field(std::string* out, const char* key, int64_t v);

/// Appends `"key":"<decimal>"`. Use for 64-bit ids that may exceed 2^53
/// (e.g. schema::kInvalidId); GetU64 reads either encoding.
void AppendU64StrField(std::string* out, const char* key, uint64_t v);

/// Reads an unsigned/signed integer stored as a JSON number or a decimal
/// string. `what` names the artifact for error messages.
util::Status GetU64(const obs::JsonValue& obj, const char* key, uint64_t* out,
                    const char* what);
util::Status GetI64(const obs::JsonValue& obj, const char* key, int64_t* out,
                    const char* what);
util::Status GetString(const obs::JsonValue& obj, const char* key,
                       std::string* out, const char* what);

/// Reads an entire file into `*out`.
util::Status ReadWholeFile(const std::string& path, std::string* out);

}  // namespace snb::validate::jsonio

#endif  // SNB_VALIDATE_JSON_IO_H_
