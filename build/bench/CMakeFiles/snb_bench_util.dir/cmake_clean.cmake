file(REMOVE_RECURSE
  "CMakeFiles/snb_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/snb_bench_util.dir/bench_util.cc.o.d"
  "libsnb_bench_util.a"
  "libsnb_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
