file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_firstnames.dir/bench_table2_firstnames.cc.o"
  "CMakeFiles/bench_table2_firstnames.dir/bench_table2_firstnames.cc.o.d"
  "bench_table2_firstnames"
  "bench_table2_firstnames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_firstnames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
