# Empty dependencies file for bench_fig3b_datagen_scaleup.
# This may be replaced when dependencies are built.
