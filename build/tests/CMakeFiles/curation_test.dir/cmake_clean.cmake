file(REMOVE_RECURSE
  "CMakeFiles/curation_test.dir/curation_test.cc.o"
  "CMakeFiles/curation_test.dir/curation_test.cc.o.d"
  "curation_test"
  "curation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
