file(REMOVE_RECURSE
  "CMakeFiles/snb_curation.dir/parameter_curation.cc.o"
  "CMakeFiles/snb_curation.dir/parameter_curation.cc.o.d"
  "CMakeFiles/snb_curation.dir/pc_table.cc.o"
  "CMakeFiles/snb_curation.dir/pc_table.cc.o.d"
  "libsnb_curation.a"
  "libsnb_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
