// SNB-BI workload preview (paper section 1): whole-fact-table analytical
// queries on the same dataset, contrasting their costs with the
// sublinear interactive queries of Table 6.
#include <cstdio>

#include "bench/bench_util.h"
#include "queries/bi_queries.h"
#include "queries/complex_queries.h"
#include "util/stopwatch.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("SNB-BI workload preview (draft workload of paper sec. 1)");
  std::unique_ptr<BenchWorld> world = MakeWorld(kLargeSf);
  const schema::Dictionaries& dict = *world->dictionaries;

  util::Stopwatch watch;
  auto bi1 = queries::BiQuery1PostingSummary(world->store);
  double bi1_ms = watch.ElapsedMicros() / 1000.0;

  watch.Reset();
  auto bi2 = queries::BiQuery2TagEvolution(
      world->store, util::kNetworkStartMs + 12 * util::kMillisPerMonth, 60,
      8);
  double bi2_ms = watch.ElapsedMicros() / 1000.0;

  watch.Reset();
  auto bi3 = queries::BiQuery3CountryInfluencers(world->store,
                                                 world->city_country, 1);
  double bi3_ms = watch.ElapsedMicros() / 1000.0;

  std::printf("  BI-1 posting summary       %8.2f ms, %zu groups; top:\n",
              bi1_ms, bi1.size());
  for (size_t i = 0; i < std::min<size_t>(bi1.size(), 4); ++i) {
    std::printf("    year %d kind %d lang %-2u : %llu msgs, avg %.0f chars\n",
                bi1[i].year, static_cast<int>(bi1[i].kind),
                bi1[i].language,
                (unsigned long long)bi1[i].message_count,
                bi1[i].avg_length);
  }
  std::printf("  BI-2 tag evolution         %8.2f ms; top movers:\n", bi2_ms);
  for (size_t i = 0; i < std::min<size_t>(bi2.size(), 4); ++i) {
    std::printf("    %-26s %4u -> %4u (delta %u)\n",
                dict.tags()[bi2[i].tag].name.c_str(), bi2[i].count_window1,
                bi2[i].count_window2, bi2[i].delta);
  }
  std::printf("  BI-3 country influencers   %8.2f ms; sample:\n", bi3_ms);
  for (size_t i = 0; i < std::min<size_t>(bi3.size(), 4); ++i) {
    std::printf("    %-16s person %-6llu %llu likes on %llu msgs\n",
                dict.countries()[bi3[i].country].name.c_str(),
                (unsigned long long)bi3[i].person,
                (unsigned long long)bi3[i].likes_received,
                (unsigned long long)bi3[i].messages);
  }

  // Contrast with an interactive query at the same scale.
  watch.Reset();
  queries::Query9(world->store, 0, util::NetworkEndMs());
  double q9_ms = watch.ElapsedMicros() / 1000.0;
  std::printf(
      "\n  Interactive Q9 at the same scale: %.2f ms — BI queries touch the\n"
      "  whole fact table (linear in dataset size) whereas interactive\n"
      "  queries stay sublinear, the workload split the paper motivates.\n\n",
      q9_ms);
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
