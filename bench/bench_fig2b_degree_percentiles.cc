// Figure 2b reproduction: maximum degree of each percentile of the
// (Facebook-shaped) reference degree distribution used by DATAGEN.
#include <cmath>
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/degree_model.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("Figure 2b — max degree per percentile (reference curve)");
  datagen::DegreeModel model(datagen::PersonsForScaleFactor(kMediumSf));
  std::printf("  %-11s %-8s (log-scale bar)\n", "percentile", "max-deg");
  double log_hi =
      std::log10(model.ReferenceMaxDegree(datagen::DegreeModel::kPercentiles - 1));
  for (int p = 0; p < datagen::DegreeModel::kPercentiles; p += 5) {
    uint32_t d = model.ReferenceMaxDegree(p);
    std::printf("  %-11d %-8u %s\n", p, d,
                Bar(std::log10(std::max(1u, d)), log_hi, 40).c_str());
  }
  std::printf("\n  avg_degree(n) anchors: n=700M -> %.0f (paper: ~200),"
              " n=%llu -> %.1f\n",
              datagen::DegreeModel::AverageDegreeFormula(700000000ULL),
              (unsigned long long)datagen::PersonsForScaleFactor(kMediumSf),
              model.target_avg_degree());
  std::printf(
      "  Shape to check: 10..5000 span, convex growth on the log scale\n"
      "  (the published Facebook curve), scaled to the network size by\n"
      "  avg_degree = n^(0.512 - 0.028 log10 n).\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
