// Mutation fixture: an epoch-pinned read path that blocks. nanosleep
// inside a pin stalls every writer's grace period — the checker must
// report the denylist hit with the path BadPinnedRead -> nanosleep (and
// the allocation it also performs).
#include <time.h>

#include <cstdint>

#include "util/invariant_root.h"

namespace fixture {

int* volatile g_sink = nullptr;

__attribute__((noinline, used)) uint64_t BadPinnedRead(uint64_t x) {
  SNB_INVARIANT_ROOT("pinned_read");
  timespec ts{0, static_cast<long>(x % 1000)};
  ::nanosleep(&ts, nullptr);    // Blocking syscall under a pin.
  g_sink = new int[x % 7 + 1];  // And an allocation for good measure.
  delete[] g_sink;
  return x + 1;
}

}  // namespace fixture

uint64_t (*volatile g_pinned)(uint64_t) = &fixture::BadPinnedRead;

int main(int argc, char**) {
  return static_cast<int>(g_pinned(static_cast<uint64_t>(argc)) & 1);
}
