// Process-wide execution-mode switch: scalar vs batched query plans.
//
// The heaviest complex reads (Q5/Q9/Q14) exist in two physically different
// but result-identical implementations: the original row-at-a-time plans in
// queries/complex_queries.cc and the block-at-a-time ports in
// queries/batched_queries.cc built on snb::exec. The public Query5/9/14
// entry points dispatch on the process default mode, so every existing
// caller — the driver connectors, the golden-set replay, the benches —
// switches engine with one flag (`--exec=batched`) and zero call-site
// churn. Both paths must produce byte-identical canonical rows; the golden
// replay and the differential fuzzer enforce exactly that (see
// DESIGN.md "Execution engine").
//
// The default is read with one relaxed atomic load per query invocation;
// tools set it once at startup, tests may flip it around a scoped block.
#ifndef SNB_EXEC_EXEC_MODE_H_
#define SNB_EXEC_EXEC_MODE_H_

#include <atomic>
#include <string_view>

namespace snb::exec {

/// Physical execution engine for the ported complex queries.
enum class ExecMode {
  /// Row-at-a-time handwritten plans (the original implementation).
  kScalar,
  /// Block-at-a-time operators over column batches (snb::exec).
  kBatched,
};

namespace internal {
inline std::atomic<ExecMode> g_default_exec_mode{ExecMode::kScalar};
}  // namespace internal

/// The mode Query5/9/14 dispatch on when called without an explicit engine.
inline ExecMode DefaultExecMode() {
  return internal::g_default_exec_mode.load(std::memory_order_relaxed);
}

inline void SetDefaultExecMode(ExecMode mode) {
  internal::g_default_exec_mode.store(mode, std::memory_order_relaxed);
}

/// Stable rendering for report.json's "exec_mode" field and CLI output.
inline const char* ExecModeName(ExecMode mode) {
  return mode == ExecMode::kBatched ? "batched" : "scalar";
}

/// Parses "scalar"/"batched" (the spellings accepted by --exec=). Returns
/// false (and leaves *out untouched) on anything else.
inline bool ParseExecMode(std::string_view text, ExecMode* out) {
  if (text == "scalar") {
    *out = ExecMode::kScalar;
    return true;
  }
  if (text == "batched") {
    *out = ExecMode::kBatched;
    return true;
  }
  return false;
}

}  // namespace snb::exec

#endif  // SNB_EXEC_EXEC_MODE_H_
