// Figure 2a reproduction: post density over the simulated timeline with
// uniform vs event-driven post generation. Event-driven generation must
// show spikes of different magnitude on top of the base volume.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace snb::bench {
namespace {

datagen::GenerationStats GenerateWith(bool event_driven) {
  datagen::DatagenConfig config =
      datagen::DatagenConfig::ForScaleFactor(kMediumSf);
  config.event_driven_posts = event_driven;
  config.split_update_stream = false;
  return datagen::Generate(config).stats;
}

void Run() {
  PrintHeader("Figure 2a — post density over time (uniform vs event-driven)");
  datagen::GenerationStats uniform = GenerateWith(false);
  datagen::GenerationStats spiky = GenerateWith(true);

  uint64_t max_count = 0;
  for (int m = 0; m < util::kSimulationMonths; ++m) {
    max_count = std::max({max_count, uniform.posts_per_month[m],
                          spiky.posts_per_month[m]});
  }
  std::printf("  %-9s %7s %-26s %7s %s\n", "month", "unif",
              "uniform", "event", "event-driven");
  for (int m = 0; m < util::kSimulationMonths; ++m) {
    std::printf("  %-9d %7llu %-26s %7llu %s\n", m,
                (unsigned long long)uniform.posts_per_month[m],
                Bar(uniform.posts_per_month[m], max_count, 24).c_str(),
                (unsigned long long)spiky.posts_per_month[m],
                Bar(spiky.posts_per_month[m], max_count, 24).c_str());
  }

  // Dispersion on the mature part of the timeline.
  auto dispersion = [](const datagen::GenerationStats& s) {
    double mean = 0;
    int n = 0;
    for (int m = 18; m < util::kSimulationMonths; ++m) {
      mean += s.posts_per_month[m];
      ++n;
    }
    mean /= n;
    double var = 0;
    for (int m = 18; m < util::kSimulationMonths; ++m) {
      double d = s.posts_per_month[m] - mean;
      var += d * d;
    }
    return var / n / mean;
  };
  std::printf("\n  index of dispersion (months 18-35): uniform %.2f,"
              " event-driven %.2f\n", dispersion(uniform),
              dispersion(spiky));
  std::printf(
      "  Shape to check: event-driven series has spikes of different\n"
      "  magnitude (dispersion several times the uniform series).\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
