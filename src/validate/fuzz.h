// Differential query fuzzing across independent implementations.
//
// Property-based harness: generate many small random-but-correlated social
// networks, run every read query with randomized bindings against the graph
// store (snb::queries), the relational baseline (snb::rel) and the naive
// scan oracle (snb::validate::Oracle), and require canonical-row equality.
// Queries with a batched (block-at-a-time) engine port — complex Q5, Q9 and
// Q14 — additionally run through queries::Query{5,9,14}Batched, so every
// fuzz graph exercises scalar vs batched vs oracle three ways. The oracle
// is the arbiter: a backend whose rows differ from the oracle's is the
// mismatch, regardless of whether the other backends agree with it.
//
// Every graph additionally randomizes the store's shard count (1, 2, 4 or
// 8, derived deterministically from the graph seed), so the campaign
// continuously cross-checks the sharded store's routing and multi-shard
// snapshots against the unsharded relational and oracle baselines.
//
// On a mismatch the failing graph is shrunk — entities are greedily removed
// (respecting referential closure) while the mismatch persists — and the
// minimal reproducer is packaged as a standalone JSON artifact
// ("snb-fuzz-regression-v2", which records the shard count; v1 artifacts
// still load with shard_count = 1) that embeds the graph, the binding and
// both result sets, and can be re-run directly via LoadMismatch +
// MismatchReproduces.
#ifndef SNB_VALIDATE_FUZZ_H_
#define SNB_VALIDATE_FUZZ_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "schema/entities.h"
#include "util/status.h"

namespace snb::validate {

/// Fuzz campaign knobs.
struct FuzzConfig {
  uint64_t seed = 0xF0221ULL;
  /// Number of random graphs; each gets a full query battery.
  int num_graphs = 200;
  /// Upper bound on persons per graph (at least 2 are generated).
  int max_persons = 12;
};

/// One query binding — a superset of every query's parameters so bindings
/// serialize uniformly into regression artifacts.
struct FuzzBinding {
  std::string op;        // "complex.Q1".."complex.Q14", "short.S1".."S7".
  uint64_t person = 0;   // Start person (or person1 for Q13/Q14).
  uint64_t person2 = 0;  // Q13/Q14 only.
  uint64_t message = 0;  // Short reads S4-S7.
  int64_t date = 0;      // max_date / start_date / min_date.
  int days = 0;          // Q3/Q4 window length.
  uint64_t a = 0;        // tag / country_x / month / tag class / work year.
  uint64_t b = 0;        // country_y.
  std::string name;      // Q1 first name.
};

/// A (possibly shrunk) reproducing counterexample.
struct FuzzMismatch {
  uint64_t graph_seed = 0;  // Seed the original graph came from.
  /// Store shard count the mismatch was found (and reproduces) at; 1 for
  /// artifacts predating the sharded store ("snb-fuzz-regression-v1").
  uint32_t shard_count = 1;
  std::string backend;      // "store", "store-batched" or "relational".
  FuzzBinding binding;
  std::vector<std::string> expected;  // Oracle rows.
  std::vector<std::string> actual;    // Mismatching backend's rows.
  schema::SocialNetwork graph;        // Minimal graph after shrinking.
};

/// Campaign outcome.
struct FuzzOutcome {
  int graphs_run = 0;
  uint64_t comparisons = 0;  // (binding, backend) pairs checked.
  int mismatches = 0;        // Campaign stops at the first one.
  FuzzMismatch first;        // Shrunk; valid when mismatches > 0.
};

/// Testing hook: mutates the graph store's canonical rows before comparison
/// (simulating a store-side query bug) so harness tests can drive the
/// mismatch/shrink/dump machinery deterministically.
using StorePerturbation =
    std::function<void(const std::string& op, std::vector<std::string>* rows)>;

/// Runs the campaign. A non-OK status means harness failure (e.g. a graph
/// that fails to bulk-load); mismatches are reported via `out`, not status.
util::Status RunDifferentialFuzz(const FuzzConfig& config, FuzzOutcome* out);

/// Same, with a store perturbation applied (tests only).
util::Status RunDifferentialFuzz(const FuzzConfig& config,
                                 const StorePerturbation& perturb,
                                 FuzzOutcome* out);

/// Deterministic random-network generator used by the campaign (exposed for
/// tests). `seed` fully determines the graph.
schema::SocialNetwork GenerateFuzzNetwork(uint64_t seed, int max_persons);

/// Re-executes a mismatch artifact on its embedded graph. Returns true when
/// the named backend still disagrees with the oracle on the binding.
bool MismatchReproduces(const FuzzMismatch& mismatch,
                        const StorePerturbation& perturb = nullptr);

/// Regression-artifact round-trip. Writes "snb-fuzz-regression-v2";
/// reading also accepts v1 (which lacks shard_count — defaults to 1).
std::string MismatchToJson(const FuzzMismatch& mismatch);
util::Status MismatchFromJson(const std::string& json, FuzzMismatch* out);
util::Status WriteMismatch(const FuzzMismatch& mismatch,
                           const std::string& path);
util::Status ReadMismatch(const std::string& path, FuzzMismatch* out);

}  // namespace snb::validate

#endif  // SNB_VALIDATE_FUZZ_H_
