file(REMOVE_RECURSE
  "CMakeFiles/snb_algorithms.dir/graph_algorithms.cc.o"
  "CMakeFiles/snb_algorithms.dir/graph_algorithms.cc.o.d"
  "libsnb_algorithms.a"
  "libsnb_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
