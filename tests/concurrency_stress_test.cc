// Concurrency stress: reader threads run CQ2/CQ9 in a tight loop while the
// main thread replays the generated update stream against the same store
// (epoch read mode, the default). Readers verify per-query invariants that
// must hold under any snapshot; afterwards the stressed store must answer
// identically to a replica loaded sequentially.
//
// Built under -DSNB_SANITIZE=thread this doubles as the TSan workload for
// the lock-free read path (ctest -L concurrency).
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/complex_queries.h"
#include "queries/update_queries.h"
#include "store/graph_store.h"

namespace snb::store {
namespace {

// Far past every generated creation date (year 2100).
constexpr util::TimestampMs kFarFuture = 4102444800000;

struct ReaderStats {
  uint64_t queries = 0;
  uint64_t results = 0;
};

// Returns a description of the first invariant violation, or "" if clean.
// Runs under its own ReadLock so record lookups are snapshot-safe.
std::string CheckQ2(const GraphStore& store, schema::PersonId start,
                    const std::vector<queries::Q2Result>& results) {
  auto pin = store.ReadLock();
  for (size_t i = 0; i < results.size(); ++i) {
    const queries::Q2Result& r = results[i];
    if (i > 0) {
      const queries::Q2Result& prev = results[i - 1];
      bool ordered = prev.creation_date > r.creation_date ||
                     (prev.creation_date == r.creation_date &&
                      prev.message_id < r.message_id);
      if (!ordered) return "Q2 results not (date desc, id asc) ordered";
    }
    const MessageRecord* m = store.FindMessage(pin, r.message_id);
    if (m == nullptr) return "Q2 returned an unresolvable message id";
    if (m->data.creator_id != r.creator_id) return "Q2 creator mismatch";
    if (m->data.creation_date != r.creation_date) return "Q2 date mismatch";
    // Friendships are insert-only, so a creator that was a friend inside
    // the query's snapshot is still a friend now.
    if (!store.AreFriends(pin, start, r.creator_id)) {
      return "Q2 creator is not a friend of the start person";
    }
  }
  return "";
}

std::string CheckQ9(const GraphStore& store,
                    const std::vector<queries::Q9Result>& results) {
  auto pin = store.ReadLock();
  for (size_t i = 0; i < results.size(); ++i) {
    const queries::Q9Result& r = results[i];
    if (i > 0) {
      const queries::Q9Result& prev = results[i - 1];
      bool ordered = prev.creation_date > r.creation_date ||
                     (prev.creation_date == r.creation_date &&
                      prev.message_id < r.message_id);
      if (!ordered) return "Q9 results not (date desc, id asc) ordered";
    }
    const MessageRecord* m = store.FindMessage(pin, r.message_id);
    if (m == nullptr) return "Q9 returned an unresolvable message id";
    if (m->data.creator_id != r.creator_id) return "Q9 creator mismatch";
    if (m->data.creation_date != r.creation_date) return "Q9 date mismatch";
  }
  return "";
}

TEST(ConcurrencyStressTest, ReadersRaceUpdateReplay) {
  datagen::DatagenConfig config = datagen::DatagenConfig::ForScaleFactor(0.02);
  datagen::Dataset ds = datagen::Generate(config);
  ASSERT_FALSE(ds.updates.empty());

  GraphStore store;  // Default mode: epoch snapshot reads.
  ASSERT_EQ(store.read_concurrency(), ReadConcurrency::kEpoch);
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());

  std::vector<schema::PersonId> persons;
  {
    auto pin = store.ReadLock();
    persons = store.PersonIds(pin);
  }
  ASSERT_FALSE(persons.empty());

  constexpr int kReaders = 4;
  constexpr uint64_t kMinQueriesPerReader = 40;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> errors{0};
  std::string first_error;  // Written once under the flag below.
  std::atomic<bool> error_logged{false};

  auto report = [&](const std::string& what) {
    if (what.empty()) return;
    errors.fetch_add(1, std::memory_order_relaxed);
    bool expected = false;
    if (error_logged.compare_exchange_strong(expected, true)) {
      first_error = what;
    }
  };

  std::vector<ReaderStats> stats(kReaders);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      ReaderStats& my = stats[t];
      size_t cursor = static_cast<size_t>(t);
      while (!done.load(std::memory_order_acquire) ||
             my.queries < kMinQueriesPerReader) {
        schema::PersonId pid = persons[cursor % persons.size()];
        cursor += kReaders;
        auto q2 = queries::Query2(store, pid, kFarFuture);
        report(CheckQ2(store, pid, q2));
        auto q9 = queries::Query9(store, pid, kFarFuture);
        report(CheckQ9(store, q9));
        my.queries += 2;
        my.results += q2.size() + q9.size();
      }
    });
  }

  // Writer: replay the full update stream on the main thread.
  uint64_t applied = 0;
  for (const datagen::UpdateOperation& op : ds.updates) {
    ASSERT_TRUE(queries::ApplyUpdate(store, op).ok());
    ++applied;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(errors.load(), 0u) << first_error;
  EXPECT_EQ(applied, ds.updates.size());
  uint64_t total_queries = 0;
  for (const ReaderStats& s : stats) total_queries += s.queries;
  EXPECT_GE(total_queries, kReaders * kMinQueriesPerReader);

  // Counters converge to the dataset's ground truth once the stream is in.
  EXPECT_EQ(store.NumPersons(), ds.stats.num_persons);
  EXPECT_EQ(store.NumKnowsEdges(), ds.stats.num_knows);
  EXPECT_EQ(store.NumMessages(), ds.stats.NumMessages());
  EXPECT_EQ(store.NumLikes(), ds.stats.num_likes);

  // The stressed store must be indistinguishable from a sequential load.
  GraphStore replica;
  ASSERT_TRUE(replica.BulkLoad(ds.bulk).ok());
  for (const datagen::UpdateOperation& op : ds.updates) {
    ASSERT_TRUE(queries::ApplyUpdate(replica, op).ok());
  }
  size_t checked = 0;
  for (size_t i = 0; i < persons.size() && checked < 16; i += 7, ++checked) {
    schema::PersonId pid = persons[i];
    auto got = queries::Query9(store, pid, kFarFuture);
    auto want = queries::Query9(replica, pid, kFarFuture);
    ASSERT_EQ(got.size(), want.size()) << "person " << pid;
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].message_id, want[k].message_id);
      EXPECT_EQ(got[k].creator_id, want[k].creator_id);
      EXPECT_EQ(got[k].creation_date, want[k].creation_date);
    }
  }
}

}  // namespace
}  // namespace snb::store
