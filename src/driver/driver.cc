#include "driver/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <unordered_map>

#include "datagen/config.h"
#include "driver/dependency_services.h"
#include "driver/run_audit.h"
#include "obs/perf_counters.h"
#include "obs/prof.h"
#include "store/shard_router.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace snb::driver {
namespace {

using Clock = std::chrono::steady_clock;

/// The obs series an operation's execution is attributed to (also the
/// trace span name and the compliance audit row).
obs::OpType TraceOpType(const Operation& op) {
  switch (op.type) {
    case OperationType::kComplexRead:
      return obs::ComplexOp(op.query_id);
    case OperationType::kShortRead:
      return obs::ShortOp(op.query_id);
    case OperationType::kUpdate:
      return obs::UpdateOp(op.update_kind == 0 ? 1 : op.update_kind);
  }
  return obs::OpType::kPointRead;
}

/// Shared run accounting across worker threads.
struct RunState {
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> failed{0};
  util::Mutex error_mu;
  std::string first_error SNB_GUARDED_BY(error_mu);
  std::atomic<int64_t> max_lag_us{0};
  std::atomic<uint64_t> dependencies_tracked{0};
  std::atomic<uint64_t> dependent_waits{0};
  /// Bounded per-second max-lag series (downsamples past 1024 seconds).
  LagTimeline lag_timeline;
  /// Schedule-compliance audit; only fed on throttled runs.
  ComplianceTracker compliance;

  explicit RunState(double compliance_window_ms)
      : compliance(compliance_window_ms) {}

  void RecordResult(const util::Status& status) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (!status.ok()) {
      failed.fetch_add(1, std::memory_order_relaxed);
      util::MutexLock lock(&error_mu);
      if (first_error.empty()) first_error = status.ToString();
    }
  }

  /// `second` is the operation's scheduled second of the run (-1 when
  /// unthrottled — no timeline then).
  void RecordLag(int64_t lag_us, int64_t second) {
    FoldMax(max_lag_us, lag_us);
    lag_timeline.Record(second, lag_us);
  }
};

/// Maps simulation due times to wall-clock deadlines under an acceleration
/// factor and blocks until an operation's start time.
class Throttle {
 public:
  Throttle(double acceleration, util::TimestampMs base_due)
      : acceleration_(acceleration),
        base_due_(base_due),
        start_(Clock::now()) {}

  /// Wall-clock deadline `due` maps to. Only meaningful when throttled.
  Clock::time_point DeadlineFor(util::TimestampMs due) const {
    double real_ms = static_cast<double>(due - base_due_) / acceleration_;
    return start_ + std::chrono::microseconds(
                        static_cast<int64_t>(real_ms * 1000.0));
  }

  /// Waits until `due` is scheduled; returns lateness in microseconds
  /// (0 when unthrottled).
  int64_t WaitUntilDue(util::TimestampMs due) const {
    if (acceleration_ <= 0.0) return 0;
    Clock::time_point deadline = DeadlineFor(due);
    Clock::time_point now = Clock::now();
    if (now < deadline) {
      std::this_thread::sleep_until(deadline);
      return 0;
    }
    return std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                 deadline)
        .count();
  }

  /// How many microseconds past `due`'s deadline the clock already is
  /// (0 when unthrottled or still ahead of schedule). No sleeping — the
  /// windowed mode paces at window granularity but audits per operation.
  int64_t LatenessMicros(util::TimestampMs due) const {
    if (acceleration_ <= 0.0) return 0;
    Clock::time_point deadline = DeadlineFor(due);
    Clock::time_point now = Clock::now();
    if (now <= deadline) return 0;
    return std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                 deadline)
        .count();
  }

  /// The run-relative second `due` is scheduled into (-1 when
  /// unthrottled). Pure due-time arithmetic — no clock read — so the
  /// timeline costs nothing beyond the CAS-max in RecordLag.
  int64_t ScheduledSecond(util::TimestampMs due) const {
    if (acceleration_ <= 0.0) return -1;
    double real_ms = static_cast<double>(due - base_due_) / acceleration_;
    return real_ms < 0.0 ? 0 : static_cast<int64_t>(real_ms / 1000.0);
  }

  bool throttled() const { return acceleration_ > 0.0; }

 private:
  double acceleration_;
  util::TimestampMs base_due_;
  Clock::time_point start_;
};

uint32_t PartitionOf(const Operation& op, uint32_t num_partitions,
                     ExecutionMode mode, uint64_t index,
                     uint32_t store_shards) {
  if (mode == ExecutionMode::kSequentialForum &&
      op.forum_partition != schema::kInvalidId) {
    // Shard-affine routing: forums on one store shard share a stream, so
    // a sharded store sees each shard's forum-tree updates from a single
    // thread. Same-forum ops still share a stream either way.
    if (store_shards > 0) {
      return store::ShardOfForum(op.forum_partition, store_shards) %
             num_partitions;
    }
    return static_cast<uint32_t>(util::Mix64(op.forum_partition) %
                                 num_partitions);
  }
  return static_cast<uint32_t>(index % num_partitions);
}

/// Stream loop shared by the sequential-forum and parallel-GCT modes
/// (Figure 8 of the paper).
void RunStream(const std::vector<const Operation*>& ops,
               Connector& connector, ExecutionMode mode,
               LocalDependencyService* lds, GlobalDependencyService* gds,
               const Throttle& throttle, RunState* state,
               obs::MetricsRegistry* metrics, obs::TraceBuffer* trace) {
  for (const Operation* op : ops) {
    // CPU burned anywhere in this iteration — dependency wait, throttle
    // spin, execution — is on behalf of this op; attribute all of it.
    obs::prof::ScopedOpContext prof_op(
        static_cast<uint16_t>(TraceOpType(*op)));
    bool is_dependency =
        op->is_dependency ||
        (mode == ExecutionMode::kParallelGct &&
         op->type == OperationType::kUpdate);
    util::TimestampMs wait_for = mode == ExecutionMode::kParallelGct
                                     ? op->dependency_time
                                     : op->person_dependency_time;
    if (is_dependency) {
      lds->Initiate(op->due_time);
      state->dependencies_tracked.fetch_add(1, std::memory_order_relaxed);
    } else {
      lds->MarkTime(op->due_time);
    }
    obs::TraceEvent event;
    if (wait_for > 0) {
      state->dependent_waits.fetch_add(1, std::memory_order_relaxed);
      // Most dependencies are already satisfied by the time their dependent
      // op is due; the lock-free probe keeps those off the waiter mutex and
      // keeps the clock out of the no-wait path entirely (kGctWait records
      // only waits that actually blocked).
      if (!gds->CompletedThrough(wait_for)) {
        if (metrics != nullptr || trace != nullptr) {
          if (trace != nullptr) event.gct_begin_ns = trace->NowNs();
          util::Stopwatch wait_watch;
          gds->WaitUntilCompleted(wait_for);
          uint64_t waited_ns = wait_watch.ElapsedNanos();
          if (metrics != nullptr) {
            metrics->RecordLatencyNs(obs::OpType::kGctWait, waited_ns);
          }
          if (trace != nullptr) event.gct_wait_ns = waited_ns;
        } else {
          gds->WaitUntilCompleted(wait_for);
        }
      }
    }
    int64_t lag_us = throttle.WaitUntilDue(op->due_time);
    state->RecordLag(lag_us, throttle.ScheduledSecond(op->due_time));
    if (throttle.throttled()) {
      state->compliance.Record(TraceOpType(*op), lag_us);
      if (metrics != nullptr) {
        metrics->RecordLatencyNs(obs::OpType::kSchedLag,
                                 static_cast<uint64_t>(lag_us) * 1000);
      }
    }
    if (trace != nullptr) {
      event.op = TraceOpType(*op);
      if (throttle.throttled()) {
        event.sched_ns = trace->ToBufferNs(throttle.DeadlineFor(op->due_time));
      }
      event.exec_begin_ns = trace->NowNs();
      obs::perf::ScopedHwCounts hw_scope;
      state->RecordResult(connector.Execute(*op));
      event.hw = hw_scope.Delta();
      event.end_ns = trace->NowNs();
      trace->Record(event);
    } else {
      state->RecordResult(connector.Execute(*op));
    }
    if (is_dependency) lds->Complete(op->due_time);
  }
  lds->MarkTime(kTimeMax);
}

DriverReport FinishReport(const RunState& state, double elapsed_seconds,
                          const DriverConfig& config) {
  DriverReport report;
  report.operations_executed = state.executed.load();
  report.operations_failed = state.failed.load();
  report.first_error = state.first_error;
  report.elapsed_seconds = elapsed_seconds;
  report.ops_per_second =
      elapsed_seconds > 0.0
          ? static_cast<double>(report.operations_executed) / elapsed_seconds
          : 0.0;
  report.max_schedule_lag_ms =
      static_cast<double>(state.max_lag_us.load()) / 1000.0;
  report.sustained = config.acceleration <= 0.0 ||
                     report.max_schedule_lag_ms <=
                         config.sustained_lag_threshold_ms;
  report.dependencies_tracked = state.dependencies_tracked.load();
  report.dependent_waits = state.dependent_waits.load();
  report.lag_timeline_ms = state.lag_timeline.Snapshot();
  if (config.acceleration > 0.0) {
    report.has_compliance = true;
    report.compliance = state.compliance.Finish(config.compliance_threshold);
  }
  if (config.metrics != nullptr) {
    config.metrics->AddCounter(obs::Counter::kOperationsExecuted,
                               report.operations_executed);
    config.metrics->AddCounter(obs::Counter::kOperationsFailed,
                               report.operations_failed);
    config.metrics->AddCounter(obs::Counter::kDependenciesTracked,
                               report.dependencies_tracked);
    config.metrics->AddCounter(obs::Counter::kGctDependentWaits,
                               report.dependent_waits);
  }
  return report;
}

DriverReport RunStreamed(const std::vector<Operation>& operations,
                         Connector& connector, const DriverConfig& config) {
  uint32_t partitions = std::max<uint32_t>(config.num_partitions, 1);
  std::vector<std::vector<const Operation*>> streams(partitions);
  for (size_t i = 0; i < operations.size(); ++i) {
    streams[PartitionOf(operations[i], partitions, config.mode, i,
                        config.store_shards)]
        .push_back(&operations[i]);
  }

  GlobalDependencyService gds;
  std::vector<LocalDependencyService*> lds;
  lds.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    lds.push_back(gds.AddStream());
    // Seed every stream with the workload start: dependencies older than the
    // first operation live in the bulk load and are complete by definition.
    lds.back()->MarkTime(operations.front().due_time);
  }

  RunState state(config.compliance_window_ms);
  Throttle throttle(config.acceleration, operations.front().due_time);
  Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    workers.emplace_back([&, p] {
      std::string lane = "driver." + std::to_string(p);
      obs::prof::ScopedThreadRegistration prof_thread(lane.c_str());
      RunStream(streams[p], connector, config.mode, lds[p], &gds, throttle,
                &state, config.metrics, config.trace);
    });
  }
  for (std::thread& t : workers) t.join();
  double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return FinishReport(state, elapsed, config);
}

/// One operation of a window: audits its lateness against its own due
/// time (the pool may start it well after the window barrier released)
/// and records its trace span.
void ExecuteWindowedOp(const Operation& op, Connector& connector,
                       const Throttle& throttle, RunState* state,
                       obs::MetricsRegistry* metrics,
                       obs::TraceBuffer* trace) {
  // Pool workers register lazily under a shared lane (idempotent after
  // the first window) and unregister at thread exit.
  obs::prof::RegisterCurrentThread("driver.pool");
  obs::prof::ScopedOpContext prof_op(static_cast<uint16_t>(TraceOpType(op)));
  if (throttle.throttled()) {
    int64_t lag_us = throttle.LatenessMicros(op.due_time);
    state->RecordLag(lag_us, throttle.ScheduledSecond(op.due_time));
    state->compliance.Record(TraceOpType(op), lag_us);
    if (metrics != nullptr) {
      metrics->RecordLatencyNs(obs::OpType::kSchedLag,
                               static_cast<uint64_t>(lag_us) * 1000);
    }
  }
  if (trace == nullptr) {
    state->RecordResult(connector.Execute(op));
    return;
  }
  obs::TraceEvent event;
  event.op = TraceOpType(op);
  if (throttle.throttled()) {
    event.sched_ns = trace->ToBufferNs(throttle.DeadlineFor(op.due_time));
  }
  event.exec_begin_ns = trace->NowNs();
  obs::perf::ScopedHwCounts hw_scope;
  state->RecordResult(connector.Execute(op));
  event.hw = hw_scope.Delta();
  event.end_ns = trace->NowNs();
  trace->Record(event);
}

DriverReport RunWindowed(const std::vector<Operation>& operations,
                         Connector& connector, const DriverConfig& config) {
  uint32_t partitions = std::max<uint32_t>(config.num_partitions, 1);
  util::ThreadPool pool(partitions);
  RunState state(config.compliance_window_ms);
  util::TimestampMs base = operations.front().due_time;
  Throttle throttle(config.acceleration, base);
  Clock::time_point start = Clock::now();

  // Window width must not exceed T_SAFE for cross-window dependency safety.
  const util::TimestampMs window_ms = datagen::kTSafeMs;
  size_t next = 0;
  while (next < operations.size()) {
    util::TimestampMs window_start =
        base + (operations[next].due_time - base) / window_ms * window_ms;
    util::TimestampMs window_end = window_start + window_ms;
    size_t end = next;
    while (end < operations.size() &&
           operations[end].due_time < window_end) {
      ++end;
    }

    // Throttled runs start a window no earlier than its scheduled time.
    // Lag is audited per operation below (ExecuteWindowedOp), so the wait
    // itself needs no recording.
    throttle.WaitUntilDue(window_start);

    // Group the window: forum-tree ops run sequentially per forum; all
    // remaining ops have >= T_SAFE-old dependencies and run freely.
    std::unordered_map<uint64_t, std::vector<const Operation*>> forum_groups;
    std::vector<std::vector<const Operation*>> free_batches(partitions);
    size_t free_index = 0;
    for (size_t i = next; i < end; ++i) {
      const Operation& op = operations[i];
      if (op.forum_partition != schema::kInvalidId) {
        // With shard affinity, group by the forum's store shard: grouping
        // by shard coarsens grouping by forum (same forum, same shard),
        // so intra-forum sequencing survives and each shard's forum-tree
        // updates run on one worker.
        uint64_t group_key =
            config.store_shards > 0
                ? store::ShardOfForum(op.forum_partition, config.store_shards)
                : op.forum_partition;
        forum_groups[group_key].push_back(&op);
      } else {
        free_batches[free_index++ % partitions].push_back(&op);
      }
    }
    for (auto& [_, group] : forum_groups) {
      pool.Submit([&connector, &state, &throttle, &config, group = &group] {
        for (const Operation* op : *group) {
          ExecuteWindowedOp(*op, connector, throttle, &state, config.metrics,
                            config.trace);
        }
      });
    }
    for (std::vector<const Operation*>& batch : free_batches) {
      if (batch.empty()) continue;
      pool.Submit([&connector, &state, &throttle, &config, batch = &batch] {
        for (const Operation* op : *batch) {
          ExecuteWindowedOp(*op, connector, throttle, &state, config.metrics,
                            config.trace);
        }
      });
    }
    pool.Wait();  // Window barrier.
    next = end;
  }
  double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  return FinishReport(state, elapsed, config);
}

}  // namespace

obs::DriverSection MakeDriverSection(const DriverReport& report) {
  obs::DriverSection section;
  section.operations_executed = report.operations_executed;
  section.operations_failed = report.operations_failed;
  section.elapsed_seconds = report.elapsed_seconds;
  section.ops_per_second = report.ops_per_second;
  section.max_schedule_lag_ms = report.max_schedule_lag_ms;
  section.sustained = report.sustained;
  section.dependencies_tracked = report.dependencies_tracked;
  section.dependent_waits = report.dependent_waits;
  section.lag_timeline_ms = report.lag_timeline_ms;
  return section;
}

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kSequentialForum:
      return "sequential-forum";
    case ExecutionMode::kParallelGct:
      return "parallel-gct";
    case ExecutionMode::kWindowed:
      return "windowed";
  }
  return "unknown";
}

DriverReport RunWorkload(const std::vector<Operation>& operations,
                         Connector& connector, const DriverConfig& config) {
  if (operations.empty()) return DriverReport{};
  if (config.mode == ExecutionMode::kWindowed) {
    return RunWindowed(operations, connector, config);
  }
  return RunStreamed(operations, connector, config);
}

}  // namespace snb::driver
