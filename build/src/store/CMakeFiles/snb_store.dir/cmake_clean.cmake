file(REMOVE_RECURSE
  "CMakeFiles/snb_store.dir/graph_store.cc.o"
  "CMakeFiles/snb_store.dir/graph_store.cc.o.d"
  "libsnb_store.a"
  "libsnb_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
