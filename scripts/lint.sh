#!/usr/bin/env bash
# Whole-tree lint gate: clang-tidy (when available) over
# compile_commands.json, plus repo-idiom lints that hold under any
# toolchain. Exits nonzero on the first violated rule.
#
# Usage:
#   scripts/lint.sh                # full gate
#   scripts/lint.sh --format-check # clang-format check only (no rewrite)
#
# The clang-* passes degrade to a notice when the tools are not installed
# (the container ships GCC only); the custom lints always run, so the gate
# is never vacuous.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
fail=0

note() { echo "lint: $*"; }
violation() {
  echo "lint: FAIL: $*" >&2
  fail=1
}

# Tracked C++ sources, lint scope. tests/negative is excluded: those files
# exist to violate the rules.
cxx_sources() {
  find src bench examples tests tools \
    \( -name "*.h" -o -name "*.cc" -o -name "*.cpp" \) \
    -not -path "tests/negative/*" | sort
}

# ---- clang-format (check-only) ---------------------------------------------
run_format_check() {
  if ! command -v clang-format >/dev/null 2>&1; then
    note "clang-format not installed; skipping format check"
    return 0
  fi
  local bad=0
  while IFS= read -r f; do
    if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
      violation "clang-format: $f needs formatting"
      bad=1
    fi
  done < <(cxx_sources)
  [[ $bad -eq 0 ]] && note "clang-format: all sources clean"
}

if [[ "${1:-}" == "--format-check" ]]; then
  run_format_check
  exit "$fail"
fi

# ---- clang-tidy over compile_commands.json ---------------------------------
# One clang-tidy process per file, nproc at a time. Each worker writes
# its diagnostics to a private log and appends the file name to a shared
# failure list (single short O_APPEND writes, so no interleaving);
# results are reported in sorted order, so output is deterministic no
# matter how the parallel runs finish.
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ -f "${BUILD_DIR}/compile_commands.json" ]]; then
    note "clang-tidy over ${BUILD_DIR}/compile_commands.json ($(nproc) jobs)"
    TIDY_DIR=$(mktemp -d)
    trap 'rm -rf "$TIDY_DIR"' EXIT
    export BUILD_DIR TIDY_DIR
    # Headers are covered through their includers.
    cxx_sources | grep -vE '\.h$' |
      xargs -r -P "$(nproc)" -n 1 bash -c '
        f="$1"
        log="${TIDY_DIR}/${f//\//__}.log"
        if ! clang-tidy -p "${BUILD_DIR}" --quiet "$f" >"$log" 2>&1; then
          echo "$f" >> "${TIDY_DIR}/failed"
        fi' tidy-worker
    if [[ -s "${TIDY_DIR}/failed" ]]; then
      while IFS= read -r f; do
        violation "clang-tidy: $f"
        sed 's/^/    /' "${TIDY_DIR}/${f//\//__}.log" >&2 || true
      done < <(sort "${TIDY_DIR}/failed")
    else
      note "clang-tidy: all sources clean"
    fi
  else
    note "no ${BUILD_DIR}/compile_commands.json; configure first" \
         "(cmake -B ${BUILD_DIR} -S .) — skipping clang-tidy"
  fi
else
  note "clang-tidy not installed; skipping (custom lints still run)"
fi

# ---- custom lint 1: no naked new/delete in src/ ----------------------------
# Ownership in the library lives in containers and smart pointers. The
# allowlist holds the epoch reclamation machinery (type-erased garbage
# needs raw new/delete), the intentionally-leaked metrics global, the
# profiler's leaked registry (signal handlers may fire during static
# destruction, so its state must never be destructed), and the RCU
# structures' placement-new into raw chunks. Tests and benches may
# leak fixtures on purpose (gtest SetUpTestSuite idiom), so the rule is
# scoped to src/.
NAKED_NEW_ALLOWLIST='src/util/epoch\.(h|cc)|src/obs/metrics\.cc|src/obs/prof\.cc|src/store/dense_table\.h|src/util/rcu_vector\.h'
naked=$(
  while IFS= read -r f; do
    # Strip // comments so prose about "new members" never trips the lint.
    sed 's@//.*@@' "$f" |
      grep -nE "[^_[:alnum:]]new [A-Za-z_<(]|[^_[:alnum:]]delete( \[\])? [A-Za-z_(]|[^_[:alnum:]]delete\[\]" |
      sed "s@^@$f:@" || true
  done < <(cxx_sources | grep '^src/' | grep -vE "$NAKED_NEW_ALLOWLIST")
)
if [[ -n "$naked" ]]; then
  violation "naked new/delete outside the allowlist:"$'\n'"$naked"
else
  note "naked new/delete: clean"
fi

# ---- custom lint 2: no raw std synchronisation -----------------------------
# Every mutex must be an annotated util::Mutex / util::SharedMutex so
# Clang's thread-safety analysis can see it; every cv must be
# condition_variable_any waiting on the annotated MutexLock. Only the
# wrapper (and the annotation header documenting the rule) may name the
# raw types. std::shared_lock over SharedMutex::native() stays legal: it
# is the sanctioned movable read guard.
MUTEX_ALLOWLIST='src/util/mutex\.h|src/util/thread_annotations\.h'
rawmu=$(
  while IFS= read -r f; do
    sed 's@//.*@@' "$f" |
      grep -nE "std::mutex\b|std::lock_guard|std::unique_lock|std::condition_variable\b" |
      sed "s@^@$f:@" || true
  done < <(cxx_sources | grep -vE "$MUTEX_ALLOWLIST")
)
if [[ -n "$rawmu" ]]; then
  violation "raw std::mutex/lock_guard/unique_lock/condition_variable outside util/mutex.h:"$'\n'"$rawmu"
else
  note "raw std synchronisation: clean"
fi

# ---- custom lint 3: deterministic datagen ----------------------------------
# DATAGEN must be a pure function of (config, seed): same inputs, same
# dataset, on any machine. Wall clocks and nondeterministic seeds are
# banned from the generator.
nondet=$(grep -rnE "std::random_device|std::rand\b|\bsrand\b|system_clock::now|steady_clock::now|high_resolution_clock" \
         src/datagen --include="*.h" --include="*.cc" || true)
if [[ -n "$nondet" ]]; then
  violation "nondeterminism in src/datagen:"$'\n'"$nondet"
else
  note "datagen determinism: clean"
fi

# ---- custom lint 4: lock-table coverage ------------------------------------
# Every annotated mutex member in the tree must be documented in
# DESIGN.md's lock table (capability -> protected state -> order). A new
# mutex without a lock-table row fails the gate until it is written down.
mutexes=$(grep -rhoE "^\s*(mutable\s+)?(util::)?(Mutex|SharedMutex)\s+[A-Za-z_]+" \
            src --include="*.h" --include="*.cc" |
          awk '{print $NF}' | sort -u)
if [[ -z "$mutexes" ]]; then
  violation "found no annotated mutex members; extraction regex is stale"
fi
for m in $mutexes; do
  if ! grep -qE "(^|[^A-Za-z_])${m}(\`|[^A-Za-z_]|$)" DESIGN.md; then
    violation "mutex member '${m}' missing from DESIGN.md's lock table"
  fi
done
[[ $fail -eq 0 ]] && note "lock-table coverage: all $(echo "$mutexes" | wc -l) mutex names documented"

# ---- clang-format, as part of the full gate --------------------------------
run_format_check

if [[ $fail -ne 0 ]]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: all checks passed"
