// Deterministic counter-based random number generation.
//
// DATAGEN must produce the same dataset regardless of worker count (paper
// section 2.4). Every random decision therefore derives from a pure function
// of (seed, entity id, purpose) rather than from shared mutable generator
// state, so data generation parallelizes without cross-thread ordering
// effects.
#ifndef SNB_UTIL_RNG_H_
#define SNB_UTIL_RNG_H_

#include <cstdint>

namespace snb::util {

/// Purpose tags keep random streams for different decisions about the same
/// entity statistically independent.
enum class RandomPurpose : uint64_t {
  kFirstName = 1,
  kLastName,
  kGender,
  kBirthday,
  kLocation,
  kUniversity,
  kStudyYear,
  kCompany,
  kWorkYear,
  kLanguages,
  kInterests,
  kCreatedDate,
  kDegree,
  kDegreePercentile,
  kFriendPick,
  kForumCount,
  kPostCount,
  kPostTopic,
  kPostText,
  kPostDate,
  kCommentFan,
  kCommentText,
  kCommentDate,
  kLikeFan,
  kLikeDate,
  kMembership,
  kEventSpike,
  kEmail,
  kBrowser,
  kIp,
  kQueryMix,
  kShortReadWalk,
  kParameterPick,
  kPhoto,
};

/// SplitMix64 finalizer: a high-quality 64-bit mix function.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A small counter-based PRNG. Construction is O(1); streams constructed from
/// the same (seed, key, purpose) triple yield identical sequences.
class Rng {
 public:
  /// Creates a stream keyed by a global seed, an entity key (e.g. person id)
  /// and a purpose tag.
  Rng(uint64_t seed, uint64_t key, RandomPurpose purpose)
      : state_(Mix64(seed ^ Mix64(key ^ Mix64(static_cast<uint64_t>(purpose)
                                              * 0xd6e8feb86659fd93ULL)))) {}

  /// Creates a stream from a raw state (used for sub-streams).
  explicit Rng(uint64_t state) : state_(Mix64(state)) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return Mix64(state_);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace snb::util

#endif  // SNB_UTIL_RNG_H_
