#!/usr/bin/env python3
"""Perf-regression gate over two snb-report JSON artifacts.

Compares a candidate report against a baseline and exits nonzero when the
candidate regressed past the configured thresholds:

  * driver throughput (ops_per_second) dropped more than
    --max-throughput-drop (fraction of baseline);
  * any shared op-type percentile (p50/p95/p99) inflated more than
    --max-latency-inflation (fraction of baseline) AND more than
    --latency-slack-ms absolute (the slack keeps micro-latencies from
    tripping the relative check on scheduler noise);
  * the schedule-compliance on-time fraction dropped more than
    --max-compliance-drop (absolute);
  * aggregate update-path throughput (the "update.*" ops' total count
    divided by their summed count x mean_ms wall time) dropped more than
    --max-update-throughput-drop (fraction of baseline). This is the
    sharded store's N=1 regression gate: the single-shard update path
    must not pay for the sharding machinery. Engages only when both
    reports carry update rows totalling at least --min-count ops;
  * a shared op's hardware-counter ratios regressed: IPC dropped more
    than --max-ipc-drop (fraction of baseline), or LLC misses per kilo
    instruction inflated more than --max-llc-miss-inflation (fraction)
    AND more than --llc-miss-slack absolute. Counter ratios only exist
    in snb-report-v4 runs with live perf counters; when either report
    lacks them for an op, that op's counter checks are skipped — so
    wall-clock-only baselines keep working;
  * the candidate's sampling-profiler self-overhead exceeded
    --max-profiler-overhead (fraction of the profiled task-clock). This
    is an absolute gate on the candidate alone — no baseline profile is
    needed — and it only engages when the candidate ran the timer
    backend with at least --min-prof-samples samples (a 3-sample run
    cannot estimate overhead).

Only op types present in BOTH reports are compared, so baselines survive
query-mix additions. Accepts schema snb-report-v1 through v5 (v1 simply
has no compliance section to compare; the v3 validation section is not
a performance artifact and is ignored here).

Usage:
  scripts/compare_reports.py baseline.json candidate.json [thresholds...]

Exit codes: 0 = no regression, 1 = regression detected, 2 = bad input.
"""

import argparse
import json
import sys

PERCENTILES = ("p50_ms", "p95_ms", "p99_ms")
ACCEPTED_SCHEMAS = ("snb-report-v1", "snb-report-v2", "snb-report-v3",
                    "snb-report-v4", "snb-report-v5")


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    schema = doc.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        print(f"error: {path}: unexpected schema {schema!r}", file=sys.stderr)
        raise SystemExit(2)
    return doc


def op_table(doc):
    return {op["op"]: op for op in doc.get("ops", []) if op.get("count", 0) > 0}


def main():
    parser = argparse.ArgumentParser(
        description="diff two snb report.json files for perf regressions")
    parser.add_argument("baseline", help="baseline report.json")
    parser.add_argument("candidate", help="candidate report.json")
    parser.add_argument("--max-throughput-drop", type=float, default=0.3,
                        metavar="FRAC",
                        help="max allowed relative ops/s drop (default 0.3)")
    parser.add_argument("--max-latency-inflation", type=float, default=0.5,
                        metavar="FRAC",
                        help="max allowed relative p50/p95/p99 growth per op "
                             "(default 0.5)")
    parser.add_argument("--latency-slack-ms", type=float, default=1.0,
                        metavar="MS",
                        help="absolute growth below this never fails the "
                             "latency check (default 1.0)")
    parser.add_argument("--max-update-throughput-drop", type=float,
                        default=0.5, metavar="FRAC",
                        help="max allowed relative drop of aggregate "
                             "update.* ops/s (default 0.5)")
    parser.add_argument("--max-compliance-drop", type=float, default=0.05,
                        metavar="FRAC",
                        help="max allowed absolute on-time-fraction drop "
                             "(default 0.05)")
    parser.add_argument("--min-count", type=int, default=8, metavar="N",
                        help="skip ops with fewer samples in either report "
                             "(default 8)")
    parser.add_argument("--max-ipc-drop", type=float, default=0.2,
                        metavar="FRAC",
                        help="max allowed relative per-op IPC drop "
                             "(default 0.2; needs v4 counter fields)")
    parser.add_argument("--max-llc-miss-inflation", type=float, default=0.5,
                        metavar="FRAC",
                        help="max allowed relative growth of per-op LLC "
                             "misses per kilo instruction (default 0.5)")
    parser.add_argument("--llc-miss-slack", type=float, default=0.5,
                        metavar="MPKI",
                        help="absolute misses/kinstr growth below this never "
                             "fails the LLC check (default 0.5)")
    parser.add_argument("--min-hw-samples", type=int, default=8, metavar="N",
                        help="skip counter checks for ops with fewer "
                             "counter-attached samples (default 8)")
    parser.add_argument("--max-profiler-overhead", type=float, default=0.02,
                        metavar="FRAC",
                        help="max allowed candidate profiler self-overhead "
                             "as a fraction of task-clock (default 0.02)")
    parser.add_argument("--min-prof-samples", type=int, default=200,
                        metavar="N",
                        help="skip the overhead gate below this many "
                             "captured samples (default 200)")
    args = parser.parse_args()

    base = load_report(args.baseline)
    cand = load_report(args.candidate)
    regressions = []
    checks = 0

    # Throughput.
    base_tput = base.get("driver", {}).get("ops_per_second")
    cand_tput = cand.get("driver", {}).get("ops_per_second")
    if base_tput and cand_tput:
        checks += 1
        floor = base_tput * (1.0 - args.max_throughput_drop)
        if cand_tput < floor:
            regressions.append(
                f"throughput: {cand_tput:.0f} ops/s < floor {floor:.0f} "
                f"(baseline {base_tput:.0f}, max drop "
                f"{args.max_throughput_drop:.0%})")

    # Per-op percentiles over the intersection.
    base_ops = op_table(base)
    cand_ops = op_table(cand)
    for name in sorted(base_ops.keys() & cand_ops.keys()):
        b, c = base_ops[name], cand_ops[name]
        if min(b["count"], c["count"]) < args.min_count:
            continue
        for pct in PERCENTILES:
            if pct not in b or pct not in c:
                continue
            checks += 1
            ceiling = b[pct] * (1.0 + args.max_latency_inflation)
            if c[pct] > ceiling and c[pct] - b[pct] > args.latency_slack_ms:
                regressions.append(
                    f"{name} {pct}: {c[pct]:.3f} ms > ceiling {ceiling:.3f} "
                    f"(baseline {b[pct]:.3f}, max inflation "
                    f"{args.max_latency_inflation:.0%})")
        # Hardware-counter ratios (v4 runs with live counters only).
        if min(b.get("hw_samples", 0), c.get("hw_samples", 0)) \
                >= args.min_hw_samples:
            if "ipc" in b and "ipc" in c and b["ipc"] > 0:
                checks += 1
                floor = b["ipc"] * (1.0 - args.max_ipc_drop)
                if c["ipc"] < floor:
                    regressions.append(
                        f"{name} ipc: {c['ipc']:.3f} < floor {floor:.3f} "
                        f"(baseline {b['ipc']:.3f}, max drop "
                        f"{args.max_ipc_drop:.0%})")
            key = "llc_miss_per_kinstr"
            if key in b and key in c:
                checks += 1
                ceiling = b[key] * (1.0 + args.max_llc_miss_inflation)
                if c[key] > ceiling and c[key] - b[key] > args.llc_miss_slack:
                    regressions.append(
                        f"{name} {key}: {c[key]:.3f} > ceiling "
                        f"{ceiling:.3f} (baseline {b[key]:.3f}, max "
                        f"inflation {args.max_llc_miss_inflation:.0%})")

    # Aggregate update-path throughput: Σ count / Σ (count * mean_ms).
    # The N=1 sharded-store gate — routing hashes, snapshot pins and the
    # per-shard lock must not slow the degenerate single-shard update path.
    def update_tput(ops):
        count = sum(o["count"] for n, o in ops.items()
                    if n.startswith("update.") and "mean_ms" in o)
        ms = sum(o["count"] * o["mean_ms"] for n, o in ops.items()
                 if n.startswith("update.") and "mean_ms" in o)
        return (count, count / (ms / 1000.0) if ms > 0 else None)

    base_ucount, base_utput = update_tput(base_ops)
    cand_ucount, cand_utput = update_tput(cand_ops)
    if (base_utput and cand_utput
            and min(base_ucount, cand_ucount) >= args.min_count):
        checks += 1
        floor = base_utput * (1.0 - args.max_update_throughput_drop)
        if cand_utput < floor:
            regressions.append(
                f"update throughput: {cand_utput:.0f} ops/s < floor "
                f"{floor:.0f} (baseline {base_utput:.0f}, max drop "
                f"{args.max_update_throughput_drop:.0%})")

    # Compliance (v2 only; absent section in either report = not compared).
    base_frac = base.get("compliance", {}).get("on_time_fraction")
    cand_frac = cand.get("compliance", {}).get("on_time_fraction")
    if base_frac is not None and cand_frac is not None:
        checks += 1
        floor = base_frac - args.max_compliance_drop
        if cand_frac < floor:
            regressions.append(
                f"compliance: on-time fraction {cand_frac:.4f} < floor "
                f"{floor:.4f} (baseline {base_frac:.4f})")

    # Profiler self-overhead: an absolute gate on the candidate (v5 runs
    # with a live timer backend only). The profiler must stay invisible;
    # a baseline is no defense for a 5%-overhead "always-on" profiler.
    prof = cand.get("profile", {})
    if (prof.get("backend") == "timer"
            and prof.get("captured", 0) >= args.min_prof_samples
            and prof.get("task_clock_ns", 0) > 0):
        checks += 1
        frac = prof.get("self_overhead_ns", 0) / prof["task_clock_ns"]
        if frac > args.max_profiler_overhead:
            regressions.append(
                f"profiler self-overhead: {frac:.2%} of task-clock > max "
                f"{args.max_profiler_overhead:.2%} "
                f"({prof.get('self_overhead_ns', 0)} ns over "
                f"{prof['task_clock_ns']} ns, "
                f"{prof.get('captured', 0)} samples)")

    print(f"compared {args.candidate} against {args.baseline}: "
          f"{checks} checks, {len(regressions)} regressions")
    for r in regressions:
        print(f"  REGRESSION: {r}")
    if not regressions:
        print("  OK: within thresholds")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
