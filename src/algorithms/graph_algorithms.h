// SNB-Algorithms workload (paper section 1): the graph-analysis algorithms
// the benchmark suite plans to run on the same generated dataset —
// PageRank, Breadth-First Search, Community Detection and Clustering — plus
// connected components. All operate on a compact CSR snapshot of the Knows
// graph.
//
// Beyond being the third workload, these algorithms validate the
// generator's structure claims: the correlated friendship graph must show
// clustering/community structure that a degree-matched random graph lacks
// (Prat & Dominguez-Sal, GRADES 2014 — cited as [13]).
#ifndef SNB_ALGORITHMS_GRAPH_ALGORITHMS_H_
#define SNB_ALGORITHMS_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "schema/entities.h"
#include "util/rng.h"

namespace snb::algorithms {

/// Immutable CSR view of an undirected graph over dense vertex ids.
class CsrGraph {
 public:
  /// Builds from undirected edges over vertices [0, num_vertices).
  /// Adjacency lists are sorted; parallel edges collapse.
  CsrGraph(uint64_t num_vertices,
           const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  /// Builds from the Knows edges of a generated network (vertex = PersonId,
  /// which datagen keeps dense).
  static CsrGraph FromKnows(uint64_t num_persons,
                            const std::vector<schema::Knows>& knows);

  /// A degree-preserving randomized rewiring of this graph (configuration-
  /// model style), used as the "no correlation dimensions" null model.
  CsrGraph DegreeMatchedRandom(util::Rng& rng) const;

  uint32_t num_vertices() const {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }
  uint64_t num_edges() const { return targets_.size() / 2; }

  uint32_t Degree(uint32_t v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  const uint32_t* NeighborsBegin(uint32_t v) const {
    return targets_.data() + offsets_[v];
  }
  const uint32_t* NeighborsEnd(uint32_t v) const {
    return targets_.data() + offsets_[v + 1];
  }

 private:
  CsrGraph() = default;
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> targets_;
};

/// PageRank by power iteration with uniform teleport.
/// Returns per-vertex scores summing to ~1.
std::vector<double> PageRank(const CsrGraph& graph, double damping = 0.85,
                             int iterations = 30);

/// BFS levels from `source`; unreachable vertices get -1. Returns the
/// number of reached vertices through `reached` if non-null.
std::vector<int32_t> BreadthFirstSearch(const CsrGraph& graph,
                                        uint32_t source,
                                        uint64_t* reached = nullptr);

/// Connected components; returns per-vertex component id (smallest vertex
/// id in the component) and the number of components via `count`.
std::vector<uint32_t> ConnectedComponents(const CsrGraph& graph,
                                          uint64_t* count = nullptr);

/// Community detection by synchronous label propagation with deterministic
/// tie-breaking. Returns per-vertex community labels.
std::vector<uint32_t> LabelPropagation(const CsrGraph& graph,
                                       int max_iterations = 20);

/// Community detection by Louvain-style greedy modularity optimization
/// (local moving + graph aggregation). More robust than label propagation
/// on small-diameter graphs. Returns per-vertex community labels.
std::vector<uint32_t> Louvain(const CsrGraph& graph, int max_levels = 5);

/// Newman modularity of a labeling in [-0.5, 1].
double Modularity(const CsrGraph& graph,
                  const std::vector<uint32_t>& labels);

/// Local clustering coefficient of one vertex (triangles / possible pairs).
double LocalClusteringCoefficient(const CsrGraph& graph, uint32_t v);

/// Mean local clustering coefficient over vertices with degree >= 2.
double AverageClusteringCoefficient(const CsrGraph& graph);

/// Total number of triangles in the graph.
uint64_t CountTriangles(const CsrGraph& graph);

}  // namespace snb::algorithms

#endif  // SNB_ALGORITHMS_GRAPH_ALGORITHMS_H_
