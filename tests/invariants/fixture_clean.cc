// Control fixture for tools/snb_invariants: one compliant root per rule
// domain. The checker must report zero violations here — it proves the
// harness (tag emission, objdump parsing, manifest) is wired correctly,
// so a caught violation in the sibling fixtures means detection, not a
// broken setup.
#include <time.h>

#include <atomic>
#include <cstdint>

#include "util/invariant_root.h"

namespace fixture {

std::atomic<uint64_t> g_counter{0};
volatile uint64_t g_sink = 0;

// Signal-safe: touches only the fixture manifest's allowlist
// (clock_gettime via vDSO PLT).
__attribute__((noinline, used)) void CleanHandler() {
  SNB_INVARIANT_ROOT("signal_safe");
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  g_sink = static_cast<uint64_t>(ts.tv_nsec);
}

// Pinned read: pure arithmetic leaf.
__attribute__((noinline, used)) uint64_t CleanPinnedRead(uint64_t x) {
  SNB_INVARIANT_ROOT("pinned_read");
  return x * 2654435761u + 17;
}

// Lock-free: a single atomic RMW.
__attribute__((noinline, used)) void CleanRecord(uint64_t delta) {
  SNB_INVARIANT_ROOT("lockfree");
  g_counter.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace fixture

// Volatile pointers keep the roots address-taken so the compiler cannot
// inline the calls below and discard the standalone bodies.
void (*volatile g_handler)() = &fixture::CleanHandler;
uint64_t (*volatile g_pinned)(uint64_t) = &fixture::CleanPinnedRead;
void (*volatile g_record)(uint64_t) = &fixture::CleanRecord;

int main(int argc, char**) {
  g_handler();
  g_record(g_pinned(static_cast<uint64_t>(argc)));
  return 0;
}
