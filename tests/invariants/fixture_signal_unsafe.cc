// Mutation fixture: a "signal handler" that allocates. malloc is the
// classic async-signal-safety bug (deadlock on the allocator lock the
// interrupted thread may hold); the checker must flag the closure as
// outside the signal_safe allowlist and print the path
//   BadHandler -> malloc.
#include <cstdint>
#include <cstdlib>

#include "util/invariant_root.h"

namespace fixture {

void* volatile g_sink = nullptr;

__attribute__((noinline, used)) void BadHandler() {
  SNB_INVARIANT_ROOT("signal_safe");
  g_sink = std::malloc(64);  // NOLINT: the violation under test.
}

}  // namespace fixture

void (*volatile g_handler)() = &fixture::BadHandler;

int main() {
  g_handler();
  std::free(fixture::g_sink);
  return 0;
}
