// Trending-topics analytics: the marketing-style use case from the paper's
// introduction. Detects the event-driven post spikes DATAGEN simulates
// (section 2.2) by scanning the message volume per (month, tag) and then
// drills into a spike with the interactive queries (Q4 new topics, Q6 tag
// co-occurrence).
//
//   ./examples/trending_topics
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "datagen/datagen.h"
#include "queries/complex_queries.h"
#include "store/graph_store.h"

int main() {
  using namespace snb;

  datagen::DatagenConfig config = datagen::DatagenConfig::ForScaleFactor(0.15);
  config.split_update_stream = false;
  datagen::Dataset dataset = datagen::Generate(config);
  schema::Dictionaries dict(config.seed);
  store::GraphStore store;
  if (!store.BulkLoad(dataset.bulk).ok()) return 1;

  // 1. Monthly volume per tag over the timeline.
  std::map<schema::TagId, std::vector<uint32_t>> tag_months;
  for (const schema::Message& m : dataset.bulk.messages) {
    if (m.kind == schema::MessageKind::kComment || m.tags.empty()) continue;
    auto& months = tag_months[m.tags[0]];
    months.resize(util::kSimulationMonths);
    ++months[util::MonthIndex(m.creation_date)];
  }

  // 2. Spike score: a month's volume relative to the tag's own mean.
  struct Spike {
    schema::TagId tag;
    int month;
    uint32_t count;
    double lift;
  };
  std::vector<Spike> spikes;
  for (auto& [tag, months] : tag_months) {
    double mean = 0;
    for (uint32_t c : months) mean += c;
    mean /= months.size();
    if (mean < 0.5) continue;
    for (int m = 0; m < util::kSimulationMonths; ++m) {
      if (months[m] >= 5 && months[m] > 4 * mean) {
        spikes.push_back({tag, m, months[m], months[m] / mean});
      }
    }
  }
  std::sort(spikes.begin(), spikes.end(),
            [](const Spike& a, const Spike& b) { return a.lift > b.lift; });

  std::printf("Top trending (tag, month) spikes — event-driven generation:\n");
  std::printf("  %-28s %-7s %-7s %-6s\n", "tag", "month", "posts", "lift");
  for (size_t i = 0; i < std::min<size_t>(spikes.size(), 8); ++i) {
    const Spike& s = spikes[i];
    std::printf("  %-28s %-7d %-7u %5.1fx\n",
                dict.tags()[s.tag].name.c_str(), s.month, s.count, s.lift);
  }
  if (spikes.empty()) {
    std::printf("  (no spikes found — event generation disabled?)\n");
    return 1;
  }

  // 3. Drill into the biggest spike: who drove it, and what co-occurred?
  const Spike& top = spikes.front();
  std::printf("\nDrilling into '%s' (month %d):\n",
              dict.tags()[top.tag].name.c_str(), top.month);

  // Most active poster on that tag in the spike month.
  std::map<schema::PersonId, int> posters;
  for (const schema::Message& m : dataset.bulk.messages) {
    if (m.kind == schema::MessageKind::kComment || m.tags.empty()) continue;
    if (m.tags[0] == top.tag &&
        util::MonthIndex(m.creation_date) == top.month) {
      ++posters[m.creator_id];
    }
  }
  schema::PersonId driver_person = posters.begin()->first;
  for (auto [pid, c] : posters) {
    if (c > posters[driver_person]) driver_person = pid;
  }
  std::printf("  most active poster: person %llu (%d posts)\n",
              (unsigned long long)driver_person, posters[driver_person]);

  // Q6: tags co-occurring with the trending tag in that person's circle.
  auto co = queries::Query6(store, driver_person, top.tag, 5);
  std::printf("  co-occurring tags in their 2-hop circle (Q6):\n");
  for (const auto& r : co) {
    std::printf("    %-28s %u posts\n", dict.tags()[r.tag].name.c_str(),
                r.post_count);
  }
  if (co.empty()) std::printf("    (none)\n");

  // Q4: new topics among that person's friends in the spike month.
  util::TimestampMs month_start =
      util::kNetworkStartMs + top.month * util::kMillisPerMonth;
  auto fresh = queries::Query4(store, driver_person, month_start, 30, 5);
  std::printf("  new topics among their friends that month (Q4):\n");
  for (const auto& r : fresh) {
    std::printf("    %-28s %u posts\n", dict.tags()[r.tag].name.c_str(),
                r.post_count);
  }
  if (fresh.empty()) std::printf("    (none)\n");
  return 0;
}
