# Empty compiler generated dependencies file for snb_curation.
# This may be replaced when dependencies are built.
