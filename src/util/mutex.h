// Annotated mutex types for Clang thread-safety analysis.
//
// `std::mutex` / `std::shared_mutex` carry no capability attributes, so
// the analysis cannot see what they protect. These thin wrappers (zero
// overhead: one member, all methods inline) attach the attributes from
// util/thread_annotations.h; scripts/lint.sh bans the raw std types
// everywhere outside this header so that every lock in the tree is
// analysable.
//
// Usage mirrors the std types it replaces:
//
//   Mutex mu_;
//   int value_ SNB_GUARDED_BY(mu_);
//   void Touch() { MutexLock lock(&mu_); ++value_; }
//
// Condition variables: use `std::condition_variable_any` and wait on the
// `MutexLock` itself (it is BasicLockable). The capability is held before
// and after the wait — exactly what the analysis assumes — and released
// only inside the wait, which the analysis does not model (and need not:
// no guarded access happens inside the wait).
#ifndef SNB_UTIL_MUTEX_H_
#define SNB_UTIL_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace snb::util {

/// Annotated exclusive mutex.
class SNB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SNB_ACQUIRE() { mu_.lock(); }
  void Unlock() SNB_RELEASE() { mu_.unlock(); }
  bool TryLock() SNB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated shared (reader/writer) mutex.
class SNB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SNB_ACQUIRE() { mu_.lock(); }
  void Unlock() SNB_RELEASE() { mu_.unlock(); }
  void LockShared() SNB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SNB_RELEASE_SHARED() { mu_.unlock_shared(); }

  /// The wrapped std::shared_mutex, for movable std::shared_lock guards
  /// (e.g. a read guard returned by value). Accesses made under such a
  /// lock are invisible to the analysis; keep them to members that are
  /// not SNB_GUARDED_BY.
  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex. Also BasicLockable so that
/// std::condition_variable_any can wait on it directly.
class SNB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SNB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() SNB_RELEASE() { mu_->Unlock(); }

  // BasicLockable, for condition_variable_any::wait. The capability state
  // is unchanged across a wait (held on entry, held on return).
  void lock() SNB_ACQUIRE() { mu_->Lock(); }
  void unlock() SNB_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over SharedMutex (writer side).
class SNB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) SNB_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() SNB_RELEASE() { mu_->Unlock(); }

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock over SharedMutex (reader side).
class SNB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) SNB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() SNB_RELEASE() { mu_->UnlockShared(); }

 private:
  SharedMutex* const mu_;
};

}  // namespace snb::util

#endif  // SNB_UTIL_MUTEX_H_
