// Tests of the live /metrics observer: a raw-socket HTTP client (no curl
// in the image) drives the exporter end to end — routing, content types,
// the snapshot cache, error paths, and clean Stop() while a run would
// still be executing.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/mutex.h"

namespace snb::obs {
namespace {

/// Minimal blocking HTTP GET against localhost: sends `request` verbatim
/// and returns the full response (headers + body). Empty string on
/// connect failure.
std::string RawRequest(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[2048];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

TEST(HttpExporterTest, ServesMetricsAndReportFromLiveRegistry) {
  MetricsRegistry metrics;
  metrics.RecordLatencyMicros(ComplexOp(9), 1234.0);

  HttpExporter exporter;
  exporter.set_refresh_interval_ms(0);  // Rebuild on every request.
  exporter.Handle("/metrics", "text/plain; version=0.0.4", [&metrics] {
    return ToPrometheusText(metrics.Snapshot());
  });
  exporter.Handle("/report.json", "application/json", [&metrics] {
    RunReport live;
    live.title = "exporter test";
    live.metrics = metrics.Snapshot();
    return ToJson(live);
  });
  ASSERT_TRUE(exporter.Start(0).ok());  // Ephemeral port.
  ASSERT_GT(exporter.port(), 0);

  std::string response = Get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(BodyOf(response).find("snb_op_count{op=\"complex.Q9\"} 1"),
            std::string::npos);

  // The registry is live: new samples show up on the next scrape.
  metrics.RecordLatencyMicros(ComplexOp(9), 5678.0);
  response = Get(exporter.port(), "/metrics");
  EXPECT_NE(BodyOf(response).find("snb_op_count{op=\"complex.Q9\"} 2"),
            std::string::npos);

  response = Get(exporter.port(), "/report.json");
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = BodyOf(response);
  EXPECT_TRUE(ValidateReportJson(body).ok()) << body.substr(0, 200);
  // Content-Length matches the body exactly (clients rely on it since
  // the server closes without chunking).
  size_t cl = response.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos);
  EXPECT_EQ(std::stoul(response.substr(cl + 16)), body.size());

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

TEST(HttpExporterTest, CachesWithinRefreshInterval) {
  std::atomic<int> builds{0};
  HttpExporter exporter;
  exporter.set_refresh_interval_ms(60'000);  // Effectively never refresh.
  exporter.Handle("/metrics", "text/plain", [&builds] {
    return "build " + std::to_string(builds.fetch_add(1) + 1) + "\n";
  });
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_EQ(BodyOf(Get(exporter.port(), "/metrics")), "build 1\n");
  EXPECT_EQ(BodyOf(Get(exporter.port(), "/metrics")), "build 1\n");
  EXPECT_EQ(builds.load(), 1);  // Second hit served from the cache.
  exporter.Stop();
}

TEST(HttpExporterTest, HealthzIsBuiltInAndBypassesContentBuilders) {
  std::atomic<int> builds{0};
  HttpExporter exporter;
  exporter.Handle("/metrics", "text/plain", [&builds] {
    builds.fetch_add(1);
    return "ok\n";
  });
  ASSERT_TRUE(exporter.Start(0).ok());
  std::string response = Get(exporter.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; charset=utf-8"),
            std::string::npos);
  EXPECT_EQ(BodyOf(response), "ok\n");
  // A liveness probe must not trigger (possibly expensive) content
  // builders or touch the cache.
  EXPECT_EQ(builds.load(), 0);
  exporter.Stop();
}

TEST(HttpExporterTest, UnknownPathIs404AndNonGetIs400) {
  HttpExporter exporter;
  exporter.Handle("/metrics", "text/plain", [] { return "ok\n"; });
  ASSERT_TRUE(exporter.Start(0).ok());
  std::string not_found = Get(exporter.port(), "/nope");
  EXPECT_NE(not_found.find("404"), std::string::npos);
  // Error responses carry a proper Content-Type, not a bare status line.
  EXPECT_NE(not_found.find("Content-Type: text/plain; charset=utf-8"),
            std::string::npos);
  // Query strings are stripped before matching.
  EXPECT_NE(Get(exporter.port(), "/metrics?x=1").find("200"),
            std::string::npos);
  std::string response = RawRequest(
      exporter.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos);
  exporter.Stop();
}

TEST(HttpExporterTest, DynamicRouteSeesQueryStringAndPicksStatus) {
  std::atomic<int> calls{0};
  HttpExporter exporter;
  exporter.HandleDynamic("/profile", [&calls](const std::string& query) {
    calls.fetch_add(1);
    HttpExporter::HttpResponse resp;
    if (query == "fail=1") {
      // The /profile 503 contract: unavailable backends answer with a
      // machine-readable JSON error, not a 200 with an empty body.
      resp.status = 503;
      resp.content_type = "application/json";
      resp.body = "{\"error\":\"profiler unavailable\"}";
      return resp;
    }
    resp.content_type = "text/plain; version=folded";
    resp.body = "query=" + query + "\n";
    return resp;
  });
  ASSERT_TRUE(exporter.Start(0).ok());

  std::string response = Get(exporter.port(), "/profile?seconds=2");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=folded"),
            std::string::npos);
  EXPECT_EQ(BodyOf(response), "query=seconds=2\n");

  // No query string: the handler sees an empty string, not a crash.
  EXPECT_EQ(BodyOf(Get(exporter.port(), "/profile")), "query=\n");

  response = Get(exporter.port(), "/profile?fail=1");
  EXPECT_NE(response.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_EQ(BodyOf(response), "{\"error\":\"profiler unavailable\"}");
  EXPECT_EQ(calls.load(), 3);
  exporter.Stop();
}

TEST(HttpExporterTest, DynamicRoutesAreNeverCached) {
  std::atomic<int> calls{0};
  HttpExporter exporter;
  exporter.set_refresh_interval_ms(60'000);  // Cache would pin forever.
  exporter.HandleDynamic("/profile", [&calls](const std::string&) {
    HttpExporter::HttpResponse resp;
    resp.body = "call " + std::to_string(calls.fetch_add(1) + 1) + "\n";
    return resp;
  });
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_EQ(BodyOf(Get(exporter.port(), "/profile")), "call 1\n");
  EXPECT_EQ(BodyOf(Get(exporter.port(), "/profile")), "call 2\n");
  EXPECT_EQ(calls.load(), 2);
  exporter.Stop();
}

TEST(HttpExporterTest, DynamicCaptureDoesNotBlockTheServeThread) {
  // A /profile capture can hold its handler for many seconds; the serve
  // thread must keep answering /healthz and cached routes meanwhile, and
  // a concurrent capture must be refused immediately, not queued.
  util::Mutex mu;
  std::condition_variable_any cv;
  bool release = false;
  std::atomic<int> entered{0};
  HttpExporter exporter;
  exporter.Handle("/metrics", "text/plain", [] { return "m\n"; });
  exporter.HandleDynamic("/profile", [&](const std::string&) {
    entered.fetch_add(1);
    util::MutexLock lock(&mu);
    cv.wait(lock, [&] { return release; });
    HttpExporter::HttpResponse resp;
    resp.body = "done\n";
    return resp;
  });
  ASSERT_TRUE(exporter.Start(0).ok());

  std::string slow_response;
  std::thread slow(
      [&] { slow_response = Get(exporter.port(), "/profile"); });
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The capture is in flight on its own worker thread: the probe and the
  // cached routes still answer.
  EXPECT_EQ(BodyOf(Get(exporter.port(), "/healthz")), "ok\n");
  EXPECT_EQ(BodyOf(Get(exporter.port(), "/metrics")), "m\n");
  // A second capture while one runs: immediate 503, handler not invoked.
  std::string busy = Get(exporter.port(), "/profile");
  EXPECT_NE(busy.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(BodyOf(busy).find("already in progress"), std::string::npos);
  EXPECT_EQ(entered.load(), 1);

  {
    util::MutexLock lock(&mu);
    release = true;
  }
  cv.notify_all();
  slow.join();
  EXPECT_EQ(BodyOf(slow_response), "done\n");
  // The worker clears busy before closing the client socket, and Get()
  // reads to EOF: once the slow response completed, a fresh capture is
  // guaranteed to be accepted again.
  EXPECT_EQ(BodyOf(Get(exporter.port(), "/profile")), "done\n");
  EXPECT_EQ(entered.load(), 2);
  exporter.Stop();
}

TEST(HttpExporterTest, StartRejectsDoubleStartAndBusyPort) {
  HttpExporter first;
  first.Handle("/x", "text/plain", [] { return "x"; });
  ASSERT_TRUE(first.Start(0).ok());
  EXPECT_FALSE(first.Start(0).ok());  // Already running.

  HttpExporter second;
  second.Handle("/x", "text/plain", [] { return "x"; });
  EXPECT_FALSE(second.Start(first.port()).ok());  // Port taken.
  first.Stop();
}

TEST(HttpExporterTest, StopIsIdempotentAndUnblocksAccept) {
  HttpExporter exporter;
  exporter.Handle("/x", "text/plain", [] { return "x"; });
  ASSERT_TRUE(exporter.Start(0).ok());
  // No request in flight: Stop() must still unblock the accept loop.
  exporter.Stop();
  exporter.Stop();  // Second call is a no-op.
  EXPECT_FALSE(exporter.running());
  // A fresh exporter can reuse the lifecycle after the old one died.
  HttpExporter again;
  again.Handle("/x", "text/plain", [] { return "y"; });
  ASSERT_TRUE(again.Start(0).ok());
  EXPECT_EQ(BodyOf(Get(again.port(), "/x")), "y");
  again.Stop();
}

}  // namespace
}  // namespace snb::obs
