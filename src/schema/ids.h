// Identifier types for SNB entities.
//
// Message ids (posts, comments, photos) share one id space, mirroring the
// LDBC schema where Post and Comment are subtypes of Message. Following the
// paper's RDF locality note (section 3), DATAGEN assigns message ids that
// increase with creation time, giving date-range scans on id order high
// locality.
#ifndef SNB_SCHEMA_IDS_H_
#define SNB_SCHEMA_IDS_H_

#include <cstdint>

namespace snb::schema {

using PersonId = uint64_t;
using ForumId = uint64_t;
using MessageId = uint64_t;
using TagId = uint32_t;
using TagClassId = uint32_t;
using PlaceId = uint32_t;
using OrganizationId = uint32_t;

/// Sentinel for "no entity".
inline constexpr uint64_t kInvalidId = ~0ULL;
inline constexpr uint32_t kInvalidId32 = ~0U;

}  // namespace snb::schema

#endif  // SNB_SCHEMA_IDS_H_
