// Byte-identity tests for the batched engine: Query{5,9,14}Batched must
// return exactly the scalar engine's rows (same order, bit-equal doubles)
// on a generated dataset, across persons, dates and limits — including
// absent persons and degenerate parameters. Plus the dispatch contract:
// the public Query5/Query9/Query14 follow exec::DefaultExecMode().
#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "exec/exec_mode.h"
#include "queries/batched_queries.h"
#include "queries/complex_queries.h"
#include "store/graph_store.h"
#include "util/datetime.h"

namespace snb::queries {
namespace {

class BatchedQueriesTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    store::GraphStore store;
    std::vector<schema::PersonId> sample;  // Spread of person ids.
    schema::PersonId hub = 0;              // Highest-degree person.
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 250;
      config.split_update_stream = false;
      world->dataset = datagen::Generate(config);
      EXPECT_TRUE(world->store.BulkLoad(world->dataset.bulk).ok());
      std::unordered_map<schema::PersonId, size_t> degree;
      for (const schema::Knows& k : world->dataset.bulk.knows) {
        ++degree[k.person1_id];
        ++degree[k.person2_id];
      }
      size_t best = 0;
      for (auto& [pid, d] : degree) {
        if (d > best) {
          best = d;
          world->hub = pid;
        }
      }
      const auto& persons = world->dataset.bulk.persons;
      for (size_t i = 0; i < persons.size(); i += 11) {
        world->sample.push_back(persons[i].id);
      }
      world->sample.push_back(world->hub);
      world->sample.push_back(99999999);  // Absent person.
      return world;
    }();
    return *w;
  }

  static std::vector<util::TimestampMs> Dates() {
    return {
        0,  // Before everything.
        util::kNetworkStartMs + 6 * util::kMillisPerMonth,
        util::kNetworkStartMs + 18 * util::kMillisPerMonth,
        util::kNetworkStartMs + 40 * util::kMillisPerMonth,  // After all.
    };
  }
};

TEST_F(BatchedQueriesTest, Q5BatchedMatchesScalar) {
  for (schema::PersonId p : world().sample) {
    for (util::TimestampMs date : Dates()) {
      for (int limit : {0, 3, 20}) {
        std::vector<Q5Result> scalar =
            Query5Scalar(world().store, p, date, limit);
        std::vector<Q5Result> batched =
            Query5Batched(world().store, p, date, limit);
        ASSERT_EQ(batched.size(), scalar.size())
            << "person " << p << " date " << date << " limit " << limit;
        for (size_t i = 0; i < scalar.size(); ++i) {
          EXPECT_EQ(batched[i].forum_id, scalar[i].forum_id) << i;
          EXPECT_EQ(batched[i].post_count, scalar[i].post_count) << i;
        }
      }
    }
  }
}

TEST_F(BatchedQueriesTest, Q9BatchedMatchesScalar) {
  for (schema::PersonId p : world().sample) {
    for (util::TimestampMs date : Dates()) {
      for (int limit : {0, 1, 20}) {
        std::vector<Q9Result> scalar =
            Query9Scalar(world().store, p, date, limit);
        std::vector<Q9Result> batched =
            Query9Batched(world().store, p, date, limit);
        ASSERT_EQ(batched.size(), scalar.size())
            << "person " << p << " date " << date << " limit " << limit;
        for (size_t i = 0; i < scalar.size(); ++i) {
          EXPECT_EQ(batched[i].message_id, scalar[i].message_id) << i;
          EXPECT_EQ(batched[i].creator_id, scalar[i].creator_id) << i;
          EXPECT_EQ(batched[i].creation_date, scalar[i].creation_date) << i;
        }
      }
    }
  }
}

TEST_F(BatchedQueriesTest, Q9BatchedFillsPlanStats) {
  Q9PlanStats stats;
  Q9OperatorProfile profile;
  util::TimestampMs max_date =
      util::kNetworkStartMs + 40 * util::kMillisPerMonth;
  std::vector<Q9Result> rows = Query9Batched(world().store, world().hub,
                                             max_date, 20, &stats, &profile);
  EXPECT_FALSE(rows.empty());
  EXPECT_GT(stats.join1_output, 0u);
  EXPECT_GE(stats.join2_output, stats.join1_output);
  EXPECT_GE(stats.join3_output, rows.size());
  EXPECT_GT(profile.join1.invocations, 0u);
  EXPECT_GT(profile.join3.rows, 0u);
}

TEST_F(BatchedQueriesTest, Q14BatchedMatchesScalar) {
  std::vector<std::pair<schema::PersonId, schema::PersonId>> pairs;
  const auto& sample = world().sample;
  for (size_t i = 0; i + 1 < sample.size(); i += 2) {
    pairs.emplace_back(sample[i], sample[i + 1]);
  }
  pairs.emplace_back(world().hub, world().hub);  // Same person.
  pairs.emplace_back(world().hub, 99999999);     // Absent endpoint.
  for (auto [p1, p2] : pairs) {
    std::vector<Q14Result> scalar = Query14Scalar(world().store, p1, p2);
    std::vector<Q14Result> batched = Query14Batched(world().store, p1, p2);
    ASSERT_EQ(batched.size(), scalar.size()) << p1 << " -> " << p2;
    for (size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(batched[i].path, scalar[i].path) << i;
      // Bit-equality, not approximate: the weight sums are dyadic
      // rationals, so both engines must produce the identical double.
      EXPECT_EQ(std::memcmp(&batched[i].weight, &scalar[i].weight,
                            sizeof(double)),
                0)
          << p1 << " -> " << p2 << " path " << i;
    }
  }
}

TEST_F(BatchedQueriesTest, PublicEntryPointsDispatchOnExecMode) {
  ASSERT_EQ(exec::DefaultExecMode(), exec::ExecMode::kScalar)
      << "test assumes the process default";
  util::TimestampMs max_date =
      util::kNetworkStartMs + 18 * util::kMillisPerMonth;
  schema::PersonId p = world().hub;

  std::vector<Q9Result> scalar = Query9(world().store, p, max_date, 20);
  exec::SetDefaultExecMode(exec::ExecMode::kBatched);
  std::vector<Q9Result> batched = Query9(world().store, p, max_date, 20);
  exec::SetDefaultExecMode(exec::ExecMode::kScalar);

  ASSERT_EQ(batched.size(), scalar.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(batched[i].message_id, scalar[i].message_id) << i;
  }
  EXPECT_EQ(exec::ExecModeName(exec::ExecMode::kBatched),
            std::string("batched"));
  EXPECT_EQ(exec::ExecModeName(exec::ExecMode::kScalar),
            std::string("scalar"));
  exec::ExecMode parsed;
  EXPECT_TRUE(exec::ParseExecMode("batched", &parsed));
  EXPECT_EQ(parsed, exec::ExecMode::kBatched);
  EXPECT_TRUE(exec::ParseExecMode("scalar", &parsed));
  EXPECT_EQ(parsed, exec::ExecMode::kScalar);
  EXPECT_FALSE(exec::ParseExecMode("vectorized", &parsed));
}

}  // namespace
}  // namespace snb::queries
