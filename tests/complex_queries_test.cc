// Correctness tests for the 14 complex queries: each is validated against an
// independent brute-force reference over the generated dataset.
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/complex_queries.h"
#include "queries/query9_plans.h"
#include "schema/dictionaries.h"
#include "store/graph_store.h"

namespace snb::queries {
namespace {

using schema::MessageId;
using schema::MessageKind;
using schema::PersonId;
using store::GraphStore;

class ComplexQueriesTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    GraphStore store;
    std::unique_ptr<schema::Dictionaries> dict;
    std::vector<schema::PlaceId> city_country;
    std::vector<schema::PlaceId> company_country;
    PersonId hub;  // A person with many friends.
    std::unordered_map<PersonId, std::vector<PersonId>> adjacency;
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 300;
      config.split_update_stream = false;
      world->dataset = datagen::Generate(config);
      EXPECT_TRUE(world->store.BulkLoad(world->dataset.bulk).ok());
      world->dict = std::make_unique<schema::Dictionaries>(config.seed);
      for (const schema::City& c : world->dict->cities()) {
        world->city_country.push_back(c.country_id);
      }
      for (const schema::Company& c : world->dict->companies()) {
        world->company_country.push_back(c.country_id);
      }
      for (const schema::Knows& k : world->dataset.bulk.knows) {
        world->adjacency[k.person1_id].push_back(k.person2_id);
        world->adjacency[k.person2_id].push_back(k.person1_id);
      }
      world->hub = 0;
      size_t best = 0;
      for (auto& [pid, friends] : world->adjacency) {
        if (friends.size() > best) {
          best = friends.size();
          world->hub = pid;
        }
      }
      return world;
    }();
    return *w;
  }

  // Reference BFS distances from `start`, up to max_depth.
  static std::unordered_map<PersonId, int> ReferenceDistances(
      PersonId start, int max_depth) {
    std::unordered_map<PersonId, int> dist{{start, 0}};
    std::deque<PersonId> queue{start};
    while (!queue.empty()) {
      PersonId pid = queue.front();
      queue.pop_front();
      int d = dist[pid];
      if (d >= max_depth) continue;
      auto it = world().adjacency.find(pid);
      if (it == world().adjacency.end()) continue;
      for (PersonId next : it->second) {
        if (dist.emplace(next, d + 1).second) queue.push_back(next);
      }
    }
    return dist;
  }

  static const schema::Person& PersonById(PersonId id) {
    for (const schema::Person& p : world().dataset.bulk.persons) {
      if (p.id == id) return p;
    }
    static schema::Person missing;
    ADD_FAILURE() << "person " << id << " not found";
    return missing;
  }
};

// ---- Q1 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q1FindsCorrectDistancesAndOrder) {
  PersonId start = world().hub;
  // Use a name that exists within 3 hops to make the test meaningful.
  auto dist = ReferenceDistances(start, 3);
  std::string name;
  for (auto& [pid, d] : dist) {
    if (d >= 1 && d <= 3) {
      name = PersonById(pid).first_name;
      break;
    }
  }
  ASSERT_FALSE(name.empty());

  std::vector<Q1Result> results = Query1(world().store, start, name, 20);
  ASSERT_FALSE(results.empty());
  for (const Q1Result& r : results) {
    EXPECT_EQ(PersonById(r.person_id).first_name, name);
    auto it = dist.find(r.person_id);
    ASSERT_NE(it, dist.end());
    EXPECT_EQ(static_cast<int>(r.distance), it->second);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    const Q1Result& a = results[i - 1];
    const Q1Result& b = results[i];
    EXPECT_TRUE(a.distance < b.distance ||
                (a.distance == b.distance && a.last_name < b.last_name) ||
                (a.distance == b.distance && a.last_name == b.last_name &&
                 a.person_id < b.person_id));
  }
  // Completeness at distance <= max returned distance: every matching person
  // strictly closer than the last returned one must be in the result.
  if (results.size() < 20) {
    int matches = 0;
    for (auto& [pid, d] : dist) {
      if (d >= 1 && d <= 3 && PersonById(pid).first_name == name) ++matches;
    }
    EXPECT_EQ(static_cast<int>(results.size()), matches);
  }
}

TEST_F(ComplexQueriesTest, Q1MissingPersonReturnsEmpty) {
  EXPECT_TRUE(Query1(world().store, 999999, "Karl", 20).empty());
}

// ---- Q2 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q2MatchesBruteForce) {
  PersonId start = world().hub;
  util::TimestampMs max_date =
      util::kNetworkStartMs + 20 * util::kMillisPerMonth;

  std::set<PersonId> friends(world().adjacency[start].begin(),
                             world().adjacency[start].end());
  std::vector<Q2Result> expected;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (friends.count(m.creator_id) > 0 && m.creation_date <= max_date) {
      expected.push_back({m.id, m.creator_id, m.creation_date});
    }
  }
  std::sort(expected.begin(), expected.end(),
            [](const Q2Result& a, const Q2Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (expected.size() > 20) expected.resize(20);

  std::vector<Q2Result> actual = Query2(world().store, start, max_date, 20);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].message_id, expected[i].message_id);
    EXPECT_EQ(actual[i].creator_id, expected[i].creator_id);
    EXPECT_EQ(actual[i].creation_date, expected[i].creation_date);
  }
}

// ---- Q3 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q3CountsForeignPosts) {
  PersonId start = world().hub;
  // Pick the two countries most posted-from by the 2-hop circle to get a
  // non-trivial result.
  std::vector<PersonId> circle = TwoHopCircle(world().store, start);
  std::set<PersonId> circle_set(circle.begin(), circle.end());
  std::map<schema::PlaceId, int> country_counts;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (circle_set.count(m.creator_id) > 0) ++country_counts[m.country_id];
  }
  ASSERT_GE(country_counts.size(), 2u);
  std::vector<std::pair<int, schema::PlaceId>> ranked;
  for (auto [c, n] : country_counts) ranked.push_back({n, c});
  std::sort(ranked.rbegin(), ranked.rend());
  schema::PlaceId x = ranked[0].second;
  schema::PlaceId y = ranked[1].second;

  util::TimestampMs start_date = util::kNetworkStartMs;
  int days = 36 * 30;
  std::vector<Q3Result> results =
      Query3(world().store, start, world().city_country, x, y, start_date,
             days, 20);
  for (const Q3Result& r : results) {
    EXPECT_GT(r.count_x, 0u);
    EXPECT_GT(r.count_y, 0u);
    // Residents of X/Y excluded.
    schema::PlaceId home = world().city_country[PersonById(r.person_id).city_id];
    EXPECT_NE(home, x);
    EXPECT_NE(home, y);
    // Verify counts brute-force.
    uint32_t cx = 0, cy = 0;
    for (const schema::Message& m : world().dataset.bulk.messages) {
      if (m.creator_id != r.person_id) continue;
      if (m.creation_date < start_date ||
          m.creation_date >= start_date + days * util::kMillisPerDay) {
        continue;
      }
      if (m.country_id == x) ++cx;
      if (m.country_id == y) ++cy;
    }
    EXPECT_EQ(r.count_x, cx);
    EXPECT_EQ(r.count_y, cy);
  }
  // Descending by total.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].count_x + results[i - 1].count_y,
              results[i].count_x + results[i].count_y);
  }
}

// ---- Q4 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q4NewTopicsExcludesOldTags) {
  PersonId start = world().hub;
  util::TimestampMs window_start =
      util::kNetworkStartMs + 12 * util::kMillisPerMonth;
  int days = 60;
  std::vector<Q4Result> results =
      Query4(world().store, start, window_start, days, 10);

  std::set<PersonId> friends(world().adjacency[start].begin(),
                             world().adjacency[start].end());
  util::TimestampMs window_end =
      window_start + days * util::kMillisPerDay;
  std::map<schema::TagId, uint32_t> in_window;
  std::set<schema::TagId> before;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (m.kind == MessageKind::kComment) continue;
    if (friends.count(m.creator_id) == 0) continue;
    if (m.creation_date < window_start) {
      for (schema::TagId t : m.tags) before.insert(t);
    } else if (m.creation_date < window_end) {
      for (schema::TagId t : m.tags) ++in_window[t];
    }
  }
  for (const Q4Result& r : results) {
    EXPECT_EQ(before.count(r.tag), 0u);
    EXPECT_EQ(in_window[r.tag], r.post_count);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].post_count, results[i].post_count);
  }
}

// ---- Q5 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q5RanksForumsByCirclePosts) {
  PersonId start = world().hub;
  util::TimestampMs min_date =
      util::kNetworkStartMs + 6 * util::kMillisPerMonth;
  std::vector<Q5Result> results =
      Query5(world().store, start, min_date, 20);
  ASSERT_FALSE(results.empty());

  std::vector<PersonId> circle = TwoHopCircle(world().store, start);
  std::set<PersonId> circle_set(circle.begin(), circle.end());
  // Forum qualifies iff someone in the circle joined after min_date.
  std::set<schema::ForumId> qualifying;
  for (const schema::ForumMembership& fm : world().dataset.bulk.memberships) {
    if (fm.join_date > min_date && circle_set.count(fm.person_id) > 0) {
      qualifying.insert(fm.forum_id);
    }
  }
  for (const Q5Result& r : results) {
    EXPECT_EQ(qualifying.count(r.forum_id), 1u);
    uint32_t count = 0;
    for (const schema::Message& m : world().dataset.bulk.messages) {
      if (m.kind == MessageKind::kComment) continue;
      if (m.forum_id == r.forum_id && circle_set.count(m.creator_id) > 0) {
        ++count;
      }
    }
    EXPECT_EQ(r.post_count, count);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].post_count, results[i].post_count);
  }
}

// ---- Q6 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q6CoOccurrenceExcludesGivenTag) {
  PersonId start = world().hub;
  // Most common tag among circle posts.
  std::vector<PersonId> circle = TwoHopCircle(world().store, start);
  std::set<PersonId> circle_set(circle.begin(), circle.end());
  std::map<schema::TagId, int> tag_counts;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (m.kind == MessageKind::kComment) continue;
    if (circle_set.count(m.creator_id) == 0) continue;
    for (schema::TagId t : m.tags) ++tag_counts[t];
  }
  ASSERT_FALSE(tag_counts.empty());
  schema::TagId top_tag = 0;
  int best = -1;
  for (auto [t, c] : tag_counts) {
    if (c > best) {
      best = c;
      top_tag = t;
    }
  }
  std::vector<Q6Result> results =
      Query6(world().store, start, top_tag, 10);
  for (const Q6Result& r : results) {
    EXPECT_NE(r.tag, top_tag);
    EXPECT_GT(r.post_count, 0u);
  }
  // Note: with single-tag posts co-occurrence can legitimately be empty.
}

// ---- Q7 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q7RecentLikesWithLatency) {
  // Find a person whose messages have likes.
  PersonId person = schema::kInvalidId;
  std::map<MessageId, const schema::Message*> by_id;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    by_id[m.id] = &m;
  }
  std::map<PersonId, int> like_counts;
  for (const schema::Like& l : world().dataset.bulk.likes) {
    like_counts[by_id[l.message_id]->creator_id]++;
  }
  int best = -1;
  for (auto [pid, c] : like_counts) {
    if (c > best) {
      best = c;
      person = pid;
    }
  }
  ASSERT_NE(person, schema::kInvalidId);

  std::vector<Q7Result> results = Query7(world().store, person, 20);
  ASSERT_FALSE(results.empty());
  for (const Q7Result& r : results) {
    const schema::Message* m = by_id[r.message_id];
    EXPECT_EQ(m->creator_id, person);
    EXPECT_EQ(r.latency_minutes,
              (r.like_date - m->creation_date) / util::kMillisPerMinute);
    EXPECT_GE(r.latency_minutes, 0);
    bool is_friend = false;
    for (PersonId f : world().adjacency[person]) {
      if (f == r.liker_id) is_friend = true;
    }
    EXPECT_EQ(r.is_outside_friendship, !is_friend);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].like_date, results[i].like_date);
  }
}

// ---- Q8 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q8MostRecentReplies) {
  PersonId start = world().hub;
  std::vector<Q8Result> results = Query8(world().store, start, 20);

  std::map<MessageId, const schema::Message*> by_id;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    by_id[m.id] = &m;
  }
  std::vector<Q8Result> expected;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (m.kind != MessageKind::kComment) continue;
    auto parent = by_id.find(m.reply_to_id);
    if (parent == by_id.end()) continue;
    if (parent->second->creator_id != start) continue;
    expected.push_back({m.id, m.creator_id, m.creation_date});
  }
  std::sort(expected.begin(), expected.end(),
            [](const Q8Result& a, const Q8Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.comment_id < b.comment_id;
            });
  if (expected.size() > 20) expected.resize(20);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].comment_id, expected[i].comment_id);
    EXPECT_EQ(results[i].replier_id, expected[i].replier_id);
  }
}

// ---- Q9 ----------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q9MatchesBruteForce) {
  PersonId start = world().hub;
  util::TimestampMs max_date =
      util::kNetworkStartMs + 24 * util::kMillisPerMonth;

  std::vector<PersonId> circle = TwoHopCircle(world().store, start);
  std::set<PersonId> circle_set(circle.begin(), circle.end());
  std::vector<Q9Result> expected;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (circle_set.count(m.creator_id) > 0 && m.creation_date < max_date) {
      expected.push_back({m.id, m.creator_id, m.creation_date});
    }
  }
  std::sort(expected.begin(), expected.end(),
            [](const Q9Result& a, const Q9Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (expected.size() > 20) expected.resize(20);

  std::vector<Q9Result> actual = Query9(world().store, start, max_date, 20);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].message_id, expected[i].message_id);
  }
}

TEST_F(ComplexQueriesTest, Q9AllPlanVariantsAgree) {
  PersonId start = world().hub;
  util::TimestampMs max_date =
      util::kNetworkStartMs + 24 * util::kMillisPerMonth;
  std::vector<Q9Result> reference =
      Query9(world().store, start, max_date, 20);

  for (JoinStrategy j1 :
       {JoinStrategy::kIndexNestedLoop, JoinStrategy::kHash}) {
    for (JoinStrategy j2 :
         {JoinStrategy::kIndexNestedLoop, JoinStrategy::kHash}) {
      for (JoinStrategy j3 :
           {JoinStrategy::kIndexNestedLoop, JoinStrategy::kHash}) {
        Q9PlanStats stats;
        std::vector<Q9Result> plan_result = Query9WithPlan(
            world().store, start, max_date, 20, j1, j2, j3, &stats);
        ASSERT_EQ(plan_result.size(), reference.size());
        for (size_t i = 0; i < plan_result.size(); ++i) {
          EXPECT_EQ(plan_result[i].message_id, reference[i].message_id);
        }
        EXPECT_GT(stats.join1_output, 0u);
        EXPECT_GT(stats.join2_output, 0u);
        // Hash plans scan the base relation to build.
        if (j1 == JoinStrategy::kHash || j2 == JoinStrategy::kHash ||
            j3 == JoinStrategy::kHash) {
          EXPECT_GT(stats.build_tuples, 0u);
        } else {
          EXPECT_EQ(stats.build_tuples, 0u);
        }
      }
    }
  }
}

// ---- Q10 ---------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q10CandidatesAreFofWithMatchingSign) {
  PersonId start = world().hub;
  std::set<PersonId> direct(world().adjacency[start].begin(),
                            world().adjacency[start].end());
  // Scan all months to find one with candidates.
  bool any = false;
  for (int month = 1; month <= 12; ++month) {
    std::vector<Q10Result> results =
        Query10(world().store, start, month, 10);
    for (const Q10Result& r : results) {
      any = true;
      EXPECT_EQ(direct.count(r.person_id), 0u);
      EXPECT_NE(r.person_id, start);
      // Must be fof.
      bool fof = false;
      for (PersonId f : world().adjacency[start]) {
        for (PersonId ff : world().adjacency[f]) {
          if (ff == r.person_id) fof = true;
        }
      }
      EXPECT_TRUE(fof);
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_GE(results[i - 1].similarity, results[i].similarity);
    }
  }
  EXPECT_TRUE(any);
}

// ---- Q11 ---------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q11FiltersByCountryAndYear) {
  PersonId start = world().hub;
  // Find a country that employs someone in the circle.
  std::vector<PersonId> circle = TwoHopCircle(world().store, start);
  schema::PlaceId country = schema::kInvalidId32;
  for (PersonId pid : circle) {
    const schema::Person& p = PersonById(pid);
    if (p.company_id != schema::kInvalidId32) {
      country = world().company_country[p.company_id];
      break;
    }
  }
  ASSERT_NE(country, schema::kInvalidId32);

  std::vector<Q11Result> results =
      Query11(world().store, start, world().company_country, country, 2013,
              10);
  ASSERT_FALSE(results.empty());
  for (const Q11Result& r : results) {
    EXPECT_EQ(world().company_country[r.company_id], country);
    EXPECT_LT(r.work_year, 2013);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i - 1].work_year < results[i].work_year ||
                (results[i - 1].work_year == results[i].work_year &&
                 results[i - 1].person_id < results[i].person_id));
  }
}

// ---- Q12 ---------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q12CountsRepliesToTaggedPosts) {
  PersonId start = world().hub;
  // Tag class covering all tags -> every reply-to-post counts.
  std::vector<bool> all_tags(world().dict->tags().size(), true);
  std::vector<Q12Result> results =
      Query12(world().store, start, all_tags, 20);

  std::map<MessageId, const schema::Message*> by_id;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    by_id[m.id] = &m;
  }
  std::set<PersonId> friends(world().adjacency[start].begin(),
                             world().adjacency[start].end());
  std::map<PersonId, uint32_t> expected;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    if (m.kind != MessageKind::kComment) continue;
    if (friends.count(m.creator_id) == 0) continue;
    const schema::Message* parent = by_id[m.reply_to_id];
    if (parent->kind == MessageKind::kComment) continue;
    if (!parent->tags.empty()) expected[m.creator_id]++;
  }
  for (const Q12Result& r : results) {
    EXPECT_EQ(r.reply_count, expected[r.person_id]);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].reply_count, results[i].reply_count);
  }
}

// ---- Q13 ---------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q13MatchesReferenceBfs) {
  PersonId start = world().hub;
  auto dist = ReferenceDistances(start, 1000);
  // Check a spread of targets, including unreachable ones.
  int checked = 0;
  for (const schema::Person& p : world().dataset.bulk.persons) {
    if (checked >= 40) break;
    ++checked;
    int expected = -1;
    auto it = dist.find(p.id);
    if (it != dist.end()) expected = it->second;
    EXPECT_EQ(Query13(world().store, start, p.id), expected)
        << "target " << p.id;
  }
  EXPECT_EQ(Query13(world().store, start, start), 0);
  EXPECT_EQ(Query13(world().store, start, 999999), -1);
}

// ---- Q14 ---------------------------------------------------------------

TEST_F(ComplexQueriesTest, Q14AllShortestPathsValidAndSorted) {
  PersonId start = world().hub;
  // Find a target at distance 2-3.
  auto dist = ReferenceDistances(start, 4);
  PersonId target = schema::kInvalidId;
  for (auto& [pid, d] : dist) {
    if (d == 3) {
      target = pid;
      break;
    }
  }
  if (target == schema::kInvalidId) {
    for (auto& [pid, d] : dist) {
      if (d == 2) {
        target = pid;
        break;
      }
    }
  }
  ASSERT_NE(target, schema::kInvalidId);
  int expected_len = dist[target];

  std::vector<Q14Result> results =
      Query14(world().store, start, target);
  ASSERT_FALSE(results.empty());
  std::set<std::vector<PersonId>> unique_paths;
  for (const Q14Result& r : results) {
    ASSERT_EQ(static_cast<int>(r.path.size()) - 1, expected_len);
    EXPECT_EQ(r.path.front(), start);
    EXPECT_EQ(r.path.back(), target);
    // Each hop must be a real edge.
    for (size_t i = 0; i + 1 < r.path.size(); ++i) {
      auto pin = world().store.ReadLock();
      EXPECT_TRUE(world().store.AreFriends(pin, r.path[i], r.path[i + 1]));
    }
    EXPECT_TRUE(unique_paths.insert(r.path).second) << "duplicate path";
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].weight, results[i].weight);
  }
}

TEST_F(ComplexQueriesTest, Q14SelfAndUnreachable) {
  PersonId start = world().hub;
  std::vector<Q14Result> self = Query14(world().store, start, start);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0].path.size(), 1u);
  EXPECT_TRUE(Query14(world().store, start, 999999).empty());
}

// ---- Helpers ------------------------------------------------------------

TEST_F(ComplexQueriesTest, TwoHopCircleMatchesReference) {
  PersonId start = world().hub;
  auto dist = ReferenceDistances(start, 2);
  std::set<PersonId> expected;
  for (auto& [pid, d] : dist) {
    if (d == 1 || d == 2) expected.insert(pid);
  }
  std::vector<PersonId> circle = TwoHopCircle(world().store, start);
  EXPECT_EQ(std::set<PersonId>(circle.begin(), circle.end()), expected);
}

}  // namespace
}  // namespace snb::queries
