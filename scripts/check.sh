#!/usr/bin/env bash
# Local gate: tier-1 build + full test suite, then the lint gate, then the
# concurrency-labelled tests (epoch/RCU read path) rebuilt under Address-,
# Thread- and UndefinedBehaviorSanitizer, then a short throttled driver
# run that exercises the trace exporter + compliance audit and feeds the
# perf-regression gate. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

echo "== tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"${jobs}"
(cd build && ctest --output-on-failure -j"${jobs}")

echo "== lint gate =="
scripts/lint.sh

echo "== static invariants: binary call-graph checker =="
# ctest -L static runs the mutation fixtures (each seeded violation must
# be caught, with its root -> forbidden-symbol path) and the production
# gate: the real manifest against the probe binary.
(cd build && ctest -L static --output-on-failure)
# Mutate self-test on the *production* path: inject a malloc into the
# SIGPROF handler, rebuild the probe against the mutated TU, and require
# the checker to reject it with exactly the signal_safe rule. The
# fixtures prove the engine detects violations under the fixture
# manifest; this proves the shipped manifest + tags still guard the real
# handler — a checker that rotted into vacuity fails here.
mutdir="$(mktemp -d)"
sed -e 's@^#include "util/invariant_root.h"@&\nstatic void* volatile g_snb_mutation_sink;@' \
    -e 's@SNB_INVARIANT_ROOT("signal_safe");@&\n  g_snb_mutation_sink = std::malloc(16);@' \
    src/obs/prof.cc > "${mutdir}/prof_mutated.cc"
grep -q 'g_snb_mutation_sink = std::malloc' "${mutdir}/prof_mutated.cc" || {
  echo "mutation anchor not found in src/obs/prof.cc; update check.sh" >&2
  exit 1
}
g++ -std=c++20 -O2 -DNDEBUG -DSNB_INVARIANTS=1 -fno-omit-frame-pointer \
  -Isrc "${mutdir}/prof_mutated.cc" tools/snb_invariants/probe_main.cc \
  build/src/obs/libsnb_obs.a build/src/store/libsnb_store.a \
  build/src/schema/libsnb_schema.a build/src/util/libsnb_util.a \
  -o "${mutdir}/probe_mutated" -lpthread -ldl -lrt
./build/tools/snb_invariants/snb_invariants \
  --manifest tools/snb_invariants/invariants.toml \
  --binary "${mutdir}/probe_mutated" \
  --expect-violations signal_safe
rm -rf "${mutdir}"

echo "== obs: registry/report/exporter tests + bench smoke with profiling =="
(cd build && ctest -L obs --output-on-failure)
# One complex-read bench with operator profiling on, emitting report.json.
# The binary self-validates the report (schema tag, non-empty op table,
# monotone percentiles, populated q9_profile) and exits nonzero otherwise;
# here we only re-check that the artifact landed non-empty.
smoke_report="$(mktemp -t snb-smoke-report.XXXXXX.json)"
smoke_trace="$(mktemp -t snb-smoke-trace.XXXXXX.json)"
smoke_golden="$(mktemp -t snb-smoke-golden.XXXXXX.json)"
smoke_folded="$(mktemp -t snb-smoke-prof.XXXXXX.folded)"
smoke_svg="$(mktemp -t snb-smoke-prof.XXXXXX.svg)"
bench_today="BENCH_$(date +%F).json"
cleanup() {
  local status=$?
  rm -f "${smoke_report}" "${smoke_trace}" "${smoke_golden}"
  rm -f "${smoke_folded}" "${smoke_svg}"
  # A failed run must not leave a half-written bench artifact behind: the
  # next invocation would seed BENCH_baseline.json from it.
  if [[ ${status} -ne 0 ]]; then
    rm -f "${bench_today}"
  fi
}
trap cleanup EXIT
./build/bench/bench_fig4_q9_plan_ablation --params 4 --report "${smoke_report}"
test -s "${smoke_report}" || {
  echo "bench smoke produced an empty ${smoke_report}" >&2
  exit 1
}

echo "== exec smoke: intersection-kernel cross-check =="
# Every (ratio, kernel) cell is verified against std::set_intersection
# before timing; the binary exits nonzero on any divergence.
./build/bench/bench_micro_intersect --smoke

echo "== driver smoke: throttled run with trace export + compliance audit =="
# Small SF, auto acceleration (~5 s replay). Exits nonzero unless the pace
# was sustained AND the compliance audit passed; self-validates report.json
# (schema snb-report-v5 incl. the compliance section) before writing it.
# --perf-counters arms the hardware-counter backend (degrading to no-op
# where perf_event_open is denied) and the slow-query dossier collector;
# --cpu-profile arms the sampling profiler and writes the folded stacks.
./build/examples/benchmark_run 0.05 0 "${bench_today}" \
  --trace-out "${smoke_trace}" --perf-counters \
  --cpu-profile "${smoke_folded}"
# The trace must be valid JSON with per-thread lanes (Chrome-trace format);
# the obs tests check B/E pairing, here we gate on parse + shape. The
# report must carry tail attribution: at least one slow-query dossier and
# the perf/provenance sections, whatever backend the probe landed on.
python3 - "${smoke_trace}" "${bench_today}" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
lanes = {e["tid"] for e in events if e.get("ph") in ("B", "E")}
assert events and lanes, "trace has no spans"
print(f"trace OK: {len(events)} events across {len(lanes)} lanes")
report = json.load(open(sys.argv[2]))
assert report["schema"] == "snb-report-v5", report["schema"]
assert report["perf"]["backend"] in ("noop", "linux"), report["perf"]
assert report["provenance"]["git_sha"], "provenance missing git sha"
dossiers = report.get("dossiers", [])
assert len(dossiers) >= 1, "driver smoke kept no slow-query dossiers"
with_ops = sum(1 for d in dossiers if d.get("operators"))
print(f"report OK: backend={report['perf']['backend']}, "
      f"{len(dossiers)} dossiers ({with_ops} with operator breakdowns)")
prof = report["profile"]
assert prof["backend"] in ("noop", "timer"), prof
acct = (prof["attributed"], prof["unattributed"], prof["dropped"])
assert prof["captured"] == sum(acct), (prof["captured"], acct)
if prof["backend"] == "timer":
    assert prof["captured"] > 0, "timer backend captured no samples"
    # The acceptance bar: >= 80% of samples attributed to a known op.
    frac = prof["attributed"] / prof["captured"]
    assert frac >= 0.8, f"only {frac:.0%} of samples attributed"
    print(f"profile OK: {prof['captured']} samples, {frac:.0%} attributed, "
          f"{prof['threads']} threads")
else:
    print(f"profile OK: backend=noop ({prof.get('message', '')})")
EOF
# The folded artifact must carry per-lane stacks and render through the
# dependency-free viewer (flamegraph SVG) when sampling was live.
if grep -q "^thread:" "${smoke_folded}"; then
  grep -q "op:" "${smoke_folded}" || {
    echo "folded profile has no op-attributed stacks" >&2
    exit 1
  }
  python3 scripts/profile_view.py "${smoke_folded}" --svg "${smoke_svg}"
  test -s "${smoke_svg}" || {
    echo "profile_view.py produced an empty SVG" >&2
    exit 1
  }
else
  echo "profiler unavailable here; folded artifact empty (expected shape)"
fi

echo "== validation smoke: golden emit + replay (serial and threaded) =="
# Time-boxed profile: a small golden set (~1 s to emit, <1 s per replay)
# rather than the CI-sized one — the full 1x8-thread x 2-mode matrix runs
# in the ci.yml validate job. validate_run exits 2 on any row diff.
./build/tools/validate_run --emit --out "${smoke_golden}" \
  --persons 120 --segments 2
./build/tools/validate_run --replay "${smoke_golden}" \
  --threads 1 --mode sequential
./build/tools/validate_run --replay "${smoke_golden}" \
  --threads 8 --mode windowed
# Batched engine replay: the golden rows were emitted by the scalar
# engine, so a passing --exec=batched replay proves the block-at-a-time
# Q5/Q9/Q14 plans byte-identical on the full battery.
./build/tools/validate_run --replay "${smoke_golden}" \
  --threads 1 --mode sequential --exec batched
# Sharded-store replay: the serial single-shard emission must replay
# byte-identically on a 2-shard store (hash routing + multi-shard
# snapshots + per-shard writer locks). The full {1,2,4,8} matrix runs in
# tests/validate_golden_test.cc and CI's shard-matrix job.
./build/tools/validate_run --replay "${smoke_golden}" \
  --threads 2 --mode windowed --shards 2

echo "== perf-regression gate: compare against committed baseline =="
# Thresholds are deliberately generous: the gate exists to catch order-of-
# magnitude regressions on any machine, not to flag scheduler noise across
# different hardware. Tighten them when pinning a baseline per machine.
if [[ -f BENCH_baseline.json ]]; then
  python3 scripts/compare_reports.py BENCH_baseline.json "${bench_today}" \
    --max-throughput-drop 0.9 \
    --max-update-throughput-drop 0.9 \
    --max-latency-inflation 4.0 \
    --latency-slack-ms 5.0 \
    --max-compliance-drop 0.5
else
  echo "no BENCH_baseline.json; seeding it from this run"
  cp "${bench_today}" BENCH_baseline.json
fi

# Only the concurrency-labelled test targets are built under the
# sanitizers; a whole-tree sanitizer build adds minutes without adding
# coverage. The target list is discovered from the label (test name ==
# target name for every snb_test), so newly labelled tests join the
# sanitizer tier without editing this script.
mapfile -t san_targets < <(cd build && ctest -N -L concurrency |
                           sed -n 's/^ *Test *#[0-9]*: //p')
if [[ ${#san_targets[@]} -eq 0 ]]; then
  echo "ctest -L concurrency discovered no targets" >&2
  exit 1
fi
echo "concurrency targets: ${san_targets[*]}"
for san in address thread undefined; do
  dir="build-${san}-san"
  echo "== ${san} sanitizer: concurrency-labelled tests =="
  cmake -B "${dir}" -S . -DSNB_SANITIZE="${san}" >/dev/null
  cmake --build "${dir}" -j"${jobs}" --target "${san_targets[@]}"
  (cd "${dir}" && ctest -L concurrency --output-on-failure)
done

echo "== all checks passed =="
