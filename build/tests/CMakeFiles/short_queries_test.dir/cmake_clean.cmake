file(REMOVE_RECURSE
  "CMakeFiles/short_queries_test.dir/short_queries_test.cc.o"
  "CMakeFiles/short_queries_test.dir/short_queries_test.cc.o.d"
  "short_queries_test"
  "short_queries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/short_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
