#include "curation/parameter_curation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace snb::curation {
namespace {

/// Minimum-variance contiguous window of size `window` over `rows` (which
/// must already be sorted by the column). Returns the begin offset.
/// Sliding-window variance in O(n) via running sums.
size_t MinVarianceWindow(const std::vector<uint64_t>& col,
                         const std::vector<uint32_t>& rows, size_t window) {
  size_t n = rows.size();
  assert(window >= 1 && window <= n);
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < window; ++i) {
    double v = static_cast<double>(col[rows[i]]);
    sum += v;
    sum_sq += v * v;
  }
  double w = static_cast<double>(window);
  double best_var = sum_sq / w - (sum / w) * (sum / w);
  size_t best_begin = 0;
  for (size_t begin = 1; begin + window <= n; ++begin) {
    double out = static_cast<double>(col[rows[begin - 1]]);
    double in = static_cast<double>(col[rows[begin + window - 1]]);
    sum += in - out;
    sum_sq += in * in - out * out;
    double var = sum_sq / w - (sum / w) * (sum / w);
    if (var < best_var - 1e-9) {
      best_var = var;
      best_begin = begin;
    }
  }
  return best_begin;
}

}  // namespace

std::vector<uint64_t> CurateParameters(const PcTable& table, size_t k) {
  size_t n = table.num_rows();
  if (n == 0 || k == 0) return {};
  if (k > n) k = n;

  // Current candidate rows; shrinks column by column. Window sizes shrink
  // geometrically so every column gets refinement room, with the final
  // column pinning exactly k rows.
  std::vector<uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);

  size_t num_cols = table.num_columns();
  for (size_t c = 0; c < num_cols; ++c) {
    const std::vector<uint64_t>& col = table.columns[c];
    std::stable_sort(rows.begin(), rows.end(),
                     [&](uint32_t a, uint32_t b) { return col[a] < col[b]; });
    size_t remaining_cols = num_cols - c - 1;
    // Window size: k * 4^(remaining columns), capped at the current set.
    size_t window = k;
    for (size_t i = 0; i < remaining_cols && window < rows.size() / 4; ++i) {
      window *= 4;
    }
    window = std::min(window, rows.size());
    size_t begin = MinVarianceWindow(col, rows, window);
    rows = std::vector<uint32_t>(rows.begin() + begin,
                                 rows.begin() + begin + window);
  }
  // The last column's window may still exceed k (when column count is 0 or
  // clamping kicked in); trim deterministically around the median.
  if (rows.size() > k) {
    size_t begin = (rows.size() - k) / 2;
    rows = std::vector<uint32_t>(rows.begin() + begin,
                                 rows.begin() + begin + k);
  }

  std::vector<uint64_t> keys;
  keys.reserve(rows.size());
  for (uint32_t r : rows) keys.push_back(table.keys[r]);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<uint64_t> UniformParameters(const PcTable& table, size_t k,
                                        util::Rng& rng) {
  std::vector<uint64_t> keys;
  size_t n = table.num_rows();
  if (n == 0) return keys;
  keys.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    keys.push_back(table.keys[rng.NextBounded(n)]);
  }
  return keys;
}

double SelectionCoutVariance(const PcTable& table,
                             const std::vector<uint64_t>& keys) {
  if (keys.size() < 2) return 0.0;
  std::unordered_map<uint64_t, size_t> row_of;
  row_of.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) row_of[table.keys[r]] = r;
  double mean = 0.0;
  std::vector<double> couts;
  couts.reserve(keys.size());
  for (uint64_t key : keys) {
    auto it = row_of.find(key);
    double cout =
        it == row_of.end() ? 0.0 : static_cast<double>(table.RowCout(it->second));
    couts.push_back(cout);
    mean += cout;
  }
  mean /= static_cast<double>(couts.size());
  double var = 0.0;
  for (double c : couts) var += (c - mean) * (c - mean);
  return var / static_cast<double>(couts.size());
}

int TimestampBucket(util::TimestampMs ts) { return util::MonthIndex(ts); }

std::vector<CuratedPair> CuratePairs(
    const std::vector<uint64_t>& keys,
    const std::vector<std::vector<uint64_t>>& counts, size_t k) {
  // Flatten (key, bucket) pairs into a single-column PC table and reuse the
  // single-parameter machinery.
  PcTable flat;
  std::vector<CuratedPair> pairs;
  std::vector<uint64_t> col;
  for (size_t r = 0; r < keys.size(); ++r) {
    for (size_t b = 0; b < counts[r].size(); ++b) {
      flat.keys.push_back(flat.keys.size());
      pairs.push_back({keys[r], static_cast<int>(b)});
      col.push_back(counts[r][b]);
    }
  }
  flat.columns.push_back(std::move(col));
  std::vector<uint64_t> selected = CurateParameters(flat, k);
  std::vector<CuratedPair> out;
  out.reserve(selected.size());
  for (uint64_t flat_key : selected) out.push_back(pairs[flat_key]);
  return out;
}

}  // namespace snb::curation
