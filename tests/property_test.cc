// Parameterized property sweeps across scales, seeds and parameters:
// invariants that must hold for every configuration.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "curation/parameter_curation.h"
#include "datagen/datagen.h"
#include "datagen/degree_model.h"
#include "driver/dependency_services.h"
#include "util/rng.h"

namespace snb {
namespace {

// ---- Datagen invariants over (persons, seed) sweeps ------------------------

using DatagenParam = std::tuple<uint64_t /*persons*/, uint64_t /*seed*/>;

class DatagenPropertyTest : public ::testing::TestWithParam<DatagenParam> {
 protected:
  datagen::Dataset Make() {
    auto [persons, seed] = GetParam();
    datagen::DatagenConfig config;
    config.num_persons = persons;
    config.seed = seed;
    return datagen::Generate(config);
  }
};

TEST_P(DatagenPropertyTest, InvariantsHold) {
  datagen::Dataset ds = Make();
  auto [persons, seed] = GetParam();

  // I1: every person exists exactly once across bulk + updates.
  std::unordered_set<uint64_t> ids;
  for (const schema::Person& p : ds.bulk.persons) {
    EXPECT_TRUE(ids.insert(p.id).second);
  }
  for (const datagen::UpdateOperation& op : ds.updates) {
    if (op.kind == datagen::UpdateKind::kAddPerson) {
      EXPECT_TRUE(
          ids.insert(std::get<schema::Person>(op.payload).id).second);
    }
  }
  EXPECT_EQ(ids.size(), persons);

  // I2: all dependency times strictly precede due times.
  for (const datagen::UpdateOperation& op : ds.updates) {
    EXPECT_LT(op.dependency_time, op.due_time);
    EXPECT_LE(op.person_dependency_time, op.dependency_time);
  }

  // I3: bulk messages are id-dense prefix in time order.
  util::TimestampMs last = 0;
  for (const schema::Message& m : ds.bulk.messages) {
    EXPECT_GE(m.creation_date, last);
    last = m.creation_date;
  }

  // I4: statistics agree with the materialized entities.
  EXPECT_EQ(ds.stats.num_persons, persons);
  uint64_t knows = ds.bulk.knows.size();
  for (const datagen::UpdateOperation& op : ds.updates) {
    if (op.kind == datagen::UpdateKind::kAddFriendship) ++knows;
  }
  EXPECT_EQ(ds.stats.num_knows, knows);

  // I5: friendship degree mean within a factor-2 band of the formula.
  double avg = 2.0 * static_cast<double>(ds.stats.num_knows) /
               static_cast<double>(persons);
  double target = datagen::DegreeModel::AverageDegreeFormula(persons);
  EXPECT_GT(avg, target * 0.4) << "seed " << seed;
  EXPECT_LT(avg, target * 1.6) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DatagenPropertyTest,
    ::testing::Combine(::testing::Values(100, 300, 700),
                       ::testing::Values(1, 0x5eed, 987654321)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "s" +
             std::to_string(std::get<1>(info.param) % 1000);
    });

// ---- Degree model over scales ------------------------------------------------

class DegreeModelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DegreeModelPropertyTest, MeanTracksFormula) {
  uint64_t n = GetParam();
  datagen::DegreeModel model(n);
  double sum = 0;
  uint64_t samples = std::min<uint64_t>(n, 20000);
  for (uint64_t id = 0; id < samples; ++id) {
    uint32_t d = model.TargetDegree(11, id);
    EXPECT_GE(d, 1u);
    sum += d;
  }
  double mean = sum / static_cast<double>(samples);
  double target = datagen::DegreeModel::AverageDegreeFormula(n);
  EXPECT_NEAR(mean, target, target * 0.2) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DegreeModelPropertyTest,
                         ::testing::Values(500, 5000, 50000, 500000),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---- Curation: variance dominance for every k ---------------------------------

class CurationPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CurationPropertyTest, CuratedNeverWorseThanUniform) {
  size_t k = GetParam();
  static datagen::Dataset* ds = [] {
    datagen::DatagenConfig config;
    config.num_persons = 400;
    config.split_update_stream = false;
    return new datagen::Dataset(datagen::Generate(config));
  }();
  curation::PcTable table = curation::BuildTwoHopTable(ds->stats);
  std::vector<uint64_t> curated = curation::CurateParameters(table, k);
  ASSERT_EQ(curated.size(), std::min(k, table.num_rows()));
  // No duplicate bindings.
  std::unordered_set<uint64_t> unique(curated.begin(), curated.end());
  EXPECT_EQ(unique.size(), curated.size());

  double curated_var = curation::SelectionCoutVariance(table, curated);
  util::Rng rng(31, k, util::RandomPurpose::kParameterPick);
  double uniform_var = 0;
  for (int s = 0; s < 8; ++s) {
    uniform_var += curation::SelectionCoutVariance(
        table, curation::UniformParameters(table, k, rng));
  }
  uniform_var /= 8;
  if (k >= 4) {
    EXPECT_LE(curated_var, uniform_var) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CurationPropertyTest,
                         ::testing::Values(1, 4, 10, 25, 50, 100, 399),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

// ---- Dependency services: watermark safety under random schedules -------------

class GdsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GdsPropertyTest, TgcNeverPassesIncompleteOp) {
  // Randomized schedule: ops initiated in time order per stream, completed
  // in random order; at every step TGC must stay below the oldest
  // incomplete op.
  int seed = GetParam();
  util::Rng rng(seed, 0, util::RandomPurpose::kQueryMix);
  driver::GlobalDependencyService gds;
  constexpr int kStreams = 3;
  std::vector<driver::LocalDependencyService*> streams;
  for (int s = 0; s < kStreams; ++s) streams.push_back(gds.AddStream());

  struct Pending {
    int stream;
    util::TimestampMs t;
  };
  std::vector<Pending> in_flight;
  std::vector<util::TimestampMs> next_time(kStreams, 10);
  for (int step = 0; step < 3000; ++step) {
    bool do_initiate = in_flight.empty() || rng.NextBool(0.55);
    if (do_initiate) {
      int s = static_cast<int>(rng.NextBounded(kStreams));
      util::TimestampMs t = next_time[s];
      next_time[s] += 1 + rng.NextBounded(5);
      if (rng.NextBool(0.5)) {
        streams[s]->Initiate(t);
        in_flight.push_back({s, t});
      } else {
        streams[s]->MarkTime(t);
      }
    } else {
      size_t pick = rng.NextBounded(in_flight.size());
      streams[in_flight[pick].stream]->Complete(in_flight[pick].t);
      in_flight.erase(in_flight.begin() + pick);
    }
    util::TimestampMs oldest_incomplete = driver::kTimeMax;
    for (const Pending& p : in_flight) {
      oldest_incomplete = std::min(oldest_incomplete, p.t);
    }
    EXPECT_LT(gds.TGC(), oldest_incomplete) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GdsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace snb
