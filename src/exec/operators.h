// Physical operators of the batched engine: adjacency scans, two-hop
// expansion, and the bounded top-k sink.
//
// Each operator takes the caller's ShardSnapshot (snapshot-read
// capability, discipline identical to the store accessors) and an optional
// obs::OperatorStats sink — a null sink disengages the TraceSpans
// entirely, so unprofiled runs take no timestamps.
#ifndef SNB_EXEC_OPERATORS_H_
#define SNB_EXEC_OPERATORS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/batch.h"
#include "obs/trace.h"
#include "store/graph_store.h"
#include "util/datetime.h"
#include "util/epoch.h"

namespace snb::exec {

/// Cardinalities of one two-hop expansion, in the same terms the Q9 plan
/// ablation counts them (Cout of the two joins).
struct TwoHopStats {
  uint64_t direct = 0;      // |friends(start)| — join1 output.
  uint64_t fof_tuples = 0;  // Friend-of-friend tuples pre-dedup — join2.
};

/// Sorted two-hop circle of `start` (direct friends plus friends of
/// friends, `start` itself excluded), built with the sorted-set kernels:
/// per-friend DifferenceSorted against the direct list, one dedup sort
/// over the fresh ids, one merge. Matches queries::TwoHopCircle exactly
/// (that one hash-dedups then sorts). Spans: join1 = direct expansion,
/// join2 = friend-of-friend expansion; either sink may be null.
TwoHopStats ExpandTwoHopSorted(const store::GraphStore& store,
                               const store::ShardSnapshot& pin, uint64_t start,
                               std::vector<uint64_t>* circle,
                               obs::OperatorStats* join1_sink = nullptr,
                               obs::OperatorStats* join2_sink = nullptr);

/// Scans the created-message index of each person in a sorted id list and
/// emits blocks of (a = message id, b = creator id, date = creation date)
/// for messages with date < max_date_exclusive. Per person, only the
/// newest min(qualifying, per_person_limit) rows are emitted — when the
/// consumer is a top-`limit` sink ordered by (date desc, id asc), rows
/// beyond the newest `limit` of one person can never reach the global
/// top `limit`, so skipping them is exact (the scalar Q9 applies the same
/// truncation). Pass per_person_limit = SIZE_MAX for an unbounded scan.
///
/// The date cut is a binary search on the inline date column of the
/// adjacency entries (the index is date-ascending): no message record is
/// touched, qualifying rows are block-copied.
class MessageScanOperator : public Operator {
 public:
  /// `persons` must outlive the operator; `stats` may be null.
  MessageScanOperator(const store::GraphStore& store,
                      const store::ShardSnapshot& pin,
                      const std::vector<uint64_t>& persons,
                      util::TimestampMs max_date_exclusive,
                      size_t per_person_limit,
                      obs::OperatorStats* stats = nullptr);

  bool Next(Batch* out) override;

  /// Total rows emitted so far (the join's Cout).
  uint64_t rows_emitted() const { return rows_emitted_; }

 private:
  /// Opens the next person with qualifying rows; false when none left.
  bool OpenNextPerson();

  const store::GraphStore& store_;
  const store::ShardSnapshot& pin_;
  const std::vector<uint64_t>& persons_;
  const util::TimestampMs max_date_exclusive_;
  const size_t per_person_limit_;
  obs::OperatorStats* const stats_;

  size_t person_idx_ = 0;  // Next person to open.
  // Cursor into the open person's message edges. The raw pointer stays
  // valid while `pin_` is held (RCU buffer lifetime).
  const store::DatedEdge* edges_ = nullptr;
  size_t pos_ = 0;
  size_t end_ = 0;
  uint64_t current_person_ = 0;
  uint64_t rows_emitted_ = 0;
};

/// Bounded top-k sink: keeps the k best rows under `Less`, where
/// Less(a, b) means "a ranks before b". Backed by a max-heap of the
/// currently-worst kept row, so a non-qualifying row costs one comparison
/// and no allocation. With a total-order comparator (every query's sort
/// key includes a unique id column) the kept set and its drained order
/// are byte-identical to full-sort-then-truncate.
template <typename Row, typename Less>
class TopK {
 public:
  explicit TopK(size_t k, Less less = Less()) : k_(k), less_(less) {
    heap_.reserve(k);
  }

  void Push(const Row& row) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(row);
      std::push_heap(heap_.begin(), heap_.end(), less_);
      return;
    }
    if (less_(row, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), less_);
      heap_.back() = row;
      std::push_heap(heap_.begin(), heap_.end(), less_);
    }
  }

  size_t size() const { return heap_.size(); }

  /// Rows in rank order (best first); the sink is empty afterwards.
  std::vector<Row> Drain() {
    std::sort_heap(heap_.begin(), heap_.end(), less_);
    return std::move(heap_);
  }

 private:
  size_t k_;
  Less less_;
  std::vector<Row> heap_;
};

}  // namespace snb::exec

#endif  // SNB_EXEC_OPERATORS_H_
