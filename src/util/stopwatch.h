// Steady-clock stopwatch shared by the driver, connectors and benches.
#ifndef SNB_UTIL_STOPWATCH_H_
#define SNB_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace snb::util {

/// Steady-clock stopwatch returning elapsed microseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Microseconds since construction or last Reset().
  double ElapsedMicros() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - start_).count();
  }

  /// Nanoseconds since construction or last Reset().
  uint64_t ElapsedNanos() const {
    auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
            .count());
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace snb::util

#endif  // SNB_UTIL_STOPWATCH_H_
