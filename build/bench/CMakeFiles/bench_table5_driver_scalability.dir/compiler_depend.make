# Empty compiler generated dependencies file for bench_table5_driver_scalability.
# This may be replaced when dependencies are built.
