// Tests for the transactional graph store.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/batched_queries.h"
#include "queries/short_queries.h"
#include "queries/update_queries.h"
#include "relational/rel_queries.h"
#include "store/graph_store.h"
#include "store/shard_router.h"
#include "validate/canonical.h"

namespace snb::store {
namespace {

using schema::Forum;
using schema::ForumMembership;
using schema::Knows;
using schema::Like;
using schema::Message;
using schema::MessageKind;
using schema::Person;
using util::StatusCode;

Person MakePerson(schema::PersonId id) {
  Person p;
  p.id = id;
  p.first_name = "First" + std::to_string(id);
  p.last_name = "Last" + std::to_string(id);
  p.creation_date = 1000 + static_cast<int64_t>(id);
  return p;
}

Forum MakeForum(schema::ForumId id, schema::PersonId moderator) {
  Forum f;
  f.id = id;
  f.title = "Forum" + std::to_string(id);
  f.moderator_id = moderator;
  f.creation_date = 2000;
  return f;
}

Message MakePost(schema::MessageId id, schema::PersonId creator,
                 schema::ForumId forum, util::TimestampMs date = 3000) {
  Message m;
  m.id = id;
  m.kind = MessageKind::kPost;
  m.creator_id = creator;
  m.forum_id = forum;
  m.root_post_id = id;
  m.creation_date = date;
  m.content = "hello world";
  return m;
}

TEST(GraphStoreTest, AddAndFindPerson) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  auto pin = store.ReadLock();
  const PersonRecord* p = store.FindPerson(pin, 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->data.first_name, "First1");
  EXPECT_EQ(store.FindPerson(pin, 2), nullptr);
}

TEST(GraphStoreTest, DuplicatePersonRejected) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  EXPECT_EQ(store.AddPerson(MakePerson(1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(GraphStoreTest, FriendshipRequiresBothEndpoints) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  Knows k{1, 2, 5000};
  EXPECT_EQ(store.AddFriendship(k).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.AddPerson(MakePerson(2)).ok());
  EXPECT_TRUE(store.AddFriendship(k).ok());
  auto pin = store.ReadLock();
  EXPECT_TRUE(store.AreFriends(pin, 1, 2));
  EXPECT_TRUE(store.AreFriends(pin, 2, 1));
  EXPECT_FALSE(store.AreFriends(pin, 1, 3));
  EXPECT_EQ(store.NumKnowsEdges(), 1u);
}

TEST(GraphStoreTest, FriendListsStaySorted) {
  GraphStore store;
  for (schema::PersonId id = 0; id < 10; ++id) {
    ASSERT_TRUE(store.AddPerson(MakePerson(id)).ok());
  }
  // Insert in scrambled order.
  for (schema::PersonId other : {7, 2, 9, 1, 4}) {
    ASSERT_TRUE(store.AddFriendship({0, other, 100}).ok());
  }
  auto pin = store.ReadLock();
  const PersonRecord* p = store.FindPerson(pin, 0);
  ASSERT_NE(p, nullptr);
  for (size_t i = 1; i < p->friends.size(); ++i) {
    EXPECT_LT(p->friends[i - 1].other, p->friends[i].other);
  }
}

TEST(GraphStoreTest, ForumRequiresModerator) {
  GraphStore store;
  EXPECT_EQ(store.AddForum(MakeForum(10, 1)).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  EXPECT_TRUE(store.AddForum(MakeForum(10, 1)).ok());
  EXPECT_EQ(store.AddForum(MakeForum(10, 1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(GraphStoreTest, MembershipLinksBothSides) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  ASSERT_TRUE(store.AddForum(MakeForum(10, 1)).ok());
  EXPECT_EQ(store.AddForumMembership({11, 1, 2500}).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(store.AddForumMembership({10, 1, 2500}).ok());
  auto pin = store.ReadLock();
  EXPECT_EQ(store.FindPerson(pin, 1)->forums.size(), 1u);
  EXPECT_EQ(store.FindForum(pin, 10)->members.size(), 1u);
  EXPECT_EQ(store.FindForum(pin, 10)->members[0].date, 2500);
}

TEST(GraphStoreTest, PostRequiresForumCommentRequiresParent) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  EXPECT_EQ(store.AddMessage(MakePost(0, 1, 10)).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(store.AddForum(MakeForum(10, 1)).ok());
  ASSERT_TRUE(store.AddMessage(MakePost(0, 1, 10)).ok());

  Message comment;
  comment.id = 1;
  comment.kind = MessageKind::kComment;
  comment.creator_id = 1;
  comment.forum_id = 10;
  comment.reply_to_id = 99;  // Missing parent.
  comment.root_post_id = 0;
  comment.creation_date = 3100;
  EXPECT_EQ(store.AddMessage(comment).code(), StatusCode::kNotFound);
  comment.reply_to_id = 0;
  EXPECT_TRUE(store.AddMessage(comment).ok());

  auto pin = store.ReadLock();
  const MessageRecord* post = store.FindMessage(pin, 0);
  ASSERT_NE(post, nullptr);
  ASSERT_EQ(post->replies.size(), 1u);
  EXPECT_EQ(post->replies[0], 1u);
  EXPECT_EQ(store.FindForum(pin, 10)->posts.size(), 1u);
  EXPECT_EQ(store.FindPerson(pin, 1)->messages.size(), 2u);
}

TEST(GraphStoreTest, LikeRequiresPersonAndMessage) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  ASSERT_TRUE(store.AddForum(MakeForum(10, 1)).ok());
  ASSERT_TRUE(store.AddMessage(MakePost(0, 1, 10)).ok());
  EXPECT_EQ(store.AddLike({2, 0, 3200}).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.AddLike({1, 5, 3200}).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.AddLike({1, 0, 3200}).ok());
  auto pin = store.ReadLock();
  EXPECT_EQ(store.FindMessage(pin, 0)->likes.size(), 1u);
  EXPECT_EQ(store.FindPerson(pin, 1)->likes.size(), 1u);
  EXPECT_EQ(store.NumLikes(), 1u);
}

TEST(GraphStoreTest, BulkLoadRequiresEmptyStore) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  schema::SocialNetwork network;
  EXPECT_EQ(store.BulkLoad(network).code(),
            StatusCode::kFailedPrecondition);
}

TEST(GraphStoreTest, BulkLoadFullDataset) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  datagen::Dataset ds = datagen::Generate(config);
  GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  EXPECT_EQ(store.NumPersons(), ds.bulk.persons.size());
  EXPECT_EQ(store.NumKnowsEdges(), ds.bulk.knows.size());
  EXPECT_EQ(store.NumMessages(), ds.bulk.messages.size());
  EXPECT_EQ(store.NumLikes(), ds.bulk.likes.size());
  EXPECT_EQ(store.NumMemberships(), ds.bulk.memberships.size());
  EXPECT_EQ(store.NumForums(), ds.bulk.forums.size());
}

TEST(GraphStoreTest, UpdateStreamAppliesInOrder) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  datagen::Dataset ds = datagen::Generate(config);
  GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  ASSERT_GT(ds.updates.size(), 0u);
  for (const datagen::UpdateOperation& op : ds.updates) {
    util::Status s = queries::ApplyUpdate(store, op);
    ASSERT_TRUE(s.ok()) << datagen::UpdateKindName(op.kind) << ": "
                        << s.ToString();
  }
  EXPECT_EQ(store.NumPersons(), ds.stats.num_persons);
  EXPECT_EQ(store.NumKnowsEdges(), ds.stats.num_knows);
  EXPECT_EQ(store.NumMessages(), ds.stats.NumMessages());
}

TEST(GraphStoreTest, MessageIdsAreDateOrdered) {
  datagen::DatagenConfig config;
  config.num_persons = 100;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  auto pin = store.ReadLock();
  util::TimestampMs last = 0;
  for (schema::MessageId id = 0; id < store.MessageIdBound(); ++id) {
    const MessageRecord* m = store.FindMessage(pin, id);
    if (m == nullptr) continue;
    EXPECT_GE(m->data.creation_date, last);
    last = m->data.creation_date;
  }
}

TEST(GraphStoreTest, StorageBreakdownAccountsMajorStructures) {
  datagen::DatagenConfig config;
  config.num_persons = 100;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  StorageBreakdown b = store.ComputeStorageBreakdown();
  EXPECT_GT(b.message_bytes, 0u);
  EXPECT_GT(b.message_content_bytes, 0u);
  EXPECT_GT(b.likes_bytes, 0u);
  EXPECT_GT(b.membership_bytes, 0u);
  EXPECT_GT(b.friends_bytes, 0u);
  EXPECT_GT(b.person_bytes, 0u);
  // The message table (with content) dominates, as in Table 8.
  EXPECT_GT(b.message_bytes, b.friends_bytes);
  EXPECT_EQ(b.Total(), b.message_bytes + b.likes_bytes + b.membership_bytes +
                           b.friends_bytes + b.person_bytes + b.forum_bytes);
}

TEST(GraphStoreTest, ConcurrentReadersDuringWritesGlobalLock) {
  // The whole-store invariant (adjacency totals == counters) needs a frozen
  // snapshot, which only the shared-lock mode provides; the epoch mode's
  // weaker per-object guarantees are covered by the test below and by
  // concurrency_stress_test.
  GraphStore store(ReadConcurrency::kGlobalLock);
  for (schema::PersonId id = 0; id < 50; ++id) {
    ASSERT_TRUE(store.AddPerson(MakePerson(id)).ok());
  }
  ASSERT_TRUE(store.AddForum(MakeForum(1000, 0)).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto pin = store.ReadLock();
      // Under the shared lock, edge counters and adjacency must agree.
      uint64_t sum = 0;
      for (schema::PersonId id = 0; id < 50; ++id) {
        const PersonRecord* p = store.FindPerson(pin, id);
        if (p != nullptr) sum += p->friends.size();
      }
      if (sum != 2 * store.NumKnowsEdges()) read_errors.fetch_add(1);
    }
  });
  for (schema::PersonId id = 1; id < 50; ++id) {
    ASSERT_TRUE(store.AddFriendship({0, id, 100}).ok());
    Message m = MakePost(id, id, 1000, 3000 + static_cast<int64_t>(id));
    ASSERT_TRUE(store.AddMessage(m).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(store.NumKnowsEdges(), 49u);
}

TEST(GraphStoreTest, ConcurrentReadersDuringWritesEpoch) {
  // Epoch readers never block and see per-object snapshots: every friend
  // list stays sorted and every id reachable through an adjacency list
  // resolves to a fully built record, even mid-write.
  GraphStore store;
  ASSERT_EQ(store.read_concurrency(), ReadConcurrency::kEpoch);
  for (schema::PersonId id = 0; id < 50; ++id) {
    ASSERT_TRUE(store.AddPerson(MakePerson(id)).ok());
  }
  ASSERT_TRUE(store.AddForum(MakeForum(1000, 0)).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto pin = store.ReadLock();
      for (schema::PersonId id = 0; id < 50; ++id) {
        const PersonRecord* p = store.FindPerson(pin, id);
        if (p == nullptr) continue;
        auto friends = p->friends.view();
        for (size_t i = 0; i < friends.size(); ++i) {
          if (i > 0 && friends[i - 1].other >= friends[i].other) {
            read_errors.fetch_add(1);
          }
          if (store.FindPerson(pin, friends[i].other) == nullptr) {
            read_errors.fetch_add(1);
          }
        }
        for (const DatedEdge& e : p->messages.view()) {
          const MessageRecord* m = store.FindMessage(pin, e.id);
          if (m == nullptr || m->data.creation_date != e.date) {
            read_errors.fetch_add(1);
          }
        }
      }
    }
  });
  for (schema::PersonId id = 1; id < 50; ++id) {
    ASSERT_TRUE(store.AddFriendship({0, id, 100}).ok());
    Message m = MakePost(id, id, 1000, 3000 + static_cast<int64_t>(id));
    ASSERT_TRUE(store.AddMessage(m).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(store.NumKnowsEdges(), 49u);
  EXPECT_EQ(store.NumMessages(), 49u);
}

// ---- Cross-shard edge battery ---------------------------------------------
//
// Every relationship kind the store models — friendships, likes, forum
// memberships, message containment and replies — is exercised with
// endpoints that hash to *different* shards, then verified by Q9 (both
// engines) and the full short-read battery against the relational baseline
// at every shard count {1, 2, 4, 8}. The fixture asserts its own premise:
// at each N > 1 it must actually contain cross-shard instances of every
// edge kind, so a router change cannot silently degrade this into a
// single-shard test. The hermit and lonely-poster cases from
// queries_edge_test.cc ride along: a person with no edges at all and a
// person with messages but zero friends must produce identical
// (empty-but-found) results on every shard count.
class CrossShardBatteryTest : public ::testing::Test {
 protected:
  static constexpr schema::PersonId kHermit = 555000;
  static constexpr schema::PersonId kLoner = 600;
  static constexpr int kPersons = 12;
  static constexpr util::TimestampMs kBatteryDate = 100000;

  void AddPersonBoth(GraphStore* s, rel::RelationalDb* db,
                     const Person& p) {
    ASSERT_TRUE(s->AddPerson(p).ok());
    ASSERT_TRUE(db->AddPerson(p).ok());
  }
  void AddForumBoth(GraphStore* s, rel::RelationalDb* db, const Forum& f) {
    ASSERT_TRUE(s->AddForum(f).ok());
    ASSERT_TRUE(db->AddForum(f).ok());
  }
  void AddFriendshipBoth(GraphStore* s, rel::RelationalDb* db,
                         const Knows& k) {
    ASSERT_TRUE(s->AddFriendship(k).ok());
    ASSERT_TRUE(db->AddFriendship(k).ok());
  }
  void AddMembershipBoth(GraphStore* s, rel::RelationalDb* db,
                         const ForumMembership& m) {
    ASSERT_TRUE(s->AddForumMembership(m).ok());
    ASSERT_TRUE(db->AddForumMembership(m).ok());
  }
  void AddMessageBoth(GraphStore* s, rel::RelationalDb* db,
                      const Message& m) {
    ASSERT_TRUE(s->AddMessage(m).ok());
    ASSERT_TRUE(db->AddMessage(m).ok());
    message_ids_.push_back(m.id);
  }
  void AddLikeBoth(GraphStore* s, rel::RelationalDb* db, const Like& l) {
    ASSERT_TRUE(s->AddLike(l).ok());
    ASSERT_TRUE(db->AddLike(l).ok());
  }

  /// The deterministic fixture network, inserted through the public Add*
  /// transactions on both SUTs (never BulkLoad, so the sharded write path
  /// is the one under test). Persons 1..12 in a friendship ring plus
  /// +3 chords; four forums; one post per person in a rotating forum;
  /// replies by a *different* person than the post creator; likes rotated
  /// so liker and message land far apart in id space.
  void BuildNetwork(GraphStore* s, rel::RelationalDb* db) {
    message_ids_.clear();
    for (schema::PersonId id = 1; id <= kPersons; ++id) {
      AddPersonBoth(s, db, MakePerson(id));
    }
    AddPersonBoth(s, db, MakePerson(kHermit));
    AddPersonBoth(s, db, MakePerson(kLoner));
    for (schema::ForumId f = 101; f <= 104; ++f) {
      AddForumBoth(s, db, MakeForum(f, static_cast<schema::PersonId>(
                                           (f - 101) % kPersons + 1)));
    }
    for (schema::PersonId id = 1; id <= kPersons; ++id) {
      schema::PersonId ring = id % kPersons + 1;
      AddFriendshipBoth(s, db, {id, ring, 5000 + static_cast<int64_t>(id)});
      if (id + 3 <= kPersons) {
        AddFriendshipBoth(s, db,
                          {id, id + 3, 5100 + static_cast<int64_t>(id)});
      }
    }
    for (schema::PersonId id = 1; id <= kPersons; ++id) {
      AddMembershipBoth(s, db, {101, id, 6000});
      AddMembershipBoth(s, db,
                        {101 + static_cast<schema::ForumId>(id % 4), id,
                         6100});
    }
    AddMembershipBoth(s, db, {102, kLoner, 6200});
    // Posts: message id k-1 by person k in forum 101 + (k-1) % 4.
    for (schema::PersonId id = 1; id <= kPersons; ++id) {
      AddMessageBoth(s, db,
                     MakePost(static_cast<schema::MessageId>(id - 1), id,
                              101 + static_cast<schema::ForumId>((id - 1) % 4),
                              3000 + static_cast<int64_t>(id)));
    }
    // The lonely poster: messages and a membership but zero friends.
    AddMessageBoth(s, db, MakePost(20, kLoner, 102, 3500));
    // Replies: comment 30+k on post k, by the post creator's ring
    // neighbor's neighbor (so creator != replier, usually cross-shard).
    for (schema::MessageId post = 0; post < 8; ++post) {
      Message c;
      c.id = 30 + post;
      c.kind = MessageKind::kComment;
      c.creator_id = static_cast<schema::PersonId>(
          (post + 5) % kPersons + 1);
      c.forum_id = 101 + static_cast<schema::ForumId>(post % 4);
      c.reply_to_id = post;
      c.root_post_id = post;
      c.creation_date = 4000 + static_cast<int64_t>(post);
      c.content = "reply " + std::to_string(post);
      AddMessageBoth(s, db, c);
    }
    // Likes: person i likes the post five creators ahead of it.
    for (schema::PersonId id = 1; id <= kPersons; ++id) {
      AddLikeBoth(s, db,
                  {id, static_cast<schema::MessageId>((id + 4) % kPersons),
                   7000 + static_cast<int64_t>(id)});
    }
  }

  /// Asserts the fixture's premise at shard count N: every edge kind has
  /// at least one instance whose two endpoints live on different shards.
  void ExpectCrossShardCoverage(uint32_t shards) {
    int cross_friend = 0, cross_like = 0, cross_member = 0;
    int cross_contain = 0, cross_reply = 0;
    for (schema::PersonId id = 1; id <= kPersons; ++id) {
      if (ShardOfPerson(id, shards) !=
          ShardOfPerson(id % kPersons + 1, shards)) {
        ++cross_friend;
      }
      if (ShardOfPerson(id, shards) !=
          ShardOfMessage((id + 4) % kPersons, shards)) {
        ++cross_like;
      }
      if (ShardOfPerson(id, shards) != ShardOfForum(101, shards)) {
        ++cross_member;
      }
      if (ShardOfMessage(id - 1, shards) !=
          ShardOfForum(101 + (id - 1) % 4, shards)) {
        ++cross_contain;
      }
    }
    for (schema::MessageId post = 0; post < 8; ++post) {
      if (ShardOfMessage(post, shards) !=
          ShardOfMessage(30 + post, shards)) {
        ++cross_reply;
      }
    }
    EXPECT_GT(cross_friend, 0) << "no cross-shard friendship at N=" << shards;
    EXPECT_GT(cross_like, 0) << "no cross-shard like at N=" << shards;
    EXPECT_GT(cross_member, 0) << "no cross-shard membership at N=" << shards;
    EXPECT_GT(cross_contain, 0) << "no cross-shard post at N=" << shards;
    EXPECT_GT(cross_reply, 0) << "no cross-shard reply at N=" << shards;
  }

  /// Q9 through both engines plus the full short-read battery for every
  /// person and message, diffed row-by-row against the relational result
  /// in canonical form.
  void ExpectBatteryMatches(const GraphStore& s, const rel::RelationalDb& db,
                            uint32_t shards) {
    std::vector<schema::PersonId> persons;
    for (schema::PersonId id = 1; id <= kPersons; ++id) persons.push_back(id);
    persons.push_back(kHermit);
    persons.push_back(kLoner);
    for (schema::PersonId p : persons) {
      auto rel_rows = validate::CanonicalRows(rel::Query9(db, p, kBatteryDate));
      EXPECT_EQ(validate::CanonicalRows(
                    queries::Query9Scalar(s, p, kBatteryDate)),
                rel_rows)
          << "Q9 scalar, shards=" << shards << " person=" << p;
      EXPECT_EQ(validate::CanonicalRows(
                    queries::Query9Batched(s, p, kBatteryDate)),
                rel_rows)
          << "Q9 batched, shards=" << shards << " person=" << p;
      EXPECT_EQ(validate::CanonicalRow(queries::ShortQuery1PersonProfile(s, p)),
                validate::CanonicalRow(rel::ShortQuery1PersonProfile(db, p)))
          << "S1, shards=" << shards << " person=" << p;
      EXPECT_EQ(
          validate::CanonicalRows(queries::ShortQuery2RecentMessages(s, p)),
          validate::CanonicalRows(rel::ShortQuery2RecentMessages(db, p)))
          << "S2, shards=" << shards << " person=" << p;
      EXPECT_EQ(validate::CanonicalRows(queries::ShortQuery3Friends(s, p)),
                validate::CanonicalRows(rel::ShortQuery3Friends(db, p)))
          << "S3, shards=" << shards << " person=" << p;
    }
    for (schema::MessageId m : message_ids_) {
      EXPECT_EQ(
          validate::CanonicalRow(queries::ShortQuery4MessageContent(s, m)),
          validate::CanonicalRow(rel::ShortQuery4MessageContent(db, m)))
          << "S4, shards=" << shards << " message=" << m;
      EXPECT_EQ(
          validate::CanonicalRow(queries::ShortQuery5MessageCreator(s, m)),
          validate::CanonicalRow(rel::ShortQuery5MessageCreator(db, m)))
          << "S5, shards=" << shards << " message=" << m;
      EXPECT_EQ(validate::CanonicalRow(queries::ShortQuery6MessageForum(s, m)),
                validate::CanonicalRow(rel::ShortQuery6MessageForum(db, m)))
          << "S6, shards=" << shards << " message=" << m;
      EXPECT_EQ(
          validate::CanonicalRows(queries::ShortQuery7MessageReplies(s, m)),
          validate::CanonicalRows(rel::ShortQuery7MessageReplies(db, m)))
          << "S7, shards=" << shards << " message=" << m;
    }
  }

  std::vector<schema::MessageId> message_ids_;
};

TEST_F(CrossShardBatteryTest, EdgeBatteryMatchesRelationalAtEveryShardCount) {
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    if (shards > 1) ExpectCrossShardCoverage(shards);
    GraphStore store(ReadConcurrency::kEpoch, shards);
    rel::RelationalDb db;
    BuildNetwork(&store, &db);
    if (HasFatalFailure()) return;
    ExpectBatteryMatches(store, db, shards);
  }
}

// Hermit and zero-friend semantics, shard-count invariant: present but
// empty everywhere (mirrors queries_edge_test.cc on the sharded store).
TEST_F(CrossShardBatteryTest, HermitAndLonerAreEmptyButFoundAtEveryCount) {
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    GraphStore store(ReadConcurrency::kEpoch, shards);
    rel::RelationalDb db;
    BuildNetwork(&store, &db);
    if (HasFatalFailure()) return;
    EXPECT_TRUE(queries::Query9Scalar(store, kHermit, kBatteryDate).empty());
    EXPECT_TRUE(queries::ShortQuery1PersonProfile(store, kHermit).found);
    EXPECT_TRUE(queries::ShortQuery2RecentMessages(store, kHermit).empty());
    EXPECT_TRUE(queries::ShortQuery3Friends(store, kHermit).empty());
    // The loner has messages (S2 non-empty) but no friends, so the
    // friends-of-friends Q9 frontier is empty.
    EXPECT_TRUE(queries::Query9Scalar(store, kLoner, kBatteryDate).empty());
    EXPECT_FALSE(queries::ShortQuery2RecentMessages(store, kLoner).empty());
    EXPECT_TRUE(queries::ShortQuery3Friends(store, kLoner).empty());
  }
}

// Same fixture, updates routed through the multi-writer pool instead of
// the synchronous Add* transactions — exercised separately in
// driver-level tests; here we only pin the router's determinism: the
// shard of an id is a pure function of the id and the count.
TEST(ShardRouterTest, RoutingIsDeterministicAndInRange) {
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (uint64_t id = 0; id < 1000; ++id) {
      uint32_t p = ShardOfPerson(id, shards);
      EXPECT_LT(p, shards);
      EXPECT_EQ(p, ShardOfPerson(id, shards));
      EXPECT_LT(ShardOfForum(id, shards), shards);
      EXPECT_LT(ShardOfMessage(id, shards), shards);
    }
  }
}

TEST(ShardRouterTest, ShardsArePopulatedAtEveryCount) {
  // 1000 consecutive ids must hit every shard for each kind — uniformity
  // of the salted splitmix64 placement, and a regression guard against a
  // modulus typo collapsing the distribution.
  for (uint32_t shards : {2u, 4u, 8u}) {
    std::vector<int> p(shards), f(shards), m(shards);
    for (uint64_t id = 0; id < 1000; ++id) {
      ++p[ShardOfPerson(id, shards)];
      ++f[ShardOfForum(id, shards)];
      ++m[ShardOfMessage(id, shards)];
    }
    for (uint32_t i = 0; i < shards; ++i) {
      EXPECT_GT(p[i], 0) << "empty person shard " << i << "/" << shards;
      EXPECT_GT(f[i], 0) << "empty forum shard " << i << "/" << shards;
      EXPECT_GT(m[i], 0) << "empty message shard " << i << "/" << shards;
    }
  }
}

}  // namespace
}  // namespace snb::store
