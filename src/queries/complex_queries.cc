#include "queries/complex_queries.h"

#include <algorithm>
#include <ctime>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "exec/exec_mode.h"
#include "queries/batched_queries.h"

namespace snb::queries {
namespace {

using schema::MessageId;
using schema::MessageKind;
using schema::PersonId;
using store::DatedEdge;
using store::FriendEdge;
using store::MessageRecord;
using store::PersonRecord;

using MessageEdges = util::RcuVector<DatedEdge>::View;

std::vector<PersonId> FriendIdsLocked(const GraphStore& store,
                                      const store::ShardSnapshot& pin,
                                      PersonId start) {
  std::vector<PersonId> out;
  const PersonRecord* p = store.FindPerson(pin, start);
  if (p == nullptr) return out;
  auto friends = p->friends.view();
  out.reserve(friends.size());
  for (const FriendEdge& e : friends) out.push_back(e.other);
  return out;  // friends are sorted by id already.
}

std::vector<PersonId> TwoHopCircleLocked(const GraphStore& store,
                                         const store::ShardSnapshot& pin,
                                         PersonId start) {
  std::vector<PersonId> out;
  const PersonRecord* p = store.FindPerson(pin, start);
  if (p == nullptr) return out;
  std::unordered_set<PersonId> seen;
  seen.insert(start);
  for (const FriendEdge& e : p->friends.view()) {
    if (seen.insert(e.other).second) out.push_back(e.other);
  }
  size_t direct = out.size();
  for (size_t i = 0; i < direct; ++i) {
    const PersonRecord* f = store.FindPerson(pin, out[i]);
    if (f == nullptr) continue;
    for (const FriendEdge& e : f->friends.view()) {
      if (seen.insert(e.other).second) out.push_back(e.other);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Index of the first created-message edge with creation date > max_date.
/// Dates ride inline in the adjacency entry (ascending), so the binary
/// search touches no message records.
size_t UpperBoundByDate(const MessageEdges& messages, TimestampMs max_date) {
  auto it = std::partition_point(
      messages.begin(), messages.end(),
      [&](const DatedEdge& e) { return e.date <= max_date; });
  return static_cast<size_t>(it - messages.begin());
}

/// Index of the first created-message edge with creation date >= min_date.
size_t LowerBoundByDate(const MessageEdges& messages, TimestampMs min_date) {
  auto it = std::partition_point(
      messages.begin(), messages.end(),
      [&](const DatedEdge& e) { return e.date < min_date; });
  return static_cast<size_t>(it - messages.begin());
}

/// Month (1-12) and day (1-31) of a timestamp, UTC.
void MonthDayOf(TimestampMs ts, int* month, int* day) {
  std::time_t secs = static_cast<std::time_t>(ts / util::kMillisPerSecond);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  *month = tm_utc.tm_mon + 1;
  *day = tm_utc.tm_mday;
}

}  // namespace

std::vector<PersonId> FriendIds(const GraphStore& store, PersonId start) {
  auto pin = store.ReadLock();
  return FriendIdsLocked(store, pin, start);
}

std::vector<PersonId> TwoHopCircle(const GraphStore& store, PersonId start) {
  auto pin = store.ReadLock();
  return TwoHopCircleLocked(store, pin, start);
}

// ---- Q1 -----------------------------------------------------------------------

std::vector<Q1Result> Query1(const GraphStore& store, PersonId start,
                             const std::string& first_name, int limit) {
  auto pin = store.ReadLock();
  std::vector<Q1Result> results;
  const PersonRecord* root = store.FindPerson(pin, start);
  if (root == nullptr) return results;

  // 3-level BFS collecting name matches.
  std::unordered_set<PersonId> visited;
  visited.insert(start);
  std::vector<PersonId> frontier = {start};
  for (uint32_t distance = 1; distance <= 3 && !frontier.empty();
       ++distance) {
    std::vector<PersonId> next;
    for (PersonId pid : frontier) {
      const PersonRecord* p = store.FindPerson(pin, pid);
      if (p == nullptr) continue;
      for (const FriendEdge& e : p->friends.view()) {
        if (!visited.insert(e.other).second) continue;
        next.push_back(e.other);
        const PersonRecord* candidate = store.FindPerson(pin, e.other);
        if (candidate != nullptr &&
            candidate->data.first_name == first_name) {
          Q1Result r;
          r.person_id = e.other;
          r.distance = distance;
          r.last_name = candidate->data.last_name;
          r.city_id = candidate->data.city_id;
          r.university_id = candidate->data.university_id;
          r.company_id = candidate->data.company_id;
          results.push_back(std::move(r));
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(results.begin(), results.end(),
            [](const Q1Result& a, const Q1Result& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.last_name != b.last_name) return a.last_name < b.last_name;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q2 -----------------------------------------------------------------------

std::vector<Q2Result> Query2(const GraphStore& store, PersonId start,
                             TimestampMs max_date, int limit) {
  auto pin = store.ReadLock();
  std::vector<Q2Result> candidates;
  for (PersonId fid : FriendIdsLocked(store, pin, start)) {
    const PersonRecord* f = store.FindPerson(pin, fid);
    if (f == nullptr) continue;
    auto messages = f->messages.view();
    size_t upper = UpperBoundByDate(messages, max_date);
    size_t take = std::min<size_t>(upper, static_cast<size_t>(limit));
    for (size_t i = upper - take; i < upper; ++i) {
      candidates.push_back({messages[i].id, fid, messages[i].date});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Q2Result& a, const Q2Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (static_cast<int>(candidates.size()) > limit) candidates.resize(limit);
  return candidates;
}

// ---- Q3 -----------------------------------------------------------------------

std::vector<Q3Result> Query3(const GraphStore& store, PersonId start,
                             const std::vector<schema::PlaceId>& city_country,
                             schema::PlaceId country_x,
                             schema::PlaceId country_y,
                             TimestampMs start_date, int duration_days,
                             int limit) {
  auto pin = store.ReadLock();
  TimestampMs end_date = start_date + duration_days * util::kMillisPerDay;
  std::vector<Q3Result> results;
  for (PersonId pid : TwoHopCircleLocked(store, pin, start)) {
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    // Residents of X or Y are excluded: posting from home is not travel.
    if (p->data.city_id < city_country.size()) {
      schema::PlaceId home = city_country[p->data.city_id];
      if (home == country_x || home == country_y) continue;
    }
    uint32_t count_x = 0, count_y = 0;
    auto messages = p->messages.view();
    size_t lower = LowerBoundByDate(messages, start_date);
    size_t upper = UpperBoundByDate(messages, end_date - 1);
    for (size_t i = lower; i < upper; ++i) {
      const MessageRecord* m = store.FindMessage(pin, messages[i].id);
      if (m == nullptr) continue;
      if (m->data.country_id == country_x) {
        ++count_x;
      } else if (m->data.country_id == country_y) {
        ++count_y;
      }
    }
    if (count_x > 0 && count_y > 0) {
      results.push_back({pid, count_x, count_y});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const Q3Result& a, const Q3Result& b) {
              uint64_t ta = a.count_x + a.count_y;
              uint64_t tb = b.count_x + b.count_y;
              if (ta != tb) return ta > tb;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q4 -----------------------------------------------------------------------

std::vector<Q4Result> Query4(const GraphStore& store, PersonId start,
                             TimestampMs start_date, int duration_days,
                             int limit) {
  auto pin = store.ReadLock();
  TimestampMs end_date = start_date + duration_days * util::kMillisPerDay;
  std::unordered_map<schema::TagId, uint32_t> in_window;
  std::unordered_set<schema::TagId> before_window;
  for (PersonId fid : FriendIdsLocked(store, pin, start)) {
    const PersonRecord* f = store.FindPerson(pin, fid);
    if (f == nullptr) continue;
    for (const DatedEdge& e : f->messages.view()) {
      if (e.date >= end_date) break;  // Ascending dates.
      const MessageRecord* m = store.FindMessage(pin, e.id);
      if (m == nullptr || m->data.kind == MessageKind::kComment) continue;
      if (e.date < start_date) {
        for (schema::TagId t : m->data.tags) before_window.insert(t);
      } else {
        for (schema::TagId t : m->data.tags) ++in_window[t];
      }
    }
  }
  std::vector<Q4Result> results;
  for (auto [tag, count] : in_window) {
    if (before_window.count(tag) == 0) results.push_back({tag, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q4Result& a, const Q4Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.tag < b.tag;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q5 -----------------------------------------------------------------------

std::vector<Q5Result> Query5(const GraphStore& store, PersonId start,
                             TimestampMs min_date, int limit) {
  if (exec::DefaultExecMode() == exec::ExecMode::kBatched) {
    return Query5Batched(store, start, min_date, limit);
  }
  return Query5Scalar(store, start, min_date, limit);
}

std::vector<Q5Result> Query5Scalar(const GraphStore& store, PersonId start,
                                   TimestampMs min_date, int limit) {
  auto pin = store.ReadLock();
  std::vector<PersonId> circle = TwoHopCircleLocked(store, pin, start);
  std::unordered_set<PersonId> circle_set(circle.begin(), circle.end());

  // Forums joined by circle members after min_date.
  std::unordered_set<schema::ForumId> new_forums;
  for (PersonId pid : circle) {
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    for (const DatedEdge& membership : p->forums.view()) {
      if (membership.date > min_date) new_forums.insert(membership.id);
    }
  }
  // Rank by posts in the forum created by circle members.
  std::vector<Q5Result> results;
  results.reserve(new_forums.size());
  for (schema::ForumId fid : new_forums) {
    const store::ForumRecord* forum = store.FindForum(pin, fid);
    if (forum == nullptr) continue;
    uint32_t count = 0;
    for (MessageId mid : forum->posts.view()) {
      const MessageRecord* m = store.FindMessage(pin, mid);
      if (m != nullptr && circle_set.count(m->data.creator_id) > 0) ++count;
    }
    results.push_back({fid, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q5Result& a, const Q5Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.forum_id < b.forum_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q6 -----------------------------------------------------------------------

std::vector<Q6Result> Query6(const GraphStore& store, PersonId start,
                             schema::TagId tag, int limit) {
  auto pin = store.ReadLock();
  std::unordered_map<schema::TagId, uint32_t> co_counts;
  for (PersonId pid : TwoHopCircleLocked(store, pin, start)) {
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    for (const DatedEdge& e : p->messages.view()) {
      const MessageRecord* m = store.FindMessage(pin, e.id);
      if (m == nullptr || m->data.kind == MessageKind::kComment) continue;
      bool has_tag = false;
      for (schema::TagId t : m->data.tags) {
        if (t == tag) {
          has_tag = true;
          break;
        }
      }
      if (!has_tag) continue;
      for (schema::TagId t : m->data.tags) {
        if (t != tag) ++co_counts[t];
      }
    }
  }
  std::vector<Q6Result> results;
  results.reserve(co_counts.size());
  for (auto [t, c] : co_counts) results.push_back({t, c});
  std::sort(results.begin(), results.end(),
            [](const Q6Result& a, const Q6Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.tag < b.tag;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q7 -----------------------------------------------------------------------

std::vector<Q7Result> Query7(const GraphStore& store, PersonId start,
                             int limit) {
  auto pin = store.ReadLock();
  std::vector<Q7Result> likes;
  const PersonRecord* p = store.FindPerson(pin, start);
  if (p == nullptr) return likes;
  for (const DatedEdge& e : p->messages.view()) {
    const MessageRecord* m = store.FindMessage(pin, e.id);
    if (m == nullptr) continue;
    for (const DatedEdge& like : m->likes.view()) {
      Q7Result r;
      r.liker_id = like.id;
      r.message_id = e.id;
      r.like_date = like.date;
      r.latency_minutes =
          (like.date - m->data.creation_date) / util::kMillisPerMinute;
      r.is_outside_friendship = !store.AreFriends(pin, start, like.id);
      likes.push_back(r);
    }
  }
  std::sort(likes.begin(), likes.end(),
            [](const Q7Result& a, const Q7Result& b) {
              if (a.like_date != b.like_date) return a.like_date > b.like_date;
              return a.liker_id < b.liker_id;
            });
  if (static_cast<int>(likes.size()) > limit) likes.resize(limit);
  return likes;
}

// ---- Q8 -----------------------------------------------------------------------

std::vector<Q8Result> Query8(const GraphStore& store, PersonId start,
                             int limit) {
  auto pin = store.ReadLock();
  std::vector<Q8Result> replies;
  const PersonRecord* p = store.FindPerson(pin, start);
  if (p == nullptr) return replies;
  for (const DatedEdge& e : p->messages.view()) {
    const MessageRecord* m = store.FindMessage(pin, e.id);
    if (m == nullptr) continue;
    for (MessageId rid : m->replies.view()) {
      const MessageRecord* reply = store.FindMessage(pin, rid);
      if (reply == nullptr) continue;
      replies.push_back(
          {rid, reply->data.creator_id, reply->data.creation_date});
    }
  }
  std::sort(replies.begin(), replies.end(),
            [](const Q8Result& a, const Q8Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.comment_id < b.comment_id;
            });
  if (static_cast<int>(replies.size()) > limit) replies.resize(limit);
  return replies;
}

// ---- Q9 -----------------------------------------------------------------------

std::vector<Q9Result> Query9(const GraphStore& store, PersonId start,
                             TimestampMs max_date, int limit) {
  if (exec::DefaultExecMode() == exec::ExecMode::kBatched) {
    return Query9Batched(store, start, max_date, limit);
  }
  return Query9Scalar(store, start, max_date, limit);
}

std::vector<Q9Result> Query9Scalar(const GraphStore& store, PersonId start,
                                   TimestampMs max_date, int limit) {
  auto pin = store.ReadLock();
  std::vector<Q9Result> candidates;
  for (PersonId pid : TwoHopCircleLocked(store, pin, start)) {
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    auto messages = p->messages.view();
    size_t upper = UpperBoundByDate(messages, max_date - 1);
    size_t take = std::min<size_t>(upper, static_cast<size_t>(limit));
    for (size_t i = upper - take; i < upper; ++i) {
      candidates.push_back({messages[i].id, pid, messages[i].date});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Q9Result& a, const Q9Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (static_cast<int>(candidates.size()) > limit) candidates.resize(limit);
  return candidates;
}

// ---- Q10 ----------------------------------------------------------------------

std::vector<Q10Result> Query10(const GraphStore& store, PersonId start,
                               int horoscope_month, int limit) {
  auto pin = store.ReadLock();
  std::vector<Q10Result> results;
  const PersonRecord* root = store.FindPerson(pin, start);
  if (root == nullptr) return results;
  std::unordered_set<schema::TagId> interests(root->data.interests.begin(),
                                              root->data.interests.end());
  auto root_friends = root->friends.view();
  std::unordered_set<PersonId> direct;
  direct.insert(start);
  for (const FriendEdge& e : root_friends) direct.insert(e.other);

  std::unordered_set<PersonId> fof;
  for (const FriendEdge& e : root_friends) {
    const PersonRecord* f = store.FindPerson(pin, e.other);
    if (f == nullptr) continue;
    for (const FriendEdge& e2 : f->friends.view()) {
      if (direct.count(e2.other) == 0) fof.insert(e2.other);
    }
  }

  for (PersonId pid : fof) {
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    int month = 0, day = 0;
    MonthDayOf(p->data.birthday, &month, &day);
    int next_month = horoscope_month % 12 + 1;
    bool sign_match = (month == horoscope_month && day >= 21) ||
                      (month == next_month && day < 22);
    if (!sign_match) continue;
    int32_t common = 0, other = 0;
    for (const DatedEdge& e : p->messages.view()) {
      const MessageRecord* m = store.FindMessage(pin, e.id);
      if (m == nullptr || m->data.kind == MessageKind::kComment) continue;
      bool about_interest = false;
      for (schema::TagId t : m->data.tags) {
        if (interests.count(t) > 0) {
          about_interest = true;
          break;
        }
      }
      if (about_interest) {
        ++common;
      } else {
        ++other;
      }
    }
    results.push_back({pid, common - other});
  }
  std::sort(results.begin(), results.end(),
            [](const Q10Result& a, const Q10Result& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q11 ----------------------------------------------------------------------

std::vector<Q11Result> Query11(const GraphStore& store, PersonId start,
                               const std::vector<schema::PlaceId>&
                                   company_country,
                               schema::PlaceId country,
                               uint16_t max_work_year, int limit) {
  auto pin = store.ReadLock();
  std::vector<Q11Result> results;
  for (PersonId pid : TwoHopCircleLocked(store, pin, start)) {
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    schema::OrganizationId company = p->data.company_id;
    if (company == schema::kInvalidId32) continue;
    if (company >= company_country.size()) continue;
    if (company_country[company] != country) continue;
    if (p->data.work_year >= max_work_year) continue;
    results.push_back({pid, company, p->data.work_year});
  }
  std::sort(results.begin(), results.end(),
            [](const Q11Result& a, const Q11Result& b) {
              if (a.work_year != b.work_year) return a.work_year < b.work_year;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q12 ----------------------------------------------------------------------

std::vector<Q12Result> Query12(const GraphStore& store, PersonId start,
                               const std::vector<bool>& tag_in_class,
                               int limit) {
  auto pin = store.ReadLock();
  std::vector<Q12Result> results;
  for (PersonId fid : FriendIdsLocked(store, pin, start)) {
    const PersonRecord* f = store.FindPerson(pin, fid);
    if (f == nullptr) continue;
    uint32_t count = 0;
    for (const DatedEdge& e : f->messages.view()) {
      const MessageRecord* m = store.FindMessage(pin, e.id);
      if (m == nullptr || m->data.kind != MessageKind::kComment) continue;
      const MessageRecord* parent = store.FindMessage(pin, m->data.reply_to_id);
      if (parent == nullptr ||
          parent->data.kind == MessageKind::kComment) {
        continue;  // Only replies to posts count.
      }
      for (schema::TagId t : parent->data.tags) {
        if (t < tag_in_class.size() && tag_in_class[t]) {
          ++count;
          break;
        }
      }
    }
    if (count > 0) results.push_back({fid, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q12Result& a, const Q12Result& b) {
              if (a.reply_count != b.reply_count) {
                return a.reply_count > b.reply_count;
              }
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q13 ----------------------------------------------------------------------

int Query13(const GraphStore& store, PersonId person1, PersonId person2) {
  auto pin = store.ReadLock();
  if (person1 == person2) return 0;
  if (store.FindPerson(pin, person1) == nullptr ||
      store.FindPerson(pin, person2) == nullptr) {
    return -1;
  }
  // Bidirectional BFS.
  std::unordered_map<PersonId, int> dist_fwd{{person1, 0}};
  std::unordered_map<PersonId, int> dist_bwd{{person2, 0}};
  std::deque<PersonId> frontier_fwd{person1};
  std::deque<PersonId> frontier_bwd{person2};
  int depth_fwd = 0, depth_bwd = 0;

  auto expand = [&](std::deque<PersonId>& frontier,
                    std::unordered_map<PersonId, int>& mine,
                    const std::unordered_map<PersonId, int>& theirs,
                    int& depth) -> int {
    ++depth;
    std::deque<PersonId> next;
    int best = -1;
    while (!frontier.empty()) {
      PersonId pid = frontier.front();
      frontier.pop_front();
      const PersonRecord* p = store.FindPerson(pin, pid);
      if (p == nullptr) continue;
      for (const FriendEdge& e : p->friends.view()) {
        if (mine.count(e.other) > 0) continue;
        mine[e.other] = depth;
        auto hit = theirs.find(e.other);
        if (hit != theirs.end()) {
          int total = depth + hit->second;
          if (best < 0 || total < best) best = total;
        }
        next.push_back(e.other);
      }
    }
    frontier = std::move(next);
    return best;
  };

  while (!frontier_fwd.empty() || !frontier_bwd.empty()) {
    bool forward = frontier_fwd.size() <= frontier_bwd.size()
                       ? !frontier_fwd.empty()
                       : frontier_bwd.empty();
    int found = forward
                    ? expand(frontier_fwd, dist_fwd, dist_bwd, depth_fwd)
                    : expand(frontier_bwd, dist_bwd, dist_fwd, depth_bwd);
    if (found >= 0) return found;
  }
  return -1;
}

// ---- Q14 ----------------------------------------------------------------------

namespace {

/// Interaction weight between two persons: each comment by one replying to
/// a post of the other adds 1.0, to a comment of the other adds 0.5.
double PairWeight(const GraphStore& store, const store::ShardSnapshot& pin,
                  PersonId a, PersonId b) {
  double weight = 0.0;
  for (PersonId from : {a, b}) {
    PersonId to = from == a ? b : a;
    const PersonRecord* p = store.FindPerson(pin, from);
    if (p == nullptr) continue;
    for (const DatedEdge& e : p->messages.view()) {
      const MessageRecord* m = store.FindMessage(pin, e.id);
      if (m == nullptr || m->data.kind != MessageKind::kComment) continue;
      const MessageRecord* parent = store.FindMessage(pin, m->data.reply_to_id);
      if (parent == nullptr || parent->data.creator_id != to) continue;
      weight += parent->data.kind == MessageKind::kComment ? 0.5 : 1.0;
    }
  }
  return weight;
}

}  // namespace

std::vector<Q14Result> Query14(const GraphStore& store, PersonId person1,
                               PersonId person2) {
  if (exec::DefaultExecMode() == exec::ExecMode::kBatched) {
    return Query14Batched(store, person1, person2);
  }
  return Query14Scalar(store, person1, person2);
}

std::vector<Q14Result> Query14Scalar(const GraphStore& store,
                                     PersonId person1, PersonId person2) {
  auto pin = store.ReadLock();
  std::vector<Q14Result> results;
  if (store.FindPerson(pin, person1) == nullptr ||
      store.FindPerson(pin, person2) == nullptr) {
    return results;
  }
  if (person1 == person2) {
    results.push_back({{person1}, 0.0});
    return results;
  }
  // BFS from person1 building the shortest-path parent DAG.
  std::unordered_map<PersonId, int> dist{{person1, 0}};
  std::unordered_map<PersonId, std::vector<PersonId>> parents;
  std::deque<PersonId> queue{person1};
  int target_dist = -1;
  while (!queue.empty()) {
    PersonId pid = queue.front();
    queue.pop_front();
    int d = dist[pid];
    if (target_dist >= 0 && d >= target_dist) break;
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    for (const FriendEdge& e : p->friends.view()) {
      auto it = dist.find(e.other);
      if (it == dist.end()) {
        dist[e.other] = d + 1;
        parents[e.other].push_back(pid);
        queue.push_back(e.other);
        if (e.other == person2) target_dist = d + 1;
      } else if (it->second == d + 1) {
        parents[e.other].push_back(pid);
      }
    }
  }
  if (target_dist < 0) return results;

  // Enumerate all shortest paths backwards from person2 (bounded).
  constexpr size_t kMaxPaths = 1000;
  std::vector<std::vector<PersonId>> paths;
  std::vector<PersonId> current{person2};
  // Iterative DFS over the parent DAG.
  struct Frame {
    PersonId node;
    size_t next_parent;
  };
  std::vector<Frame> stack{{person2, 0}};
  while (!stack.empty() && paths.size() < kMaxPaths) {
    Frame& frame = stack.back();
    if (frame.node == person1) {
      std::vector<PersonId> path;
      path.reserve(stack.size());
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        path.push_back(it->node);
      }
      paths.push_back(std::move(path));
      stack.pop_back();
      continue;
    }
    std::vector<PersonId>& ps = parents[frame.node];
    std::sort(ps.begin(), ps.end());
    if (frame.next_parent >= ps.size()) {
      stack.pop_back();
      continue;
    }
    PersonId parent = ps[frame.next_parent++];
    stack.push_back({parent, 0});
  }

  results.reserve(paths.size());
  for (std::vector<PersonId>& path : paths) {
    Q14Result r;
    r.weight = 0.0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      r.weight += PairWeight(store, pin, path[i], path[i + 1]);
    }
    r.path = std::move(path);
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const Q14Result& a, const Q14Result& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.path < b.path;
            });
  return results;
}

}  // namespace snb::queries
