// Unit tests for tools/snb_invariants: the TOML-subset parser, the
// objdump disassembly/symbol-table parsers, glob and clone-suffix
// handling, and the rule engine on synthetic call graphs. The end-to-end
// behaviour (real binaries, real objdump) is covered by the fixture
// tests in tests/invariants/.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "snb_invariants/callgraph.h"
#include "snb_invariants/check.h"
#include "snb_invariants/minitoml.h"

namespace snb::inv {
namespace {

// ---- MiniToml --------------------------------------------------------------

TEST(MiniToml, ScalarsTablesAndComments) {
  toml::Value doc;
  std::string error;
  ASSERT_TRUE(toml::Parse("# header comment\n"
                          "schema = \"v1\"  # trailing comment\n"
                          "count = -3\n"
                          "flag = true\n"
                          "[nested.table]\n"
                          "key = \"x # not a comment\"\n",
                          &doc, &error))
      << error;
  EXPECT_EQ(doc.Find("schema")->str, "v1");
  EXPECT_EQ(doc.Find("count")->integer, -3);
  EXPECT_TRUE(doc.Find("flag")->boolean);
  const toml::Value* nested = doc.Find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->Find("table")->Find("key")->str, "x # not a comment");
}

TEST(MiniToml, MultiLineArraysAndEscapes) {
  toml::Value doc;
  std::string error;
  ASSERT_TRUE(toml::Parse("list = [\n"
                          "  \"a\\\"b\",  # escaped quote\n"
                          "  \"tab\\t\",\n"
                          "]\n",
                          &doc, &error))
      << error;
  const toml::Value* list = doc.Find("list");
  ASSERT_EQ(list->array.size(), 2u);
  EXPECT_EQ(list->array[0].str, "a\"b");
  EXPECT_EQ(list->array[1].str, "tab\t");
}

TEST(MiniToml, ArrayOfTablesWithNestedChildren) {
  toml::Value doc;
  std::string error;
  ASSERT_TRUE(toml::Parse("[[rule]]\n"
                          "name = \"first\"\n"
                          "[[rule.suppress]]\n"
                          "edge = \"a -> b\"\n"
                          "[[rule]]\n"
                          "name = \"second\"\n",
                          &doc, &error))
      << error;
  const toml::Value* rules = doc.Find("rule");
  ASSERT_EQ(rules->kind, toml::Value::Kind::kTableArray);
  ASSERT_EQ(rules->array.size(), 2u);
  EXPECT_EQ(rules->array[0].Find("name")->str, "first");
  const toml::Value* suppress = rules->array[0].Find("suppress");
  ASSERT_NE(suppress, nullptr);
  ASSERT_EQ(suppress->array.size(), 1u);
  EXPECT_EQ(suppress->array[0].Find("edge")->str, "a -> b");
  EXPECT_EQ(rules->array[1].Find("name")->str, "second");
  EXPECT_EQ(rules->array[1].Find("suppress"), nullptr);
}

TEST(MiniToml, ErrorsCarryLineNumbers) {
  toml::Value doc;
  std::string error;
  EXPECT_FALSE(toml::Parse("a = \"ok\"\na = \"dup\"\n", &doc, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;

  EXPECT_FALSE(toml::Parse("s = \"unterminated\n", &doc, &error));
  EXPECT_FALSE(toml::Parse("s = \"bad \\q escape\"\n", &doc, &error));
  EXPECT_FALSE(toml::Parse("just a line\n", &doc, &error));
}

// ---- Globs and symbol names ------------------------------------------------

TEST(GlobMatch, Basics) {
  EXPECT_TRUE(GlobMatch("malloc", "malloc"));
  EXPECT_FALSE(GlobMatch("malloc", "xmalloc"));
  EXPECT_TRUE(GlobMatch("pthread_mutex_*", "pthread_mutex_lock"));
  EXPECT_TRUE(GlobMatch("operator new*", "operator new(unsigned long)"));
  EXPECT_TRUE(GlobMatch("snb::util::Mutex::*", "snb::util::Mutex::Lock()"));
  EXPECT_FALSE(GlobMatch("snb::util::Mutex::*", "snb::util::MutexLock()"));
  EXPECT_TRUE(GlobMatch("*::S()", "snb::obs::prof::(anonymous namespace)::S()"));
  EXPECT_TRUE(GlobMatch("f?", "fn"));
  EXPECT_FALSE(GlobMatch("f?", "f"));
  EXPECT_TRUE(GlobMatch("*", "anything at all"));
  EXPECT_TRUE(GlobMatch("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(GlobMatch("a*b*c", "a-x-c"));
}

TEST(StripCloneSuffix, GccCloneForms) {
  std::string sfx;
  EXPECT_EQ(StripCloneSuffix("_ZN1fEv.cold", &sfx), "_ZN1fEv");
  EXPECT_EQ(sfx, ".cold");
  EXPECT_EQ(StripCloneSuffix("_ZN1fEv.part.7", &sfx), "_ZN1fEv");
  EXPECT_EQ(sfx, ".part.7");
  EXPECT_EQ(StripCloneSuffix("_ZN1fEv.constprop.0.isra.3", &sfx),
            "_ZN1fEv");
  EXPECT_EQ(sfx, ".constprop.0.isra.3");
  // Not clone suffixes: left alone.
  EXPECT_EQ(StripCloneSuffix("_ZN1fEv", &sfx), "_ZN1fEv");
  EXPECT_EQ(sfx, "");
  EXPECT_EQ(StripCloneSuffix("vtable.for.thing", &sfx), "vtable.for.thing");
}

TEST(Demangle, PassthroughAndCxx) {
  EXPECT_EQ(Demangle("malloc"), "malloc");  // C symbols pass through.
  EXPECT_EQ(Demangle("_ZN3snb1fEv"), "snb::f()");
  EXPECT_EQ(Demangle("_Znwm"), "operator new(unsigned long)");
}

// ---- Disassembly parsing ---------------------------------------------------

// Hand-written in objdump -d --no-show-raw-insn format. Covers: direct
// calls, a forward tail jump (target function appears later in the
// text), a conditional tail jump, an indirect call, an indirect
// register jump, a jump-table jump (indexed memory operand), a lock
// prefix, a PLT stub, a mid-function call target, and two local
// functions sharing one name (anonymous-namespace aliasing).
const char kDisasm[] =
    "\n"
    "binary:     file format elf64-x86-64\n"
    "\n"
    "Disassembly of section .text:\n"
    "\n"
    "0000000000001000 <_ZN4demo4rootEv>:\n"
    "    1000:\tpush   %rbp\n"
    "    1001:\tcall   1100 <_ZN4demo6helperEv>\n"
    "    1006:\tcall   1108 <_ZN4demo6helperEv+0x8>\n"
    "    100b:\tjne    1200 <_ZN4demo4tailEv>\n"
    "    1010:\tcall   *%rax\n"
    "    1012:\tjmp    *0x2000(,%rdi,8)\n"
    "    1019:\tlock   addl $0x1,(%rdi)\n"
    "    101d:\tjmp    1030 <_ZN4demo4rootEv+0x30>\n"
    "    1030:\tret\n"
    "\n"
    "0000000000001100 <_ZN4demo6helperEv>:\n"
    "    1100:\tcall   1300 <malloc@plt>\n"
    "    1105:\tret\n"
    "    1108:\tret\n"
    "\n"
    "0000000000001200 <_ZN4demo4tailEv>:\n"
    "    1200:\tjmp    *%rdx\n"
    "\n"
    "0000000000001300 <malloc@plt>:\n"
    "    1300:\tjmp    *0x2fca(%rip)\n"
    "\n"
    "0000000000001400 <_ZN12_GLOBAL__N_15localEv>:\n"
    "    1400:\tret\n"
    "\n"
    "0000000000001500 <_ZN12_GLOBAL__N_15localEv>:\n"
    "    1500:\tcall   1400 <_ZN12_GLOBAL__N_15localEv>\n"
    "    1505:\tret\n";

TEST(CallGraphParse, NodesEdgesAndNames) {
  CallGraph g = CallGraph::FromDisassembly(kDisasm);
  ASSERT_EQ(g.funcs().size(), 6u);

  const FuncNode& root = g.funcs().at(0x1000);
  EXPECT_EQ(root.match_name, "demo::root()");
  // Edges: helper (direct), helper (mid-function target, deduped),
  // tail (conditional tail jump). The intra-function jmp to 0x1030 is
  // not an edge; the jump-table jmp is counted, not flagged.
  ASSERT_EQ(root.callees.size(), 2u);
  EXPECT_EQ(root.callees[0], 0x1100u);
  EXPECT_EQ(root.callees[1], 0x1200u);
  ASSERT_EQ(root.indirect.size(), 1u);
  EXPECT_EQ(root.indirect[0].addr, 0x1010u);
  EXPECT_EQ(root.jump_table_jmps, 1u);

  const FuncNode& helper = g.funcs().at(0x1100);
  ASSERT_EQ(helper.callees.size(), 1u);
  EXPECT_EQ(helper.callees[0], 0x1300u);

  // The indirect tail transfer in tail() is flagged like a call.
  EXPECT_EQ(g.funcs().at(0x1200).indirect.size(), 1u);

  // PLT stub: leaf, demangle-matched name, GOT jump not flagged.
  const FuncNode& plt = g.funcs().at(0x1300);
  EXPECT_TRUE(plt.plt);
  EXPECT_EQ(plt.match_name, "malloc");
  EXPECT_EQ(plt.display, "malloc@plt");
  EXPECT_TRUE(plt.indirect.empty());
  EXPECT_TRUE(plt.callees.empty());
}

TEST(CallGraphParse, LocalSymbolAliasing) {
  CallGraph g = CallGraph::FromDisassembly(kDisasm);
  // Two distinct functions share the anonymous-namespace mangled name:
  // both must exist (keyed by address) and both resolve by match name.
  std::vector<const FuncNode*> locals =
      g.ByMatchName("(anonymous namespace)::local()");
  ASSERT_EQ(locals.size(), 2u);
  EXPECT_NE(locals[0]->addr, locals[1]->addr);
  const FuncNode& caller = g.funcs().at(0x1500);
  ASSERT_EQ(caller.callees.size(), 1u);
  EXPECT_EQ(caller.callees[0], 0x1400u);
}

TEST(CallGraphParse, ContainingResolvesMidFunctionAddresses) {
  CallGraph g = CallGraph::FromDisassembly(kDisasm);
  EXPECT_EQ(g.Containing(0x1108)->addr, 0x1100u);
  EXPECT_EQ(g.Containing(0x0fff), nullptr);
}

// ---- Symbol table and root tags --------------------------------------------

const char kSymtab[] =
    "binary:     file format elf64-x86-64\n"
    "\n"
    "SYMBOL TABLE:\n"
    "0000000000001000 l     F .text\t0000000000000042 _ZN4demo4rootEv\n"
    "0000000000004000 l     O snb_invariants.pinned_read.226\t"
    "0000000000000001 _ZZN4demo4rootEvE22snb_invariant_root_226\n"
    "0000000000004001 u     O snb_invariants.lockfree.90\t"
    "0000000000000001 .hidden _ZZN4demo6helperEvE21snb_invariant_root_90\n"
    "0000000000004002 g     O .rodata\t0000000000000008 not_a_tag\n";

TEST(SymbolTable, ParseAndExtractTags) {
  std::vector<SymbolEntry> symbols = ParseSymbolTable(kSymtab);
  ASSERT_EQ(symbols.size(), 4u);
  EXPECT_EQ(symbols[0].section, ".text");
  EXPECT_EQ(symbols[0].size, 0x42u);

  std::vector<std::string> errors;
  std::vector<RootTag> tags = ExtractRootTags(symbols, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0].domain, "pinned_read");
  EXPECT_EQ(tags[0].function, "demo::root()");
  EXPECT_EQ(tags[1].domain, "lockfree");
  EXPECT_EQ(tags[1].function, "demo::helper()");
}

TEST(SymbolTable, MalformedTagIsAnError) {
  // A tag symbol with no recoverable enclosing function (C linkage).
  std::vector<SymbolEntry> symbols = {
      {0x4000, "snb_invariants.pinned_read.9", 1, "plain_c_tag"}};
  std::vector<std::string> errors;
  std::vector<RootTag> tags = ExtractRootTags(symbols, &errors);
  EXPECT_TRUE(tags.empty());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("plain_c_tag"), std::string::npos);
}

// ---- Manifest interpretation -----------------------------------------------

TEST(Manifest, ParsesRulesAndSuppressions) {
  Manifest m;
  std::string error;
  ASSERT_TRUE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\n"
      "name = \"lockfree\"\n"
      "mode = \"denylist\"\n"
      "deny = [\"pthread_mutex_*\"]\n"
      "[[rule.suppress]]\n"
      "edge = \"a::b() -> c::d()\"\n"
      "justification = \"d is init-only, runs before threads\"\n",
      &m, &error))
      << error;
  ASSERT_EQ(m.rules.size(), 1u);
  EXPECT_EQ(m.rules[0].mode, RuleSpec::Mode::kDenylist);
  ASSERT_EQ(m.rules[0].suppress.size(), 1u);
  EXPECT_EQ(m.rules[0].suppress[0].caller, "a::b()");
  EXPECT_EQ(m.rules[0].suppress[0].callee, "c::d()");
}

TEST(Manifest, RejectsBadInput) {
  Manifest m;
  std::string error;
  // Wrong schema.
  EXPECT_FALSE(ParseManifest("schema = \"v0\"\n[[rule]]\nname = \"x\"\n",
                             &m, &error));
  // Suppression without justification.
  EXPECT_FALSE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\nname = \"r\"\nmode = \"denylist\"\ndeny = [\"x\"]\n"
      "[[rule.suppress]]\nedge = \"a -> b\"\n",
      &m, &error));
  EXPECT_NE(error.find("justification"), std::string::npos) << error;
  // Unknown key (typo'd "allowlist" list name).
  EXPECT_FALSE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\nname = \"r\"\nmode = \"allowlist\"\nallows = [\"x\"]\n",
      &m, &error));
  EXPECT_NE(error.find("unknown rule key"), std::string::npos) << error;
  // Allowlist mode with no allow patterns.
  EXPECT_FALSE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\nname = \"r\"\nmode = \"allowlist\"\n",
      &m, &error));
  // Duplicate rule name.
  EXPECT_FALSE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\nname = \"r\"\nmode = \"denylist\"\ndeny = [\"x\"]\n"
      "[[rule]]\nname = \"r\"\nmode = \"denylist\"\ndeny = [\"y\"]\n",
      &m, &error));
}

// ---- Rule engine on synthetic graphs ---------------------------------------

// root -> mid -> pthread_mutex_lock@plt, root -> leaf.
const char kEngineDisasm[] =
    "0000000000001000 <_ZN4demo4rootEv>:\n"
    "    1000:\tcall   1100 <_ZN4demo3midEv>\n"
    "    1005:\tcall   1200 <_ZN4demo4leafEv>\n"
    "    100a:\tret\n"
    "0000000000001100 <_ZN4demo3midEv>:\n"
    "    1100:\tcall   1300 <pthread_mutex_lock@plt>\n"
    "    1105:\tret\n"
    "0000000000001200 <_ZN4demo4leafEv>:\n"
    "    1200:\tret\n"
    "0000000000001300 <pthread_mutex_lock@plt>:\n"
    "    1300:\tjmp    *0x2fca(%rip)\n";

Manifest DenyMutexManifest() {
  Manifest m;
  std::string error;
  EXPECT_TRUE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\n"
      "name = \"lockfree\"\n"
      "mode = \"denylist\"\n"
      "deny = [\"pthread_mutex_*\"]\n",
      &m, &error))
      << error;
  return m;
}

std::vector<RootTag> TagRoot(const std::string& domain) {
  return {{domain, "demo::root()", "sym"}};
}

TEST(CheckBinary, DenylistHitReportsShortestPath) {
  CallGraph g = CallGraph::FromDisassembly(kEngineDisasm);
  CheckResult r =
      CheckBinary(g, TagRoot("lockfree"), DenyMutexManifest(), {});
  ASSERT_EQ(r.violations.size(), 1u);
  const Violation& v = r.violations[0];
  EXPECT_EQ(v.kind, Violation::Kind::kForbiddenSymbol);
  ASSERT_EQ(v.path.size(), 3u);
  EXPECT_EQ(v.path[0], "demo::root()");
  EXPECT_EQ(v.path[1], "demo::mid()");
  EXPECT_EQ(v.path[2], "pthread_mutex_lock@plt");
  std::string rendered = FormatViolation(v);
  EXPECT_NE(rendered.find("FAIL [lockfree]"), std::string::npos);
  EXPECT_NE(rendered.find("-> pthread_mutex_lock@plt"), std::string::npos);
}

TEST(CheckBinary, SuppressionCutsTheEdgeAndUnusedOnesWarn) {
  CallGraph g = CallGraph::FromDisassembly(kEngineDisasm);
  Manifest m;
  std::string error;
  ASSERT_TRUE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\n"
      "name = \"lockfree\"\n"
      "mode = \"denylist\"\n"
      "deny = [\"pthread_mutex_*\"]\n"
      "[[rule.suppress]]\n"
      "edge = \"demo::mid() -> pthread_mutex_lock\"\n"
      "justification = \"init-only path, runs single-threaded\"\n"
      "[[rule.suppress]]\n"
      "edge = \"nobody() -> nothing()\"\n"
      "justification = \"stale suppression that matches no edge\"\n",
      &m, &error))
      << error;
  CheckResult r = CheckBinary(g, TagRoot("lockfree"), m, {});
  EXPECT_TRUE(r.violations.empty());
  // Exactly one warning: the unused suppression (the used one is fine).
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_NE(r.warnings[0].find("nobody() -> nothing()"), std::string::npos);
}

TEST(CheckBinary, AllowlistFlagsFirstOffenderOnly) {
  CallGraph g = CallGraph::FromDisassembly(kEngineDisasm);
  Manifest m;
  std::string error;
  ASSERT_TRUE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\n"
      "name = \"signal_safe\"\n"
      "mode = \"allowlist\"\n"
      "allow = [\"demo::leaf()\"]\n",
      &m, &error))
      << error;
  CheckResult r = CheckBinary(g, TagRoot("signal_safe"), m, {});
  // The root itself is exempt; mid() is outside the allowlist and the
  // traversal stops there (pthread_mutex_lock is not reported again).
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::kOutsideAllowlist);
  EXPECT_EQ(r.violations[0].path.back(), "demo::mid()");
}

TEST(CheckBinary, IndirectCallsAreConservativeViolations) {
  const char disasm[] =
      "0000000000001000 <_ZN4demo4rootEv>:\n"
      "    1000:\tcall   *%rax\n"
      "    1002:\tret\n";
  CallGraph g = CallGraph::FromDisassembly(disasm);
  CheckResult r =
      CheckBinary(g, TagRoot("lockfree"), DenyMutexManifest(), {});
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::kIndirectCall);

  // indirect_allow vouches for the function and clears the report.
  Manifest m;
  std::string error;
  ASSERT_TRUE(ParseManifest(
      "schema = \"snb-invariants-v1\"\n"
      "[[rule]]\n"
      "name = \"lockfree\"\n"
      "mode = \"denylist\"\n"
      "deny = [\"pthread_mutex_*\"]\n"
      "indirect_allow = [\"demo::root()\"]\n",
      &m, &error))
      << error;
  r = CheckBinary(g, TagRoot("lockfree"), m, {});
  EXPECT_TRUE(r.violations.empty());
}

TEST(CheckBinary, MissingRootIsHardErrorUnlessDowngraded) {
  CallGraph g = CallGraph::FromDisassembly(kEngineDisasm);
  std::vector<RootTag> tags = {{"lockfree", "demo::inlined_away()", "sym"}};
  CheckResult r = CheckBinary(g, tags, DenyMutexManifest(), {});
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, Violation::Kind::kMissingRoot);

  CheckOptions opts;
  opts.allow_inlined_roots = true;
  r = CheckBinary(g, tags, DenyMutexManifest(), opts);
  EXPECT_TRUE(r.violations.empty());
  // Two warnings: the downgraded missing root, and — since that was the
  // rule's only root — the rule being skipped.
  ASSERT_EQ(r.warnings.size(), 2u);
  EXPECT_NE(r.warnings[0].find("demo::inlined_away()"), std::string::npos);
  EXPECT_NE(r.warnings[1].find("skipped"), std::string::npos);
}

TEST(CheckBinary, RuleWithNoRootsIsSkippedWithWarning) {
  CallGraph g = CallGraph::FromDisassembly(kEngineDisasm);
  CheckResult r = CheckBinary(g, {}, DenyMutexManifest(), {});
  EXPECT_TRUE(r.violations.empty());
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_NE(r.warnings[0].find("skipped"), std::string::npos);
}

TEST(CheckBinary, TagForUnknownDomainWarns) {
  CallGraph g = CallGraph::FromDisassembly(kEngineDisasm);
  CheckResult r =
      CheckBinary(g, TagRoot("no_such_rule"), DenyMutexManifest(), {});
  bool found = false;
  for (const std::string& w : r.warnings) {
    found = found || w.find("no_such_rule") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace snb::inv
