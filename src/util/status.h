// Status / Result error-handling primitives (RocksDB-style, no exceptions).
#ifndef SNB_UTIL_STATUS_H_
#define SNB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace snb::util {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kAlreadyExists,
  kAborted,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail. Cheap to copy when OK.
///
/// Library code in this project does not throw; fallible functions return
/// `Status` (or `Result<T>`) and callers must check `ok()` before relying on
/// side effects.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  /// Implicit from value: makes `return value;` work in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when not ok().
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace snb::util

/// Propagates a non-OK status from an expression to the caller.
#define SNB_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::snb::util::Status _snb_status = (expr);       \
    if (!_snb_status.ok()) return _snb_status;      \
  } while (false)

#endif  // SNB_UTIL_STATUS_H_
