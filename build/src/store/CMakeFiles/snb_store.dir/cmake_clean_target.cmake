file(REMOVE_RECURSE
  "libsnb_store.a"
)
