#include "snb_invariants/check.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <set>

namespace snb::inv {
namespace {

bool ReadStringArray(const toml::Value& table, const std::string& key,
                     std::vector<std::string>* out, std::string* error) {
  const toml::Value* v = table.Find(key);
  if (v == nullptr) return true;
  if (v->kind != toml::Value::Kind::kArray) {
    *error = "'" + key + "' must be an array of strings";
    return false;
  }
  for (const toml::Value& e : v->array) {
    if (e.kind != toml::Value::Kind::kString) {
      *error = "'" + key + "' must contain only strings";
      return false;
    }
    out->push_back(e.str);
  }
  return true;
}

bool InterpretRule(const toml::Value& table, RuleSpec* rule,
                   std::string* error) {
  static const std::set<std::string> kKnown = {
      "name",     "mode",           "roots",   "allow",
      "deny",     "indirect",       "indirect_allow", "suppress"};
  for (const std::string& key : table.order) {
    if (kKnown.count(key) == 0) {
      *error = "unknown rule key '" + key + "'";
      return false;
    }
  }

  const toml::Value* name = table.Find("name");
  if (name == nullptr || name->kind != toml::Value::Kind::kString ||
      name->str.empty()) {
    *error = "every [[rule]] needs a non-empty string 'name'";
    return false;
  }
  rule->name = name->str;

  const toml::Value* mode = table.Find("mode");
  if (mode == nullptr || mode->kind != toml::Value::Kind::kString) {
    *error = "rule '" + rule->name + "': missing 'mode'";
    return false;
  }
  if (mode->str == "allowlist") {
    rule->mode = RuleSpec::Mode::kAllowlist;
  } else if (mode->str == "denylist") {
    rule->mode = RuleSpec::Mode::kDenylist;
  } else {
    *error = "rule '" + rule->name + "': mode must be 'allowlist' or "
             "'denylist', got '" + mode->str + "'";
    return false;
  }

  if (!ReadStringArray(table, "roots", &rule->roots, error) ||
      !ReadStringArray(table, "allow", &rule->allow, error) ||
      !ReadStringArray(table, "deny", &rule->deny, error) ||
      !ReadStringArray(table, "indirect_allow", &rule->indirect_allow,
                       error)) {
    *error = "rule '" + rule->name + "': " + *error;
    return false;
  }

  if (rule->mode == RuleSpec::Mode::kAllowlist && rule->allow.empty()) {
    *error = "rule '" + rule->name + "': allowlist mode needs a non-empty "
             "'allow' list";
    return false;
  }
  if (rule->mode == RuleSpec::Mode::kDenylist && rule->deny.empty()) {
    *error = "rule '" + rule->name + "': denylist mode needs a non-empty "
             "'deny' list";
    return false;
  }

  const toml::Value* indirect = table.Find("indirect");
  if (indirect != nullptr) {
    if (indirect->kind != toml::Value::Kind::kString ||
        (indirect->str != "forbid" && indirect->str != "allow")) {
      *error = "rule '" + rule->name + "': indirect must be 'forbid' or "
               "'allow'";
      return false;
    }
    rule->indirect_forbid = indirect->str == "forbid";
  }

  const toml::Value* suppress = table.Find("suppress");
  if (suppress != nullptr) {
    if (suppress->kind != toml::Value::Kind::kTableArray) {
      *error = "rule '" + rule->name + "': suppress must be declared as "
               "[[rule.suppress]] tables";
      return false;
    }
    for (const toml::Value& entry : suppress->array) {
      const toml::Value* edge = entry.Find("edge");
      const toml::Value* why = entry.Find("justification");
      if (edge == nullptr || edge->kind != toml::Value::Kind::kString) {
        *error = "rule '" + rule->name + "': every suppression needs an "
                 "'edge' string \"caller -> callee\"";
        return false;
      }
      size_t arrow = edge->str.find(" -> ");
      if (arrow == std::string::npos || arrow == 0 ||
          arrow + 4 >= edge->str.size()) {
        *error = "rule '" + rule->name + "': suppression edge '" +
                 edge->str + "' is not of the form \"caller -> callee\"";
        return false;
      }
      // Suppressions silence the checker; an empty or glib justification
      // is how silent rot starts, so the string is mandatory and must
      // carry actual words.
      if (why == nullptr || why->kind != toml::Value::Kind::kString ||
          why->str.size() < 10) {
        *error = "rule '" + rule->name + "': suppression for edge '" +
                 edge->str + "' needs a 'justification' string (>= 10 "
                 "chars) explaining why the edge is safe";
        return false;
      }
      SuppressSpec spec;
      spec.caller = edge->str.substr(0, arrow);
      spec.callee = edge->str.substr(arrow + 4);
      spec.justification = why->str;
      rule->suppress.push_back(std::move(spec));
    }
  }
  return true;
}

/// True when `node` matches any glob in `patterns`, testing the demangled
/// match name, the rendered display name, and the raw symbol.
bool MatchesAny(const std::vector<std::string>& patterns,
                const FuncNode& node) {
  for (const std::string& pat : patterns) {
    if (GlobMatch(pat, node.match_name) || GlobMatch(pat, node.display) ||
        GlobMatch(pat, node.raw)) {
      return true;
    }
  }
  return false;
}

const std::string* FirstMatch(const std::vector<std::string>& patterns,
                              const FuncNode& node) {
  for (const std::string& pat : patterns) {
    if (GlobMatch(pat, node.match_name) || GlobMatch(pat, node.display) ||
        GlobMatch(pat, node.raw)) {
      return &pat;
    }
  }
  return nullptr;
}

}  // namespace

bool InterpretManifest(const toml::Value& doc, Manifest* out,
                       std::string* error) {
  *out = Manifest{};
  const toml::Value* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != toml::Value::Kind::kString ||
      schema->str != "snb-invariants-v1") {
    *error = "manifest must declare schema = \"snb-invariants-v1\"";
    return false;
  }
  out->schema = schema->str;

  const toml::Value* rules = doc.Find("rule");
  if (rules == nullptr || rules->kind != toml::Value::Kind::kTableArray ||
      rules->array.empty()) {
    *error = "manifest declares no [[rule]] entries";
    return false;
  }
  std::set<std::string> seen;
  for (const toml::Value& entry : rules->array) {
    RuleSpec rule;
    if (!InterpretRule(entry, &rule, error)) return false;
    if (!seen.insert(rule.name).second) {
      *error = "duplicate rule name '" + rule.name + "'";
      return false;
    }
    out->rules.push_back(std::move(rule));
  }
  return true;
}

bool ParseManifest(const std::string& text, Manifest* out,
                   std::string* error) {
  toml::Value doc;
  if (!toml::Parse(text, &doc, error)) return false;
  return InterpretManifest(doc, out, error);
}

const char* ViolationKindName(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kForbiddenSymbol:
      return "forbidden-symbol";
    case Violation::Kind::kOutsideAllowlist:
      return "outside-allowlist";
    case Violation::Kind::kIndirectCall:
      return "indirect-call";
    case Violation::Kind::kMissingRoot:
      return "missing-root";
  }
  return "unknown";
}

std::string FormatViolation(const Violation& v) {
  std::string out = "FAIL [" + v.rule + "] " + ViolationKindName(v.kind);
  if (v.kind == Violation::Kind::kMissingRoot) {
    out += ": " + v.detail + "\n";
    return out;
  }
  out += ": root '" + v.path.front() + "' reaches '" + v.path.back() +
         "' (" + v.detail + ")\n";
  for (size_t i = 0; i < v.path.size(); ++i) {
    out += i == 0 ? "      " : "   -> ";
    out += v.path[i];
    out += '\n';
  }
  return out;
}

CheckResult CheckBinary(const CallGraph& graph,
                        const std::vector<RootTag>& tags,
                        const Manifest& manifest,
                        const CheckOptions& options) {
  CheckResult result;

  // domain -> tagged function names (deduped; a tag may resolve to
  // several same-named copies or clones, all of which become roots).
  std::map<std::string, std::set<std::string>> tagged;
  for (const RootTag& tag : tags) {
    tagged[tag.domain].insert(tag.function);
  }
  std::set<std::string> rule_names;
  for (const RuleSpec& rule : manifest.rules) rule_names.insert(rule.name);
  for (const auto& [domain, fns] : tagged) {
    if (rule_names.count(domain) == 0) {
      result.warnings.push_back(
          "binary carries SNB_INVARIANT_ROOT tags for domain '" + domain +
          "' but the manifest declares no such rule");
    }
  }

  for (const RuleSpec& rule : manifest.rules) {
    std::vector<const FuncNode*> roots;
    std::set<uint64_t> root_addrs;
    auto add_root = [&](const FuncNode* node) {
      if (root_addrs.insert(node->addr).second) roots.push_back(node);
    };

    auto tags_it = tagged.find(rule.name);
    if (tags_it != tagged.end()) {
      for (const std::string& fn : tags_it->second) {
        std::vector<const FuncNode*> nodes = graph.ByMatchName(fn);
        if (nodes.empty()) {
          std::string what =
              "SNB_INVARIANT_ROOT(\"" + rule.name + "\") tags '" + fn +
              "' but the binary has no such function symbol — the root "
              "was inlined away or stripped, so its invariant cannot be "
              "checked; anchor it in probe_main.cc or mark it noinline";
          if (options.allow_inlined_roots) {
            result.warnings.push_back(what);
          } else {
            Violation v;
            v.rule = rule.name;
            v.kind = Violation::Kind::kMissingRoot;
            v.path = {fn};
            v.detail = what;
            result.violations.push_back(std::move(v));
          }
          continue;
        }
        for (const FuncNode* node : nodes) add_root(node);
      }
    }
    for (const std::string& glob : rule.roots) {
      bool matched = false;
      for (const auto& [addr, node] : graph.funcs()) {
        if (GlobMatch(glob, node.match_name) ||
            GlobMatch(glob, node.raw)) {
          add_root(&node);
          matched = true;
        }
      }
      if (!matched) {
        result.warnings.push_back("rule '" + rule.name + "': root glob '" +
                                  glob + "' matches no function");
      }
    }

    if (roots.empty()) {
      result.warnings.push_back("rule '" + rule.name +
                                "': no roots in this binary; skipped");
      continue;
    }

    std::vector<bool> suppress_used(rule.suppress.size(), false);
    std::set<std::string> reported;  // Dedup (kind, offender) per rule.
    size_t closure_size = 0;

    for (const FuncNode* root : roots) {
      std::map<uint64_t, uint64_t> parent;  // node -> predecessor.
      std::deque<uint64_t> queue;
      std::set<uint64_t> visited;
      queue.push_back(root->addr);
      visited.insert(root->addr);

      auto path_to = [&](uint64_t addr) {
        std::vector<std::string> path;
        for (uint64_t cur = addr;;) {
          path.push_back(graph.funcs().at(cur).display);
          auto it = parent.find(cur);
          if (it == parent.end()) break;
          cur = it->second;
        }
        std::reverse(path.begin(), path.end());
        return path;
      };
      auto report = [&](const FuncNode& node, Violation::Kind kind,
                        std::string detail) {
        std::string key = std::string(ViolationKindName(kind)) + "|" +
                          node.display;
        if (!reported.insert(key).second) return;
        Violation v;
        v.rule = rule.name;
        v.kind = kind;
        v.path = path_to(node.addr);
        v.detail = std::move(detail);
        result.violations.push_back(std::move(v));
      };

      while (!queue.empty()) {
        uint64_t addr = queue.front();
        queue.pop_front();
        const FuncNode& node = graph.funcs().at(addr);
        bool is_root = root_addrs.count(addr) != 0;
        bool expand = true;

        if (rule.mode == RuleSpec::Mode::kDenylist) {
          // Roots are tested too: tagging a function that IS forbidden
          // should fail loudly, not vacuously pass.
          if (const std::string* pat = FirstMatch(rule.deny, node)) {
            report(node, Violation::Kind::kForbiddenSymbol,
                   "matches deny pattern '" + *pat + "'");
            expand = false;
          }
        } else if (!is_root && !MatchesAny(rule.allow, node)) {
          report(node, Violation::Kind::kOutsideAllowlist,
                 "not matched by any allow pattern");
          expand = false;
        }

        if (expand && rule.indirect_forbid && !node.indirect.empty() &&
            !MatchesAny(rule.indirect_allow, node)) {
          const IndirectSite& site = node.indirect.front();
          char buf[32];
          std::snprintf(buf, sizeof(buf), "0x%llx",
                        static_cast<unsigned long long>(site.addr));
          report(node, Violation::Kind::kIndirectCall,
                 "indirect transfer '" + site.text + "' at " + buf +
                     (node.indirect.size() > 1
                          ? " (+" +
                                std::to_string(node.indirect.size() - 1) +
                                " more)"
                          : ""));
          // The node's direct callees are still traversed: the indirect
          // site is reported, the rest of the closure stays checked.
        }

        if (!expand) continue;
        for (uint64_t callee_addr : node.callees) {
          const FuncNode& callee = graph.funcs().at(callee_addr);
          bool suppressed = false;
          for (size_t i = 0; i < rule.suppress.size(); ++i) {
            const SuppressSpec& s = rule.suppress[i];
            if ((GlobMatch(s.caller, node.match_name) ||
                 GlobMatch(s.caller, node.display)) &&
                (GlobMatch(s.callee, callee.match_name) ||
                 GlobMatch(s.callee, callee.display))) {
              suppress_used[i] = true;
              suppressed = true;
              break;
            }
          }
          if (suppressed || visited.count(callee_addr) != 0) continue;
          visited.insert(callee_addr);
          parent[callee_addr] = addr;
          queue.push_back(callee_addr);
        }
      }
      closure_size = std::max(closure_size, visited.size());
    }

    for (size_t i = 0; i < rule.suppress.size(); ++i) {
      if (!suppress_used[i]) {
        result.warnings.push_back(
            "rule '" + rule.name + "': suppression '" +
            rule.suppress[i].caller + " -> " + rule.suppress[i].callee +
            "' matched no edge — delete it or fix the globs");
      }
    }
    result.notes.push_back(
        "rule '" + rule.name + "': " + std::to_string(roots.size()) +
        " root(s), closure of " + std::to_string(closure_size) +
        " function(s)");
  }
  return result;
}

}  // namespace snb::inv
