// Additional property checks spanning datagen outputs and examples-facing
// surfaces: dictionary accessors, config helpers, and trend events.
#include <gtest/gtest.h>

#include "datagen/activity_generator.h"
#include "datagen/config.h"
#include "schema/dictionaries.h"
#include "util/rng.h"

namespace snb::datagen {
namespace {

TEST(TrendEventsTest, DeterministicSortedAndInTimeline) {
  std::vector<TrendEvent> a = MakeTrendEvents(42);
  std::vector<TrendEvent> b = MakeTrendEvents(42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].tag, b[i].tag);
    EXPECT_DOUBLE_EQ(a[i].magnitude, b[i].magnitude);
    EXPECT_GE(a[i].time, util::kNetworkStartMs);
    EXPECT_LT(a[i].time, util::NetworkEndMs());
    EXPECT_GE(a[i].magnitude, 1.0);
    if (i > 0) EXPECT_GE(a[i].time, a[i - 1].time);
  }
  // Different seeds give different event schedules.
  std::vector<TrendEvent> c = MakeTrendEvents(43);
  int same = 0;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (a[i].time == c[i].time) ++same;
  }
  EXPECT_LT(same, static_cast<int>(a.size() / 4));
}

TEST(TrendEventsTest, MagnitudesHeavyTailed) {
  std::vector<TrendEvent> events = MakeTrendEvents(7);
  double total = 0, max_mag = 0;
  for (const TrendEvent& e : events) {
    total += e.magnitude;
    max_mag = std::max(max_mag, e.magnitude);
  }
  // One event carries a disproportionate share of the mass.
  EXPECT_GT(max_mag, 3.0 * total / static_cast<double>(events.size()));
}

TEST(ConfigTest, ForScaleFactorMatchesHelper) {
  DatagenConfig config = DatagenConfig::ForScaleFactor(0.5);
  EXPECT_EQ(config.num_persons, PersonsForScaleFactor(0.5));
  EXPECT_EQ(config.num_persons, 3000u);
  EXPECT_TRUE(config.split_update_stream);
  EXPECT_TRUE(config.event_driven_posts);
}

TEST(ConfigTest, TSafeIsPositiveAndBelowUpdateWindow) {
  EXPECT_GT(kTSafeMs, 0);
  // Windowed execution needs many windows inside the 4-month stream.
  EXPECT_LT(kTSafeMs * 10,
            util::NetworkEndMs() - util::UpdateStreamStartMs());
}

TEST(DictionaryAccessorsTest, WordAndLanguageSurfaces) {
  schema::Dictionaries dict(1);
  ASSERT_GT(dict.word_count(), 0u);
  EXPECT_FALSE(dict.Word(0).empty());
  EXPECT_FALSE(dict.Word(dict.word_count() - 1).empty());
  EXPECT_EQ(dict.languages()[0], "en");
  for (size_t c = 0; c < dict.countries().size(); ++c) {
    uint32_t lang = dict.NativeLanguage(static_cast<schema::PlaceId>(c));
    ASSERT_LT(lang, dict.languages().size());
    EXPECT_NE(lang, 0u);  // Native language is never plain "en".
  }
}

TEST(DictionaryAccessorsTest, BrowserSamplingCoversPool) {
  schema::Dictionaries dict(1);
  util::Rng rng(2, 2, util::RandomPurpose::kBrowser);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(dict.SampleBrowser(rng));
  EXPECT_EQ(seen.size(), dict.browsers().size());
}

TEST(DictionaryAccessorsTest, GenerateTextRespectsWordBounds) {
  schema::Dictionaries dict(1);
  util::Rng rng(3, 3, util::RandomPurpose::kPostText);
  for (int i = 0; i < 50; ++i) {
    std::string text = dict.GenerateText(5, 3, 8, rng);
    int words = 1;
    for (char c : text) {
      if (c == ' ') ++words;
    }
    EXPECT_GE(words, 3);
    EXPECT_LE(words, 8);
  }
}

}  // namespace
}  // namespace snb::datagen
