file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_parameter_curation.dir/bench_fig6_parameter_curation.cc.o"
  "CMakeFiles/bench_fig6_parameter_curation.dir/bench_fig6_parameter_curation.cc.o.d"
  "bench_fig6_parameter_curation"
  "bench_fig6_parameter_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_parameter_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
