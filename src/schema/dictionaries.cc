#include "schema/dictionaries.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "util/distributions.h"

namespace snb::schema {
namespace {

using util::Mix64;
using util::Rng;

// Geometric skew of value-rank distributions: P(rank k) ∝ (1-p)^k. Chosen so
// the top-10 values cover ~80% of the mass, matching the heavy skew of real
// name distributions (Table 2).
constexpr double kRankSkew = 0.15;

// Probability that a person attends university / has a job.
constexpr double kHasUniversityProb = 0.8;
constexpr double kHasCompanyProb = 0.9;
// Probability the university/company is in the home country.
constexpr double kLocalUniversityProb = 0.9;
constexpr double kLocalCompanyProb = 0.8;

struct CountrySpec {
  const char* name;
  double latitude;
  double longitude;
  double weight;  // Rough relative population.
};

// Thirty countries with approximate coordinates and population weights.
constexpr std::array<CountrySpec, 30> kCountries = {{
    {"China", 35.0, 103.0, 1400.0},
    {"India", 21.0, 78.0, 1380.0},
    {"United_States", 38.0, -97.0, 330.0},
    {"Indonesia", -5.0, 120.0, 270.0},
    {"Pakistan", 30.0, 70.0, 220.0},
    {"Brazil", -10.0, -55.0, 212.0},
    {"Nigeria", 9.0, 8.0, 206.0},
    {"Russia", 61.0, 100.0, 146.0},
    {"Mexico", 23.0, -102.0, 128.0},
    {"Japan", 36.0, 138.0, 126.0},
    {"Egypt", 26.0, 30.0, 102.0},
    {"Vietnam", 14.0, 108.0, 97.0},
    {"Germany", 51.0, 9.0, 83.0},
    {"Turkey", 39.0, 35.0, 84.0},
    {"Iran", 32.0, 53.0, 83.0},
    {"Thailand", 15.0, 100.0, 70.0},
    {"France", 46.0, 2.0, 67.0},
    {"United_Kingdom", 54.0, -2.0, 67.0},
    {"Italy", 42.0, 12.0, 60.0},
    {"South_Korea", 36.0, 128.0, 52.0},
    {"Colombia", 4.0, -72.0, 51.0},
    {"Spain", 40.0, -4.0, 47.0},
    {"Argentina", -34.0, -64.0, 45.0},
    {"Ukraine", 49.0, 32.0, 44.0},
    {"Kenya", 0.0, 38.0, 53.0},
    {"Poland", 52.0, 19.0, 38.0},
    {"Canada", 56.0, -106.0, 38.0},
    {"Australia", -25.0, 133.0, 26.0},
    {"Netherlands", 52.0, 5.0, 17.0},
    {"Peru", -9.0, -75.0, 33.0},
}};

// Curated typical first names reproducing Table 2 (Germany, China) plus a few
// additional countries; remaining ranks fall back to the shared global pool.
struct CuratedNames {
  const char* country;
  std::array<const char*, 10> male;
  std::array<const char*, 10> female;
};

constexpr std::array<CuratedNames, 6> kCuratedFirstNames = {{
    {"Germany",
     {"Karl", "Hans", "Wolfgang", "Fritz", "Rudolf", "Walter", "Franz",
      "Paul", "Otto", "Wilhelm"},
     {"Anna", "Ursula", "Monika", "Petra", "Sabine", "Renate", "Helga",
      "Karin", "Brigitte", "Ingrid"}},
    {"China",
     {"Yang", "Chen", "Wei", "Lei", "Jun", "Jie", "Li", "Hao", "Lin",
      "Peng"},
     {"Yan", "Fang", "Na", "Xiu", "Min", "Jing", "Mei", "Hui", "Lan",
      "Qing"}},
    {"United_States",
     {"James", "John", "Robert", "Michael", "William", "David", "Richard",
      "Joseph", "Thomas", "Charles"},
     {"Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara",
      "Susan", "Jessica", "Sarah", "Karen"}},
    {"India",
     {"Rahul", "Amit", "Raj", "Sanjay", "Vijay", "Ajay", "Arjun", "Ravi",
      "Anil", "Suresh"},
     {"Priya", "Pooja", "Anjali", "Neha", "Sunita", "Kavita", "Anita",
      "Deepa", "Rekha", "Meena"}},
    {"France",
     {"Jean", "Pierre", "Michel", "Andre", "Philippe", "Rene", "Louis",
      "Alain", "Jacques", "Bernard"},
     {"Marie", "Jeanne", "Francoise", "Monique", "Catherine", "Nathalie",
      "Isabelle", "Jacqueline", "Anne", "Sylvie"}},
    {"Spain",
     {"Antonio", "Jose", "Manuel", "Francisco", "Juan", "David", "Javier",
      "Carlos", "Miguel", "Rafael"},
     {"Carmen", "Maria", "Josefa", "Isabel", "Dolores", "Pilar", "Teresa",
      "Ana", "Francisca", "Laura"}},
}};

constexpr std::array<const char*, 6> kCuratedLastNameCountries = {
    "Germany", "China", "United_States", "India", "France", "Spain"};

constexpr std::array<std::array<const char*, 10>, 6> kCuratedLastNames = {{
    {"Mueller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer",
     "Wagner", "Becker", "Schulz", "Hoffmann"},
    {"Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu",
     "Zhou"},
    {"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
     "Davis", "Rodriguez", "Martinez"},
    {"Sharma", "Singh", "Kumar", "Patel", "Gupta", "Verma", "Reddy", "Rao",
     "Mehta", "Joshi"},
    {"Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit",
     "Durand", "Leroy", "Moreau"},
    {"Garcia", "Gonzalez", "Rodriguez", "Fernandez", "Lopez", "Martinez",
     "Sanchez", "Perez", "Gomez", "Martin"},
}};

constexpr std::array<const char*, 16> kTagClassNames = {
    "Music",      "Film",     "Sports",   "Politics",
    "Literature", "Science",  "Food",     "Travel",
    "Technology", "History",  "Art",      "Business",
    "Nature",     "Fashion",  "Gaming",   "Photography",
};

constexpr std::array<const char*, 5> kBrowsers = {
    "Firefox", "Chrome", "Safari", "Opera", "Internet_Explorer"};

// Deterministic pronounceable synthetic name from an index.
std::string SyllableName(uint64_t key, int syllables) {
  static constexpr std::array<const char*, 20> kOnsets = {
      "b", "d", "f", "g", "h", "j", "k", "l", "m", "n",
      "p", "r", "s", "t", "v", "z", "ch", "sh", "th", "br"};
  static constexpr std::array<const char*, 10> kVowels = {
      "a", "e", "i", "o", "u", "ai", "ei", "ou", "ia", "eo"};
  std::string out;
  uint64_t h = Mix64(key);
  for (int s = 0; s < syllables; ++s) {
    out += kOnsets[h % kOnsets.size()];
    h = Mix64(h);
    out += kVowels[h % kVowels.size()];
    h = Mix64(h);
  }
  out[0] = static_cast<char>(out[0] - 'a' + 'A');
  return out;
}

// Builds, for every key in [0, num_keys), a permutation of [0, n): curated
// indices (if provided for that key) occupy the first ranks, the rest are
// ordered by a key-dependent hash. This is the paper's "same shape, permuted
// order" mechanism.
std::vector<std::vector<uint32_t>> BuildPermutations(
    uint64_t seed, size_t num_keys, size_t n,
    const std::vector<std::vector<uint32_t>>& curated_per_key) {
  std::vector<std::vector<uint32_t>> perms(num_keys);
  for (size_t key = 0; key < num_keys; ++key) {
    std::vector<uint32_t>& perm = perms[key];
    perm.reserve(n);
    std::vector<bool> used(n, false);
    if (key < curated_per_key.size()) {
      for (uint32_t idx : curated_per_key[key]) {
        assert(idx < n);
        perm.push_back(idx);
        used[idx] = true;
      }
    }
    std::vector<uint32_t> rest;
    rest.reserve(n - perm.size());
    for (uint32_t i = 0; i < n; ++i) {
      if (!used[i]) rest.push_back(i);
    }
    std::sort(rest.begin(), rest.end(), [&](uint32_t a, uint32_t b) {
      uint64_t ha = Mix64(seed ^ Mix64(key * 0x9e3779b9ULL + a));
      uint64_t hb = Mix64(seed ^ Mix64(key * 0x9e3779b9ULL + b));
      if (ha != hb) return ha < hb;
      return a < b;
    });
    perm.insert(perm.end(), rest.begin(), rest.end());
  }
  return perms;
}

// Draws a skewed rank in [0, n).
uint64_t SampleRank(Rng& rng, size_t n) {
  util::GeometricRankSampler sampler(kRankSkew, n);
  return sampler.Sample(rng);
}

}  // namespace

Dictionaries::Dictionaries(uint64_t seed) : seed_(seed) {
  // ---- Languages: "en" plus one per country. ----------------------------
  languages_.push_back("en");

  // ---- Countries, cities, universities, companies. -----------------------
  countries_.reserve(kCountries.size());
  for (size_t ci = 0; ci < kCountries.size(); ++ci) {
    const CountrySpec& spec = kCountries[ci];
    Country country;
    country.name = spec.name;
    country.latitude = spec.latitude;
    country.longitude = spec.longitude;
    country.population_weight = spec.weight;
    country.native_language = static_cast<uint32_t>(languages_.size());
    languages_.push_back(std::string(spec.name) + "_lang");

    // 4 cities per country, 2 universities per city, 8 companies per country.
    for (int c = 0; c < 4; ++c) {
      City city;
      city.name = std::string(spec.name) + "_" +
                  SyllableName(seed ^ Mix64(ci * 131 + c), 2);
      city.country_id = static_cast<PlaceId>(ci);
      // Jitter coordinates around the country centroid.
      Rng coord_rng(seed ^ Mix64(0xc17e5ULL + ci * 101 + c));
      city.latitude = spec.latitude + coord_rng.NextDouble() * 6.0 - 3.0;
      city.longitude = spec.longitude + coord_rng.NextDouble() * 6.0 - 3.0;
      PlaceId city_id = static_cast<PlaceId>(cities_.size());
      for (int u = 0; u < 2; ++u) {
        University uni;
        uni.name = "University_of_" + city.name +
                   (u == 0 ? "" : "_Tech");
        uni.city_id = city_id;
        city.universities.push_back(
            static_cast<OrganizationId>(universities_.size()));
        universities_.push_back(std::move(uni));
      }
      country.cities.push_back(city_id);
      cities_.push_back(std::move(city));
    }
    for (int k = 0; k < 8; ++k) {
      Company company;
      company.name = SyllableName(seed ^ Mix64(0xc0ULL + ci * 57 + k), 3) +
                     "_Corp";
      company.country_id = static_cast<PlaceId>(ci);
      country.companies.push_back(
          static_cast<OrganizationId>(companies_.size()));
      companies_.push_back(std::move(company));
    }
    countries_.push_back(std::move(country));
  }

  double acc = 0.0;
  country_weight_cumulative_.reserve(countries_.size());
  for (const Country& c : countries_) {
    acc += c.population_weight;
    country_weight_cumulative_.push_back(acc);
  }
  country_weight_total_ = acc;

  // ---- Tag classes and tags. --------------------------------------------
  tag_classes_.reserve(kTagClassNames.size());
  for (const char* name : kTagClassNames) tag_classes_.push_back({name});
  constexpr int kTagsPerClass = 40;
  tags_.reserve(tag_classes_.size() * kTagsPerClass);
  for (size_t tc = 0; tc < tag_classes_.size(); ++tc) {
    for (int t = 0; t < kTagsPerClass; ++t) {
      Tag tag;
      tag.name = tag_classes_[tc].name + "_" +
                 SyllableName(seed ^ Mix64(0x7a65ULL + tc * 997 + t), 3);
      tag.tag_class_id = static_cast<TagClassId>(tc);
      tags_.push_back(std::move(tag));
    }
  }

  // ---- Browsers. ----------------------------------------------------------
  browsers_.assign(kBrowsers.begin(), kBrowsers.end());

  // ---- First / last names: curated values first, synthetic fill. ---------
  constexpr size_t kFirstNamePool = 400;
  constexpr size_t kLastNamePool = 400;
  std::vector<std::vector<uint32_t>> curated_first_male(countries_.size());
  std::vector<std::vector<uint32_t>> curated_first_female(countries_.size());
  std::vector<std::vector<uint32_t>> curated_last(countries_.size());

  auto find_country = [&](const std::string& name) -> size_t {
    for (size_t i = 0; i < countries_.size(); ++i) {
      if (countries_[i].name == name) return i;
    }
    assert(false && "curated country not in country table");
    return 0;
  };

  auto intern_first = [&](const char* name) -> uint32_t {
    for (size_t i = 0; i < first_names_.size(); ++i) {
      if (first_names_[i] == name) return static_cast<uint32_t>(i);
    }
    first_names_.push_back(name);
    return static_cast<uint32_t>(first_names_.size() - 1);
  };
  auto intern_last = [&](const char* name) -> uint32_t {
    for (size_t i = 0; i < last_names_.size(); ++i) {
      if (last_names_[i] == name) return static_cast<uint32_t>(i);
    }
    last_names_.push_back(name);
    return static_cast<uint32_t>(last_names_.size() - 1);
  };

  for (const CuratedNames& cn : kCuratedFirstNames) {
    size_t ci = find_country(cn.country);
    for (const char* n : cn.male) {
      curated_first_male[ci].push_back(intern_first(n));
    }
    for (const char* n : cn.female) {
      curated_first_female[ci].push_back(intern_first(n));
    }
  }
  for (size_t k = 0; k < kCuratedLastNameCountries.size(); ++k) {
    size_t ci = find_country(kCuratedLastNameCountries[k]);
    for (const char* n : kCuratedLastNames[k]) {
      curated_last[ci].push_back(intern_last(n));
    }
  }
  while (first_names_.size() < kFirstNamePool) {
    first_names_.push_back(
        SyllableName(seed ^ Mix64(0xf1257ULL + first_names_.size()), 2));
  }
  while (last_names_.size() < kLastNamePool) {
    last_names_.push_back(
        SyllableName(seed ^ Mix64(0x1a57ULL + last_names_.size()), 3));
  }

  first_name_perm_male_ = BuildPermutations(
      seed ^ 0x11, countries_.size(), first_names_.size(),
      curated_first_male);
  first_name_perm_female_ = BuildPermutations(
      seed ^ 0x22, countries_.size(), first_names_.size(),
      curated_first_female);
  last_name_perm_ = BuildPermutations(seed ^ 0x33, countries_.size(),
                                      last_names_.size(), curated_last);
  tag_perm_ = BuildPermutations(seed ^ 0x44, countries_.size(), tags_.size(),
                                {});

  // ---- Word dictionary for message text. ----------------------------------
  constexpr size_t kWordPool = 1200;
  words_.reserve(kWordPool);
  for (size_t w = 0; w < kWordPool; ++w) {
    std::string word = SyllableName(seed ^ Mix64(0x30cdULL + w), 2);
    word[0] = static_cast<char>(word[0] - 'A' + 'a');
    words_.push_back(std::move(word));
  }
}

PlaceId Dictionaries::SampleCountry(Rng& rng) const {
  double u = rng.NextDouble() * country_weight_total_;
  size_t lo = 0, hi = country_weight_cumulative_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (country_weight_cumulative_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<PlaceId>(lo);
}

PlaceId Dictionaries::SampleCityInCountry(PlaceId country_id,
                                          Rng& rng) const {
  const std::vector<PlaceId>& cities = countries_[country_id].cities;
  return cities[rng.NextBounded(cities.size())];
}

size_t Dictionaries::SampleFirstNameIndex(PlaceId country_id, uint8_t gender,
                                          Rng& rng) const {
  const auto& perms =
      gender == 0 ? first_name_perm_male_ : first_name_perm_female_;
  uint64_t rank = SampleRank(rng, first_names_.size());
  return PermutedValue(perms, country_id, rank);
}

size_t Dictionaries::SampleLastNameIndex(PlaceId country_id,
                                         Rng& rng) const {
  uint64_t rank = SampleRank(rng, last_names_.size());
  return PermutedValue(last_name_perm_, country_id, rank);
}

TagId Dictionaries::SampleInterestTag(PlaceId country_id, Rng& rng) const {
  uint64_t rank = SampleRank(rng, tags_.size());
  return static_cast<TagId>(PermutedValue(tag_perm_, country_id, rank));
}

OrganizationId Dictionaries::SampleUniversity(PlaceId country_id,
                                              Rng& rng) const {
  if (!rng.NextBool(kHasUniversityProb)) return kInvalidId32;
  PlaceId home = country_id;
  if (!rng.NextBool(kLocalUniversityProb)) {
    home = static_cast<PlaceId>(rng.NextBounded(countries_.size()));
  }
  const Country& country = countries_[home];
  PlaceId city = country.cities[rng.NextBounded(country.cities.size())];
  const std::vector<OrganizationId>& unis = cities_[city].universities;
  return unis[rng.NextBounded(unis.size())];
}

OrganizationId Dictionaries::SampleCompany(PlaceId country_id,
                                           Rng& rng) const {
  if (!rng.NextBool(kHasCompanyProb)) return kInvalidId32;
  PlaceId home = country_id;
  if (!rng.NextBool(kLocalCompanyProb)) {
    home = static_cast<PlaceId>(rng.NextBounded(countries_.size()));
  }
  const std::vector<OrganizationId>& companies = countries_[home].companies;
  return companies[rng.NextBounded(companies.size())];
}

std::vector<uint32_t> Dictionaries::SampleLanguages(PlaceId country_id,
                                                    Rng& rng) const {
  std::vector<uint32_t> langs;
  langs.push_back(countries_[country_id].native_language);
  if (rng.NextBool(0.6)) langs.push_back(0);  // English.
  if (rng.NextBool(0.15)) {
    uint32_t extra =
        static_cast<uint32_t>(1 + rng.NextBounded(languages_.size() - 1));
    if (extra != langs[0]) langs.push_back(extra);
  }
  return langs;
}

const std::string& Dictionaries::SampleBrowser(Rng& rng) const {
  return browsers_[rng.NextBounded(browsers_.size())];
}

std::string Dictionaries::GenerateText(TagId topic, int min_words,
                                       int max_words, Rng& rng) const {
  int n = static_cast<int>(rng.NextInRange(min_words, max_words));
  std::string out;
  size_t words = words_.size();
  for (int i = 0; i < n; ++i) {
    uint64_t rank = SampleRank(rng, words);
    // Per-topic permutation derived arithmetically: value = (a*rank + b) mod
    // words with a coprime to words. Avoids materializing |tags| x |words|.
    uint64_t a = 2 * (Mix64(seed_ ^ (topic * 0x9e37ULL)) % (words / 2)) + 1;
    uint64_t b = Mix64(seed_ ^ (topic * 0x7f4aULL)) % words;
    size_t idx = static_cast<size_t>((a * rank + b) % words);
    if (i > 0) out += ' ';
    out += words_[idx];
  }
  return out;
}

}  // namespace snb::schema
