// Scoped operator-level tracing for physical query plans.
//
// The paper's choke-point discussion (Figure 4: index-nested-loop vs hash
// joins in Q9) is about *where inside a plan* the time goes, which
// end-to-end latencies cannot show. A TraceSpan times one operator
// invocation and accumulates (invocations, wall time, output rows) into an
// OperatorStats slot owned by the caller.
//
// Profiling is opt-in per query invocation: a span constructed with a null
// sink is fully disengaged — no clock reads, no stores — so the plan code
// can be instrumented unconditionally and pays nothing when no profile is
// requested. Sinks are plain (non-atomic) because a profile belongs to one
// query execution on one thread; aggregate across executions by Merge().
#ifndef SNB_OBS_TRACE_H_
#define SNB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>

#include "obs/perf_counters.h"
#include "obs/prof.h"

namespace snb::obs {

/// Accumulated cost of one plan operator across invocations. `hw` carries
/// hardware-counter totals for the `hw_invocations` invocations that ran
/// with live counters (0 when the perf backend is no-op/disabled, so
/// wall-clock profiling keeps working counter-less).
struct OperatorStats {
  uint64_t invocations = 0;
  uint64_t time_ns = 0;
  uint64_t rows = 0;
  perf::HwCounts hw;
  uint64_t hw_invocations = 0;

  void Merge(const OperatorStats& other) {
    invocations += other.invocations;
    time_ns += other.time_ns;
    rows += other.rows;
    hw.Accumulate(other.hw);
    hw_invocations += other.hw_invocations;
  }

  double TimeMs() const { return static_cast<double>(time_ns) / 1e6; }
};

/// RAII timer for one operator invocation. Disengaged when sink == nullptr.
/// When the perf backend is live the span also attributes the thread's
/// counter deltas (cycles, instructions, misses) to the sink, so operator
/// rows carry IPC and miss rates alongside wall time.
///
/// `label` additionally names the operator to the sampling profiler
/// (prof::ScopedOperatorLabel): CPU samples taken inside the span fold
/// under "opr:<label>". The label engages independently of the sink —
/// batched plans trace with null sinks on the hot path yet still want
/// operator-attributed samples — and must have static storage duration.
class TraceSpan {
 public:
  TraceSpan() = default;
  explicit TraceSpan(OperatorStats* sink, const char* label = nullptr)
      : prof_label_(label), sink_(sink) {
    if (sink_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
      if (perf::CountersLive()) hw_begin_ = perf::ReadThreadCounters();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Counts rows emitted by this invocation (no-op when disengaged).
  void AddRows(uint64_t n) { rows_ += n; }

  bool engaged() const { return sink_ != nullptr; }

  ~TraceSpan() {
    if (sink_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->invocations += 1;
    sink_->time_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    sink_->rows += rows_;
    if (hw_begin_.valid()) {
      perf::HwCounts delta =
          perf::ReadThreadCounters().DeltaSince(hw_begin_);
      if (delta.valid()) {
        sink_->hw.Accumulate(delta);
        sink_->hw_invocations += 1;
      }
    }
  }

 private:
  // First member: the label outlives the timing reads on destruction,
  // so samples landing in the epilogue still carry the operator.
  prof::ScopedOperatorLabel prof_label_{nullptr};
  OperatorStats* sink_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  uint64_t rows_ = 0;
  perf::HwCounts hw_begin_;
};

}  // namespace snb::obs

#endif  // SNB_OBS_TRACE_H_
