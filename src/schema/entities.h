// Entity structs of the SNB schema (11 entities, 20 relations).
//
// These are passive data carriers produced by DATAGEN and bulk-loaded into
// the store; they mirror the LDBC SNB logical schema.
#ifndef SNB_SCHEMA_ENTITIES_H_
#define SNB_SCHEMA_ENTITIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/ids.h"
#include "util/datetime.h"

namespace snb::schema {

using util::TimestampMs;

/// A member of the social network.
struct Person {
  PersonId id = kInvalidId;
  std::string first_name;
  std::string last_name;
  /// 0 = male, 1 = female.
  uint8_t gender = 0;
  TimestampMs birthday = 0;
  TimestampMs creation_date = 0;
  PlaceId city_id = kInvalidId32;
  std::string browser;
  std::string location_ip;
  std::vector<std::string> emails;
  /// Language ids; index 0 is the native language of the home country.
  std::vector<uint32_t> languages;
  /// Tags the person is interested in (influences post topics).
  std::vector<TagId> interests;
  /// University studied at (kInvalidId32 when none), plus class year.
  OrganizationId university_id = kInvalidId32;
  uint16_t study_year = 0;
  /// Employer (kInvalidId32 when none), plus employment start year.
  OrganizationId company_id = kInvalidId32;
  uint16_t work_year = 0;
};

/// An undirected friendship edge; person1_id < person2_id by convention.
struct Knows {
  PersonId person1_id = kInvalidId;
  PersonId person2_id = kInvalidId;
  TimestampMs creation_date = 0;
};

/// A discussion container owned (moderated) by one person.
struct Forum {
  ForumId id = kInvalidId;
  std::string title;
  PersonId moderator_id = kInvalidId;
  TimestampMs creation_date = 0;
  std::vector<TagId> tags;
};

/// Membership of a person in a forum.
struct ForumMembership {
  ForumId forum_id = kInvalidId;
  PersonId person_id = kInvalidId;
  TimestampMs join_date = 0;
};

/// Message kind discriminator.
enum class MessageKind : uint8_t { kPost = 0, kComment = 1, kPhoto = 2 };

/// A post, photo, or comment. Comments have a parent message; posts/photos
/// have a forum. All messages carry creator, creation date and content.
struct Message {
  MessageId id = kInvalidId;
  MessageKind kind = MessageKind::kPost;
  PersonId creator_id = kInvalidId;
  TimestampMs creation_date = 0;
  /// Forum containing the root post. Set for posts/photos; for comments it is
  /// the forum of the root post.
  ForumId forum_id = kInvalidId;
  /// For comments: the message replied to. kInvalidId for posts/photos.
  MessageId reply_to_id = kInvalidId;
  /// Root post of the discussion tree (self for posts/photos).
  MessageId root_post_id = kInvalidId;
  std::string content;
  std::vector<TagId> tags;
  /// Language of the content (person's language).
  uint32_t language = 0;
  /// Country the message was posted from.
  PlaceId country_id = kInvalidId32;
  /// Photo geo-coordinates (photos only); correlate with country_id.
  double latitude = 0.0;
  double longitude = 0.0;
};

/// A like from a person to a message.
struct Like {
  PersonId person_id = kInvalidId;
  MessageId message_id = kInvalidId;
  TimestampMs creation_date = 0;
};

/// The full bulk-load portion of a generated dataset.
struct SocialNetwork {
  std::vector<Person> persons;
  std::vector<Knows> knows;
  std::vector<Forum> forums;
  std::vector<ForumMembership> memberships;
  std::vector<Message> messages;
  std::vector<Like> likes;
};

}  // namespace snb::schema

#endif  // SNB_SCHEMA_ENTITIES_H_
