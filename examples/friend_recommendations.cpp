// Friend recommendation scenario: the "people you may know" panel of a
// social network, built from the SNB interactive queries.
//
// For a user it combines
//   Q10 — friends-of-friends with matching horoscope sign, ranked by
//         interest similarity,
//   Q1  — people with the same first name nearby in the graph,
//   Q14 — the strongest connection paths to a recommended person.
//
//   ./examples/friend_recommendations
#include <algorithm>
#include <cstdio>

#include "datagen/datagen.h"
#include "queries/complex_queries.h"
#include "queries/short_queries.h"
#include "store/graph_store.h"

int main() {
  using namespace snb;

  datagen::DatagenConfig config = datagen::DatagenConfig::ForScaleFactor(0.1);
  config.split_update_stream = false;
  datagen::Dataset dataset = datagen::Generate(config);
  store::GraphStore store;
  if (!store.BulkLoad(dataset.bulk).ok()) return 1;

  // Choose a mid-degree user (a typical member, not a hub).
  schema::PersonId user = 0;
  {
    auto pin = store.ReadLock();
    for (schema::PersonId id : store.PersonIds(pin)) {
      const store::PersonRecord* p = store.FindPerson(pin, id);
      if (p != nullptr && p->friends.size() >= 8 &&
          p->friends.size() <= 20) {
        user = id;
        break;
      }
    }
  }
  queries::S1Result profile = queries::ShortQuery1PersonProfile(store, user);
  std::printf("Recommendations for %s %s (person %llu)\n",
              profile.first_name.c_str(), profile.last_name.c_str(),
              (unsigned long long)user);

  // Q10 across all horoscope months; merge the best candidates.
  std::vector<queries::Q10Result> best;
  for (int month = 1; month <= 12; ++month) {
    for (const queries::Q10Result& r :
         queries::Query10(store, user, month, 3)) {
      best.push_back(r);
    }
  }
  std::sort(best.begin(), best.end(),
            [](const queries::Q10Result& a, const queries::Q10Result& b) {
              return a.similarity > b.similarity;
            });
  if (best.size() > 5) best.resize(5);

  std::printf("\nPeople you may know (interest-similarity ranked):\n");
  for (const queries::Q10Result& r : best) {
    queries::S1Result p = queries::ShortQuery1PersonProfile(store, r.person_id);
    std::printf("  %s %s (person %llu), similarity %+d\n",
                p.first_name.c_str(), p.last_name.c_str(),
                (unsigned long long)r.person_id, r.similarity);
    // Q14: how is this candidate connected to the user?
    auto paths = queries::Query14(store, user, r.person_id);
    if (!paths.empty()) {
      std::printf("    strongest path (weight %.1f): ", paths[0].weight);
      for (size_t i = 0; i < paths[0].path.size(); ++i) {
        std::printf("%s%llu", i ? " -> " : "",
                    (unsigned long long)paths[0].path[i]);
      }
      std::printf("  [%zu shortest path(s)]\n", paths.size());
    }
  }

  // Q1: namesakes within 3 hops — "is this the person you meant?"
  auto namesakes = queries::Query1(store, user, profile.first_name, 5);
  std::printf("\nOther '%s' within 3 hops:\n", profile.first_name.c_str());
  for (const queries::Q1Result& r : namesakes) {
    std::printf("  person %llu, %s, distance %u\n",
                (unsigned long long)r.person_id, r.last_name.c_str(),
                r.distance);
  }
  if (namesakes.empty()) std::printf("  (none)\n");
  return 0;
}
