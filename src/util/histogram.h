// Histograms and summary statistics used by benches and the metrics layer.
#ifndef SNB_UTIL_HISTOGRAM_H_
#define SNB_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace snb::util {

/// Accumulates double-valued samples; computes mean/variance/percentiles.
/// Not thread-safe; aggregate per-thread instances with Merge().
class SampleStats {
 public:
  void Add(double v) { samples_.push_back(v); }

  void Merge(const SampleStats& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }

  /// Population variance.
  double Variance() const {
    if (samples_.size() < 2) return 0.0;
    double m = Mean();
    double acc = 0.0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return acc / static_cast<double>(samples_.size());
  }

  double StdDev() const { return std::sqrt(Variance()); }

  double Min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0, 100]. Nearest-rank percentile.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t idx = static_cast<size_t>(rank);
    if (idx + 1 >= sorted.size()) return sorted.back();
    double frac = rank - static_cast<double>(idx);
    return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Fixed-width bucket histogram over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    assert(hi > lo && buckets > 0);
  }

  void Add(double v) {
    if (v < lo_) {
      ++underflow_;
      return;
    }
    if (v >= hi_) {
      ++overflow_;
      return;
    }
    size_t idx = static_cast<size_t>((v - lo_) / (hi_ - lo_) *
                                     static_cast<double>(counts_.size()));
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
  }

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  /// Inclusive lower edge of bucket i.
  double BucketLow(size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

  uint64_t TotalCount() const {
    uint64_t total = underflow_ + overflow_;
    for (uint64_t c : counts_) total += c;
    return total;
  }

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

}  // namespace snb::util

#endif  // SNB_UTIL_HISTOGRAM_H_
