// Tests for the SNB-BI preview queries, validated against brute-force
// aggregation over the generated dataset.
#include <map>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/bi_queries.h"
#include "schema/dictionaries.h"

namespace snb::queries {
namespace {

class BiQueriesTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    store::GraphStore store;
    std::vector<schema::PlaceId> city_country;
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 200;
      config.split_update_stream = false;
      world->dataset = datagen::Generate(config);
      EXPECT_TRUE(world->store.BulkLoad(world->dataset.bulk).ok());
      schema::Dictionaries dict(config.seed);
      for (const schema::City& c : dict.cities()) {
        world->city_country.push_back(c.country_id);
      }
      return world;
    }();
    return *w;
  }
};

TEST_F(BiQueriesTest, Bi1GroupsCoverAllMessages) {
  std::vector<Bi1Result> rows = BiQuery1PostingSummary(world().store);
  ASSERT_FALSE(rows.empty());
  uint64_t total = 0;
  for (const Bi1Result& r : rows) total += r.message_count;
  EXPECT_EQ(total, world().dataset.bulk.messages.size());
  // Sorted by count descending.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].message_count, rows[i].message_count);
  }
  // Spot-check one group against brute force.
  const Bi1Result& top = rows.front();
  uint64_t count = 0;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    std::time_t secs =
        static_cast<std::time_t>(m.creation_date / util::kMillisPerSecond);
    std::tm tm_utc{};
    gmtime_r(&secs, &tm_utc);
    if (tm_utc.tm_year + 1900 == top.year && m.kind == top.kind &&
        m.language == top.language) {
      ++count;
    }
  }
  EXPECT_EQ(count, top.message_count);
  // Years within the simulated timeline.
  for (const Bi1Result& r : rows) {
    EXPECT_GE(r.year, 2010);
    EXPECT_LE(r.year, 2013);
  }
}

TEST_F(BiQueriesTest, Bi2DeltasMatchBruteForce) {
  util::TimestampMs start =
      util::kNetworkStartMs + 12 * util::kMillisPerMonth;
  int days = 60;
  std::vector<Bi2Result> rows =
      BiQuery2TagEvolution(world().store, start, days, 10);
  ASSERT_FALSE(rows.empty());

  util::TimestampMs mid = start + days * util::kMillisPerDay;
  util::TimestampMs end = mid + days * util::kMillisPerDay;
  for (const Bi2Result& r : rows) {
    uint32_t w1 = 0, w2 = 0;
    for (const schema::Message& m : world().dataset.bulk.messages) {
      if (m.kind == schema::MessageKind::kComment) continue;
      bool has = false;
      for (schema::TagId t : m.tags) {
        if (t == r.tag) has = true;
      }
      if (!has) continue;
      if (m.creation_date >= start && m.creation_date < mid) ++w1;
      if (m.creation_date >= mid && m.creation_date < end) ++w2;
    }
    EXPECT_EQ(r.count_window1, w1) << "tag " << r.tag;
    EXPECT_EQ(r.count_window2, w2) << "tag " << r.tag;
    EXPECT_EQ(r.delta, w1 > w2 ? w1 - w2 : w2 - w1);
  }
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].delta, rows[i].delta);
  }
}

TEST_F(BiQueriesTest, Bi3InfluencersHaveMostLikes) {
  std::vector<Bi3Result> rows = BiQuery3CountryInfluencers(
      world().store, world().city_country, 2);
  ASSERT_FALSE(rows.empty());

  // Brute force: likes received per person.
  std::map<schema::MessageId, schema::PersonId> creator;
  for (const schema::Message& m : world().dataset.bulk.messages) {
    creator[m.id] = m.creator_id;
  }
  std::map<schema::PersonId, uint64_t> likes;
  for (const schema::Like& l : world().dataset.bulk.likes) {
    ++likes[creator[l.message_id]];
  }
  std::map<schema::PersonId, schema::PlaceId> country_of;
  for (const schema::Person& p : world().dataset.bulk.persons) {
    country_of[p.id] = world().city_country[p.city_id];
  }
  for (const Bi3Result& r : rows) {
    EXPECT_EQ(r.likes_received, likes[r.person]);
    EXPECT_EQ(r.country, country_of[r.person]);
    // Nobody in the same country beats a listed influencer who is ranked
    // first for that country.
  }
  // Per-country group sizes respected.
  std::map<schema::PlaceId, int> group_sizes;
  for (const Bi3Result& r : rows) ++group_sizes[r.country];
  for (auto [_, size] : group_sizes) EXPECT_LE(size, 2);
}

}  // namespace
}  // namespace snb::queries
