// Probe binary for tools/snb_invariants.
//
// The invariant checker analyzes machine code, and at -O2 the epoch-pinned
// store accessors (inline member functions in graph_store.h) are inlined
// into every caller — no standalone symbol, nothing to disassemble. This
// translation unit forces an out-of-line copy of each tagged inline root
// by taking its member-function address into a volatile global: the
// compiler must materialize the real body, and that body (with the exact
// code a caller would inline) is what the checker traverses.
//
// The remaining roots (the SIGPROF handler, the metrics record paths, the
// profiler's ring drain) live in .cc files; referencing any symbol from
// prof.cc / metrics.cc / graph_store.cc pulls those objects out of the
// static libraries, and the roots inside come along.
//
// The binary is built to be *disassembled*, not run — main() exists only
// to satisfy the linker and to keep every reference an odr-use.
#include <cstdio>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "store/graph_store.h"

namespace {

// Volatile stops the compiler from constant-folding the pointers away,
// which is what forces the out-of-line copies to exist.
volatile auto g_find_person = &snb::store::GraphStore::FindPerson;
volatile auto g_find_forum = &snb::store::GraphStore::FindForum;
volatile auto g_find_message = &snb::store::GraphStore::FindMessage;
volatile auto g_are_friends = &snb::store::GraphStore::AreFriends;
// Presence probes (graph_store.cc): the shard writer lanes' spin-wait
// targets; tagged "lockfree" at their out-of-line definitions.
volatile auto g_person_present = &snb::store::GraphStore::PersonPresent;
volatile auto g_forum_present = &snb::store::GraphStore::ForumPresent;
volatile auto g_message_present = &snb::store::GraphStore::MessagePresent;
volatile auto g_record_latency = &snb::obs::MetricsRegistry::RecordLatencyNs;
volatile auto g_add_counter = &snb::obs::MetricsRegistry::AddCounter;
volatile auto g_record_hw = &snb::obs::MetricsRegistry::RecordHwCounts;

}  // namespace

int main() {
  // Pulls prof.cc (and with it the SIGPROF handler, which is
  // address-taken inside Enable()'s sigaction call) into the link.
  std::printf("backend=%s find_person=%d\n",
              snb::obs::prof::BackendName(snb::obs::prof::ActiveBackend()),
              static_cast<int>(g_find_person != nullptr));
  return 0;
}
