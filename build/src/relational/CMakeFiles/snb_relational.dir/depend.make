# Empty dependencies file for snb_relational.
# This may be replaced when dependencies are built.
