// Table 6 reproduction: mean runtime of the 14 complex read-only queries —
// two systems (native graph store vs relational baseline) at two (mini)
// scale factors, with curated parameters. Mirrors the paper's
// Sparksee@SF10 / Virtuoso@SF300 structure.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "curation/parameter_curation.h"
#include "queries/complex_queries.h"
#include "relational/rel_queries.h"
#include "util/histogram.h"
#include "util/stopwatch.h"
#include "util/rng.h"

namespace snb::bench {
namespace {

// Static dispatch shims: same query API on both SUTs.
struct GraphApi {
  using Db = store::GraphStore;
  template <typename... A>
  static auto Q1(A&&... a) { return queries::Query1(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q2(A&&... a) { return queries::Query2(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q3(A&&... a) { return queries::Query3(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q4(A&&... a) { return queries::Query4(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q5(A&&... a) { return queries::Query5(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q6(A&&... a) { return queries::Query6(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q7(A&&... a) { return queries::Query7(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q8(A&&... a) { return queries::Query8(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q9(A&&... a) { return queries::Query9(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q10(A&&... a) { return queries::Query10(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q11(A&&... a) { return queries::Query11(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q12(A&&... a) { return queries::Query12(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q13(A&&... a) { return queries::Query13(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q14(A&&... a) { return queries::Query14(std::forward<A>(a)...); }
};

struct RelApi {
  using Db = rel::RelationalDb;
  template <typename... A>
  static auto Q1(A&&... a) { return rel::Query1(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q2(A&&... a) { return rel::Query2(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q3(A&&... a) { return rel::Query3(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q4(A&&... a) { return rel::Query4(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q5(A&&... a) { return rel::Query5(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q6(A&&... a) { return rel::Query6(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q7(A&&... a) { return rel::Query7(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q8(A&&... a) { return rel::Query8(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q9(A&&... a) { return rel::Query9(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q10(A&&... a) { return rel::Query10(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q11(A&&... a) { return rel::Query11(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q12(A&&... a) { return rel::Query12(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q13(A&&... a) { return rel::Query13(std::forward<A>(a)...); }
  template <typename... A>
  static auto Q14(A&&... a) { return rel::Query14(std::forward<A>(a)...); }
};

template <typename Api>
std::vector<double> MeasureComplexQueries(const typename Api::Db& db,
                                          BenchWorld& world, int runs) {
  const schema::Dictionaries& dict = *world.dictionaries;
  curation::PcTable one_hop = curation::BuildQuery2Table(world.dataset.stats);
  curation::PcTable two_hop = curation::BuildTwoHopTable(world.dataset.stats);
  std::vector<uint64_t> one_params =
      curation::CurateParameters(one_hop, runs);
  std::vector<uint64_t> two_params =
      curation::CurateParameters(two_hop, runs);

  util::Rng rng(7, 7, util::RandomPurpose::kParameterPick);
  util::TimestampMs mid =
      util::kNetworkStartMs + 24 * util::kMillisPerMonth;
  std::vector<std::vector<bool>> tag_in_class(
      dict.tag_classes().size(),
      std::vector<bool>(dict.tags().size(), false));
  for (size_t t = 0; t < dict.tags().size(); ++t) {
    tag_in_class[dict.tags()[t].tag_class_id][t] = true;
  }

  std::vector<double> means(15, 0.0);
  for (int q = 1; q <= 14; ++q) {
    util::SampleStats stats;
    for (int r = 0; r < runs; ++r) {
      schema::PersonId one = one_params[r % one_params.size()];
      schema::PersonId two = two_params[r % two_params.size()];
      util::Stopwatch watch;
      switch (q) {
        case 1:
          Api::Q1(db, two, dict.FirstName(rng.NextBounded(30)), 20);
          break;
        case 2:
          Api::Q2(db, one, mid, 20);
          break;
        case 3:
          Api::Q3(db, two, world.city_country,
                  static_cast<schema::PlaceId>(rng.NextBounded(30)),
                  static_cast<schema::PlaceId>(rng.NextBounded(30)),
                  mid - 90 * util::kMillisPerDay, 90, 20);
          break;
        case 4:
          Api::Q4(db, one, mid - 30 * util::kMillisPerDay, 30, 10);
          break;
        case 5:
          Api::Q5(db, two, mid - 60 * util::kMillisPerDay, 20);
          break;
        case 6:
          Api::Q6(db, two,
                  static_cast<schema::TagId>(
                      rng.NextBounded(dict.tags().size())),
                  10);
          break;
        case 7:
          Api::Q7(db, one, 20);
          break;
        case 8:
          Api::Q8(db, one, 20);
          break;
        case 9:
          Api::Q9(db, two, mid, 20);
          break;
        case 10:
          Api::Q10(db, two, static_cast<int>(1 + rng.NextBounded(12)), 10);
          break;
        case 11:
          Api::Q11(db, two, world.company_country,
                   static_cast<schema::PlaceId>(rng.NextBounded(30)),
                   static_cast<uint16_t>(2013), 10);
          break;
        case 12:
          Api::Q12(db, one, tag_in_class[rng.NextBounded(tag_in_class.size())],
                   20);
          break;
        case 13:
          Api::Q13(db, two, two_params[(r + 3) % two_params.size()]);
          break;
        case 14:
          Api::Q14(db, two, two_params[(r + 3) % two_params.size()]);
          break;
      }
      stats.Add(watch.ElapsedMicros() / 1000.0);
    }
    means[q] = stats.Mean();
  }
  return means;
}

void PrintRow(const char* label, const std::vector<double>& ms) {
  std::printf("  %-24s", label);
  for (int q = 1; q <= 14; ++q) std::printf("%8.3f", ms[q]);
  std::printf("\n");
}

void RunAt(double sf, const char* graph_label, const char* rel_label) {
  std::unique_ptr<BenchWorld> world = MakeWorld(sf);
  rel::RelationalDb relational;
  if (!relational.BulkLoad(world->dataset.bulk).ok()) std::abort();
  for (const datagen::UpdateOperation& op : world->dataset.updates) {
    if (!rel::ApplyUpdate(relational, op).ok()) std::abort();
  }
  PrintRow(graph_label,
           MeasureComplexQueries<GraphApi>(world->store, *world, 25));
  PrintRow(rel_label,
           MeasureComplexQueries<RelApi>(relational, *world, 25));
}

void Run() {
  PrintHeader("Table 6 — mean runtime of complex read-only queries (ms)");
  std::printf("  %-24s", "system,scale");
  for (int q = 1; q <= 14; ++q) {
    std::printf("%8s", ("Q" + std::to_string(q)).c_str());
  }
  std::printf("\n");
  RunAt(kSmallSf, "graph,SF0.05", "relational,SF0.05");
  RunAt(kLargeSf, "graph,SF0.4", "relational,SF0.4");
  std::printf("\n  Paper (ms): Sparksee,SF10 : 20 44 441 31 100 41 11 38 3376 194 66 177 794 2009\n");
  std::printf("              Virtuoso,SF300: 941 1493 4232 1163 2688 16090 1000 32 18464 1257 762 1519 559 742\n");
  std::printf(
      "  Shape to check: two systems, same workload — the 2..3-hop +\n"
      "  message-scan queries (Q3/Q5/Q6/Q9) dominate on both; costs grow\n"
      "  with scale; the relational engine pays O(log n) per index probe\n"
      "  where the graph store pays O(1) adjacency chasing.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
